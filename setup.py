"""Setuptools entry point.

Packaging metadata lives in ``setup.cfg``; this file exists so that
``pip install -e .`` works on environments without the ``wheel`` package
(pip falls back to the legacy ``setup.py develop`` editable path).
"""

from setuptools import setup

setup()
