"""Fault injection, graceful degradation, and crash-safe training.

Covers the robustness layer end to end: the seeded fault schedule, the
faulty detector suite and message channel, controller-failure fallback,
the NaN/divergence guard and ``SimulationError`` containment in the
training runner, checkpoint validation, kill-and-resume reproducibility,
and the degradation comparison the robustness sweep is built on.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from helpers import make_env
from repro.agents import FixedTimeSystem, PairUpLightSystem
from repro.agents.base import AgentSystem
from repro.agents.pairuplight.agent import PairUpLightConfig
from repro.agents.pairuplight.messaging import (
    FaultyMessageChannel,
    ResilientMessageReader,
)
from repro.errors import CheckpointError, FaultInjectionError, SimulationError
from repro.eval.harness import ExperimentScale, GridExperiment
from repro.eval.robustness import (
    formatted_degradation_table,
    run_degradation_comparison,
)
from repro.faults import (
    ControllerFaultWrapper,
    FaultConfig,
    FaultSchedule,
    FaultyDetectorSuite,
)
from repro.nn.linear import Linear
from repro.nn.serialization import atomic_savez, load_state, read_archive, save_state
from repro.rl import runner
from repro.rl.checkpoint import (
    load_training_checkpoint,
    save_training_checkpoint,
)
from repro.rl.runner import train

ALL_FAULTS = FaultConfig(
    detector_dropout=0.1,
    detector_stuck=0.05,
    detector_noise=0.3,
    message_drop=0.1,
    message_corrupt=0.05,
    message_delay=0.05,
    controller_failure=0.1,
)


# ----------------------------------------------------------------------
# FaultConfig
# ----------------------------------------------------------------------
class TestFaultConfig:
    def test_defaults_inactive(self):
        config = FaultConfig()
        assert not config.active
        assert not config.any_detector_faults
        assert not config.any_message_faults
        assert not config.any_controller_faults

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultConfig(message_drop=-0.1)
        with pytest.raises(FaultInjectionError):
            FaultConfig(detector_dropout=1.5)

    def test_uniform_maps_kinds_to_families(self):
        config = FaultConfig.uniform(0.2, ("message",))
        assert config.message_drop == 0.2
        assert config.detector_dropout == 0.0
        assert config.any_message_faults and not config.any_detector_faults

    def test_uniform_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultConfig.uniform(0.2, ("gremlins",))


# ----------------------------------------------------------------------
# FaultSchedule
# ----------------------------------------------------------------------
class TestFaultSchedule:
    def _drop_sequence(self, schedule: FaultSchedule, n: int = 200) -> list[bool]:
        return [schedule.message_dropped() for _ in range(n)]

    def test_same_seed_same_episode_reproduces(self):
        config = FaultConfig(message_drop=0.3)
        a, b = FaultSchedule(config, seed=7), FaultSchedule(config, seed=7)
        a.begin_episode(3)
        b.begin_episode(3)
        assert self._drop_sequence(a) == self._drop_sequence(b)

    def test_different_episode_seed_differs(self):
        config = FaultConfig(message_drop=0.3)
        a, b = FaultSchedule(config, seed=7), FaultSchedule(config, seed=7)
        a.begin_episode(3)
        b.begin_episode(4)
        assert self._drop_sequence(a) != self._drop_sequence(b)

    def test_stuck_decision_stable_within_episode(self):
        schedule = FaultSchedule(FaultConfig(detector_stuck=0.5), seed=0)
        schedule.begin_episode(0)
        first = {f"d{i}": schedule.detector_stuck(f"d{i}") for i in range(40)}
        again = {f"d{i}": schedule.detector_stuck(f"d{i}") for i in range(40)}
        assert first == again
        assert any(first.values()) and not all(first.values())

    def test_episode_decisions_independent_of_event_sampling(self):
        # Dead-controller decisions come from the dedicated per-episode
        # stream: draining per-event samples first must not change them.
        config = FaultConfig(message_drop=0.5, controller_failure=0.5)
        a, b = FaultSchedule(config, seed=1), FaultSchedule(config, seed=1)
        a.begin_episode(0)
        b.begin_episode(0)
        self._drop_sequence(a, 500)  # only a consumes per-event samples
        ids = [f"n{i}" for i in range(30)]
        assert [a.controller_dead(i) for i in ids] == [
            b.controller_dead(i) for i in ids
        ]

    def test_corrupt_matches_shape_and_codomain(self):
        schedule = FaultSchedule(FaultConfig(message_corrupt=1.0), seed=0)
        schedule.begin_episode(0)
        garbage = schedule.corrupt(np.array([5.0, -3.0, 99.0]))
        assert garbage.shape == (3,)
        assert np.all((garbage >= 0.0) & (garbage <= 1.0))


# ----------------------------------------------------------------------
# FaultyDetectorSuite
# ----------------------------------------------------------------------
class TestFaultyDetectors:
    def _suite_on_env(self, tiny_env, config, degrade=True):
        tiny_env.reset(seed=0)
        schedule = FaultSchedule(config, seed=0)
        schedule.begin_episode(0)
        suite = FaultyDetectorSuite(tiny_env.sim, schedule, degrade=degrade)
        link_id = next(iter(tiny_env.network.links))
        return suite, schedule, link_id

    def test_dropout_imputes_last_known_value(self, tiny_env):
        suite, schedule, link = self._suite_on_env(tiny_env, FaultConfig())
        healthy = suite.observed_approaching(link)
        # Flip the config to guaranteed dropout: degraded reads must now
        # repeat the last healthy value rather than going blind.
        schedule.config = FaultConfig(detector_dropout=1.0)
        assert suite.observed_approaching(link) == healthy
        assert suite.dropout_fraction > 0.0

    def test_ablation_reads_zero_on_dropout(self, tiny_env):
        suite, schedule, link = self._suite_on_env(
            tiny_env, FaultConfig(), degrade=False
        )
        suite.observed_approaching(link)
        schedule.config = FaultConfig(detector_dropout=1.0)
        assert suite.observed_approaching(link) == 0.0

    def test_stuck_detector_repeats_first_reading(self, tiny_env):
        suite, _, link = self._suite_on_env(
            tiny_env, FaultConfig(detector_stuck=1.0)
        )
        first = suite.observed_approaching(link)
        tiny_env.sim.step(5)
        assert suite.observed_approaching(link) == first

    def test_noise_degrade_keeps_counts_valid(self, tiny_env):
        suite, _, link = self._suite_on_env(
            tiny_env, FaultConfig(detector_noise=5.0)
        )
        for _ in range(50):
            value = suite.observed_approaching(link)
            assert value >= 0.0
            assert value == round(value)

    def test_env_observations_stay_finite_under_faults(self, tiny_grid):
        env = make_env(
            tiny_grid, horizon_ticks=80, faults=ALL_FAULTS, fault_degrade=True
        )
        observations = env.reset(seed=0)
        assert isinstance(env.detectors, FaultyDetectorSuite)
        agent = FixedTimeSystem(env)
        agent.begin_episode(env, training=False)
        done = False
        while not done:
            result = env.step(agent.act(observations, env, training=False))
            observations = result.observations
            for obs in observations.values():
                assert np.all(np.isfinite(obs))
            done = result.done


# ----------------------------------------------------------------------
# Message faults + graceful degradation
# ----------------------------------------------------------------------
class TestMessageFaults:
    def _channel(self, **rates) -> FaultyMessageChannel:
        schedule = FaultSchedule(FaultConfig(**rates), seed=0)
        schedule.begin_episode(0)
        return FaultyMessageChannel(schedule, ["a", "b"], message_dim=1)

    def test_drop_returns_none(self):
        channel = self._channel(message_drop=1.0)
        assert channel.deliver("a", np.array([0.7])) is None

    def test_corrupt_replaces_payload(self):
        channel = self._channel(message_corrupt=1.0)
        delivered = channel.deliver("a", np.array([5.0]))
        assert delivered is not None
        assert 0.0 <= delivered[0] <= 1.0  # channel garbage, not the payload

    def test_delay_repeats_previous_delivery(self):
        channel = self._channel(message_delay=1.0)
        delivered = channel.deliver("a", np.array([0.9]))
        # Nothing delivered yet, so the one-step delay yields the initial
        # zero message regardless of the payload.
        assert np.array_equal(delivered, np.zeros(1))

    def test_reader_passthrough_on_success(self):
        reader = ResilientMessageReader(["a"], 1)
        out = reader.receive("a", np.array([0.8]), own_message=np.array([0.1]))
        assert out[0] == pytest.approx(0.8)
        assert reader.staleness("a") == 0

    def test_reader_decays_stale_message_then_self_pairs(self):
        reader = ResilientMessageReader(["a"], 1, decay=0.5, max_staleness=2)
        own = np.array([0.3])
        reader.receive("a", np.array([0.8]), own)
        assert reader.receive("a", None, own)[0] == pytest.approx(0.4)
        assert reader.receive("a", None, own)[0] == pytest.approx(0.2)
        # Past max_staleness: fall back to the agent's own message.
        assert reader.receive("a", None, own)[0] == pytest.approx(0.3)
        assert reader.staleness("a") == 3

    def test_reader_recovers_after_loss(self):
        reader = ResilientMessageReader(["a"], 1, max_staleness=1)
        own = np.array([0.0])
        reader.receive("a", None, own)
        out = reader.receive("a", np.array([0.6]), own)
        assert out[0] == pytest.approx(0.6)
        assert reader.staleness("a") == 0


# ----------------------------------------------------------------------
# Controller failure + fallback
# ----------------------------------------------------------------------
class TestControllerFallback:
    def test_unknown_fallback_rejected(self, tiny_env):
        inner = FixedTimeSystem(tiny_env)
        with pytest.raises(FaultInjectionError):
            ControllerFaultWrapper(
                inner, FaultConfig(controller_failure=1.0), fallback="coinflip"
            )

    @pytest.mark.parametrize("fallback", ["fixed_time", "max_pressure"])
    def test_dead_controllers_run_fallback(self, tiny_env, fallback):
        inner = FixedTimeSystem(tiny_env)
        wrapper = ControllerFaultWrapper(
            inner, FaultConfig(controller_failure=1.0), fallback=fallback
        )
        observations = tiny_env.reset(seed=0)
        wrapper.begin_episode(tiny_env, training=False)
        actions = wrapper.act(observations, tiny_env, training=False)
        assert set(wrapper.dead_controllers()) == set(tiny_env.agent_ids)
        for node_id, action in actions.items():
            assert 0 <= action < tiny_env.action_spaces[node_id].n

    def test_no_failures_is_transparent(self, tiny_env):
        inner = FixedTimeSystem(tiny_env)
        wrapper = ControllerFaultWrapper(inner, FaultConfig(controller_failure=0.0))
        observations = tiny_env.reset(seed=0)
        wrapper.begin_episode(tiny_env, training=False)
        expected = inner.act(observations, tiny_env, training=False)
        assert wrapper.act(observations, tiny_env, training=False) == expected
        assert wrapper.dead_controllers() == []

    def test_full_episode_with_dead_controllers(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=80, drain=False)
        wrapper = ControllerFaultWrapper(
            FixedTimeSystem(env), FaultConfig(controller_failure=0.5), seed=3
        )
        avg_wait, _, _ = runner.run_episode(wrapper, env, training=False, seed=0)
        assert np.isfinite(avg_wait)


# ----------------------------------------------------------------------
# Satellite: atomic, validated serialization
# ----------------------------------------------------------------------
class TestCheckpointSerialization:
    def test_atomic_save_leaves_no_temp_files(self, tmp_path, rng):
        module = Linear(3, 2, rng)
        save_state(module, tmp_path / "weights.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["weights.npz"]

    def test_roundtrip(self, tmp_path, rng):
        module = Linear(3, 2, rng)
        save_state(module, tmp_path / "weights.npz")
        other = Linear(3, 2, rng)
        load_state(other, tmp_path / "weights.npz")
        for key, value in module.state_dict().items():
            assert np.array_equal(other.state_dict()[key], value)

    def test_missing_file_raises_checkpoint_error(self, tmp_path, rng):
        with pytest.raises(CheckpointError):
            load_state(Linear(3, 2, rng), tmp_path / "nope.npz")

    def test_truncated_archive_raises_checkpoint_error(self, tmp_path, rng):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"PK\x03\x04 not really a zip")
        with pytest.raises(CheckpointError):
            read_archive(path)

    def test_shape_mismatch_raises_checkpoint_error(self, tmp_path, rng):
        save_state(Linear(3, 2, rng), tmp_path / "weights.npz")
        with pytest.raises(CheckpointError):
            load_state(Linear(5, 2, rng), tmp_path / "weights.npz")

    def test_savez_appends_npz_suffix(self, tmp_path):
        atomic_savez(tmp_path / "plain", {"x": np.arange(3)})
        assert (tmp_path / "plain.npz").exists()

    def test_agent_load_mismatch_raises_checkpoint_error(self, tmp_path, tiny_env):
        agent = PairUpLightSystem(tiny_env, seed=0)
        agent.save(tmp_path / "agent.npz")
        other = PairUpLightSystem(
            tiny_env, PairUpLightConfig(hidden_size=agent.config.hidden_size * 2),
            seed=0,
        )
        with pytest.raises(CheckpointError):
            other.load(tmp_path / "agent.npz")

    def test_training_checkpoint_roundtrip(self, tmp_path, tiny_env):
        agent = PairUpLightSystem(tiny_env, seed=0)
        save_training_checkpoint(tmp_path / "ckpt", agent, {"next_episode": 4})
        meta = load_training_checkpoint(tmp_path / "ckpt", agent)
        assert meta["next_episode"] == 4
        assert meta["agent_name"] == agent.name

    def test_non_checkpoint_archive_rejected(self, tmp_path, tiny_env):
        atomic_savez(tmp_path / "stray.npz", {"x": np.arange(3)})
        agent = PairUpLightSystem(tiny_env, seed=0)
        with pytest.raises(CheckpointError):
            load_training_checkpoint(tmp_path / "stray.npz", agent)


# ----------------------------------------------------------------------
# Satellite: evaluate() NaN handling
# ----------------------------------------------------------------------
class _IdleAgent(AgentSystem):
    name = "Idle"

    def act(self, observations, env, training):
        return {}


class TestEvaluateNaNHandling:
    def _patch_episodes(self, monkeypatch, infos):
        episodes = iter(infos)
        monkeypatch.setattr(
            runner, "run_episode", lambda *a, **k: (1.0, 0.0, next(episodes))
        )

    def test_nan_episode_excluded_from_mean(self, monkeypatch):
        self._patch_episodes(
            monkeypatch,
            [
                {"average_travel_time": 100.0, "finished_vehicles": 5,
                 "total_created": 5},
                {},  # no vehicle finished: no travel-time sample
                {"average_travel_time": 200.0, "finished_vehicles": 5,
                 "total_created": 5},
            ],
        )
        result = runner.evaluate(_IdleAgent(), None, episodes=3)
        assert result.average_travel_time == pytest.approx(150.0)
        assert result.invalid_episodes == 1

    def test_all_invalid_reports_nan_not_crash(self, monkeypatch):
        self._patch_episodes(monkeypatch, [{}, {}])
        result = runner.evaluate(_IdleAgent(), None, episodes=2)
        assert np.isnan(result.average_travel_time)
        assert result.invalid_episodes == 2


# ----------------------------------------------------------------------
# Resilient training: containment, NaN guard, kill-and-resume
# ----------------------------------------------------------------------
class _FlakyAgent(FixedTimeSystem):
    """Fixed-time controller whose simulation 'blows up' on chosen episodes."""

    def __init__(self, env, explode_on: set[int]) -> None:
        super().__init__(env)
        self.explode_on = explode_on
        self._episode = -1

    def begin_episode(self, env, training):
        self._episode += 1
        if self._episode in self.explode_on:
            raise SimulationError(f"injected blow-up in episode {self._episode}")
        super().begin_episode(env, training)


class _PoisonAgent(AgentSystem):
    """Agent whose update poisons its weights with NaN on chosen episodes."""

    name = "Poison"

    def __init__(self, rng, poison_on: set[int]) -> None:
        self.net = Linear(2, 2, rng)
        self.poison_on = poison_on
        self.updates = 0

    def _checkpoint_modules(self):
        return {"net": self.net}

    def act(self, observations, env, training):
        return {node_id: 0 for node_id in env.agent_ids}

    def end_episode(self, env, training):
        self.updates += 1
        if self.updates - 1 in self.poison_on:
            self.net.weight.data[:] = np.nan
        return {}


class TestResilientTraining:
    def test_simulation_error_contained(self, tiny_env):
        agent = _FlakyAgent(tiny_env, explode_on={1})
        history = train(agent, tiny_env, episodes=3, seed=0)
        assert history.aborted_episodes == [1]
        assert [log.episode for log in history.episodes] == [0, 2]

    def test_max_episode_failures_propagates(self, tiny_env):
        agent = _FlakyAgent(tiny_env, explode_on={0, 1})
        with pytest.raises(SimulationError):
            train(agent, tiny_env, episodes=3, seed=0, max_episode_failures=1)

    def test_nan_guard_rolls_back_poisoned_update(self, tiny_env, rng):
        agent = _PoisonAgent(rng, poison_on={1})
        history = train(agent, tiny_env, episodes=3, seed=0)
        assert history.rolled_back_episodes == [1]
        assert [log.episode for log in history.episodes] == [0, 2]
        assert np.all(np.isfinite(agent.net.weight.data))

    def test_nan_guard_disabled_keeps_poison(self, tiny_env, rng):
        agent = _PoisonAgent(rng, poison_on={1})
        history = train(agent, tiny_env, episodes=2, seed=0, nan_guard=False)
        assert history.rolled_back_episodes == []
        assert not np.all(np.isfinite(agent.net.weight.data))


@pytest.mark.faults
class TestKillAndResume:
    """Train with all fault types live, kill mid-run, resume to completion."""

    EPISODES = 3

    def _env(self, tiny_grid):
        return make_env(
            tiny_grid,
            peak_rate=300.0,
            t_peak=60.0,
            horizon_ticks=120,
            faults=ALL_FAULTS,
            fault_degrade=True,
        )

    def test_resume_reproduces_uninterrupted_run(self, tiny_grid, tmp_path):
        env = self._env(tiny_grid)
        agent = PairUpLightSystem(env, seed=0)
        full = train(agent, env, episodes=self.EPISODES, seed=0)

        # Interrupted run: stop after 2 episodes ("crash"), then resume a
        # fresh agent from the checkpoint and finish.
        env1 = self._env(tiny_grid)
        first = PairUpLightSystem(env1, seed=0)
        train(first, env1, episodes=2, seed=0,
              checkpoint_dir=str(tmp_path), checkpoint_every=1)
        assert (tmp_path / "checkpoint.npz").exists()

        env2 = self._env(tiny_grid)
        resumed_agent = PairUpLightSystem(env2, seed=0)
        resumed = train(resumed_agent, env2, episodes=self.EPISODES, seed=0,
                        resume_from=str(tmp_path))

        assert len(resumed.episodes) == self.EPISODES
        np.testing.assert_allclose(resumed.wait_curve, full.wait_curve)
        np.testing.assert_allclose(resumed.reward_curve, full.reward_curve)
        for key, value in agent.state_dict().items():
            np.testing.assert_allclose(resumed_agent.state_dict()[key], value)

    def test_checkpoint_loadable_after_every_episode(self, tiny_grid, tmp_path):
        env = self._env(tiny_grid)
        agent = PairUpLightSystem(env, seed=0)
        for episode in range(1, 3):
            train(agent, env, episodes=episode, seed=0,
                  checkpoint_dir=str(tmp_path), checkpoint_every=1,
                  resume_from=str(tmp_path) if episode > 1 else None)
            probe = PairUpLightSystem(self._env(tiny_grid), seed=0)
            meta = load_training_checkpoint(str(tmp_path), probe)
            assert meta["next_episode"] == episode


# ----------------------------------------------------------------------
# Degradation sweep acceptance: graceful degradation beats the ablation
# ----------------------------------------------------------------------
@pytest.mark.faults
class TestDegradationAcceptance:
    SCALE = ExperimentScale(
        rows=2, cols=2, peak_rate=300.0, t_peak=80.0, light_duration=160.0,
        horizon_ticks=200, max_ticks=1600, train_episodes=10,
    )

    def test_degraded_outperforms_no_fallback_ablation(self):
        curves = run_degradation_comparison(
            self.SCALE,
            fault_rates=(0.2,),
            kinds=("message", "detector"),
            seed=2,
            include_baselines=False,
        )
        by_name = {curve.agent_name: curve for curve in curves}
        degraded = by_name["PairUpLight"].points[0].result
        ablation = by_name["PairUpLight-NoFallback"].points[0].result

        # At 20% message+detector faults the degraded system still
        # completes episodes with well-formed metrics...
        assert np.isfinite(degraded.average_travel_time)
        assert degraded.invalid_episodes == 0
        assert degraded.completion_rate >= 0.5
        # ...and beats the blind-sensor / zero-message ablation.
        assert degraded.average_travel_time < ablation.average_travel_time

    def test_table_formatting(self):
        curves = run_degradation_comparison(
            self.SCALE.with_episodes(0),
            fault_rates=(0.0, 0.2),
            kinds=("message",),
            seed=0,
            include_baselines=False,
        )
        table = formatted_degradation_table(curves)
        assert "PairUpLight" in table and "PairUpLight-NoFallback" in table
        assert "p=0.20" in table and "worst/healthy" in table


@pytest.mark.faults
class TestRobustnessCLI:
    def test_robustness_subcommand_end_to_end(self, capsys):
        from repro.cli import main

        code = main([
            "robustness", "--rows", "2", "--cols", "2",
            "--peak-rate", "300", "--t-peak", "60", "--horizon", "120",
            "--episodes", "2", "--rates", "0.0", "0.2",
            "--kinds", "message", "--no-baselines", "--seed", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Degradation sweep" in out
        assert "PairUpLight-NoFallback" in out

    def test_train_checkpoint_resume_flags(self, tmp_path, capsys):
        from repro.cli import main

        args = [
            "train", "--model", "Fixedtime", "--rows", "2", "--cols", "2",
            "--peak-rate", "300", "--t-peak", "60", "--horizon", "100",
            "--checkpoint-dir", str(tmp_path / "run"),
        ]
        assert main(args + ["--episodes", "1"]) == 0
        assert os.path.exists(tmp_path / "run" / "checkpoint.npz")
        code = main(
            args + ["--episodes", "2", "--resume-from", str(tmp_path / "run")]
        )
        assert code == 0
        assert "trained 2 episodes" in capsys.readouterr().out

    def test_out_of_range_rate_reports_error(self, capsys):
        from repro.cli import main

        code = main([
            "robustness", "--rows", "2", "--cols", "2", "--horizon", "100",
            "--episodes", "0", "--rates", "-0.5", "--no-baselines",
        ])
        assert code == 2
        assert "fault rates must lie in [0, 1]" in capsys.readouterr().err

    def test_bad_resume_path_reports_error(self, capsys, tmp_path):
        from repro.cli import main

        code = main([
            "train", "--model", "Fixedtime", "--rows", "2", "--cols", "2",
            "--horizon", "100", "--episodes", "1",
            "--resume-from", str(tmp_path / "missing"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err
