"""End-to-end integration tests: does the full stack actually learn?

These are the repository's "does it reproduce" smoke tests: slow-ish
(seconds, not minutes) runs asserting the qualitative shapes the paper
reports — adaptive agents beat a fixed-time baseline after brief
training on a small grid, and the full heterogeneous pipeline runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.fixed_time import FixedTimeSystem
from repro.agents.pairuplight import PairUpLightConfig, PairUpLightSystem
from repro.agents.single_agent import SingleAgentSystem
from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
from repro.rl.ppo import PPOConfig
from repro.rl.runner import evaluate, train
from repro.scenarios.monaco import MonacoSpec, MonacoScenario

from helpers import make_env


@pytest.fixture(scope="module")
def trained_pairuplight(tiny_grid_module):
    """Train PairUpLight briefly on a 2x2 grid (shared across tests)."""
    env = make_env(tiny_grid_module, peak_rate=700, t_peak=100, horizon_ticks=300)
    agent = PairUpLightSystem(
        env,
        PairUpLightConfig(ppo=PPOConfig(epochs=4, minibatch_agents=4)),
        seed=0,
    )
    history = train(agent, env, episodes=50, seed=0)
    return agent, history, env


@pytest.fixture(scope="module")
def tiny_grid_module():
    from repro.scenarios.grid import build_grid

    return build_grid(2, 2)


class TestLearningProgress:
    def test_wait_time_improves_with_training(self, trained_pairuplight):
        _, history, _ = trained_pairuplight
        first = history.wait_curve[:5].mean()
        last = history.wait_curve[-5:].mean()
        assert last < first  # the Fig. 7 declining-curve shape

    def test_training_stats_stay_finite(self, trained_pairuplight):
        _, history, _ = trained_pairuplight
        for log in history.episodes:
            for value in log.update_stats.values():
                assert np.isfinite(value)

    def test_trained_beats_fixed_time(self, trained_pairuplight, tiny_grid_module):
        agent, _, _ = trained_pairuplight
        eval_env = make_env(
            tiny_grid_module,
            peak_rate=700,
            t_peak=100,
            horizon_ticks=300,
            drain=True,
        )
        rl_result = evaluate(agent, eval_env, episodes=2, seed=777)
        ft_result = evaluate(FixedTimeSystem(eval_env), eval_env, episodes=2, seed=777)
        assert rl_result.average_travel_time < ft_result.average_travel_time

    def test_policy_checkpoint_roundtrip(self, trained_pairuplight, tmp_path):
        from repro.nn.serialization import load_state, save_state

        agent, _, env = trained_pairuplight
        path = tmp_path / "actor.npz"
        save_state(agent.shared_actor, path)
        clone = PairUpLightSystem(env, seed=123)
        load_state(clone.shared_actor, path)
        np.testing.assert_allclose(
            clone.shared_actor.policy_head.weight.data,
            agent.shared_actor.policy_head.weight.data,
        )


class TestSingleAgentLearning:
    def test_single_agent_improves(self, tiny_grid_module):
        env = make_env(tiny_grid_module, peak_rate=700, t_peak=100, horizon_ticks=300)
        agent = SingleAgentSystem(env, seed=0)
        history = train(agent, env, episodes=30, seed=0)
        curve = history.wait_curve
        # Learning happened: the best stretch clearly undercuts the start.
        assert curve[5:].min() < 0.9 * curve[:3].mean()
        assert curve[-10:].mean() < curve[:3].mean()


class TestHeterogeneousPipeline:
    def test_monaco_training_runs(self):
        scenario = MonacoScenario(MonacoSpec(rows=2, cols=3, seed=7, t_peak=60.0))
        env = TrafficSignalEnv(
            scenario.network,
            scenario.phase_plans,
            scenario.flows,
            EnvConfig(horizon_ticks=120, max_ticks=1200),
        )
        agent = PairUpLightSystem(
            env,
            PairUpLightConfig(
                parameter_sharing=False,
                ppo=PPOConfig(epochs=1, minibatch_agents=6),
            ),
            seed=0,
        )
        history = train(agent, env, episodes=2, seed=0)
        assert len(history.episodes) == 2
        assert all(np.isfinite(log.avg_wait) for log in history.episodes)


class TestDeterminism:
    def test_same_seed_same_training_curve(self, tiny_grid_module):
        curves = []
        for _ in range(2):
            env = make_env(tiny_grid_module, horizon_ticks=100)
            agent = PairUpLightSystem(env, seed=5)
            history = train(agent, env, episodes=3, seed=5)
            curves.append(history.wait_curve)
        np.testing.assert_allclose(curves[0], curves[1])
