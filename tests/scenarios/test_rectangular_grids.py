"""Non-square grids and small-grid edge cases for scenarios."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.scenarios.flows import PATTERN_GROUPS, corridor_groups, flow_pattern
from repro.scenarios.grid import build_grid, parse_grid_size
from repro.sim.demand import DemandGenerator
from repro.sim.engine import Simulation
from repro.sim.routing import Router


class TestRectangularGrids:
    @pytest.mark.parametrize("rows,cols", [(2, 4), (4, 2), (3, 5), (1, 3)])
    def test_build_and_validate(self, rows, cols):
        grid = build_grid(rows, cols)
        assert len(grid.network.signalized_nodes()) == rows * cols
        assert grid.network.validated

    @pytest.mark.parametrize("rows,cols", [(2, 4), (4, 2)])
    def test_all_patterns_feasible(self, rows, cols):
        grid = build_grid(rows, cols)
        router = Router(grid.network)
        for pattern in list(PATTERN_GROUPS) + [5]:
            flows = flow_pattern(grid, pattern, t_peak=100)
            DemandGenerator(flows, router, seed=0)

    def test_corridor_groups_respect_bounds(self):
        grid = build_grid(2, 5)
        groups = corridor_groups(grid)
        for corridors in groups.values():
            for corridor in corridors:
                if corridor[0] == "col":
                    assert 0 <= corridor[1] < 5
                elif corridor[0] == "row":
                    assert 0 <= corridor[1] < 2
                else:
                    _, _, col, row = corridor
                    assert 0 <= col < 5 and 0 <= row < 2

    def test_single_row_grid_simulates(self):
        grid = build_grid(1, 4)
        flows = flow_pattern(grid, 5, t_peak=50, light_duration=100)
        demand = DemandGenerator(flows, Router(grid.network), seed=0)
        sim = Simulation(grid.network, demand, grid.phase_plans)
        sim.step(200)
        total = (
            sim.vehicles_in_network()
            + sim.pending_insertions()
            + len(sim.finished_vehicles)
        )
        assert total == sim.total_created


class TestSmallGridPhases:
    def test_one_by_one_has_reduced_plan(self):
        grid = build_grid(1, 1)
        plan = grid.phase_plans["I0_0"]
        # All approaches are terminals; through+right movements exist both
        # axes, lefts exist too: still a valid plan covering everything.
        covered = set()
        for phase in plan.phases:
            covered |= phase.green_movements
        expected = {m.key for m in grid.network.movements_at("I0_0")}
        assert covered == expected

    def test_edge_intersections_fewer_neighbours(self):
        grid = build_grid(2, 3)
        net = grid.network
        assert len(net.neighbours("I0_0")) == 2
        assert len(net.neighbours("I0_1")) == 3


class TestParseGridSize:
    def test_square_shorthand(self):
        assert parse_grid_size("50") == (50, 50)

    def test_wxh_returns_rows_cols(self):
        # "WxH": width (cols) first in the string, (rows, cols) out.
        assert parse_grid_size("4x3") == (3, 4)
        assert parse_grid_size("3x4") == (4, 3)

    def test_whitespace_and_case_tolerated(self):
        assert parse_grid_size(" 10X10 ") == (10, 10)

    @pytest.mark.parametrize("bad", ["", "x", "3x", "x3", "3x3x3", "axb", "3.5x2"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(NetworkError):
            parse_grid_size(bad)

    @pytest.mark.parametrize("bad", ["0", "0x5", "5x0", "-2x3"])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(NetworkError):
            parse_grid_size(bad)
