"""Arterial corridor scenario + green-wave coordination tests."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.scenarios.arterial import ArterialSpec, build_arterial
from repro.sim.demand import DemandGenerator
from repro.sim.engine import Simulation
from repro.sim.metrics import average_travel_time
from repro.sim.routing import Router


@pytest.fixture(scope="module")
def arterial():
    return build_arterial(intersections=4, main_rate=800.0, cross_rate=120.0,
                          duration=600.0)


class TestTopology:
    def test_signalized_count(self, arterial):
        assert len(arterial.network.signalized_nodes()) == 4

    def test_validates(self, arterial):
        assert arterial.network.validated

    def test_main_road_two_lanes_cross_one(self, arterial):
        assert arterial.network.links["A0->A1"].num_lanes == 2
        assert arterial.network.links["N0->A0"].num_lanes == 1

    def test_four_phase_plans(self, arterial):
        for plan in arterial.phase_plans.values():
            assert plan.num_phases == 4

    def test_flows_cover_main_and_cross(self, arterial):
        names = {flow.name for flow in arterial.flows}
        assert "main-eb" in names and "main-wb" in names
        assert sum(1 for n in names if n.startswith("cross")) == 8

    def test_too_small_rejected(self):
        with pytest.raises(NetworkError):
            ArterialSpec(intersections=1)


class TestOffsetPrograms:
    def test_offsets_increase_eastward(self, arterial):
        programs = arterial.green_wave_programs()
        offsets = [programs[f"A{i}"].offset for i in range(4)]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0
        assert offsets[1] > 0

    def test_offset_shifts_schedule(self, arterial):
        programs = arterial.green_wave_programs()
        base = programs["A0"]
        shifted = programs["A1"]
        # A1's schedule at time t+offset matches A0's at time t.
        for t in range(0, 120, 7):
            assert shifted.phase_at(t + shifted.offset) == base.phase_at(t)

    def test_uncoordinated_all_zero_offset(self, arterial):
        programs = arterial.uncoordinated_programs()
        assert all(p.offset == 0 for p in programs.values())


class TestGreenWaveEffect:
    def _run(self, arterial, programs, ticks=1800):
        demand = DemandGenerator(
            [type(f)(f.name, f.origin_link, f.destination_link, f.profile)
             for f in arterial.flows],
            Router(arterial.network),
            seed=0,
        )
        sim = Simulation(arterial.network, demand, arterial.phase_plans)
        while sim.time < ticks and not (sim.time > 700 and sim.is_drained()):
            for node_id, program in programs.items():
                sim.set_phase(node_id, program.phase_at(sim.time))
            sim.step()
        return sim

    def test_green_wave_beats_uncoordinated(self, arterial):
        """Offsets matched to travel time reduce average travel time —
        the textbook coordination effect the paper's Fig. 1 motivates."""
        wave = self._run(arterial, arterial.green_wave_programs())
        flat = self._run(arterial, arterial.uncoordinated_programs())
        assert average_travel_time(wave) < average_travel_time(flat)

    def test_rl_env_compatible(self, arterial):
        from repro.agents.max_pressure import MaxPressureSystem
        from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
        from repro.rl.runner import run_episode

        env = TrafficSignalEnv(
            arterial.network,
            arterial.phase_plans,
            arterial.flows,
            EnvConfig(horizon_ticks=200, max_ticks=1600),
        )
        avg_wait, _, _ = run_episode(
            MaxPressureSystem(env), env, training=False, seed=0
        )
        assert avg_wait >= 0
