"""Monaco-style heterogeneous scenario tests (paper Section VI-D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios.monaco import MonacoSpec, build_monaco
from repro.sim.demand import DemandGenerator
from repro.sim.routing import Router


@pytest.fixture(scope="module")
def monaco():
    return build_monaco(seed=7)


class TestTopology:
    def test_thirty_signalized_intersections(self, monaco):
        assert len(monaco.network.signalized_nodes()) == 30

    def test_network_validates(self, monaco):
        assert monaco.network.validated

    def test_heterogeneous_lane_counts(self, monaco):
        lanes = {
            link.num_lanes
            for link in monaco.network.links.values()
            if not link.link_id.startswith("T_") and "->T_" not in link.link_id
        }
        assert lanes == {1, 2}

    def test_heterogeneous_phase_sets(self, monaco):
        sizes = {plan.num_phases for plan in monaco.phase_plans.values()}
        assert len(sizes) > 1  # irregular topology -> varying phase counts

    def test_some_streets_removed(self, monaco):
        spec = monaco.spec
        full_edges = spec.rows * (spec.cols - 1) + spec.cols * (spec.rows - 1)
        internal_links = sum(
            1
            for link in monaco.network.links.values()
            if link.from_node.startswith("M") and link.to_node.startswith("M")
        )
        assert internal_links < 2 * full_edges  # two directed per edge

    def test_deterministic_given_seed(self):
        a = build_monaco(seed=3)
        b = build_monaco(seed=3)
        assert set(a.network.links) == set(b.network.links)
        assert [f.name for f in a.flows] == [f.name for f in b.flows]

    def test_different_seeds_differ(self):
        a = build_monaco(seed=3)
        b = build_monaco(seed=4)
        assert set(a.network.links) != set(b.network.links)


class TestDemand:
    def test_peak_rate_matches_paper(self, monaco):
        assert max(f.profile.peak_rate for f in monaco.flows) == 975.0

    def test_routes_feasible(self, monaco):
        DemandGenerator(monaco.flows, Router(monaco.network), seed=0)

    def test_multiple_conflicting_flows(self, monaco):
        assert len(monaco.flows) >= 5

    def test_flows_staggered_in_time(self, monaco):
        starts = {f.profile.points[0][0] for f in monaco.flows}
        assert len(starts) > 1


class TestSimulationRuns:
    def test_fixed_phase_simulation(self, monaco):
        from repro.sim.demand import DemandGenerator
        from repro.sim.engine import Simulation

        demand = DemandGenerator(monaco.flows, Router(monaco.network), seed=0)
        sim = Simulation(monaco.network, demand, monaco.phase_plans)
        sim.step(300)
        assert sim.total_created > 0
        total = (
            sim.vehicles_in_network()
            + sim.pending_insertions()
            + len(sim.finished_vehicles)
        )
        assert total == sim.total_created
