"""Property tests: the correctness backbone of the scenario compiler.

Three families, all seeded and reproducible:

* **Compiler round-trip** — for any fuzzed valid spec, canonicalisation
  is idempotent (``scenario_to_spec(compile(canonical)) == canonical``)
  and the digest is stable across recompiles.
* **Demand invariants** — every compiled profile is non-negative
  everywhere, and deterministic emission conserves scheduled spawns: the
  total emitted by :class:`DemandGenerator` matches an independent
  replay of the accumulator over :meth:`RateProfile.rate_at` (the two
  implementations use different rate-evaluation code paths).
* **``_spread`` exactness** — the corridor picker returns exactly
  ``min(wanted, available)`` strictly increasing in-range indices for
  *every* input pair, pinned both exhaustively and via hypothesis.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DemandError
from repro.scenarios.flows import _spread
from repro.scenarios.fuzz import fuzz_specs, sample_spec
from repro.scenarios.spec import (
    compile_spec,
    scenario_digest,
    scenario_to_spec,
)

pytestmark = pytest.mark.zoo


# ----------------------------------------------------------------------
# Compiler round-trip on fuzzed specs
# ----------------------------------------------------------------------

FUZZED = fuzz_specs(seed=20260808, count=10)


@pytest.mark.parametrize("spec", FUZZED, ids=[s["name"] for s in FUZZED])
def test_round_trip_idempotent(spec):
    scenario = compile_spec(spec)
    canonical = scenario_to_spec(scenario)
    rebuilt = compile_spec(canonical)
    assert scenario_to_spec(rebuilt) == canonical
    assert scenario_digest(rebuilt) == scenario_digest(scenario)
    # The canonical form is pure JSON (digest hashes its serialisation).
    json.dumps(canonical)


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25, deadline=None)
def test_sampled_specs_compile_and_round_trip(seed):
    import random

    spec = sample_spec(random.Random(seed))
    scenario = compile_spec(spec)
    canonical = scenario_to_spec(scenario)
    assert scenario_to_spec(compile_spec(canonical)) == canonical


# ----------------------------------------------------------------------
# Demand invariants
# ----------------------------------------------------------------------

@pytest.mark.parametrize("spec", FUZZED, ids=[s["name"] for s in FUZZED])
def test_profiles_nonnegative_everywhere(spec):
    scenario = compile_spec(spec)
    for flow in scenario.flows:
        profile = flow.profile
        assert all(rate >= 0 for _, rate in profile.points), flow.name
        # Piecewise-linear between non-negative points stays non-negative;
        # probe a dense sample anyway, including off-support times.
        end = profile.end_time
        for i in range(101):
            t = -10 + (end + 20) * i / 100
            assert profile.rate_at(t) >= 0, (flow.name, t)


@pytest.mark.parametrize("spec", FUZZED[:4], ids=[s["name"] for s in FUZZED[:4]])
def test_deterministic_emission_conserves_scheduled_spawns(spec):
    """Deterministic emission == independent accumulator replay per flow.

    ``DemandGenerator.emit`` evaluates rates from precomputed segments;
    the replay below uses ``RateProfile.rate_at`` directly, so agreement
    cross-checks the two rate implementations *and* spawn conservation.
    """
    scenario = compile_spec(spec)
    horizon = scenario.horizon_ticks
    gen = scenario.demand_generator(seed=0, stochastic=False)
    emitted = sum(len(gen.emit(t)) for t in range(horizon))

    expected = 0
    for flow in scenario.fresh_flows():
        accumulator = 0.0
        for t in range(horizon):
            rate = flow.profile.rate_at(float(t))
            per_second = rate / 3600.0
            if per_second <= 0.0:
                continue
            accumulator += per_second
            count = int(accumulator)
            accumulator -= count
            expected += count
    assert emitted == expected

    # And the analytic expectation brackets the deterministic total:
    # each flow's accumulator holds < 1 vehicle at the end.
    analytic = scenario.expected_vehicles()
    assert emitted <= analytic + len(scenario.flows)
    assert emitted >= analytic - len(scenario.flows) - 1


def test_emission_is_seed_independent_when_deterministic():
    spec = FUZZED[0]
    scenario = compile_spec(spec)
    totals = []
    for seed in (0, 7, 123):
        gen = scenario.demand_generator(seed=seed, stochastic=False)
        totals.append(sum(len(gen.emit(t)) for t in range(scenario.horizon_ticks)))
    assert totals[0] == totals[1] == totals[2]


# ----------------------------------------------------------------------
# _spread: exactly count distinct indices (satellite 1)
# ----------------------------------------------------------------------

def test_spread_exhaustive():
    """Every (wanted, available) pair yields exactly min(wanted, available)
    strictly increasing indices inside ``range(available)``."""
    for available in range(1, 201):
        for wanted in range(1, 41):
            picked = _spread(wanted, available)
            count = min(wanted, available)
            assert len(picked) == count, (wanted, available)
            assert len(set(picked)) == count, (wanted, available)
            assert picked == sorted(picked), (wanted, available)
            assert all(0 <= index < available for index in picked), (
                wanted,
                available,
            )


@given(
    wanted=st.integers(min_value=1, max_value=10_000),
    available=st.integers(min_value=1, max_value=10_000),
)
@settings(max_examples=200, deadline=None)
def test_spread_property(wanted, available):
    picked = _spread(wanted, available)
    count = min(wanted, available)
    assert len(picked) == len(set(picked)) == count
    assert picked == sorted(picked)
    assert all(0 <= index < available for index in picked)


def test_spread_full_coverage_when_saturated():
    for available in range(1, 50):
        assert _spread(available, available) == list(range(available))
        assert _spread(available + 10, available) == list(range(available))


def test_spread_rejects_degenerate_inputs():
    with pytest.raises(DemandError):
        _spread(0, 5)
    with pytest.raises(DemandError):
        _spread(3, 0)
