"""Flow pattern tests (paper Section VI-A traffic design)."""

from __future__ import annotations

import pytest

from repro.errors import DemandError
from repro.scenarios.flows import (
    PATTERN_GROUPS,
    congested_pattern,
    corridor_groups,
    flow_pattern,
    light_uniform_pattern,
)
from repro.sim.demand import DemandGenerator
from repro.sim.routing import Router

from conftest import build_grid  # re-exported fixture helper


@pytest.fixture(scope="module")
def grid():
    return build_grid(6, 6)


class TestCorridorGroups:
    def test_four_groups(self, grid):
        groups = corridor_groups(grid)
        assert set(groups) == {"F1", "F2", "F3", "F4"}

    def test_each_group_has_four_corridors(self, grid):
        groups = corridor_groups(grid)
        for name, corridors in groups.items():
            assert len(corridors) == 4, name

    def test_group_axes(self, grid):
        groups = corridor_groups(grid)
        # F1/F2 are straight groups mixing both axes; F3/F4 are L-shaped.
        for name in ("F1", "F2"):
            axes = {c[0] for c in groups[name]}
            assert axes == {"col", "row"}
        for name in ("F3", "F4"):
            assert all(c[0] == "L" for c in groups[name])
            kinds = {c[1] for c in groups[name]}
            assert kinds == {"n2e", "w2s"}

    def test_straight_groups_disjoint(self, grid):
        groups = corridor_groups(grid)
        assert not (set(groups["F1"]) & set(groups["F2"]))


class TestCongestedPatterns:
    def test_sixteen_od_pairs(self, grid):
        """Two groups x 4 corridors x 2 directions = 16 OD pairs (paper)."""
        for pattern in PATTERN_GROUPS:
            flows = congested_pattern(grid, pattern)
            assert len(flows) == 16

    def test_patterns_differ(self, grid):
        routes = {}
        for pattern in PATTERN_GROUPS:
            flows = congested_pattern(grid, pattern)
            routes[pattern] = frozenset(
                (f.origin_link, f.destination_link) for f in flows
            )
        assert len(set(routes.values())) == 4

    def test_forward_and_reverse_timing(self, grid):
        flows = congested_pattern(grid, 1, peak_rate=500, t_peak=900)
        forward = [f for f in flows if f.name.endswith("fwd")]
        reverse = [f for f in flows if f.name.endswith("rev")]
        assert len(forward) == len(reverse) == 8
        for flow in forward:
            assert flow.profile.rate_at(900) == 500  # peak at t_peak
            assert flow.profile.rate_at(1800) == 0
        for flow in reverse:
            assert flow.profile.rate_at(900) == 0  # starts at t_peak
            assert flow.profile.rate_at(1800) == 500  # peaks at 2*t_peak

    def test_all_routes_feasible(self, grid):
        router = Router(grid.network)
        for pattern in PATTERN_GROUPS:
            flows = congested_pattern(grid, pattern)
            DemandGenerator(flows, router, seed=0)  # resolves all routes

    def test_expected_volume(self, grid):
        flows = congested_pattern(grid, 1, peak_rate=500, t_peak=900)
        total = sum(f.expected_vehicles() for f in flows)
        assert total == pytest.approx(16 * 125.0)  # 16 triangles of 125 veh

    def test_invalid_pattern_rejected(self, grid):
        with pytest.raises(DemandError):
            congested_pattern(grid, 7)

    def test_invalid_rate_rejected(self, grid):
        with pytest.raises(DemandError):
            congested_pattern(grid, 1, peak_rate=0)


class TestLightPattern:
    def test_rates_match_paper(self, grid):
        flows = light_uniform_pattern(grid)
        we = [f for f in flows if "-we" in f.name]
        sn = [f for f in flows if "-sn" in f.name]
        assert len(we) == 6 and len(sn) == 6
        assert all(f.profile.peak_rate == 300.0 for f in we)
        assert all(f.profile.peak_rate == 90.0 for f in sn)

    def test_constant_over_duration(self, grid):
        flows = light_uniform_pattern(grid, duration=1800)
        for flow in flows:
            assert flow.profile.rate_at(0) == flow.profile.rate_at(900)

    def test_bad_duration_rejected(self, grid):
        with pytest.raises(DemandError):
            light_uniform_pattern(grid, duration=0)


class TestDispatch:
    @pytest.mark.parametrize("pattern", [1, 2, 3, 4, 5])
    def test_flow_pattern_dispatch(self, grid, pattern):
        flows = flow_pattern(grid, pattern)
        assert flows

    def test_unknown_pattern_rejected(self, grid):
        with pytest.raises(DemandError):
            flow_pattern(grid, 6)

    def test_small_grid_supported(self):
        small = build_grid(2, 2)
        for pattern in (1, 2, 3, 4, 5):
            flows = flow_pattern(small, pattern, t_peak=100)
            DemandGenerator(flows, Router(small.network), seed=0)
