"""Demand-zoo tests: catalogue, determinism, per-entry structure."""

from __future__ import annotations

import pytest

from repro.scenarios.spec import compile_spec, scenario_digest, spec_digest
from repro.scenarios.zoo import (
    build_zoo_scenario,
    build_zoo_spec,
    zoo_catalogue,
)

pytestmark = pytest.mark.zoo

NAMES = sorted(zoo_catalogue())


def test_catalogue_contents():
    catalogue = zoo_catalogue()
    assert set(catalogue) == {
        "commuter_day",
        "incident_closure",
        "stadium_surge",
        "emergency_corridor",
        "closure_wave",
    }
    for name, description in catalogue.items():
        assert description, name


def test_unknown_name_lists_catalogue():
    from repro.errors import ScenarioSpecError

    with pytest.raises(ScenarioSpecError, match="commuter_day"):
        build_zoo_spec("no_such_entry")


@pytest.mark.parametrize("name", NAMES)
def test_every_entry_compiles(name):
    scenario = build_zoo_scenario(name, seed=0)
    assert scenario.metadata["zoo"] == name
    assert scenario.metadata["seed"] == 0
    assert scenario.flows
    assert scenario.horizon_ticks > 0


@pytest.mark.parametrize("name", NAMES)
def test_same_seed_same_spec(name):
    """Zoo generation is a pure function of (name, seed, rows, cols) —
    independent of process hash randomisation and call order."""
    first = build_zoo_spec(name, seed=11)
    second = build_zoo_spec(name, seed=11)
    assert first == second
    assert spec_digest(first) == spec_digest(second)


@pytest.mark.parametrize("name", NAMES)
def test_different_seeds_differ(name):
    digests = {scenario_digest(build_zoo_scenario(name, seed=s)) for s in range(3)}
    assert len(digests) == 3


def test_commuter_day_is_multi_peak():
    scenario = build_zoo_scenario("commuter_day", seed=0)
    # Each corridor carries a day with two rush hours: paired -am/-pm
    # flows whose peaks are well separated in time.
    names = {flow.name for flow in scenario.flows}
    am = {n for n in names if n.endswith("-am")}
    assert am and {n[:-3] + "-pm" for n in am} <= names
    peak_time = {
        flow.name: max(flow.profile.points, key=lambda p: p[1])[0]
        for flow in scenario.flows
    }
    for name in am:
        assert peak_time[name[:-3] + "-pm"] - peak_time[name] >= 1000
    assert scenario.incidents is None


def test_incident_closure_has_incidents():
    scenario = build_zoo_scenario("incident_closure", seed=0)
    assert scenario.incidents is not None
    assert len(scenario.incidents) >= 2
    # At least one full closure.
    assert any(inc.factor == 0.0 for inc in scenario.incidents.incidents)
    assert scenario.horizon_ticks >= scenario.incidents.end_time


def test_stadium_surge_converges():
    spec = build_zoo_spec("stadium_surge", seed=0)
    surge = [d for d in spec["demand"] if d.get("name", "").startswith("event-")]
    assert len(surge) == 4
    destinations = {d["destination"] for d in surge}
    assert len(destinations) <= 2  # all converge on the event corner


def test_emergency_corridor_marks_priority():
    scenario = build_zoo_scenario("emergency_corridor", seed=0)
    priority = scenario.metadata["priority_flows"]
    names = {flow.name for flow in scenario.flows}
    assert priority and set(priority) <= names


def test_closure_wave_staggers():
    scenario = build_zoo_scenario("closure_wave", seed=0)
    starts = sorted(inc.start for inc in scenario.incidents.incidents)
    assert len(starts) >= 3
    assert starts == sorted(set(starts))  # strictly staggered


def test_custom_grid_size():
    scenario = build_zoo_scenario("commuter_day", seed=0, rows=3, cols=5)
    assert scenario.grid is not None
    assert scenario.grid.spec.rows == 3
    assert scenario.grid.spec.cols == 5


def test_zoo_specs_round_trip():
    from repro.scenarios.spec import scenario_to_spec

    for name in NAMES:
        scenario = build_zoo_scenario(name, seed=1)
        canonical = scenario_to_spec(scenario)
        assert scenario_to_spec(compile_spec(canonical)) == canonical
