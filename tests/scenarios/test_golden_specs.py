"""Golden-spec regression tests: canonical zoo scenarios are pinned.

The fixtures under ``tests/scenarios/golden/`` hold the canonical
(compiled, round-tripped) spec JSON of a few zoo entries plus a digest
manifest.  A drift here means every previously-exported spec file in
the wild now compiles differently — regenerate deliberately with
``scripts/regen_golden_specs.py`` and review the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenarios.spec import (
    compile_spec,
    load_spec,
    scenario_digest,
    scenario_to_spec,
)
from repro.scenarios.zoo import build_zoo_scenario

pytestmark = pytest.mark.zoo

GOLDEN_DIR = Path(__file__).parent / "golden"
#: (name, seed) pairs pinned as golden; keep in sync with the regen script.
GOLDEN_ENTRIES = (
    ("commuter_day", 0),
    ("incident_closure", 0),
    ("stadium_surge", 2),
)
MANIFEST = json.loads((GOLDEN_DIR / "digests.json").read_text())


def test_manifest_matches_fixture_files():
    files = {path.name for path in GOLDEN_DIR.glob("*.json")} - {"digests.json"}
    assert files == set(MANIFEST)
    assert files == {f"{name}-s{seed}.json" for name, seed in GOLDEN_ENTRIES}


@pytest.mark.parametrize(("name", "seed"), GOLDEN_ENTRIES)
def test_zoo_builder_reproduces_golden(name, seed):
    """Today's builder output is byte-for-byte the pinned canonical spec."""
    scenario = build_zoo_scenario(name, seed=seed)
    fixture = json.loads((GOLDEN_DIR / f"{name}-s{seed}.json").read_text())
    assert scenario_to_spec(scenario) == fixture
    assert scenario_digest(scenario) == MANIFEST[f"{name}-s{seed}.json"]


@pytest.mark.parametrize(("name", "seed"), GOLDEN_ENTRIES)
def test_golden_fixture_compiles_and_round_trips(name, seed):
    """The pinned file itself stays a valid, stable spec — the
    compatibility contract for specs exported by older versions."""
    spec = load_spec(GOLDEN_DIR / f"{name}-s{seed}.json")
    scenario = compile_spec(spec)
    assert scenario_digest(scenario) == MANIFEST[f"{name}-s{seed}.json"]
    assert scenario_to_spec(scenario) == spec
