"""Cross-engine agreement on a compiled zoo scenario (satellite check).

One canonical zoo workload is run on every engine the repo ships:

* object engine (fast and slow paths) and a single-replica SoA engine —
  **bit-exact**, full public-snapshot agreement, incidents included;
* ``ShardedSimulation`` with ``num_shards=1`` — **bit-exact vehicle
  trajectories** against the monolithic object engine;
* ``num_shards=2`` (serial driver) — *not* bit-exact by design: a
  vehicle crossing a shard cut spends one tick on the wire and remote
  occupancy is one tick stale (DESIGN.md section 8).  The contract held
  here is the documented one: vehicle conservation, identical total
  demand, and a self-consistent summary.

The sharded legs use ``commuter_day`` (no incidents: the sharded driver
predates the incident hooks); the object/SoA leg uses
``incident_closure`` so closures are exercised cross-engine.
"""

from __future__ import annotations

import pytest

from helpers import check_engine_invariants, public_engine_snapshot
from repro.scenarios.zoo import build_zoo_scenario
from repro.sim.engine import Simulation
from repro.sim.sharded import ShardedSimulation
from repro.sim.signal import FixedTimeProgram
from repro.sim.soa import SoAEngine

pytestmark = pytest.mark.zoo

TICKS = 400


def _programs(scenario, green=15):
    return {
        node_id: FixedTimeProgram([(i, green) for i in range(plan.num_phases)])
        for node_id, plan in scenario.phase_plans.items()
    }


def _trajectories(sim):
    return sorted(
        (
            vehicle.vehicle_id,
            vehicle.created,
            vehicle.inserted,
            vehicle.finished,
            vehicle.state.value,
            vehicle.wait_total,
            vehicle.links_travelled,
            tuple(vehicle.route),
            vehicle.route_index,
        )
        for vehicle in sim.vehicles.values()
    )


def _object_run(scenario, ticks=TICKS, fast_path=True):
    sim = scenario.build_simulation(seed=0, stochastic=False, fast_path=fast_path)
    sim.run_fixed_time(_programs(scenario), ticks)
    return sim


def test_object_fast_slow_soa_agree_with_incidents():
    scenario = build_zoo_scenario("incident_closure", seed=0)
    engines = []
    for which in ("fast", "slow", "soa"):
        demand = scenario.demand_generator(seed=0, stochastic=False)
        if which == "soa":
            sim = SoAEngine(scenario.network, [demand], scenario.phase_plans).view(0)
        else:
            sim = Simulation(
                scenario.network, demand, scenario.phase_plans,
                fast_path=which == "fast",
            )
        sim.incidents = scenario.incidents
        engines.append(sim)

    programs = _programs(scenario)
    ticks = min(scenario.horizon_ticks, 700)
    incident_window_seen = False
    for t in range(ticks):
        for sim in engines:
            for node_id, program in programs.items():
                sim.set_phase(node_id, program.phase_at(t))
            sim.step()
        if t % 50 == 0 or t == ticks - 1:
            for sim in engines:
                check_engine_invariants(sim, teleport=None)
            snapshots = [public_engine_snapshot(sim) for sim in engines]
            assert snapshots[0] == snapshots[1] == snapshots[2], f"tick {t}"
        factors = [
            {k: v for k, v in sim.capacity_factors.items() if v != 1.0}
            for sim in engines
        ]
        assert factors[0] == factors[1] == factors[2]
        incident_window_seen = incident_window_seen or bool(factors[0])
    assert incident_window_seen  # the closure actually hit the run
    assert engines[0].total_created > 0


def test_sharded_single_shard_bit_exact():
    scenario = build_zoo_scenario("commuter_day", seed=0)
    mono = _object_run(scenario)
    with ShardedSimulation(
        scenario.network,
        scenario.phase_plans,
        scenario.fresh_flows(),
        1,
        seed=0,
        stochastic=False,
        workers=False,
        programs=_programs(scenario),
    ) as sharded:
        sharded.run(TICKS)
        sharded.check_conservation()
        assert sharded.trajectories() == _trajectories(mono)
        summary = sharded.summary()
    assert summary["created"] == mono.total_created
    assert summary["created"] > 0
    assert summary["handoffs"] == 0


def test_sharded_two_shards_conserves():
    """K=2 follows the documented protocol, not bit-exactness: per-tick
    cut handoffs make trajectories legitimately differ from the
    monolithic run, but demand, conservation and the summary must hold."""
    scenario = build_zoo_scenario("commuter_day", seed=0)
    mono = _object_run(scenario)
    with ShardedSimulation(
        scenario.network,
        scenario.phase_plans,
        scenario.fresh_flows(),
        2,
        seed=0,
        stochastic=False,
        workers=False,
        programs=_programs(scenario),
    ) as sharded:
        sharded.run(TICKS)
        sharded.check_conservation()
        summary = sharded.summary()
        trajectories = sharded.trajectories()
    # Deterministic emission is split per shard but sums to the same
    # schedule the monolithic engine saw.
    assert summary["created"] == mono.total_created
    assert summary["created"] == len(trajectories)
    assert summary["finished"] > 0
