"""Seeded fuzz harness: engine invariants on *compiled* scenario specs.

Complements :mod:`tests.sim.test_engine_fuzz` (which fuzzes grid scale /
phase churn): here the fuzzer samples whole scenario *specs* — network
shape, demand mixes over every profile kind, and mid-episode incidents —
compiles each, and drives the object engine (both ``fast_path``
settings) and a single-replica SoA engine through the identical
scenario under a fixed-time signal schedule.  Checked periodically:

* spec round-trip: the compiled scenario canonicalises idempotently,
* vehicle conservation: ``created == in_network + pending + finished``,
* occupancy bounds against *static* storage (an incident that starts on
  an occupied link reduces effective storage below the current load;
  the surplus drains out — by design it never exceeds the physical
  storage, which is what we assert),
* full public-API agreement across all three engines, incidents
  included (closures apply and clear on the same tick everywhere).

Environment knobs (the CI fuzz stage widens them; defaults keep tier-1
fast):

* ``REPRO_FUZZ_CASES``  — number of distinct specs (default 8),
* ``REPRO_FUZZ_SEED``   — fuzzer seed (default 20260808),
* ``REPRO_FUZZ_CASE_BUDGET_S`` — per-case wall-clock budget; a case
  exceeding it fails with a timing message (default 30 s).
"""

from __future__ import annotations

import os
import time

import pytest

from helpers import check_engine_invariants, public_engine_snapshot
from repro.scenarios.fuzz import fuzz_specs
from repro.scenarios.spec import compile_spec, scenario_to_spec
from repro.sim.engine import Simulation
from repro.sim.signal import FixedTimeProgram
from repro.sim.soa import SoAEngine

pytestmark = pytest.mark.zoo

FUZZ_CASES = int(os.environ.get("REPRO_FUZZ_CASES", "8"))
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260808"))
CASE_BUDGET_S = float(os.environ.get("REPRO_FUZZ_CASE_BUDGET_S", "30"))

SPECS = fuzz_specs(seed=FUZZ_SEED, count=FUZZ_CASES)


def _engines(scenario):
    """Object fast, object slow, and SoA view over the same scenario."""
    engines = []
    for which in ("fast", "slow", "soa"):
        # Each engine consumes its own demand generator (stateful) but
        # shares the stateless IncidentSchedule.
        demand = scenario.demand_generator(seed=17, stochastic=False)
        if which == "soa":
            engine = SoAEngine(
                scenario.network, [demand], scenario.phase_plans
            ).view(0)
        else:
            engine = Simulation(
                scenario.network,
                demand,
                scenario.phase_plans,
                fast_path=which == "fast",
            )
        if scenario.incidents:
            engine.incidents = scenario.incidents
        engines.append(engine)
    return engines


def test_fuzzer_yields_requested_distinct_specs():
    assert len(SPECS) == FUZZ_CASES
    names = {spec["name"] for spec in SPECS}
    assert len(names) == FUZZ_CASES


@pytest.mark.parametrize("spec", SPECS, ids=[s["name"] for s in SPECS])
def test_fuzzed_scenario_invariants_across_engines(spec):
    started = time.monotonic()
    scenario = compile_spec(spec)

    # Round-trip property on the compiled artifact.
    canonical = scenario_to_spec(scenario)
    assert scenario_to_spec(compile_spec(canonical)) == canonical

    engines = _engines(scenario)
    programs = {
        node_id: FixedTimeProgram(
            [(index, 20) for index in range(plan.num_phases)]
        )
        for node_id, plan in scenario.phase_plans.items()
    }
    ticks = min(scenario.horizon_ticks, 600)
    for t in range(ticks):
        for sim in engines:
            for node_id, program in programs.items():
                sim.set_phase(node_id, program.phase_at(t))
            sim.step()
        if t % 25 == 0 or t == ticks - 1:
            for sim in engines:
                check_engine_invariants(sim, teleport=None)
            snapshots = [public_engine_snapshot(sim) for sim in engines]
            assert snapshots[0] == snapshots[1] == snapshots[2], (
                f"{spec['name']} diverged at tick {t}"
            )
            factors = [dict(sim.capacity_factors) for sim in engines]
            assert factors[0] == factors[1] == factors[2]

    # Demand ran: deterministic emission must have created vehicles for
    # any sampled spec (all profiles carry positive mass by construction).
    assert engines[0].total_created > 0

    elapsed = time.monotonic() - started
    assert elapsed < CASE_BUDGET_S, (
        f"{spec['name']} exceeded the per-case fuzz budget: "
        f"{elapsed:.1f}s >= {CASE_BUDGET_S:.1f}s"
    )


@pytest.mark.parametrize("spec", [s for s in SPECS if s.get("incidents")][:2],
                         ids=lambda s: s["name"])
def test_fuzzed_incidents_apply_and_clear(spec):
    scenario = compile_spec(spec)
    sim = scenario.build_simulation(seed=3, stochastic=False)
    schedule = scenario.incidents
    assert schedule is not None
    end = schedule.end_time
    active_seen = False
    for _ in range(min(scenario.horizon_ticks, end + 5)):
        sim.step()
        # Incidents are applied at the top of the tick, before ``time``
        # increments: after step(), factors reflect ``time - 1``.
        desired = {
            link: factor
            for link, factor in schedule.factors_at(sim.time - 1).items()
            if factor != 1.0
        }
        applied = {
            link: factor
            for link, factor in sim.capacity_factors.items()
            if factor != 1.0
        }
        assert applied == desired
        active_seen = active_seen or bool(desired)
    assert active_seen
    assert not {f for f in sim.capacity_factors.values() if f != 1.0}
