"""Grid scenario builder tests (paper Section VI-A geometry)."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.scenarios.grid import GridSpec, build_grid, intersection_id, terminal_id
from repro.sim.network import TurnType


class TestPaperGrid:
    def test_six_by_six_dimensions(self):
        grid = build_grid(6, 6)
        assert len(grid.network.signalized_nodes()) == 36
        # 36 intersections + 24 terminals.
        assert len(grid.network.nodes) == 60

    def test_block_length(self):
        grid = build_grid(6, 6)
        for link in grid.network.links.values():
            assert link.length == pytest.approx(200.0)

    def test_arterials_two_lanes_avenues_one(self):
        grid = build_grid(3, 3)
        net = grid.network
        horizontal = net.links["I0_0->I0_1"]
        vertical = net.links["I0_0->I1_0"]
        assert horizontal.num_lanes == 2
        assert vertical.num_lanes == 1

    def test_arterial_lane_assignment(self):
        """Left lane: left turns; right lane: shared through+right (paper)."""
        grid = build_grid(3, 3)
        link = grid.network.links["I0_0->I0_1"]
        assert TurnType.LEFT in link.lanes[0].allowed_turns
        assert TurnType.THROUGH not in link.lanes[0].allowed_turns
        assert link.lanes[1].allowed_turns == frozenset(
            {TurnType.THROUGH, TurnType.RIGHT}
        )

    def test_avenue_lane_shared_by_all(self):
        grid = build_grid(3, 3)
        link = grid.network.links["I0_0->I1_0"]
        turns = link.lanes[0].allowed_turns
        assert {TurnType.LEFT, TurnType.THROUGH, TurnType.RIGHT} <= turns

    def test_every_intersection_has_phase_plan(self):
        grid = build_grid(4, 4)
        assert set(grid.phase_plans) == set(grid.network.signalized_nodes())

    def test_no_uturn_movements(self):
        grid = build_grid(3, 3)
        for movement in grid.network.movements.values():
            assert movement.turn is not TurnType.UTURN

    def test_network_validates(self):
        grid = build_grid(2, 3)
        assert grid.network.validated


class TestCorridorHelpers:
    def test_column_route_endpoints(self):
        grid = build_grid(3, 3)
        origin, dest = grid.column_route_links(1, southbound=True)
        assert origin == f"{terminal_id('n', 1)}->{intersection_id(0, 1)}"
        assert dest == f"{intersection_id(2, 1)}->{terminal_id('s', 1)}"

    def test_row_route_endpoints(self):
        grid = build_grid(3, 3)
        origin, dest = grid.row_route_links(2, eastbound=False)
        assert origin == f"{terminal_id('e', 2)}->{intersection_id(2, 2)}"
        assert dest == f"{intersection_id(2, 0)}->{terminal_id('w', 2)}"

    def test_out_of_range_rejected(self):
        grid = build_grid(3, 3)
        with pytest.raises(NetworkError):
            grid.column_route_links(5, southbound=True)
        with pytest.raises(NetworkError):
            grid.row_route_links(-1, eastbound=True)


class TestGridSpec:
    def test_bad_dimensions_rejected(self):
        with pytest.raises(NetworkError):
            GridSpec(rows=0, cols=3)

    def test_bad_geometry_rejected(self):
        with pytest.raises(NetworkError):
            GridSpec(block_length=-1.0)

    def test_one_by_one_grid_works(self):
        grid = build_grid(1, 1)
        assert len(grid.network.signalized_nodes()) == 1
        plan = grid.phase_plans["I0_0"]
        assert plan.num_phases >= 1
