"""Scenario-spec compiler tests: kinds, validation errors, round-trip."""

from __future__ import annotations

import json

import pytest

from repro.errors import ScenarioSpecError
from repro.faults.incidents import IncidentSchedule
from repro.scenarios.spec import (
    SPEC_VERSION,
    CompiledScenario,
    compile_spec,
    load_spec,
    resolve_scenario,
    save_spec,
    scenario_digest,
    scenario_to_spec,
    spec_digest,
    validate_spec,
)


def grid_spec(rows=2, cols=2, **extra):
    spec = {
        "version": SPEC_VERSION,
        "name": "t",
        "network": {"kind": "grid", "rows": rows, "cols": cols},
        "demand": [
            {
                "kind": "od",
                "name": "main",
                "origin": "Tn0->I0_0",
                "destination": f"I{rows - 1}_0->Ts0",
                "profile": {
                    "kind": "triangular",
                    "start": 0,
                    "peak_time": 100,
                    "end": 200,
                    "peak_rate": 400,
                },
            }
        ],
    }
    spec.update(extra)
    return spec


EDGE_LIST_SPEC = {
    "version": SPEC_VERSION,
    "name": "y",
    "network": {
        "kind": "edge_list",
        "nodes": [
            {"id": "A", "x": 0, "y": 0},
            {"id": "B", "x": 200, "y": 0, "signalized": True},
            {"id": "C", "x": 400, "y": 100},
            {"id": "D", "x": 400, "y": -100},
        ],
        "edges": [
            {"from": "A", "to": "B", "length": 200, "lanes": 2},
            {"from": "B", "to": "C", "length": 220},
            {"from": "B", "to": "D", "length": 220},
        ],
    },
    "demand": [
        {
            "kind": "od",
            "name": "ac",
            "origin": "A->B",
            "destination": "B->C",
            "profile": {"kind": "constant", "rate": 300, "duration": 600},
        }
    ],
}


class TestCompileKinds:
    def test_grid(self):
        scenario = compile_spec(grid_spec())
        assert isinstance(scenario, CompiledScenario)
        assert scenario.grid is not None
        assert scenario.grid.spec.rows == 2
        assert len(scenario.flows) == 1
        assert set(scenario.phase_plans) == set(
            scenario.network.signalized_nodes()
        )

    def test_edge_list(self):
        scenario = compile_spec(EDGE_LIST_SPEC)
        assert scenario.grid is None
        # Two-way edges: 3 edges -> 6 directed links.
        assert len(scenario.network.links) == 6
        # Only the hub is signalized and gets a default plan.
        assert set(scenario.phase_plans) == {"B"}

    def test_edge_list_oneway(self):
        spec = json.loads(json.dumps(EDGE_LIST_SPEC))
        spec["network"]["edges"][1]["oneway"] = True
        scenario = compile_spec(spec)
        assert "B->C" in scenario.network.links
        assert "C->B" not in scenario.network.links

    def test_explicit_round_trips_through_canonical(self):
        scenario = compile_spec(grid_spec(incidents=[
            {"kind": "link_closure", "link": "I0_0->I0_1", "start": 30, "duration": 40}
        ]))
        canonical = scenario_to_spec(scenario)
        assert canonical["network"]["kind"] == "explicit"
        rebuilt = compile_spec(canonical)
        assert scenario_digest(rebuilt) == scenario_digest(scenario)
        # Canonicalisation is idempotent.
        assert scenario_to_spec(rebuilt) == canonical

    def test_digest_distinguishes_scenarios(self):
        a = spec_digest(grid_spec())
        b = spec_digest(grid_spec(rows=3))
        assert a != b


class TestDemandProfiles:
    @pytest.mark.parametrize(
        "profile",
        [
            {"kind": "constant", "rate": 100, "duration": 300},
            {"kind": "triangular", "start": 0, "peak_time": 100, "end": 300, "peak_rate": 500},
            {
                "kind": "multi_peak",
                "base_rate": 40,
                "duration": 2000,
                "peaks": [
                    {"time": 400, "rate": 500, "width": 400},
                    {"time": 1400, "rate": 450, "width": 400},
                ],
            },
            {"kind": "surge", "start": 100, "duration": 400, "rate": 600, "ramp": 50},
            {"kind": "points", "points": [[0, 0], [100, 300], [200, 0]]},
        ],
        ids=lambda p: p["kind"],
    )
    def test_profile_kinds_compile_nonnegative(self, profile):
        spec = grid_spec()
        spec["demand"][0]["profile"] = profile
        scenario = compile_spec(spec)
        rp = scenario.flows[0].profile
        assert all(rate >= 0 for _, rate in rp.points)
        assert scenario.horizon_ticks > rp.end_time  # drain margin applied

    def test_pattern_demand_expands(self):
        spec = grid_spec(rows=3, cols=3)
        spec["demand"] = [{"kind": "pattern", "pattern": 1, "t_peak": 200.0}]
        scenario = compile_spec(spec)
        assert len(scenario.flows) == 16

    def test_uniform_demand_expands(self):
        spec = grid_spec(rows=3, cols=3)
        spec["demand"] = [{"kind": "uniform", "duration": 600.0}]
        scenario = compile_spec(spec)
        assert len(scenario.flows) == 6  # one per row + one per column

    def test_pattern_requires_grid(self):
        spec = json.loads(json.dumps(EDGE_LIST_SPEC))
        spec["demand"] = [{"kind": "pattern", "pattern": 1}]
        with pytest.raises(ScenarioSpecError, match="grid network"):
            compile_spec(spec)

    def test_explicit_horizon_wins(self):
        scenario = compile_spec(grid_spec(horizon=123))
        assert scenario.horizon_ticks == 123

    def test_fresh_flows_are_copies(self):
        scenario = compile_spec(grid_spec())
        first = scenario.fresh_flows()
        second = scenario.fresh_flows()
        assert first[0] is not second[0]
        first[0]._accumulator = 7.0
        assert second[0]._accumulator == 0.0


class TestIncidents:
    def test_incident_kinds_compile(self):
        spec = grid_spec(
            incidents=[
                {"kind": "link_closure", "link": "I0_0->I0_1", "start": 10, "duration": 20},
                {"kind": "lane_closure", "link": "I0_0->I1_0", "start": 5, "duration": 50},
                {"kind": "capacity", "link": "I0_1->I0_0", "start": 0, "duration": 30, "factor": 0.5},
            ]
        )
        scenario = compile_spec(spec)
        assert isinstance(scenario.incidents, IncidentSchedule)
        assert len(scenario.incidents) == 3
        factors = scenario.incidents.factors_at(12)
        assert factors["I0_0->I0_1"] == 0.0

    def test_horizon_covers_incidents(self):
        spec = grid_spec(
            incidents=[
                {"kind": "capacity", "link": "I0_0->I0_1", "start": 900, "duration": 300, "factor": 0.5}
            ]
        )
        scenario = compile_spec(spec)
        assert scenario.horizon_ticks >= 1200


class TestValidationErrors:
    @pytest.mark.parametrize(
        ("mutate", "match"),
        [
            (lambda s: s.update(version=99), "version"),
            (lambda s: s.update(name=""), "name"),
            (lambda s: s.pop("network"), "network"),
            (lambda s: s["network"].update(kind="osm"), "kind"),
            (lambda s: s.update(demand=[]), "no demand"),
            (lambda s: s["demand"][0].pop("origin"), "origin"),
            (lambda s: s["demand"][0]["profile"].update(peak_rate=-1), "peak_rate"),
            (lambda s: s.update(horizon=0), "horizon"),
            (lambda s: s.update(metadata=[1]), "metadata"),
            (
                lambda s: s.update(
                    demand=s["demand"] + [dict(s["demand"][0])]
                ),
                "duplicate flow name",
            ),
            (
                lambda s: s.update(
                    incidents=[{"kind": "capacity", "link": "x", "start": 0, "duration": 5, "factor": 2.0}]
                ),
                "factor",
            ),
        ],
        ids=[
            "bad-version", "empty-name", "no-network", "bad-net-kind",
            "no-demand", "missing-origin", "negative-rate", "zero-horizon",
            "bad-metadata", "dup-flow", "bad-factor",
        ],
    )
    def test_rejects(self, mutate, match):
        spec = grid_spec()
        mutate(spec)
        with pytest.raises(ScenarioSpecError, match=match):
            compile_spec(spec)

    def test_unknown_origin_names_flow(self):
        spec = grid_spec()
        spec["demand"][0]["origin"] = "nope"
        with pytest.raises(ScenarioSpecError, match="main"):
            compile_spec(spec)

    def test_unknown_incident_link(self):
        spec = grid_spec(
            incidents=[{"kind": "link_closure", "link": "Z->Q", "start": 0, "duration": 5}]
        )
        with pytest.raises(ScenarioSpecError, match="unknown link"):
            compile_spec(spec)

    def test_multi_peak_overlap_rejected(self):
        spec = grid_spec()
        spec["demand"][0]["profile"] = {
            "kind": "multi_peak",
            "duration": 1000,
            "peaks": [
                {"time": 300, "rate": 400, "width": 400},
                {"time": 400, "rate": 400, "width": 400},
            ],
        }
        with pytest.raises(ScenarioSpecError, match="overlap"):
            compile_spec(spec)

    def test_validate_spec_rejects_non_dict(self):
        with pytest.raises(ScenarioSpecError, match="JSON object"):
            validate_spec([1, 2])


class TestFilesAndResolve:
    def test_save_load_compile(self, tmp_path):
        path = tmp_path / "s.json"
        save_spec(path, grid_spec())
        loaded = load_spec(path)
        assert spec_digest(loaded) == spec_digest(grid_spec())

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ScenarioSpecError, match="not valid JSON"):
            load_spec(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ScenarioSpecError, match="cannot read"):
            load_spec(tmp_path / "absent.json")

    def test_resolve_forms(self, tmp_path):
        compiled = compile_spec(grid_spec())
        assert resolve_scenario(compiled) is compiled
        assert scenario_digest(resolve_scenario(grid_spec())) == scenario_digest(compiled)
        path = tmp_path / "s.json"
        save_spec(path, grid_spec())
        assert scenario_digest(resolve_scenario(str(path))) == scenario_digest(compiled)
        zoo = resolve_scenario("zoo:incident_closure:3")
        assert zoo.metadata["zoo"] == "incident_closure"
        assert zoo.metadata["seed"] == 3

    def test_resolve_rejects_bad_zoo_ref(self):
        with pytest.raises(ScenarioSpecError, match="zoo"):
            resolve_scenario("zoo:")
        with pytest.raises(ScenarioSpecError, match="integer"):
            resolve_scenario("zoo:commuter_day:x")
