"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import functional as F
from repro.nn.tensor import Tensor, concat
from repro.rl.gae import compute_gae, discounted_returns
from repro.rl.schedules import LinearSchedule
from repro.sim.demand import RateProfile

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def small_arrays(shape):
    return arrays(np.float64, shape, elements=finite_floats)


class TestTensorProperties:
    @given(small_arrays((3, 4)), small_arrays((3, 4)))
    def test_addition_commutative(self, a, b):
        left = (Tensor(a) + Tensor(b)).data
        right = (Tensor(b) + Tensor(a)).data
        np.testing.assert_allclose(left, right)

    @given(small_arrays((2, 3)))
    def test_double_negation_identity(self, a):
        np.testing.assert_allclose((-(-Tensor(a))).data, a)

    @given(small_arrays((4,)))
    def test_tanh_bounded(self, a):
        out = Tensor(a).tanh().data
        assert np.all(np.abs(out) <= 1.0)

    @given(small_arrays((4,)))
    def test_sigmoid_bounded(self, a):
        out = Tensor(a).sigmoid().data
        assert np.all((out >= 0.0) & (out <= 1.0))

    @given(small_arrays((3, 5)))
    def test_sum_axis_decomposition(self, a):
        total = float(Tensor(a).sum().data)
        by_axis = float(Tensor(a).sum(axis=0).sum().data)
        assert total == pytest.approx(by_axis, rel=1e-9, abs=1e-9)

    @given(small_arrays((2, 3)), small_arrays((2, 4)))
    def test_concat_preserves_content(self, a, b):
        out = concat([Tensor(a), Tensor(b)], axis=1).data
        np.testing.assert_array_equal(out[:, :3], a)
        np.testing.assert_array_equal(out[:, 3:], b)

    @given(small_arrays((3, 4)))
    def test_gradient_of_sum_is_ones(self, a):
        t = Tensor(a, requires_grad=True)
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(a))

    @given(small_arrays((2, 6)))
    def test_reshape_roundtrip_gradient(self, a):
        t = Tensor(a, requires_grad=True)
        t.reshape(3, 4).reshape(2, 6).sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(a))


class TestSoftmaxProperties:
    @given(small_arrays((4, 5)))
    def test_softmax_is_distribution(self, logits):
        probs = F.softmax(Tensor(logits)).data
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), atol=1e-9)

    @given(small_arrays((3, 4)), st.floats(min_value=-50, max_value=50))
    def test_softmax_shift_invariant(self, logits, shift):
        base = F.softmax(Tensor(logits)).data
        shifted = F.softmax(Tensor(logits + shift)).data
        np.testing.assert_allclose(base, shifted, atol=1e-9)

    @given(small_arrays((2, 6)))
    def test_entropy_bounds(self, logits):
        probs = F.softmax(Tensor(logits))
        entropy = F.entropy(probs).data
        assert np.all(entropy >= -1e-9)
        assert np.all(entropy <= np.log(6) + 1e-9)


class TestGaeProperties:
    @given(small_arrays((8, 2)), small_arrays((8, 2)))
    def test_returns_are_advantages_plus_values(self, rewards, values):
        adv, ret = compute_gae(rewards, values, 0.0)
        np.testing.assert_allclose(ret, adv + values, atol=1e-9)

    @given(small_arrays((6, 1)))
    def test_zero_rewards_zero_values_zero_advantage(self, _unused):
        rewards = np.zeros((6, 1))
        values = np.zeros((6, 1))
        adv, ret = compute_gae(rewards, values, 0.0)
        np.testing.assert_array_equal(adv, np.zeros_like(adv))

    @given(
        small_arrays((5, 3)),
        st.floats(min_value=0.1, max_value=0.99),
    )
    def test_gae_lambda1_matches_discounted_returns(self, rewards, gamma):
        values = np.zeros((5, 3))
        _, ret = compute_gae(rewards, values, 0.0, gamma=gamma, lam=1.0)
        expected = discounted_returns(rewards, gamma)
        np.testing.assert_allclose(ret, expected, atol=1e-8)

    @given(small_arrays((4, 2)), finite_floats)
    def test_constant_value_offset_shifts_advantage_boundedly(self, rewards, offset):
        """Advantages must be finite and respond linearly to value offsets."""
        values = np.zeros((4, 2))
        adv_base, _ = compute_gae(rewards, values, 0.0)
        adv_off, _ = compute_gae(rewards, values + offset, offset)
        assert np.all(np.isfinite(adv_off))
        # With bootstrap also offset, each delta changes by offset*(gamma-1).
        diff = adv_off - adv_base
        assert np.all(np.isfinite(diff))


class TestScheduleProperties:
    @given(
        st.floats(min_value=0.01, max_value=10),
        st.floats(min_value=0.0, max_value=0.009),
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=0, max_value=20_000),
    )
    def test_linear_schedule_monotone_and_bounded(self, start, end, steps, query):
        schedule = LinearSchedule(start, end, steps)
        value = schedule.value(query)
        assert min(start, end) - 1e-12 <= value <= max(start, end) + 1e-12
        assert schedule.value(query + 1) <= value + 1e-12  # decaying


class TestRateProfileProperties:
    @given(
        st.floats(min_value=1, max_value=2000),
        st.floats(min_value=10, max_value=5000),
    )
    def test_constant_profile_rate_inside_span(self, rate, duration):
        profile = RateProfile.constant(rate, duration)
        for t in np.linspace(0, duration, 7):
            assert profile.rate_at(float(t)) == pytest.approx(rate)

    @given(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=101, max_value=200),
        st.floats(min_value=201, max_value=400),
        st.floats(min_value=1, max_value=1000),
    )
    def test_triangular_profile_bounded_by_peak(self, start, peak_t, end, peak):
        profile = RateProfile.triangular(start, peak_t, end, peak)
        for t in np.linspace(start - 10, end + 10, 23):
            rate = profile.rate_at(float(t))
            assert 0.0 <= rate <= peak + 1e-9

    @given(st.floats(min_value=1, max_value=1000), st.floats(min_value=10, max_value=1000))
    def test_rate_zero_outside_span(self, rate, duration):
        profile = RateProfile.constant(rate, duration)
        assert profile.rate_at(-1.0) == 0.0
        assert profile.rate_at(duration + 1.0) == 0.0


class TestEngineConservationProperty:
    @settings(max_examples=10, deadline=None)
    @given(
        st.floats(min_value=100, max_value=3000),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=50, max_value=200),
    )
    def test_vehicle_conservation_random_phasing(self, rate, phase_seed, ticks):
        """No vehicle is ever created or destroyed inside the engine,
        regardless of demand level or (arbitrary) phase choices."""
        from repro.scenarios.grid import build_grid
        from repro.sim.demand import DemandGenerator, Flow, RateProfile
        from repro.sim.engine import Simulation
        from repro.sim.routing import Router

        grid = build_grid(2, 2)
        origin, dest = grid.column_route_links(0, southbound=True)
        origin2, dest2 = grid.row_route_links(1, eastbound=True)
        flows = [
            Flow("a", origin, dest, RateProfile.constant(rate, 150)),
            Flow("b", origin2, dest2, RateProfile.constant(rate, 150)),
        ]
        demand = DemandGenerator(flows, Router(grid.network), seed=0)
        sim = Simulation(grid.network, demand, grid.phase_plans)
        rng = np.random.default_rng(phase_seed)
        for _ in range(ticks // 5):
            for node_id, plan in grid.phase_plans.items():
                sim.set_phase(node_id, int(rng.integers(plan.num_phases)))
            sim.step(5)
            total = (
                sim.vehicles_in_network()
                + sim.pending_insertions()
                + len(sim.finished_vehicles)
            )
            assert total == sim.total_created
