"""More property-based tests: engine ordering/timing invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios.grid import build_grid
from repro.sim.demand import DemandGenerator, Flow, RateProfile
from repro.sim.engine import Simulation
from repro.sim.network import RoadNetwork, TurnType
from repro.sim.routing import Router
from repro.sim.signal import Phase, PhasePlan


def corridor(rate: float, duration: float, **kwargs) -> Simulation:
    net = RoadNetwork()
    net.add_node("A", 0, 0)
    net.add_node("B", 200, 0, signalized=True)
    net.add_node("C", 400, 0)
    net.add_link("in", "A", "B", 200.0, 1, speed_limit=10.0)
    net.add_link("out", "B", "C", 200.0, 1, speed_limit=10.0)
    net.add_movement("in", "out", turn=TurnType.THROUGH)
    net.validate()
    flows = [Flow("f", "in", "out", RateProfile.constant(rate, duration))]
    demand = DemandGenerator(flows, Router(net), seed=0, stochastic=False)
    plans = {
        "B": PhasePlan(
            "B", [Phase("go", frozenset({("in", "out")})), Phase("stop", frozenset())]
        )
    }
    return Simulation(net, demand, plans, **kwargs)


class TestFifoProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        st.floats(min_value=200, max_value=2500),
        st.integers(min_value=0, max_value=40),
    )
    def test_single_lane_fifo(self, rate, red_ticks):
        """On a single-lane corridor, vehicles finish in creation order."""
        sim = corridor(rate, 100.0)
        sim.set_phase("B", 1)
        sim.step(red_ticks)
        sim.set_phase("B", 0)
        sim.step(600)
        finish_order = [v.vehicle_id for v in sim.finished_vehicles]
        assert finish_order == sorted(finish_order)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=100, max_value=2000))
    def test_travel_time_at_least_freeflow(self, rate):
        sim = corridor(rate, 60.0)
        sim.step(800)
        freeflow = (
            sim.network.links["in"].freeflow_ticks
            + sim.network.links["out"].freeflow_ticks
        )
        for vehicle in sim.finished_vehicles:
            assert vehicle.travel_time(sim.time) >= freeflow

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=50))
    def test_waiting_monotone_while_red(self, ticks):
        sim = corridor(1800.0, 100.0)
        sim.set_phase("B", 1)
        sim.step(30)  # build a queue
        head_wait_before = sim.head_wait("in#0")
        sim.step(ticks)
        assert sim.head_wait("in#0") >= head_wait_before


class TestGridRandomControlProperties:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_finished_vehicles_complete_routes(self, seed):
        grid = build_grid(2, 2)
        origin, dest = grid.column_route_links(0, southbound=True)
        flows = [Flow("f", origin, dest, RateProfile.constant(900, 100))]
        demand = DemandGenerator(flows, Router(grid.network), seed=seed)
        sim = Simulation(grid.network, demand, grid.phase_plans)
        rng = np.random.default_rng(seed)
        for _ in range(120):
            for node_id, plan in grid.phase_plans.items():
                sim.set_phase(node_id, int(rng.integers(plan.num_phases)))
            sim.step(5)
        for vehicle in sim.finished_vehicles:
            assert vehicle.route_index == len(vehicle.route) - 1
            assert vehicle.links_travelled == len(vehicle.route)
