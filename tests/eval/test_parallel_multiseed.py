"""Parallel workers must be invisible: same seeds -> same results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.harness import ExperimentScale
from repro.eval.multiseed import run_multiseed
from repro.perf.parallel import parallel_map

TINY = ExperimentScale(
    rows=2,
    cols=2,
    peak_rate=600.0,
    t_peak=60.0,
    light_duration=120.0,
    horizon_ticks=80,
    max_ticks=3600,
    train_episodes=1,
    eval_episodes=1,
)


class TestParallelMap:
    def test_preserves_order(self):
        items = list(range(23))
        assert parallel_map(lambda x: x * x, items, workers=4) == [
            x * x for x in items
        ]

    def test_serial_fallback(self):
        assert parallel_map(lambda x: x + 1, [1, 2, 3], workers=0) == [2, 3, 4]
        assert parallel_map(lambda x: x + 1, [1, 2, 3], workers=1) == [2, 3, 4]

    def test_more_workers_than_items(self):
        assert parallel_map(lambda x: -x, [5, 6], workers=8) == [-5, -6]

    def test_empty_items(self):
        assert parallel_map(lambda x: x, [], workers=4) == []

    def test_closures_cross_fork(self):
        offset = 100
        assert parallel_map(lambda x: x + offset, [1, 2, 3, 4], workers=2) == [
            101,
            102,
            103,
            104,
        ]

    def test_worker_error_propagates(self):
        def boom(x):
            if x == 2:
                raise ValueError("bad item")
            return x

        with pytest.raises(RuntimeError, match="bad item"):
            parallel_map(boom, [1, 2, 3], workers=2)

    def test_seeded_rng_determinism(self):
        def draw(seed):
            return float(np.random.default_rng(seed).normal())

        serial = parallel_map(draw, [0, 1, 2, 3, 4], workers=0)
        forked = parallel_map(draw, [0, 1, 2, 3, 4], workers=3)
        assert serial == forked


class TestMultiSeedWorkers:
    def _run(self, workers: int):
        from repro.agents import MaxPressureSystem

        return run_multiseed(
            TINY,
            lambda env, seed: MaxPressureSystem(env),
            model_name="MaxPressure",
            seeds=[0, 1, 2],
            workers=workers,
        )

    def test_parallel_matches_serial(self):
        serial = self._run(workers=0)
        parallel = self._run(workers=3)
        assert len(serial.runs) == len(parallel.runs) == 3
        for run_s, run_p in zip(serial.runs, parallel.runs):
            assert run_s.seed == run_p.seed
            assert run_s.eval_travel_time == run_p.eval_travel_time
            assert run_s.completion_rate == run_p.completion_rate
            np.testing.assert_array_equal(run_s.wait_curve, run_p.wait_curve)
        assert serial.travel_time_mean == parallel.travel_time_mean


class TestMultiSeedTelemetry:
    def test_telemetry_records_each_run(self, tmp_path):
        from repro.agents import MaxPressureSystem
        from repro.obs.events import read_events
        from repro.obs.telemetry import Telemetry

        with Telemetry(tmp_path / "run") as telemetry:
            result = run_multiseed(
                TINY,
                lambda env, seed: MaxPressureSystem(env),
                model_name="MaxPressure",
                seeds=[0, 1],
                workers=2,
                telemetry=telemetry,
            )
            assert telemetry.metrics.counter_value("multiseed.runs") == 2
            assert telemetry.metrics.gauge_value(
                "multiseed.travel_time_mean"
            ) == pytest.approx(result.travel_time_mean)
        events = read_events(tmp_path / "run" / "events.jsonl")
        per_seed = [e for e in events if e["type"] == "multiseed_seed"]
        assert [e["data"]["seed"] for e in per_seed] == [0, 1]
        assert all(e["data"]["model"] == "MaxPressure" for e in per_seed)
