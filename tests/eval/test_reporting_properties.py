"""Property-based tests for the ASCII reporting primitives.

``sparkline`` and ``ascii_chart`` are the terminal rendering layer for
both the live evaluation pipeline and ``obs report``; they must accept
anything a real training run can produce — single samples, constant
series, NaN/inf gaps (e.g. drain episodes with no finished vehicle) and
pathological value ranges — without crashing or emitting malformed
output.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.eval.reporting import _BLOCKS, ascii_chart, sparkline

any_floats = st.floats(allow_nan=True, allow_infinity=True, width=64)
finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)
series_with_a_finite_value = st.lists(any_floats, min_size=1, max_size=200).filter(
    lambda xs: any(np.isfinite(x) for x in xs)
)

ALLOWED = set(_BLOCKS) | {"?"}


class TestSparklineProperties:
    @given(series_with_a_finite_value, st.integers(min_value=1, max_value=120))
    @settings(max_examples=200)
    def test_never_crashes_and_width_bounded(self, values, width):
        line = sparkline(values, width=width)
        assert 1 <= len(line) <= max(width, len(values))
        assert len(line) == min(len(values), width)

    @given(series_with_a_finite_value)
    def test_only_known_glyphs(self, values):
        assert set(sparkline(values)) <= ALLOWED

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    def test_finite_series_has_no_gap_glyphs(self, values):
        assert "?" not in sparkline(values)

    @given(finite_floats)
    def test_single_value_renders_one_glyph(self, value):
        line = sparkline([value])
        assert len(line) == 1 and line in _BLOCKS

    @given(finite_floats, st.integers(min_value=1, max_value=50))
    def test_constant_series_is_flat(self, value, length):
        line = sparkline([value] * length)
        assert set(line) == {_BLOCKS[0]}

    def test_nan_renders_as_gap(self):
        line = sparkline([1.0, float("nan"), 3.0])
        assert line[1] == "?"
        assert line[0] in _BLOCKS and line[2] in _BLOCKS

    def test_huge_range_does_not_crash(self):
        line = sparkline([-1e308, 0.0, 1e308])
        assert len(line) == 3
        assert set(line) <= ALLOWED

    def test_all_nan_rejected(self):
        with pytest.raises(ConfigError):
            sparkline([float("nan")] * 5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            sparkline([])

    def test_monotone_series_monotone_glyphs_with_nan_gap(self):
        line = sparkline([0, 1, 2, float("nan"), 4, 5])
        levels = [_BLOCKS.index(ch) for ch in line if ch != "?"]
        assert levels == sorted(levels)


class TestAsciiChartProperties:
    @given(
        st.dictionaries(
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll",)),
                min_size=1,
                max_size=8,
            ),
            series_with_a_finite_value,
            min_size=1,
            max_size=4,
        ),
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=1, max_value=80),
    )
    @settings(max_examples=100)
    def test_never_crashes_and_shape_holds(self, series, height, width):
        chart = ascii_chart(series, height=height, width=width)
        lines = chart.splitlines()
        # height canvas rows + legend (no title given).
        assert len(lines) == height + 1
        # The plot area (after the axis gutter) never exceeds the width.
        for row in lines[:-1]:
            gutter = row.index("+") + 1 if "+" in row else row.index("|") + 1
            assert len(row) - gutter <= width

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_single_series_round_trip(self, values):
        chart = ascii_chart({"s": values}, height=5, width=40)
        assert "o=s" in chart

    def test_constant_chart_single_row(self):
        chart = ascii_chart({"a": [7.0, 7.0, 7.0]}, height=4, width=10)
        rows = chart.splitlines()[:-1]  # drop the legend
        marked = [row for row in rows if "o" in row]
        assert len(marked) == 1

    def test_nan_series_leaves_gap_column(self):
        chart = ascii_chart({"a": [1.0, float("nan"), 2.0]}, height=4, width=10)
        markers = sum(row.count("o") for row in chart.splitlines()[:-1])
        assert markers == 2  # the NaN sample is skipped, not plotted

    def test_all_nan_rejected(self):
        with pytest.raises(ConfigError):
            ascii_chart({"a": [float("nan"), float("inf")]})

    def test_huge_range_does_not_crash(self):
        chart = ascii_chart({"a": [-1e308, 0.0, 1e308]}, height=6, width=10)
        assert "o=a" in chart

    def test_mixed_lengths_and_scales(self):
        chart = ascii_chart(
            {"tiny": [1e-9, 2e-9], "big": [1e9, 2e9, 3e9]}, height=6, width=20
        )
        assert "o=tiny" in chart and "x=big" in chart
