"""Batched-policy-path equivalence: the PR 10 bit-exactness contract.

The cross-replica batched path (vectorized extraction in
``eval/batched_obs.py`` plus ``BatchedPolicyGroup``) must be invisible
in results: training B seeds through ``train_lockstep`` — with or
without ``batched_policy=True`` — reproduces ``rl.runner.train`` seed by
seed, down to the parameter bytes.  The suite pins:

* PairUpLight via ``batched_policy=True`` (fast extraction + grouped
  acting) — parameter bytes and episode summaries bit-exact vs serial;
* a baseline (IQL) through the fast extraction — same contract;
* a *faulted* variant, where fault-injecting detector suites disqualify
  the vectorized extractor and the reference per-env path must kick in
  (still bit-exact);
* the clean ``ConfigError`` for agents the policy group cannot drive;
* the ``shared_across_replicas`` training regime (no serial oracle:
  deterministic, finite, one combined update);
* the satellite fix: ``duration_s`` is the per-seed share and
  ``group_duration_s`` the whole-group wall-clock.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.eval.batched import LockstepEnvGroup, train_lockstep
from repro.eval.harness import ExperimentScale, make_experiment
from repro.faults.config import FaultConfig
from repro.rl.runner import train

pytestmark = pytest.mark.soa

TINY = ExperimentScale(
    rows=2,
    cols=2,
    peak_rate=600.0,
    t_peak=60.0,
    light_duration=120.0,
    horizon_ticks=80,
    max_ticks=3600,
    train_episodes=2,
    eval_episodes=1,
)

SEEDS = [0, 1]


def _make_envs(faults: FaultConfig | None = None):
    experiments = [make_experiment(TINY, seed=seed) for seed in SEEDS]
    return [exp.train_env(1, faults=faults) for exp in experiments]


def _serial_histories(factory, faults: FaultConfig | None = None):
    """The ``rl.runner.train`` oracle, one run per seed."""
    agents, histories = [], []
    for env, seed in zip(_make_envs(faults), SEEDS):
        agent = factory(env, seed)
        histories.append(
            train(agent, env, episodes=TINY.train_episodes, seed=seed)
        )
        agents.append(agent)
    return agents, histories


def _batched_histories(factory, faults: FaultConfig | None = None, **kwargs):
    envs = _make_envs(faults)
    agents = [factory(env, seed) for env, seed in zip(envs, SEEDS)]
    histories = train_lockstep(
        agents, envs, TINY.train_episodes, SEEDS, **kwargs
    )
    return agents, histories


def _assert_same_parameters(serial_agents, batched_agents):
    for serial, batched in zip(serial_agents, batched_agents):
        state_s, state_b = serial.state_dict(), batched.state_dict()
        assert state_s.keys() == state_b.keys()
        for key in state_s:
            assert state_s[key].tobytes() == state_b[key].tobytes(), key


def _assert_same_histories(serial_histories, batched_histories):
    for hist_s, hist_b in zip(serial_histories, batched_histories):
        assert len(hist_s.episodes) == len(hist_b.episodes)
        for log_s, log_b in zip(hist_s.episodes, hist_b.episodes):
            assert log_s.episode == log_b.episode
            assert log_s.avg_wait == log_b.avg_wait
            assert log_s.total_reward == log_b.total_reward
            assert log_s.update_stats == log_b.update_stats


def _pairuplight(env, seed):
    from repro.agents import PairUpLightSystem

    return PairUpLightSystem(env, seed=seed)


def _iql(env, seed):
    from repro.agents import IQLSystem

    return IQLSystem(env, seed=seed)


class TestBatchedPathBitExact:
    def test_pairuplight_batched_policy(self):
        serial_agents, serial_hist = _serial_histories(_pairuplight)
        batched_agents, batched_hist = _batched_histories(
            _pairuplight, batched_policy=True
        )
        _assert_same_parameters(serial_agents, batched_agents)
        _assert_same_histories(serial_hist, batched_hist)

    def test_baseline_fast_extraction(self):
        serial_agents, serial_hist = _serial_histories(_iql)
        batched_agents, batched_hist = _batched_histories(_iql)
        _assert_same_parameters(serial_agents, batched_agents)
        _assert_same_histories(serial_hist, batched_hist)

    def test_faulted_variant_falls_back_and_matches(self):
        faults = FaultConfig(detector_dropout=0.3, message_drop=0.3)
        serial_agents, serial_hist = _serial_histories(_pairuplight, faults)
        batched_agents, batched_hist = _batched_histories(
            _pairuplight, faults, batched_policy=True
        )
        _assert_same_parameters(serial_agents, batched_agents)
        _assert_same_histories(serial_hist, batched_hist)


class TestExtractorEligibility:
    def test_healthy_group_uses_extractor(self):
        group = LockstepEnvGroup(_make_envs())
        group.reset_all(SEEDS)
        assert group.extractor is not None

    def test_faulty_detectors_disqualify(self):
        faults = FaultConfig(detector_dropout=0.3)
        group = LockstepEnvGroup(_make_envs(faults))
        group.reset_all(SEEDS)
        assert group.extractor is None


class TestIncompatibleAgents:
    def test_static_controller_rejected(self):
        from repro.agents import MaxPressureSystem

        envs = _make_envs()
        agents = [MaxPressureSystem(env) for env in envs]
        with pytest.raises(ConfigError, match="MaxPressureSystem"):
            train_lockstep(
                agents, envs, TINY.train_episodes, SEEDS, batched_policy=True
            )


class TestSharedAcrossReplicas:
    def test_trains_deterministically(self):
        def run():
            agents, histories = _batched_histories(
                _pairuplight, batched_policy=True, shared_across_replicas=True
            )
            return agents[0].state_dict(), histories

        state_a, hist_a = run()
        state_b, hist_b = run()
        for key in state_a:
            assert state_a[key].tobytes() == state_b[key].tobytes(), key
        for hist in hist_a:
            for log in hist.episodes:
                assert log.update_stats  # one combined PPO update ran
                for value in log.update_stats.values():
                    assert np.isfinite(value)
        # Every seed's history records the same combined-update stats.
        for log_0, log_1 in zip(hist_a[0].episodes, hist_a[1].episodes):
            assert log_0.update_stats == log_1.update_stats
        _assert_same_histories(hist_a, hist_b)


class TestGroupDurationStamping:
    def test_duration_is_per_seed_share(self):
        _, histories = _batched_histories(_pairuplight)
        for history in histories:
            for log in history.episodes:
                assert log.group_duration_s > 0.0
                assert log.duration_s == pytest.approx(
                    log.group_duration_s / len(SEEDS)
                )

    def test_serial_runner_leaves_group_time_zero(self):
        env = _make_envs()[0]
        agent = _pairuplight(env, 0)
        history = train(agent, env, episodes=1, seed=0)
        assert history.episodes[0].group_duration_s == 0.0
        assert history.episodes[0].duration_s > 0.0
