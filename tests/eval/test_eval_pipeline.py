"""Evaluation harness / comparison pipeline / overhead analysis tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.fixed_time import FixedTimeSystem
from repro.agents.ma2c import MA2CSystem
from repro.agents.pairuplight import PairUpLightConfig, PairUpLightSystem
from repro.errors import ConfigError
from repro.eval.comm_overhead import (
    formatted_overhead_table,
    overhead_row,
    overhead_table,
)
from repro.eval.comparison import (
    ComparisonTable,
    default_model_factories,
    run_table2,
    run_table3,
)
from repro.eval.harness import ExperimentScale, GridExperiment

from helpers import make_env

TINY_SCALE = ExperimentScale(
    rows=2,
    cols=2,
    peak_rate=400.0,
    t_peak=100.0,
    light_duration=200.0,
    horizon_ticks=250,
    max_ticks=2000,
    train_episodes=1,
)


class TestExperimentScale:
    def test_paper_scale_matches_paper(self):
        scale = ExperimentScale.paper()
        assert (scale.rows, scale.cols) == (6, 6)
        assert scale.peak_rate == 500.0
        assert scale.t_peak == 900.0

    def test_ci_scale_valid(self):
        scale = ExperimentScale.ci()
        assert scale.horizon_ticks <= scale.max_ticks

    def test_with_episodes(self):
        scale = ExperimentScale.ci().with_episodes(3)
        assert scale.train_episodes == 3

    def test_bad_episode_counts_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentScale(eval_episodes=0)


class TestGridExperiment:
    def test_train_env_not_drain(self):
        experiment = GridExperiment(TINY_SCALE, seed=0)
        env = experiment.train_env(1)
        assert not env.config.drain

    def test_eval_env_drain(self):
        experiment = GridExperiment(TINY_SCALE, seed=0)
        env = experiment.eval_env(1)
        assert env.config.drain

    def test_train_and_evaluate_fixed_time(self):
        experiment = GridExperiment(TINY_SCALE, seed=0)
        agent, history = experiment.train_agent(
            lambda env: FixedTimeSystem(env), pattern=1
        )
        assert len(history.episodes) == 1
        result = experiment.evaluate_agent(agent, 1)
        assert np.isfinite(result.average_travel_time)


class TestComparisonTable:
    def test_add_and_value(self):
        table = ComparisonTable(patterns=(1, 2))
        table.add("A", 1, 100.0)
        table.add("A", 2, 200.0)
        table.add("B", 1, 50.0)
        assert table.value("A", 2) == 200.0
        assert table.winner(1) == "B"

    def test_formatted_contains_all_models(self):
        table = ComparisonTable(patterns=(1,))
        table.add("ModelX", 1, 123.456)
        text = table.formatted()
        assert "ModelX" in text
        assert "123.46" in text

    def test_formatted_handles_missing_cells(self):
        table = ComparisonTable(patterns=(1, 2))
        table.add("A", 1, 10.0)
        assert "—" in table.formatted()

    def test_default_factories_cover_paper_models(self):
        names = set(default_model_factories())
        assert names == {"Fixedtime", "SingleAgent", "MA2C", "CoLight", "PairUpLight"}


class TestPipelines:
    def test_run_table3_smoke(self):
        factories = {
            "Fixedtime": lambda env: FixedTimeSystem(env),
            "PairUpLight": lambda env: PairUpLightSystem(env, seed=0),
        }
        table = run_table3(TINY_SCALE, factories, seed=0)
        assert set(table.rows) == {"Fixedtime", "PairUpLight"}
        assert all(np.isfinite(table.value(m, 5)) for m in table.rows)

    def test_run_table2_smoke_subset(self):
        factories = {"Fixedtime": lambda env: FixedTimeSystem(env)}
        table = run_table2(
            TINY_SCALE, factories, seed=0, eval_patterns=(1, 5)
        )
        assert np.isfinite(table.value("Fixedtime", 1))
        assert np.isfinite(table.value("Fixedtime", 5))
        assert table.histories["Fixedtime"].wait_curve.shape == (1,)


class TestOverheadAnalysis:
    def test_pairuplight_row_is_32_bits(self, tiny_grid):
        env = make_env(tiny_grid)
        row = overhead_row(PairUpLightSystem(env, seed=0), env)
        assert row.bits_per_step == 32
        assert "one" in row.description

    def test_ordering_matches_paper(self, tiny_grid):
        """Table IV shape: MA2C and CoLight >> PairUpLight."""
        env = make_env(tiny_grid)
        rows = overhead_table(
            [
                MA2CSystem(env, seed=0),
                PairUpLightSystem(env, seed=0),
                FixedTimeSystem(env),
            ],
            env,
        )
        bits = {row.model: row.bits_per_step for row in rows}
        assert bits["MA2C"] > 10 * bits["PairUpLight"]
        assert bits["Fixedtime"] == 0

    def test_formatted_table(self, tiny_grid):
        env = make_env(tiny_grid)
        rows = overhead_table([FixedTimeSystem(env)], env)
        text = formatted_overhead_table(rows)
        assert "Fixedtime" in text
        assert "Bits/step" in text

    def test_nocomm_zero(self, tiny_grid):
        env = make_env(tiny_grid)
        agent = PairUpLightSystem(env, PairUpLightConfig(communicate=False), seed=0)
        assert overhead_row(agent, env).bits_per_step == 0


@pytest.mark.zoo
class TestScenarioHarness:
    def _spec(self, name, peak=400.0):
        return {
            "version": 1,
            "name": name,
            "network": {"kind": "grid", "rows": 2, "cols": 2},
            "demand": [
                {"kind": "od", "name": "main", "origin": "Tn0->I0_0",
                 "destination": "I1_0->Ts0",
                 "profile": {"kind": "constant", "rate": peak, "duration": 150.0}}
            ],
            "horizon": 200,
        }

    def test_make_experiment_dispatch(self):
        from repro.eval.harness import ScenarioExperiment, make_experiment

        assert isinstance(make_experiment(TINY_SCALE), GridExperiment)
        experiment = make_experiment(TINY_SCALE, scenario=self._spec("a"))
        assert isinstance(experiment, ScenarioExperiment)
        env = experiment.train_env()
        assert env.config.horizon_ticks == 200

    def test_scenario_experiment_rejects_raw_spec(self):
        from repro.eval.harness import ScenarioExperiment

        with pytest.raises(ConfigError, match="resolve_scenario"):
            ScenarioExperiment(self._spec("a"), TINY_SCALE)

    def test_run_table2_with_scenario(self):
        factories = {"Fixedtime": lambda env: FixedTimeSystem(env)}
        scale = TINY_SCALE.with_episodes(0)
        table = run_table2(scale, factories, seed=1, scenario=self._spec("a"))
        assert table.patterns == ("a",)
        travel_time = table.value("Fixedtime", "a")
        assert np.isfinite(travel_time) and travel_time > 0

    def test_run_scenario_table_generalisation_matrix(self):
        from repro.eval.comparison import run_scenario_table

        factories = {"Fixedtime": lambda env: FixedTimeSystem(env)}
        scale = TINY_SCALE.with_episodes(0)
        table = run_scenario_table(
            scale,
            {"light": self._spec("light", 300.0), "heavy": self._spec("heavy", 700.0)},
            factories,
            seed=1,
        )
        assert table.patterns == ("light", "heavy")
        row = table.rows["Fixedtime"]
        assert set(row) == {"light", "heavy"}
        assert all(np.isfinite(v) for v in row.values())
        assert "light" in table.formatted("matrix")

    def test_run_scenario_table_rejects_layout_mismatch(self):
        from repro.eval.comparison import run_scenario_table

        bigger = self._spec("big")
        bigger["network"] = {"kind": "grid", "rows": 3, "cols": 3}
        bigger["demand"][0]["destination"] = "I2_0->Ts0"
        with pytest.raises(ConfigError, match="agent layout"):
            run_scenario_table(
                TINY_SCALE.with_episodes(0),
                {"small": self._spec("small"), "big": bigger},
                {"Fixedtime": lambda env: FixedTimeSystem(env)},
            )

    def test_run_scenario_table_rejects_unknown_train_on(self):
        from repro.eval.comparison import run_scenario_table

        with pytest.raises(ConfigError, match="train_on"):
            run_scenario_table(
                TINY_SCALE.with_episodes(0),
                {"only": self._spec("only")},
                {"Fixedtime": lambda env: FixedTimeSystem(env)},
                train_on="nope",
            )
