"""Hung-worker detection in parallel_map: terminate and name the culprit."""

from __future__ import annotations

import time

import pytest

from repro.errors import SimulationError
from repro.perf.parallel import parallel_map


class TestTimeout:
    def test_fast_workers_unaffected_by_timeout(self):
        assert parallel_map(
            lambda x: x * 2, [1, 2, 3, 4], workers=2, timeout_s=30.0
        ) == [2, 4, 6, 8]

    def test_hung_worker_raises_naming_its_items(self):
        def maybe_hang(seed: int) -> int:
            if seed == 1:
                time.sleep(120.0)  # deliberately hung worker
            return seed

        start = time.monotonic()
        with pytest.raises(SimulationError) as excinfo:
            parallel_map(maybe_hang, [0, 1, 2, 3], workers=2, timeout_s=1.0)
        elapsed = time.monotonic() - start
        assert elapsed < 30.0, "hung worker was not terminated promptly"
        message = str(excinfo.value)
        assert "timed out" in message
        # Worker 1 owns the round-robin shard [1, 3] — the report names
        # the unresponsive worker and the seeds it was still processing.
        assert "worker 1" in message
        assert "1, 3" in message
        assert "worker 0" not in message

    def test_all_workers_hung_reports_each(self):
        def hang(seed: int) -> int:
            time.sleep(120.0)
            return seed

        with pytest.raises(SimulationError) as excinfo:
            parallel_map(hang, [10, 11], workers=2, timeout_s=0.5)
        message = str(excinfo.value)
        assert "worker 0" in message
        assert "worker 1" in message
        assert "10" in message and "11" in message

    def test_serial_path_ignores_timeout(self):
        # workers=0 runs inline; the timeout knob must not change results.
        assert parallel_map(
            lambda x: x + 1, [1, 2], workers=0, timeout_s=0.001
        ) == [2, 3]

    def test_worker_exception_still_raises_runtime_error(self):
        def boom(x: int) -> int:
            raise ValueError(f"bad item {x}")

        with pytest.raises(RuntimeError, match="bad item"):
            parallel_map(boom, [1, 2, 3], workers=2, timeout_s=30.0)

    def test_multiseed_exposes_timeout_knob(self):
        import inspect

        from repro.eval.multiseed import run_multiseed

        assert "timeout_s" in inspect.signature(run_multiseed).parameters
