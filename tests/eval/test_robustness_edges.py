"""Robustness-evaluation edge cases: empty sweeps, dead fleets, NaN gaps."""

from __future__ import annotations

import math

import pytest

from repro.agents import MaxPressureSystem
from repro.errors import ConfigError, FaultInjectionError
from repro.eval.harness import ExperimentScale, GridExperiment
from repro.eval.robustness import (
    DegradationCurve,
    RobustnessPoint,
    evaluate_under_faults,
    formatted_degradation_table,
    run_robustness_sweep,
)
from repro.rl.runner import EvaluationResult

TINY = ExperimentScale(
    rows=2,
    cols=2,
    peak_rate=300.0,
    t_peak=60.0,
    light_duration=120.0,
    horizon_ticks=60,
    max_ticks=480,
    train_episodes=0,
)


def fake_result(travel_time: float, completion: float = 0.5) -> EvaluationResult:
    return EvaluationResult(
        agent_name="Fake",
        average_travel_time=travel_time,
        average_wait=1.0,
        finished_vehicles=int(completion * 100),
        total_created=100,
        episodes=1,
        invalid_episodes=0 if math.isfinite(travel_time) else 1,
    )


def fake_curve(name: str, travel_times: list[float]) -> DegradationCurve:
    curve = DegradationCurve(agent_name=name, kinds=("message",))
    for rate, tt in zip((0.0, 0.2, 0.4), travel_times):
        curve.points.append(RobustnessPoint(fault_rate=rate, result=fake_result(tt)))
    return curve


class TestEmptySweeps:
    def test_empty_rate_grid_yields_empty_curve(self):
        experiment = GridExperiment(TINY, seed=0)
        agent = MaxPressureSystem(experiment.train_env(1))
        curve = run_robustness_sweep(agent, experiment, fault_rates=())
        assert curve.points == []
        assert curve.rates == []
        assert curve.degradation_ratio() == 1.0

    def test_no_curves_table_renders_placeholder(self):
        assert formatted_degradation_table([]) == "(no degradation curves)"

    def test_empty_curves_table_does_not_crash(self):
        curve = DegradationCurve(agent_name="Empty", kinds=("message",))
        table = formatted_degradation_table([curve])
        assert "Empty" in table

    def test_unknown_kind_rejected(self):
        experiment = GridExperiment(TINY, seed=0)
        agent = MaxPressureSystem(experiment.train_env(1))
        with pytest.raises(ConfigError):
            run_robustness_sweep(agent, experiment, kinds=("gremlins",))

    def test_out_of_range_rate_rejected_before_any_evaluation(self):
        experiment = GridExperiment(TINY, seed=0)
        agent = MaxPressureSystem(experiment.train_env(1))
        with pytest.raises(FaultInjectionError):
            run_robustness_sweep(agent, experiment, fault_rates=(0.1, 1.5))


class TestAllControllersDead:
    def test_fully_dead_episode_still_evaluates(self):
        """controller_failure=1.0 kills every intersection: the wrapped
        fallback drives the whole grid and the evaluation stays sane."""
        experiment = GridExperiment(TINY, seed=0)
        agent = MaxPressureSystem(experiment.train_env(1))
        result = evaluate_under_faults(
            agent, experiment, fault_rate=1.0, kinds=("controller",)
        )
        assert result.episodes == 1
        assert 0.0 <= result.completion_rate <= 1.0
        # A finite or NaN travel time are both legal outcomes (NaN when
        # nothing finished inside the horizon) — a crash is not.
        assert isinstance(result.average_travel_time, float)


class TestNanReporting:
    def test_nan_endpoint_gives_nan_ratio(self):
        curve = fake_curve("NaNTail", [100.0, 120.0, float("nan")])
        assert math.isnan(curve.degradation_ratio())

    def test_nan_start_gives_nan_ratio(self):
        curve = fake_curve("NaNHead", [float("nan"), 120.0, 130.0])
        assert math.isnan(curve.degradation_ratio())

    def test_finite_curve_ratio_unchanged(self):
        curve = fake_curve("Fine", [100.0, 120.0, 150.0])
        assert curve.degradation_ratio() == pytest.approx(1.5)

    def test_table_renders_question_marks_not_nan(self):
        curves = [
            fake_curve("Healthy", [100.0, 120.0, 150.0]),
            fake_curve("Broken", [100.0, float("nan"), float("inf")]),
        ]
        table = formatted_degradation_table(curves)
        assert "nan" not in table.lower()
        assert "inf" not in table.lower()
        assert "?" in table
        # Rows stay width-aligned despite the gaps.
        widths = {len(line) for line in table.splitlines()}
        assert len(widths) == 1

    def test_all_nan_curve_is_stable(self):
        curve = fake_curve("AllNaN", [float("nan")] * 3)
        table = formatted_degradation_table([curve])
        assert table.count("?") >= 4  # three cells + the ratio column
        assert math.isnan(curve.degradation_ratio())
