"""Reporting (CSV/ASCII charts) and multi-seed aggregation tests."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.agents.fixed_time import FixedTimeSystem
from repro.errors import ConfigError
from repro.eval.harness import ExperimentScale
from repro.eval.multiseed import run_multiseed
from repro.eval.reporting import (
    ascii_chart,
    export_comparison_csv,
    export_history_csv,
    sparkline,
    training_report,
)
from repro.rl.runner import train

from helpers import make_env


class TestSparkline:
    def test_length_capped_at_width(self):
        assert len(sparkline(range(200), width=50)) == 50

    def test_short_series_kept(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=50)) == 3

    def test_constant_series(self):
        line = sparkline([5.0] * 10)
        assert len(set(line)) == 1

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8, 9])
        indices = [" .:-=+*#%@".index(ch) for ch in line]
        assert indices == sorted(indices)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            sparkline([])


class TestAsciiChart:
    def test_contains_legend_and_bounds(self):
        chart = ascii_chart(
            {"a": [10, 5, 1], "b": [8, 8, 8]}, height=6, title="demo"
        )
        assert "demo" in chart
        assert "o=a" in chart and "x=b" in chart
        assert "10.0" in chart and "1.0" in chart

    def test_requires_series(self):
        with pytest.raises(ConfigError):
            ascii_chart({})

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigError):
            ascii_chart({"a": []})

    def test_long_series_resampled(self):
        chart = ascii_chart({"a": np.linspace(0, 1, 500)}, width=40, height=5)
        longest = max(len(line) for line in chart.splitlines())
        assert longest < 60


class TestCsvExport:
    def _history(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=50)
        return train(FixedTimeSystem(env), env, episodes=3, seed=0)

    def test_history_csv(self, tiny_grid, tmp_path):
        history = self._history(tiny_grid)
        path = tmp_path / "history.csv"
        export_history_csv(history, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["episode", "avg_wait_s", "total_reward", "duration_s"]
        assert len(rows) == 4

    def test_comparison_csv_ragged(self, tmp_path):
        path = tmp_path / "cmp.csv"
        export_comparison_csv({"a": [1.0, 2.0], "b": [3.0]}, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["episode", "a", "b"]
        assert rows[2][2] == ""  # missing value padded

    def test_comparison_requires_data(self, tmp_path):
        with pytest.raises(ConfigError):
            export_comparison_csv({}, tmp_path / "x.csv")

    def test_training_report(self, tiny_grid):
        history = self._history(tiny_grid)
        report = training_report(history)
        assert "Fixedtime" in report
        assert "best" in report


class TestMultiSeed:
    def test_aggregates_over_seeds(self):
        scale = ExperimentScale(
            rows=2, cols=2, peak_rate=400.0, t_peak=60.0, light_duration=120.0,
            horizon_ticks=120, max_ticks=960, train_episodes=1,
        )
        result = run_multiseed(
            scale,
            lambda env, seed: FixedTimeSystem(env),
            "Fixedtime",
            seeds=[0, 1, 2],
        )
        assert len(result.runs) == 3
        assert result.curve_mean.shape == (1,)
        assert result.travel_time_mean > 0
        assert 0 <= result.completion_mean <= 1
        assert "Fixedtime" in result.summary()

    def test_different_seeds_differ(self):
        scale = ExperimentScale(
            rows=2, cols=2, peak_rate=1200.0, t_peak=60.0, light_duration=120.0,
            horizon_ticks=120, max_ticks=960, train_episodes=1,
        )
        result = run_multiseed(
            scale,
            lambda env, seed: FixedTimeSystem(env),
            "Fixedtime",
            seeds=[0, 1],
        )
        times = [run.eval_travel_time for run in result.runs]
        assert times[0] != times[1]

    def test_empty_seeds_rejected(self):
        scale = ExperimentScale()
        with pytest.raises(ConfigError):
            run_multiseed(scale, lambda env, seed: FixedTimeSystem(env), "X", [])
