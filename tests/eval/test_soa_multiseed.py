"""The SoA engine must be invisible above the sim layer.

Two integration contracts on top of the kernel-level lockstep tests:

* ``EnvConfig(engine="soa")`` — a :class:`TrafficSignalEnv` backed by a
  single-replica SoA engine produces bit-identical observations,
  rewards, dones and infos to the object-engine env, episode by episode.
* ``run_multiseed(..., engine="soa")`` — batching all seeds into one
  engine reproduces the serial object-engine sweep exactly (wait curves,
  eval travel times, completion rates), for both a static controller and
  a learning agent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.harness import ExperimentScale, GridExperiment
from repro.eval.multiseed import run_multiseed

pytestmark = pytest.mark.soa

TINY = ExperimentScale(
    rows=2,
    cols=2,
    peak_rate=600.0,
    t_peak=60.0,
    light_duration=120.0,
    horizon_ticks=80,
    max_ticks=3600,
    train_episodes=1,
    eval_episodes=1,
)


def _rollout(engine: str, episodes: int = 2):
    """Random-action rollout; returns every step's full outcome."""
    experiment = GridExperiment(TINY, seed=3)
    env = experiment.train_env(1)
    env.config.engine = engine
    rng = np.random.default_rng(99)
    trace = []
    for episode in range(episodes):
        observations = env.reset(seed=200 + episode)
        trace.append({k: v.copy() for k, v in observations.items()})
        done = False
        while not done:
            actions = {
                node_id: int(rng.integers(space.n))
                for node_id, space in env.action_spaces.items()
            }
            result = env.step(actions)
            trace.append(
                (
                    {k: v.copy() for k, v in result.observations.items()},
                    result.rewards,
                    result.done,
                    result.info,
                )
            )
            done = result.done
    return trace


def _assert_traces_equal(object_trace, soa_trace):
    assert len(object_trace) == len(soa_trace)
    for obj, soa in zip(object_trace, soa_trace):
        if isinstance(obj, dict):  # reset observations
            assert obj.keys() == soa.keys()
            for node_id in obj:
                np.testing.assert_array_equal(obj[node_id], soa[node_id])
            continue
        obs_o, rew_o, done_o, info_o = obj
        obs_s, rew_s, done_s, info_s = soa
        for node_id in obs_o:
            np.testing.assert_array_equal(obs_o[node_id], obs_s[node_id])
        assert rew_o == rew_s
        assert done_o == done_s
        assert info_o == info_s


class TestEnvEngineSwitch:
    def test_soa_env_matches_object_env(self):
        _assert_traces_equal(_rollout("object"), _rollout("soa"))

    def test_unknown_engine_rejected(self):
        from repro.env.tsc_env import EnvConfig
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="engine"):
            EnvConfig(engine="vectorized")


class TestMultiseedEngineSwitch:
    def _assert_equal_sweeps(self, serial, batched):
        assert len(serial.runs) == len(batched.runs)
        for run_s, run_b in zip(serial.runs, batched.runs):
            assert run_s.seed == run_b.seed
            assert run_s.eval_travel_time == run_b.eval_travel_time
            assert run_s.completion_rate == run_b.completion_rate
            np.testing.assert_array_equal(run_s.wait_curve, run_b.wait_curve)

    def test_static_controller_matches_serial(self):
        from repro.agents import MaxPressureSystem

        def sweep(engine):
            return run_multiseed(
                TINY,
                lambda env, seed: MaxPressureSystem(env),
                model_name="MaxPressure",
                seeds=[0, 1, 2],
                engine=engine,
            )

        self._assert_equal_sweeps(sweep("object"), sweep("soa"))

    def test_learning_agent_matches_serial(self):
        from repro.agents import PairUpLightSystem

        def sweep(engine):
            return run_multiseed(
                TINY,
                lambda env, seed: PairUpLightSystem(env, seed=seed),
                model_name="PairUpLight",
                seeds=[0, 1],
                engine=engine,
            )

        self._assert_equal_sweeps(sweep("object"), sweep("soa"))

    def test_unknown_engine_rejected(self):
        from repro.agents import MaxPressureSystem
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="engine"):
            run_multiseed(
                TINY,
                lambda env, seed: MaxPressureSystem(env),
                model_name="MaxPressure",
                seeds=[0],
                engine="fast",
            )
