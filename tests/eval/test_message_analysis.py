"""Message-interpretability probe tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.pairuplight import PairUpLightSystem
from repro.errors import ConfigError
from repro.eval.message_analysis import MessageLog, analyse, probe_messages
from repro.rl.runner import train

from helpers import make_env


class TestProbe:
    def test_probe_collects_per_agent_per_step(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=60)
        agent = PairUpLightSystem(env, seed=0)
        log = probe_messages(agent, env, episodes=1, seed=0)
        steps = 60 // env.config.delta_t
        assert len(log) == steps * len(env.agent_ids)

    def test_messages_in_unit_interval(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=60)
        agent = PairUpLightSystem(env, seed=0)
        log = probe_messages(agent, env, episodes=1, seed=0)
        assert all(0.0 < m < 1.0 for m in log.messages)

    def test_bad_episodes_rejected(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=60)
        agent = PairUpLightSystem(env, seed=0)
        with pytest.raises(ConfigError):
            probe_messages(agent, env, episodes=0)


class TestAnalyse:
    def test_empty_log_rejected(self):
        with pytest.raises(ConfigError):
            analyse(MessageLog())

    def test_constant_messages_not_informative(self):
        log = MessageLog(
            messages=[0.5] * 20,
            congestion=list(np.linspace(0, 10, 20)),
            pressure=list(np.linspace(0, 5, 20)),
            actions=[0] * 20,
        )
        report = analyse(log)
        assert report.message_std == 0.0
        assert not report.is_informative

    def test_correlated_messages_informative(self):
        congestion = np.linspace(0, 10, 50)
        log = MessageLog(
            messages=list(0.05 * congestion + 0.1),
            congestion=list(congestion),
            pressure=list(congestion / 2),
            actions=[0] * 50,
        )
        report = analyse(log)
        assert report.congestion_correlation == pytest.approx(1.0)
        assert report.is_informative

    def test_formatted_report(self):
        log = MessageLog(
            messages=[0.1, 0.9], congestion=[0.0, 5.0],
            pressure=[0.0, 2.0], actions=[0, 1],
        )
        text = analyse(log).formatted()
        assert "corr(message, sender congestion)" in text

    def test_trained_agent_messages_vary_with_traffic(self, tiny_grid):
        """After brief training under congestion, messages are not constant."""
        env = make_env(tiny_grid, peak_rate=900, t_peak=100, horizon_ticks=300)
        agent = PairUpLightSystem(env, seed=0)
        train(agent, env, episodes=8, seed=0)
        log = probe_messages(agent, env, episodes=1, seed=99)
        report = analyse(log)
        assert report.message_std > 0
