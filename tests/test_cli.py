"""CLI tests (direct invocation of repro.cli.main)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

FAST = [
    "--rows", "2", "--cols", "2", "--peak-rate", "400",
    "--t-peak", "60", "--horizon", "120", "--episodes", "1",
]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.model == "PairUpLight"
        assert args.pattern == 1

    def test_unknown_model_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "Nope"])


class TestCommands:
    def test_train_writes_history(self, tmp_path, capsys):
        history_path = tmp_path / "history.json"
        code = main(
            ["train", *FAST, "--model", "SingleAgent",
             "--history-out", str(history_path)]
        )
        assert code == 0
        payload = json.loads(history_path.read_text())
        assert payload["model"] == "SingleAgent"
        assert len(payload["wait_curve"]) == 1
        assert "trained 1 episodes" in capsys.readouterr().out

    def test_train_writes_weights(self, tmp_path):
        weights_path = tmp_path / "actor.npz"
        code = main(
            ["train", *FAST, "--model", "PairUpLight",
             "--weights-out", str(weights_path)]
        )
        assert code == 0
        assert weights_path.exists()

    def test_train_static_model_skips_weights(self, tmp_path, capsys):
        code = main(
            ["train", *FAST, "--model", "Fixedtime",
             "--weights-out", str(tmp_path / "w.npz")]
        )
        assert code == 0
        assert "skipping" in capsys.readouterr().out

    def test_evaluate_fixed_time(self, capsys):
        code = main(
            ["evaluate", *FAST, "--model", "Fixedtime", "--episodes", "0",
             "--eval-patterns", "1", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Avg travel time" in out

    def test_compare_table3_subset(self, capsys):
        code = main(
            ["compare", *FAST, "--table", "3", "--models", "Fixedtime"]
        )
        assert code == 0
        assert "Table III" in capsys.readouterr().out

    def test_compare_unknown_models_error(self, capsys):
        code = main(["compare", *FAST, "--models", "Bogus"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_overhead(self, capsys):
        code = main(["overhead", *FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "PairUpLight" in out
        assert "32" in out


class TestExtendedModels:
    def test_evaluate_maxpressure(self, capsys):
        code = main(
            ["evaluate", *FAST, "--model", "MaxPressure", "--episodes", "0",
             "--eval-patterns", "1"]
        )
        assert code == 0
        assert "Avg travel time" in capsys.readouterr().out

    def test_train_iql(self, capsys):
        code = main(["train", *FAST, "--model", "IQL"])
        assert code == 0
        assert "IQL trained" in capsys.readouterr().out

    def test_evaluate_longest_queue(self, capsys):
        code = main(
            ["evaluate", *FAST, "--model", "LongestQueue", "--episodes", "0",
             "--eval-patterns", "1"]
        )
        assert code == 0


class TestObsCommands:
    """train --telemetry-dir -> obs report/tail round trip."""

    def _telemetry_run(self, tmp_path):
        run_dir = tmp_path / "run"
        code = main(
            ["train", *FAST, "--model", "Fixedtime",
             "--telemetry-dir", str(run_dir)]
        )
        assert code == 0
        return run_dir

    def test_train_writes_run_dir(self, tmp_path, capsys):
        run_dir = self._telemetry_run(tmp_path)
        assert "telemetry written" in capsys.readouterr().out
        names = sorted(p.name for p in run_dir.iterdir())
        assert names == ["events.jsonl", "manifest.json", "metrics.json"]

    def test_obs_report_renders_without_resimulating(self, tmp_path, capsys):
        run_dir = self._telemetry_run(tmp_path)
        capsys.readouterr()
        assert main(["obs", "report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "Fixedtime" in out
        assert "episodes: 1" in out

    def test_obs_report_csv_export(self, tmp_path, capsys):
        run_dir = self._telemetry_run(tmp_path)
        csv_path = tmp_path / "curve.csv"
        assert main(
            ["obs", "report", str(run_dir), "--csv-out", str(csv_path)]
        ) == 0
        rows = csv_path.read_text().strip().splitlines()
        assert rows[0] == "episode,avg_wait_s,total_reward,duration_s"
        assert len(rows) == 2

    def test_obs_tail(self, tmp_path, capsys):
        run_dir = self._telemetry_run(tmp_path)
        capsys.readouterr()
        assert main(["obs", "tail", str(run_dir), "-n", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert "run_end" in lines[-1]

    def test_obs_report_missing_dir_fails_cleanly(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path / "nope")]) != 0
        assert "no event log" in capsys.readouterr().err

    def test_trace_spans_flag_writes_trace(self, tmp_path):
        run_dir = tmp_path / "run"
        code = main(
            ["train", *FAST, "--model", "Fixedtime",
             "--telemetry-dir", str(run_dir), "--trace-spans"]
        )
        assert code == 0
        payload = json.loads((run_dir / "trace.json").read_text())
        assert payload["traceEvents"]


class TestShardedCommand:
    SMALL = ["sharded", "--grid-size", "2x2", "--shards", "2",
             "--ticks", "80", "--serial"]

    def test_defaults(self):
        args = build_parser().parse_args(["sharded"])
        assert args.grid_size == "10x10"
        assert args.shards == 4
        assert args.controller == "fixed_time"

    def test_small_run(self, capsys):
        assert main(self.SMALL) == 0
        out = capsys.readouterr().out
        assert "2x2 grid, 2 shards (serial)" in out
        assert "conservation OK" in out
        assert "edge cut" in out

    def test_grid_size_overrides_rows_cols(self, capsys):
        assert main([*self.SMALL[:1], "--rows", "9", "--cols", "9",
                     "--grid-size", "3x2", "--shards", "2",
                     "--ticks", "60", "--serial"]) == 0
        # "3x2" is width 3, height 2 -> a 2x3 grid, not 9x9
        assert "2x3 grid" in capsys.readouterr().out

    def test_bad_grid_size_exits_2(self, capsys):
        assert main(["sharded", "--grid-size", "banana"]) == 2
        assert "grid size" in capsys.readouterr().err

    def test_too_many_shards_exits_2(self, capsys):
        assert main(["sharded", "--grid-size", "2x2", "--shards", "99",
                     "--ticks", "10", "--serial"]) == 2

    def test_faulted_run_reports_losses(self, capsys):
        assert main([*self.SMALL, "--message-delay", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "message losses" in out

    def test_telemetry_dir_written(self, tmp_path, capsys):
        run_dir = tmp_path / "shard-run"
        assert main([*self.SMALL, "--telemetry-dir", str(run_dir)]) == 0
        assert "telemetry written" in capsys.readouterr().out
        assert (run_dir / "events.jsonl").exists()


class TestZooCommand:
    def test_list(self, capsys):
        assert main(["zoo", "list"]) == 0
        out = capsys.readouterr().out
        assert "commuter_day" in out
        assert "incident_closure" in out

    def test_show_is_valid_spec_json(self, capsys):
        assert main(["zoo", "show", "stadium_surge", "--seed", "3"]) == 0
        from repro.scenarios.spec import compile_spec

        spec = json.loads(capsys.readouterr().out)
        assert spec["name"] == "stadium_surge-s3-4x4"
        compile_spec(spec)

    def test_export_round_trips(self, tmp_path, capsys):
        out_path = tmp_path / "surge.json"
        assert main(
            ["zoo", "export", "stadium_surge", "--seed", "2", "--out", str(out_path)]
        ) == 0
        assert "digest" in capsys.readouterr().out
        from repro.scenarios.spec import load_spec, spec_digest
        from repro.scenarios.zoo import build_zoo_spec

        exported = load_spec(out_path)
        assert spec_digest(exported) == spec_digest(
            build_zoo_spec("stadium_surge", seed=2)
        )

    def test_unknown_entry_exits_2(self, capsys):
        assert main(["zoo", "show", "nope"]) == 2
        assert "commuter_day" in capsys.readouterr().err


class TestScenarioFlag:
    def test_compare_accepts_zoo_scenario(self, capsys):
        code = main(
            ["compare", "--models", "Fixedtime", "--scenario",
             "zoo:incident_closure", "--horizon", "300", "--episodes", "0",
             "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "incident_closure-s0-4x4" in out
        assert "Fixedtime" in out

    def test_compare_accepts_spec_file(self, tmp_path, capsys):
        from repro.scenarios.spec import save_spec
        from repro.scenarios.zoo import build_zoo_spec

        path = tmp_path / "spec.json"
        save_spec(path, build_zoo_spec("commuter_day", seed=1, rows=2, cols=2))
        code = main(
            ["compare", "--models", "Fixedtime", "--scenario", str(path),
             "--horizon", "200", "--episodes", "0"]
        )
        assert code == 0
        assert "commuter_day-s1-2x2" in capsys.readouterr().out

    def test_scenario_with_table3_rejected(self, capsys):
        assert main(
            ["compare", "--table", "3", "--scenario", "zoo:commuter_day"]
        ) == 2

    def test_bad_scenario_path_exits_2(self, capsys):
        assert main(
            ["compare", "--models", "Fixedtime", "--scenario", "/no/such.json",
             "--episodes", "0"]
        ) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_multiseed_accepts_scenario(self, capsys):
        code = main(
            ["multiseed", "--model", "Fixedtime", "--seeds", "2",
             "--scenario", "zoo:commuter_day", "--horizon", "200",
             "--episodes", "1", "--rows", "2", "--cols", "2"]
        )
        assert code == 0
        assert "seed 2" in capsys.readouterr().out
