"""Perf harness: timers, regression gate logic, and the smoke benchmark.

The smoke benchmark (marked ``perf``) is excluded from the default /
tier-1 run via ``addopts = -m "not perf"``; select it explicitly with
``pytest -m perf``.  The timer and gate-logic tests are plain fast unit
tests and always run.
"""

from __future__ import annotations

import json

import pytest

from repro.perf.regression import evaluate_gate
from repro.perf.timers import PhaseTimers


class TestPhaseTimers:
    def test_disabled_sections_record_nothing(self):
        timers = PhaseTimers()
        with timers.section("work"):
            pass
        assert timers.report() == {}
        assert timers.seconds("work") == 0.0

    def test_enabled_sections_accumulate(self):
        timers = PhaseTimers()
        timers.enable()
        for _ in range(3):
            with timers.section("work"):
                pass
        report = timers.report()
        assert report["work"]["calls"] == 3
        assert report["work"]["seconds"] >= 0.0

    def test_reset_clears(self):
        timers = PhaseTimers()
        timers.enable()
        with timers.section("a"):
            pass
        timers.reset()
        assert timers.report() == {}

    def test_add_external_measurement(self):
        timers = PhaseTimers()
        timers.add("sim_tick", 1.5, calls=600)
        assert timers.seconds("sim_tick") == 1.5
        assert timers.calls("sim_tick") == 600

    def test_section_survives_exception(self):
        timers = PhaseTimers()
        timers.enable()
        with pytest.raises(ValueError):
            with timers.section("bad"):
                raise ValueError("boom")
        assert timers.calls("bad") == 1

    def test_runner_hooks_record_phases(self):
        """train() phases show up in the global registry when enabled."""
        from repro.agents import MaxPressureSystem
        from repro.eval.harness import ExperimentScale, GridExperiment
        from repro.perf.timers import TIMERS
        from repro.rl.runner import train

        scale = ExperimentScale(
            rows=2, cols=2, peak_rate=600.0, t_peak=60.0, light_duration=120.0,
            horizon_ticks=60, max_ticks=3600, train_episodes=1, eval_episodes=1,
        )
        env = GridExperiment(scale, seed=0).train_env(1)
        TIMERS.reset()
        TIMERS.enable()
        try:
            train(MaxPressureSystem(env), env, episodes=1, seed=0)
        finally:
            TIMERS.disable()
        report = TIMERS.report()
        assert report["forward"]["calls"] > 0
        assert report["env_step"]["calls"] > 0
        assert report["update"]["calls"] == 1
        TIMERS.reset()


class TestRegressionGate:
    def test_within_budget_passes(self):
        verdict = evaluate_gate(current=900.0, baseline=1000.0, threshold=0.2)
        assert verdict.ok
        assert "OK" in verdict.summary()

    def test_exact_floor_passes(self):
        assert evaluate_gate(800.0, 1000.0, threshold=0.2).ok

    def test_below_floor_fails(self):
        verdict = evaluate_gate(current=799.0, baseline=1000.0, threshold=0.2)
        assert not verdict.ok
        assert "REGRESSION" in verdict.summary()

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            evaluate_gate(1.0, 0.0)
        with pytest.raises(ValueError):
            evaluate_gate(1.0, 1.0, threshold=1.5)

    def test_check_against_file(self, tmp_path, monkeypatch):
        import repro.perf.regression as regression

        baseline_file = tmp_path / "BENCH_engine.json"
        baseline_file.write_text(json.dumps({"ticks_per_second": 1000.0}))
        monkeypatch.setattr(
            regression,
            "bench_engine",
            lambda repeats, measure_ticks: {"ticks_per_second": 950.0},
        )
        verdict = regression.check_engine_regression(str(baseline_file))
        assert verdict.ok
        assert verdict.baseline_ticks_per_second == 1000.0

    def test_gate_script_exit_codes(self, tmp_path, monkeypatch):
        import sys

        sys.path.insert(0, "scripts")
        try:
            import check_perf_regression
        finally:
            sys.path.pop(0)
        assert check_perf_regression.main(["--baseline", str(tmp_path / "none.json")]) == 2


@pytest.mark.perf
class TestSmokeBenchmarks:
    """Tiny-budget runs of the real benchmark entry points."""

    def test_engine_smoke(self):
        from repro.perf.bench import bench_engine

        result = bench_engine(warmup_ticks=50, measure_ticks=100, repeats=1)
        assert result["benchmark"] == "engine"
        assert result["ticks_per_second"] > 0
        assert result["baseline"]["ticks_per_second"] > 0

    def test_write_benchmarks_engine(self, tmp_path):
        from repro.perf.bench import write_benchmarks

        written = write_benchmarks(
            str(tmp_path), which="engine", warmup_ticks=50, measure_ticks=100,
            repeats=1,
        )
        payload = json.loads((tmp_path / "BENCH_engine.json").read_text())
        assert payload["ticks_per_second"] > 0
        assert written["engine"].endswith("BENCH_engine.json")
