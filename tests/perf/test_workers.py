"""Persistent worker pool: ordering, failure, timeout, lifecycle.

These are fast unit tests of :class:`repro.perf.workers.WorkerPool` —
the request/reply substrate under the sharded simulation's worker
driver.  The protocol-level guarantees (one parallel round trip per
``call_all``, replies in worker order, errors re-raised in the parent)
are pinned here so the coordinator tests can assume them.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import SimulationError
from repro.perf.workers import WorkerPool


class Counter:
    """Tiny stateful target proving workers are long-lived."""

    def __init__(self, start: int) -> None:
        self.value = start

    def bump(self, amount: int = 1) -> int:
        self.value += amount
        return self.value

    def pid(self) -> int:
        return os.getpid()

    def boom(self) -> None:
        raise ValueError("intentional failure")

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


def _pool(starts=(0, 100, 200), **kwargs) -> WorkerPool:
    return WorkerPool([lambda s=s: Counter(s) for s in starts], **kwargs)


class TestCallAll:
    def test_results_in_worker_order(self):
        with _pool() as pool:
            assert pool.call_all("bump") == [1, 101, 201]

    def test_state_persists_between_rounds(self):
        with _pool() as pool:
            pool.call_all("bump")
            pool.call_all("bump", [(10,), (10,), (10,)])
            assert pool.call_all("bump") == [12, 112, 212]

    def test_distinct_processes(self):
        with _pool() as pool:
            pids = pool.call_all("pid")
            assert len(set(pids)) == 3
            assert os.getpid() not in pids
            assert pool.pids == pids

    def test_args_list_length_checked(self):
        with _pool() as pool:
            with pytest.raises(SimulationError):
                pool.call_all("bump", [(1,)])

    def test_single_worker_call(self):
        with _pool() as pool:
            assert pool.call(1, "bump", 5) == 105
            # other workers untouched
            assert pool.call(0, "bump") == 1


class TestFailures:
    def test_worker_exception_reraised(self):
        with _pool() as pool:
            with pytest.raises(RuntimeError, match="intentional failure"):
                pool.call(0, "boom")
            # the pool survives a failed request
            assert pool.call(1, "bump") == 101

    def test_factory_failure_surfaces_at_startup(self):
        def bad_factory():
            raise OSError("no resources")

        with pytest.raises(RuntimeError, match="no resources"):
            WorkerPool([bad_factory])

    def test_timeout_raises_simulation_error(self):
        with _pool(starts=(0,), timeout_s=0.2) as pool:
            with pytest.raises(SimulationError, match="unresponsive"):
                pool.call(0, "sleep", 30.0)

    def test_empty_factories_rejected(self):
        with pytest.raises(SimulationError):
            WorkerPool([])


class TestLifecycle:
    def test_close_is_idempotent(self):
        pool = _pool()
        pool.close()
        pool.close()
        with pytest.raises(SimulationError):
            pool.call_all("bump")

    def test_context_manager_closes(self):
        with _pool() as pool:
            pool.call_all("bump")
        with pytest.raises(SimulationError):
            pool.call(0, "bump")

    def test_len(self):
        with _pool() as pool:
            assert len(pool) == 3
