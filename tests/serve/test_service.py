"""ControlService: guaranteed per-tick coverage under every failure mode."""

from __future__ import annotations

import pytest

from helpers import make_env
from repro.faults.config import FaultConfig
from repro.serve import BACKOFF, ControlService, PolicyRuntime, PRIMARY, ServeConfig

pytestmark = pytest.mark.serve


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class ScriptedPolicy:
    """Stand-in agent whose per-tick behaviour is scripted by the test."""

    name = "Scripted"

    def __init__(self, behaviour) -> None:
        self.behaviour = behaviour
        self.calls = 0

    def begin_episode(self, env, training: bool) -> None:
        pass

    def act(self, observations, env, training: bool):
        self.calls += 1
        return self.behaviour(observations, env, self.calls)

    def state_dict(self):
        return {}

    def load_state_dict(self, state) -> None:
        pass


def make_service(env, behaviour, config=None, clock=None):
    runtime = PolicyRuntime(lambda: ScriptedPolicy(behaviour))
    return ControlService(
        env,
        runtime,
        config or ServeConfig(watchdog=False),
        clock=clock or FakeClock(),
    )


def healthy(observations, env, call):
    return {node: 0 for node in env.agent_ids}


class TestCoverageGuarantee:
    def test_healthy_policy_serves_its_own_actions(self, tiny_grid):
        env = make_env(tiny_grid)
        service = make_service(env, healthy)
        health = service.serve(ticks=5, seed=0)
        assert health.healthy
        assert health.intersections_served == 5 * len(env.agent_ids)
        assert health.fallback_ticks == 0
        assert all(service.fallbacks.mode(n) == PRIMARY for n in env.agent_ids)

    def test_raising_policy_never_leaks_and_demotes_all(self, tiny_grid):
        env = make_env(tiny_grid)

        def explode(observations, env, call):
            raise RuntimeError("policy crashed")

        service = make_service(env, explode)
        health = service.serve(ticks=4, seed=0)
        assert health.healthy  # every intersection still served
        assert health.policy_exceptions == 4
        assert health.fallback_ticks == 4 * len(env.agent_ids)
        assert all(service.fallbacks.mode(n) == BACKOFF for n in env.agent_ids)

    def test_nan_actions_are_invalid_and_covered(self, tiny_grid):
        env = make_env(tiny_grid)

        def nans(observations, env, call):
            return {node: float("nan") for node in env.agent_ids}

        service = make_service(env, nans)
        health = service.serve(ticks=3, seed=0)
        assert health.healthy
        assert health.invalid_actions == 3 * len(env.agent_ids)
        assert health.policy_exceptions == 0

    def test_out_of_range_action_covered_per_intersection(self, tiny_grid):
        env = make_env(tiny_grid)
        bad_node = env.agent_ids[0]

        def one_bad(observations, env, call):
            actions = {node: 0 for node in env.agent_ids}
            actions[bad_node] = 999
            return actions

        service = make_service(env, one_bad)
        observations = service.start_episode(seed=0)
        actions = service.decide(observations)
        assert set(actions) == set(env.agent_ids)
        assert env.action_spaces[bad_node].contains(actions[bad_node])
        assert service.fallbacks.mode(bad_node) == BACKOFF
        healthy_nodes = [n for n in env.agent_ids if n != bad_node]
        assert all(service.fallbacks.mode(n) == PRIMARY for n in healthy_nodes)

    def test_missing_action_key_is_invalid(self, tiny_grid):
        env = make_env(tiny_grid)
        dropped = env.agent_ids[-1]

        def drop_one(observations, env, call):
            return {n: 0 for n in env.agent_ids if n != dropped}

        service = make_service(env, drop_one)
        observations = service.start_episode(seed=0)
        actions = service.decide(observations)
        assert dropped in actions
        assert service.health.invalid_actions == 1


class TestDeadline:
    def test_slow_policy_is_a_deadline_miss(self, tiny_grid):
        env = make_env(tiny_grid)
        clock = FakeClock()

        def slow(observations, env, call):
            clock.advance(0.200)  # 200 ms against a 50 ms deadline
            return {node: 0 for node in env.agent_ids}

        service = make_service(
            env, slow, config=ServeConfig(deadline_ms=50.0, watchdog=False),
            clock=clock,
        )
        observations = service.start_episode(seed=0)
        actions = service.decide(observations)
        assert set(actions) == set(env.agent_ids)
        assert service.health.deadline_misses == 1
        assert all(service.fallbacks.mode(n) == BACKOFF for n in env.agent_ids)

    def test_fast_policy_keeps_primary(self, tiny_grid):
        env = make_env(tiny_grid)
        clock = FakeClock()

        def fast(observations, env, call):
            clock.advance(0.001)
            return {node: 0 for node in env.agent_ids}

        service = make_service(
            env, fast, config=ServeConfig(deadline_ms=50.0, watchdog=False),
            clock=clock,
        )
        observations = service.start_episode(seed=0)
        service.decide(observations)
        assert service.health.deadline_misses == 0
        assert all(service.fallbacks.mode(n) == PRIMARY for n in env.agent_ids)


class TestRecovery:
    def test_policy_recovers_and_is_promoted(self, tiny_grid):
        env = make_env(tiny_grid)

        def flaky(observations, env, call):
            if call <= 2:
                raise RuntimeError("transient crash")
            return {node: 0 for node in env.agent_ids}

        config = ServeConfig(
            watchdog=False, backoff_base_ticks=1, promote_after=1
        )
        runtime = PolicyRuntime(lambda: ScriptedPolicy(flaky))
        service = ControlService(env, runtime, config, clock=FakeClock())
        health = service.serve(ticks=8, seed=0)
        assert health.healthy
        assert all(service.fallbacks.mode(n) == PRIMARY for n in env.agent_ids)
        assert all(
            service.fallbacks.state(n).promotions >= 1 for n in env.agent_ids
        )


class TestControllerFaults:
    def test_dead_controllers_served_by_fallback(self, tiny_grid):
        env = make_env(
            tiny_grid, faults=FaultConfig(controller_failure=1.0), seed=3
        )
        service = make_service(env, healthy)
        health = service.serve(ticks=4, seed=0)
        assert health.healthy
        # Every intersection is dead every tick -> all decisions fall back.
        assert health.fallback_ticks == 4 * len(env.agent_ids)
        assert health.controller_faults == 4 * len(env.agent_ids)

    def test_observations_always_produce_full_action_dict(self, tiny_grid):
        env = make_env(
            tiny_grid,
            faults=FaultConfig(controller_failure=0.5, message_drop=0.3),
            seed=5,
        )
        service = make_service(env, healthy)
        observations = service.start_episode(seed=1)
        for _ in range(6):
            actions = service.decide(observations)
            assert set(actions) == set(env.agent_ids)
            for node, action in actions.items():
                assert env.action_spaces[node].contains(int(action))
            observations = env.step(actions).observations


class TestHealthReport:
    def test_report_is_json_safe_and_complete(self, tiny_grid):
        import json

        env = make_env(tiny_grid)
        service = make_service(env, healthy)
        service.serve(ticks=3, seed=0)
        report = service.health.report(service.fallbacks.snapshot())
        json.dumps(report)
        assert report["ticks"] == 3
        assert report["unserved"] == 0
        assert set(report["intersections"]) == set(env.agent_ids)
        assert "p99" in report["latency_ms"]

    def test_latency_percentiles_from_observed_ticks(self):
        from repro.serve import HealthTracker

        tracker = HealthTracker()
        for latency in (0.001, 0.002, 0.010):
            tracker.observe_tick(
                latency_s=latency, served=4, expected=4,
                fallback_count=0, deadline_missed=False,
            )
        assert tracker.latency_percentile(50.0) == pytest.approx(2.0)
        assert tracker.intersections_per_second() == pytest.approx(12 / 0.013)

    def test_unserved_marks_unhealthy(self):
        from repro.serve import HealthTracker

        tracker = HealthTracker()
        tracker.observe_tick(
            latency_s=0.001, served=3, expected=4,
            fallback_count=0, deadline_missed=False,
        )
        assert not tracker.healthy
        assert "DEGRADED" in tracker.summary()
