"""FallbackManager state machine: demotion, backoff, promotion, anti-flap."""

from __future__ import annotations

import pytest

from repro.serve import BACKOFF, FallbackManager, PRIMARY, PROBATION, ServeConfig

pytestmark = pytest.mark.serve


def make_manager(**overrides) -> FallbackManager:
    defaults = dict(
        backoff_base_ticks=2,
        backoff_factor=2.0,
        backoff_max_ticks=16,
        promote_after=2,
        reset_backoff_after=4,
        watchdog=False,
    )
    defaults.update(overrides)
    return FallbackManager(["A", "B"], ServeConfig(**defaults))


class TestDemotion:
    def test_starts_primary_serving_policy(self):
        manager = make_manager()
        decision = manager.decide("A", 0, policy_healthy=True)
        assert not decision.use_fallback
        assert decision.transition is None
        assert manager.mode("A") == PRIMARY

    def test_failure_demotes_and_serves_fallback(self):
        manager = make_manager()
        decision = manager.decide("A", 0, policy_healthy=False)
        assert decision.use_fallback
        assert decision.transition == "demoted"
        assert manager.mode("A") == BACKOFF

    def test_nodes_are_independent(self):
        manager = make_manager()
        manager.decide("A", 0, policy_healthy=False)
        decision = manager.decide("B", 0, policy_healthy=True)
        assert not decision.use_fallback
        assert manager.mode("B") == PRIMARY
        assert manager.degraded_nodes() == ["A"]

    def test_backoff_dwell_serves_fallback_even_when_healthy(self):
        manager = make_manager(backoff_base_ticks=3)
        manager.decide("A", 0, policy_healthy=False)
        for tick in (1, 2):
            decision = manager.decide("A", tick, policy_healthy=True)
            assert decision.use_fallback
            assert manager.mode("A") == BACKOFF


class TestPromotion:
    def test_promotes_after_consecutive_healthy_probes(self):
        manager = make_manager(backoff_base_ticks=2, promote_after=2)
        manager.decide("A", 0, policy_healthy=False)
        manager.decide("A", 1, policy_healthy=True)  # still dwelling
        probe = manager.decide("A", 2, policy_healthy=True)  # probation
        assert not probe.use_fallback
        assert manager.mode("A") == PROBATION
        promoted = manager.decide("A", 3, policy_healthy=True)
        assert promoted.transition == "promoted"
        assert manager.mode("A") == PRIMARY
        assert manager.state("A").promotions == 1

    def test_probation_serves_policy_actions(self):
        manager = make_manager(backoff_base_ticks=1, promote_after=3)
        manager.decide("A", 0, policy_healthy=False)
        decision = manager.decide("A", 1, policy_healthy=True)
        assert not decision.use_fallback
        assert manager.mode("A") == PROBATION


class TestBackoffEscalation:
    def test_probe_failure_escalates_backoff(self):
        manager = make_manager(backoff_base_ticks=2, backoff_factor=2.0)
        manager.decide("A", 0, policy_healthy=False)
        assert manager.state("A").backoff_ticks == 2
        # Dwell expires at tick 2; the probe fails -> escalate to 4.
        manager.decide("A", 2, policy_healthy=False)
        assert manager.state("A").backoff_ticks == 4
        manager.decide("A", 6, policy_healthy=False)
        assert manager.state("A").backoff_ticks == 8

    def test_backoff_caps_at_max(self):
        manager = make_manager(backoff_base_ticks=2, backoff_max_ticks=8)
        tick = 0
        for _ in range(8):
            manager.decide("A", tick, policy_healthy=False)
            tick = manager.state("A").resume_tick
        assert manager.state("A").backoff_ticks == 8

    def test_permanently_dead_policy_probed_logarithmically(self):
        """A never-recovering policy settles at max backoff, not flapping."""
        manager = make_manager(backoff_base_ticks=2, backoff_max_ticks=16)
        for tick in range(200):
            manager.decide("A", tick, policy_healthy=False)
        state = manager.state("A")
        assert state.backoff_ticks == 16
        assert state.demotions == 1  # demoted once, never promoted


class TestAntiFlap:
    def test_escalated_backoff_persists_through_promotion(self):
        manager = make_manager(
            backoff_base_ticks=2, promote_after=1, reset_backoff_after=100
        )
        manager.decide("A", 0, policy_healthy=False)
        manager.decide("A", 2, policy_healthy=False)  # probe fails -> 4
        assert manager.state("A").backoff_ticks == 4
        promoted = manager.decide("A", 6, policy_healthy=True)
        assert promoted.transition == "promoted"
        # The next failure reuses the escalated dwell, not the base one.
        manager.decide("A", 7, policy_healthy=False)
        assert manager.state("A").resume_tick == 7 + 4

    def test_backoff_resets_after_sustained_health(self):
        manager = make_manager(
            backoff_base_ticks=2, promote_after=1, reset_backoff_after=3
        )
        manager.decide("A", 0, policy_healthy=False)
        manager.decide("A", 2, policy_healthy=False)  # escalate to 4
        manager.decide("A", 6, policy_healthy=True)  # promoted (promote_after=1)
        for tick in range(7, 11):
            manager.decide("A", tick, policy_healthy=True)
        assert manager.state("A").backoff_ticks == 2

    def test_total_transitions_counts_demotions_and_promotions(self):
        manager = make_manager(backoff_base_ticks=1, promote_after=1)
        manager.decide("A", 0, policy_healthy=False)  # demoted
        manager.decide("A", 1, policy_healthy=True)  # promoted
        manager.decide("B", 1, policy_healthy=False)  # demoted
        assert manager.total_transitions() == 3


class TestSnapshot:
    def test_snapshot_is_json_safe_per_node(self):
        import json

        manager = make_manager()
        manager.decide("A", 0, policy_healthy=False)
        manager.decide("B", 0, policy_healthy=True)
        snapshot = manager.snapshot()
        assert set(snapshot) == {"A", "B"}
        assert snapshot["A"]["mode"] == BACKOFF
        assert snapshot["A"]["demotions"] == 1
        json.dumps(snapshot)  # must not raise
