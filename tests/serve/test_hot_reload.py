"""Atomic checkpoint hot-reload: validate on a shadow, swap or roll back."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_env
from repro.agents import PairUpLightSystem
from repro.errors import CheckpointError
from repro.serve import ControlService, PolicyRuntime, ServeConfig

pytestmark = pytest.mark.serve


@pytest.fixture
def env(tiny_grid):
    return make_env(tiny_grid)


@pytest.fixture
def runtime(env):
    return PolicyRuntime(lambda: PairUpLightSystem(env, seed=0))


def save_checkpoint(env, path, seed=1):
    donor = PairUpLightSystem(env, seed=seed)
    donor.save(path)
    return donor


def flat_state(agent) -> np.ndarray:
    state = agent.state_dict()
    return np.concatenate([np.asarray(state[k]).ravel() for k in sorted(state)])


class TestInitialLoad:
    def test_loads_valid_initial_checkpoint(self, env, tmp_path):
        path = tmp_path / "policy.npz"
        donor = save_checkpoint(env, path)
        runtime = PolicyRuntime(
            lambda: PairUpLightSystem(env, seed=0), checkpoint=path
        )
        assert runtime.generation == 1
        np.testing.assert_array_equal(flat_state(runtime.agent), flat_state(donor))

    def test_missing_initial_checkpoint_refuses_to_start(self, env, tmp_path):
        with pytest.raises(CheckpointError):
            PolicyRuntime(
                lambda: PairUpLightSystem(env, seed=0),
                checkpoint=tmp_path / "nope.npz",
            )

    def test_corrupt_initial_checkpoint_refuses_to_start(self, env, tmp_path):
        path = tmp_path / "policy.npz"
        save_checkpoint(env, path)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(CheckpointError):
            PolicyRuntime(
                lambda: PairUpLightSystem(env, seed=0), checkpoint=path
            )


class TestTryReload:
    def test_valid_reload_swaps_weights(self, env, runtime, tmp_path):
        path = tmp_path / "new.npz"
        donor = save_checkpoint(env, path, seed=9)
        before = flat_state(runtime.agent)
        result = runtime.try_reload(path, env=env)
        assert result.applied
        assert runtime.generation == 1
        np.testing.assert_array_equal(flat_state(runtime.agent), flat_state(donor))
        assert not np.array_equal(flat_state(runtime.agent), before)

    def test_truncated_reload_rejected_weights_untouched(self, env, runtime, tmp_path):
        path = tmp_path / "bad.npz"
        save_checkpoint(env, path)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 3])
        before = flat_state(runtime.agent)
        result = runtime.try_reload(path, env=env)
        assert not result.applied
        assert result.reason
        assert runtime.generation == 0
        np.testing.assert_array_equal(flat_state(runtime.agent), before)

    def test_nan_poisoned_reload_rejected(self, env, runtime, tmp_path):
        path = tmp_path / "nan.npz"
        donor = save_checkpoint(env, path)
        state = donor.state_dict()
        key = next(k for k in state if state[k].dtype.kind == "f")
        poisoned = dict(state)
        poisoned[key] = np.full_like(state[key], np.nan)
        from repro.nn.serialization import atomic_savez

        atomic_savez(path, poisoned)
        before = flat_state(runtime.agent)
        result = runtime.try_reload(path, env=env)
        assert not result.applied
        assert "non-finite" in result.reason
        np.testing.assert_array_equal(flat_state(runtime.agent), before)

    def test_wrong_architecture_reload_rejected(self, env, runtime, tmp_path):
        from repro.nn.serialization import atomic_savez

        path = tmp_path / "wrong.npz"
        atomic_savez(path, {"not.a.real.key": np.zeros(3)})
        result = runtime.try_reload(path, env=env)
        assert not result.applied
        assert "does not match" in result.reason

    def test_reload_does_not_perturb_live_fault_stream(self, tiny_grid, tmp_path):
        """The shadow smoke test must not consume the env's fault RNG."""
        from repro.faults.config import FaultConfig

        def run(reload_path=None):
            env = make_env(
                tiny_grid, faults=FaultConfig(message_drop=0.5), seed=11
            )
            runtime = PolicyRuntime(lambda: PairUpLightSystem(env, seed=0))
            service = ControlService(
                env, runtime, ServeConfig(watchdog=False)
            )
            observations = service.start_episode(seed=2)
            trace = []
            for tick in range(6):
                if reload_path is not None and tick == 3:
                    service.request_reload(reload_path)
                actions = service.decide(observations)
                trace.append(tuple(sorted(actions.items())))
                observations = env.step(actions).observations
            return trace

        env = make_env(tiny_grid, seed=11)
        path = tmp_path / "same.npz"
        PairUpLightSystem(env, seed=0).save(path)  # identical weights
        assert run() == run(reload_path=path)


class TestServiceReload:
    def test_mid_run_corrupt_reload_keeps_serving(self, env, runtime, tmp_path):
        path = tmp_path / "corrupt.npz"
        save_checkpoint(env, path)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])

        service = ControlService(env, runtime, ServeConfig(watchdog=False))
        observations = service.start_episode(seed=0)
        service.decide(observations)
        service.request_reload(path)
        actions = service.decide(observations)
        assert set(actions) == set(env.agent_ids)
        assert service.health.reloads_rejected == 1
        assert service.health.reloads_applied == 0
        assert len(service.reload_log) == 1
        assert not service.reload_log[0].applied

    def test_reload_events_reach_telemetry(self, env, runtime, tmp_path):
        from repro.obs import Telemetry

        good = tmp_path / "good.npz"
        save_checkpoint(env, good, seed=4)
        bad = tmp_path / "bad.npz"
        save_checkpoint(env, bad)
        payload = bad.read_bytes()
        bad.write_bytes(payload[: len(payload) // 2])

        telemetry = Telemetry(tmp_path / "tel", config={}, seed=0)
        service = ControlService(
            env, runtime, ServeConfig(watchdog=False), telemetry=telemetry
        )
        observations = service.start_episode(seed=0)
        service.request_reload(good)
        service.decide(observations)
        service.request_reload(bad)
        service.decide(observations)
        telemetry.close()

        import json
        import os

        events_path = os.path.join(telemetry.run_dir, "events.jsonl")
        with open(events_path) as handle:
            events = [json.loads(line) for line in handle if line.strip()]
        reloads = [e for e in events if e["type"] == "serve_reload"]
        assert [e["data"]["applied"] for e in reloads] == [True, False]
        assert reloads[1]["data"]["reason"]
        assert service.health.reloads_applied == 1
        assert service.health.reloads_rejected == 1
