"""Soak smoke test: a few hundred faulted ticks with zero unserved decisions.

This is the acceptance scenario of the serving contract in miniature:
controller deaths + delayed messages + a mid-run corrupt hot-reload, and
the service must (a) serve a valid action for every intersection on
every tick, (b) reject the corrupt reload with a rollback, and (c) not
flap — fallback transitions stay bounded thanks to the exponential
backoff with anti-flap reset.
"""

from __future__ import annotations

import pytest

from helpers import make_env
from repro.agents import PairUpLightSystem
from repro.faults.config import FaultConfig
from repro.serve import ControlService, PolicyRuntime, ServeConfig

pytestmark = pytest.mark.serve

SOAK_TICKS = 300


def test_soak_faulted_service_serves_every_tick(tiny_grid, tmp_path):
    env = make_env(
        tiny_grid,
        faults=FaultConfig(controller_failure=0.3, message_delay=0.3),
        seed=17,
    )
    factory = lambda: PairUpLightSystem(env, seed=0)  # noqa: E731

    good = tmp_path / "good.npz"
    factory().save(good)
    corrupt = tmp_path / "corrupt.npz"
    payload = good.read_bytes()
    corrupt.write_bytes(payload[: len(payload) // 2])

    runtime = PolicyRuntime(factory, checkpoint=good)
    service = ControlService(env, runtime, ServeConfig(deadline_ms=250.0))

    observations = service.start_episode(seed=3)
    for tick in range(SOAK_TICKS):
        if tick == SOAK_TICKS // 3:
            service.request_reload(good)
        if tick == 2 * SOAK_TICKS // 3:
            service.request_reload(corrupt)
        actions = service.decide(observations)
        assert set(actions) == set(env.agent_ids), f"tick {tick} missed nodes"
        result = env.step(actions)
        if result.done:
            service.health.episodes += 1
            observations = service.start_episode()
        else:
            observations = result.observations

    health = service.health
    # (a) the never-fail-open contract: zero unserved decisions.
    assert health.unserved == 0
    assert health.ticks == SOAK_TICKS
    assert health.intersections_served == SOAK_TICKS * len(env.agent_ids)
    # (b) the corrupt reload was rejected, the valid one applied.
    assert health.reloads_applied == 1
    assert health.reloads_rejected == 1
    # (c) no flapping: mode transitions are a small fraction of the
    # tick x intersection volume (backoff suppresses oscillation).
    transitions = service.fallbacks.total_transitions()
    assert transitions <= SOAK_TICKS * len(env.agent_ids) * 0.05, (
        f"{transitions} transitions over {SOAK_TICKS} ticks looks like flapping"
    )
    # The session stayed inside the (generous) deadline budget.
    assert health.policy_exceptions == 0
