"""DeadlineBudget accounting and the hung-evaluation watchdog."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ConfigError
from repro.serve import DeadlineBudget, ServeConfig, Watchdog

pytestmark = pytest.mark.serve


class FakeClock:
    """Scripted monotonic clock; advances only when told to."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadlineBudget:
    def test_elapsed_and_remaining_follow_the_clock(self):
        clock = FakeClock()
        budget = DeadlineBudget(0.050, clock=clock)
        assert budget.elapsed() == 0.0
        assert budget.remaining() == pytest.approx(0.050)
        clock.advance(0.030)
        assert budget.elapsed() == pytest.approx(0.030)
        assert budget.remaining() == pytest.approx(0.020)
        assert not budget.exceeded()

    def test_exceeded_once_past_the_deadline(self):
        clock = FakeClock()
        budget = DeadlineBudget(0.050, clock=clock)
        clock.advance(0.051)
        assert budget.exceeded()
        assert budget.remaining() < 0

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ConfigError):
            DeadlineBudget(0.0)

    def test_config_derived_thresholds(self):
        config = ServeConfig(deadline_ms=20.0, watchdog_factor=10.0)
        assert config.deadline_s == pytest.approx(0.020)
        assert config.watchdog_threshold_s == pytest.approx(0.200)


class TestWatchdog:
    def test_fast_evaluation_does_not_fire(self):
        dog = Watchdog(threshold_s=5.0)
        dog.arm(tick=0)
        assert not dog.disarm()
        assert dog.stalls == 0

    def test_hung_evaluation_fires_from_timer_thread(self):
        fired = threading.Event()
        seen: list[tuple[int, float]] = []

        def on_stall(tick: int, threshold_s: float) -> None:
            seen.append((tick, threshold_s))
            fired.set()

        dog = Watchdog(threshold_s=0.01, on_stall=on_stall)
        dog.arm(tick=7)
        # Simulate a hung policy: the "evaluation" outlives the threshold.
        assert fired.wait(timeout=2.0), "watchdog never fired"
        assert dog.disarm()
        assert dog.stalls == 1
        assert dog.last_stall_tick == 7
        assert seen == [(7, pytest.approx(0.01))]

    def test_rearming_cancels_previous_timer(self):
        dog = Watchdog(threshold_s=5.0)
        dog.arm(tick=0)
        dog.arm(tick=1)
        assert not dog.disarm()
        assert dog.stalls == 0

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ConfigError):
            Watchdog(threshold_s=0.0)

    def test_stall_counter_accumulates(self):
        dog = Watchdog(threshold_s=0.005)
        for tick in range(2):
            dog.arm(tick)
            time.sleep(0.05)
            assert dog.disarm()
        assert dog.stalls == 2
