"""Numerical robustness under extreme values across the stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.rl.gae import compute_gae


class TestExtremeValues:
    def test_softmax_huge_spread(self):
        probs = F.softmax(Tensor([[-1e4, 0.0, 1e4]]))
        assert np.all(np.isfinite(probs.data))
        assert probs.data[0, 2] == pytest.approx(1.0)

    def test_log_softmax_never_minus_inf_for_winner(self):
        lp = F.log_softmax(Tensor([[0.0, 1e4]]))
        assert np.isfinite(lp.data[0, 1])
        assert lp.data[0, 1] == pytest.approx(0.0, abs=1e-9)

    def test_entropy_gradient_extreme_logits(self):
        logits = Tensor(np.array([[50.0, -50.0, 0.0]]), requires_grad=True)
        F.entropy(F.softmax(logits)).sum().backward()
        assert np.all(np.isfinite(logits.grad))

    def test_tanh_saturation_gradient_zeroish(self):
        x = Tensor(np.array([100.0]), requires_grad=True)
        x.tanh().sum().backward()
        assert 0.0 <= x.grad[0] < 1e-10

    def test_gae_large_rewards_finite(self):
        rewards = np.full((50, 4), -1e6)
        values = np.zeros((50, 4))
        adv, ret = compute_gae(rewards, values, 0.0, gamma=0.99, lam=0.95)
        assert np.all(np.isfinite(adv))
        assert np.all(np.isfinite(ret))

    def test_huber_extreme_error_gradient_unit(self):
        pred = Tensor(np.array([1e8]), requires_grad=True)
        F.huber_loss(pred, np.array([0.0]), delta=1.0).backward()
        assert abs(pred.grad[0]) <= 1.0 + 1e-9

    def test_exp_overflow_not_produced_by_softmax(self):
        # Direct exp would overflow; softmax must not.
        with np.errstate(over="raise"):
            F.softmax(Tensor([[800.0, 0.0]]))


class TestLongEpisodeStability:
    def test_lstm_hidden_bounded_over_long_rollout(self, rng):
        from repro.nn.lstm import LSTMCell

        cell = LSTMCell(4, 8, rng)
        state = cell.initial_state(1)
        for _ in range(500):
            x = Tensor(rng.normal(size=(1, 4)) * 5)
            h, state = cell(x, state)
            state = (state[0].detach(), state[1].detach())
        assert np.all(np.abs(h.data) <= 1.0)  # tanh-bounded output
        assert np.all(np.isfinite(state[1].data))

    def test_actor_logits_bounded_over_long_rollout(self, rng):
        from repro.agents.pairuplight.actor import CoordinatedActor

        actor = CoordinatedActor(obs_dim=8, num_phases=4, rng=rng)
        state = actor.initial_state(3)
        for _ in range(300):
            obs = rng.normal(size=(3, 8)) * 2
            msg = rng.uniform(0, 1, size=(3, 1))
            logits, message, state = actor(obs, msg, state)
            state = (state[0].detach(), state[1].detach())
        assert np.all(np.isfinite(logits.data))
        assert np.all(np.isfinite(message.data))


class TestSimulatorLongRun:
    def test_week_long_idle_simulation(self):
        """An empty network can tick for a very long horizon cheaply."""
        from repro.scenarios.grid import build_grid
        from repro.sim.engine import Simulation

        grid = build_grid(2, 2)
        sim = Simulation(grid.network, None, grid.phase_plans)
        sim.step(10_000)
        assert sim.time == 10_000
        assert sim.is_drained()

    def test_repeated_phase_switching_stable(self):
        from repro.scenarios.grid import build_grid
        from repro.scenarios.flows import flow_pattern
        from repro.sim.demand import DemandGenerator
        from repro.sim.engine import Simulation
        from repro.sim.routing import Router

        grid = build_grid(2, 2)
        flows = flow_pattern(grid, 5, t_peak=100, light_duration=200)
        demand = DemandGenerator(flows, Router(grid.network), seed=0)
        sim = Simulation(grid.network, demand, grid.phase_plans)
        # Thrash phases every tick: pathological but must stay consistent.
        for tick in range(600):
            for node_id, plan in grid.phase_plans.items():
                sim.set_phase(node_id, tick % plan.num_phases)
            sim.step()
        total = (
            sim.vehicles_in_network()
            + sim.pending_insertions()
            + len(sim.finished_vehicles)
        )
        assert total == sim.total_created


class TestMessageRegularizerAdversarial:
    """The communication channel must stay finite under hostile inputs:
    saturated message heads, near-degenerate noise, and the corrupted or
    dropped deliveries the fault layer produces."""

    def test_extreme_message_means_stay_finite(self):
        from repro.agents.pairuplight.messaging import MessageRegularizer

        reg = MessageRegularizer(sigma=0.25, seed=0)
        for mean in (-1e8, -50.0, 50.0, 1e8):
            m_hat, raw, logprob = reg.transmit(np.array([mean]), training=True)
            assert np.all(np.isfinite(m_hat))
            assert 0.0 <= m_hat[0] <= 1.0
            assert np.isfinite(logprob)

    def test_sigma_near_zero_logprob_finite(self):
        from repro.agents.pairuplight.messaging import MessageRegularizer

        reg = MessageRegularizer(sigma=1e-12, seed=0)
        _, raw, logprob = reg.transmit(np.array([0.3]), training=True)
        assert np.isfinite(logprob)
        # Greedy execution: zero deviation, huge positive density, finite.
        _, _, greedy_lp = reg.transmit(np.array([0.3]), training=False)
        assert np.isfinite(greedy_lp)

    def test_corrupted_message_logprob_finite(self):
        from repro.agents.pairuplight.messaging import MessageRegularizer

        reg = MessageRegularizer(sigma=0.25, seed=0)
        # A corrupted raw sample far outside the policy's support must
        # yield a very unlikely but finite log-density.
        lp = reg.logprob(np.array([1e6]), np.array([0.0]))
        assert np.isfinite(lp)
        assert lp < -1e9

    def test_dropped_messages_keep_reader_output_finite(self):
        from repro.agents.pairuplight.messaging import ResilientMessageReader

        reader = ResilientMessageReader(["a"], 1, decay=0.5, max_staleness=3)
        own = np.array([0.2])
        reader.receive("a", np.array([1e8]), own)  # hostile stored message
        for _ in range(10):  # sustained outage, past self-pairing fallback
            out = reader.receive("a", None, own)
            assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(own[0])

    def test_channel_garbage_is_bounded(self):
        from repro.agents.pairuplight.messaging import FaultyMessageChannel
        from repro.faults import FaultConfig, FaultSchedule

        schedule = FaultSchedule(FaultConfig(message_corrupt=1.0), seed=0)
        schedule.begin_episode(0)
        channel = FaultyMessageChannel(schedule, ["a"], message_dim=1)
        for _ in range(50):
            delivered = channel.deliver("a", np.array([np.inf]))
            assert delivered is not None
            assert np.all((delivered >= 0.0) & (delivered <= 1.0))
