"""Behavioural contracts of all five agent systems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.colight import CoLightSystem
from repro.agents.fixed_time import FixedTimeSystem
from repro.agents.ma2c import MA2CSystem
from repro.agents.pairuplight import PairUpLightConfig, PairUpLightSystem
from repro.agents.single_agent import SingleAgentSystem
from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
from repro.errors import ConfigError
from repro.rl.ppo import PPOConfig
from repro.rl.runner import run_episode, train
from repro.scenarios.monaco import build_monaco

from helpers import make_env


def run_training_episodes(agent, env, episodes=2, seed=0):
    return train(agent, env, episodes=episodes, seed=seed)


def _small_colight(env):
    from repro.agents.colight import CoLightConfig
    from repro.rl.dqn import DQNConfig

    config = CoLightConfig(dqn=DQNConfig(batch_size=16, learning_starts=16))
    return CoLightSystem(env, config, seed=0)


ALL_LEARNING_SYSTEMS = [
    lambda env: PairUpLightSystem(env, seed=0),
    lambda env: SingleAgentSystem(env, seed=0),
    lambda env: MA2CSystem(env, seed=0),
    _small_colight,
]


class TestCommonContracts:
    @pytest.mark.parametrize("factory", ALL_LEARNING_SYSTEMS)
    def test_actions_valid(self, tiny_grid, factory):
        env = make_env(tiny_grid, horizon_ticks=60)
        agent = factory(env)
        obs = env.reset(seed=0)
        agent.begin_episode(env, training=True)
        actions = agent.act(obs, env, training=True)
        assert set(actions) == set(env.agent_ids)
        for agent_id, action in actions.items():
            assert env.action_spaces[agent_id].contains(action)

    @pytest.mark.parametrize("factory", ALL_LEARNING_SYSTEMS)
    def test_training_episode_completes(self, tiny_grid, factory):
        env = make_env(tiny_grid, horizon_ticks=60)
        agent = factory(env)
        history = run_training_episodes(agent, env, episodes=2)
        assert len(history.episodes) == 2
        assert all(np.isfinite(log.avg_wait) for log in history.episodes)

    @pytest.mark.parametrize("factory", ALL_LEARNING_SYSTEMS)
    def test_eval_mode_is_deterministic(self, tiny_grid, factory):
        env = make_env(tiny_grid, horizon_ticks=60)
        agent = factory(env)
        obs = env.reset(seed=0)
        agent.begin_episode(env, training=False)
        first = agent.act(obs, env, training=False)
        agent.begin_episode(env, training=False)
        second = agent.act(obs, env, training=False)
        assert first == second

    @pytest.mark.parametrize("factory", ALL_LEARNING_SYSTEMS)
    def test_parameters_change_after_update(self, tiny_grid, factory):
        env = make_env(tiny_grid, horizon_ticks=60)
        agent = factory(env)
        nets = []
        if hasattr(agent, "_unique_actors"):
            nets = agent._unique_actors
        elif hasattr(agent, "actor"):
            nets = [agent.actor]
        elif hasattr(agent, "networks"):
            nets = list(agent.networks.values())[:1]
        elif hasattr(agent, "online"):
            nets = [agent.online]
        before = [p.data.copy() for net in nets for p in net.parameters()]
        run_training_episodes(agent, env, episodes=2)
        after = [p.data for net in nets for p in net.parameters()]
        changed = any(
            not np.array_equal(old, new) for old, new in zip(before, after)
        )
        assert changed


class TestFixedTime:
    def test_cycles_through_phases(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=120)
        agent = FixedTimeSystem(env, stage_seconds=5)
        env.reset(seed=0)
        seen = set()
        obs = env.reset(seed=0)
        for _ in range(16):
            actions = agent.act(obs, env, training=False)
            seen.add(actions[env.agent_ids[0]])
            env.step(actions)
        assert seen == set(range(env.action_spaces[env.agent_ids[0]].n))

    def test_no_communication(self, tiny_grid):
        env = make_env(tiny_grid)
        agent = FixedTimeSystem(env)
        assert agent.communication_bits_per_step(env) == 0

    def test_bad_stage_seconds_rejected(self, tiny_grid):
        env = make_env(tiny_grid)
        with pytest.raises(ConfigError):
            FixedTimeSystem(env, stage_seconds=0)


class TestPairUpLight:
    def test_communication_bits_match_table4(self, tiny_grid):
        env = make_env(tiny_grid)
        agent = PairUpLightSystem(env, seed=0)
        assert agent.communication_bits_per_step(env) == 32  # one 32-bit message

    def test_no_comm_ablation_zero_bits(self, tiny_grid):
        env = make_env(tiny_grid)
        agent = PairUpLightSystem(
            env, PairUpLightConfig(communicate=False), seed=0
        )
        assert agent.communication_bits_per_step(env) == 0
        assert agent.name == "PairUpLight-NoComm"

    def test_messages_flow_between_steps(self, tiny_grid):
        env = make_env(tiny_grid, peak_rate=2000, t_peak=100)
        agent = PairUpLightSystem(env, seed=0)
        obs = env.reset(seed=0)
        agent.begin_episode(env, training=True)
        agent.act(obs, env, training=True)
        posted = [agent.board.read(a) for a in agent.agent_ids]
        assert all(0 < m[0] < 1 for m in posted)  # logistic-squashed

    def test_update_stats_returned(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=60)
        agent = PairUpLightSystem(env, seed=0)
        history = run_training_episodes(agent, env, episodes=1)
        stats = history.episodes[0].update_stats
        assert {"policy_loss", "value_loss", "entropy", "approx_kl"} <= set(stats)

    def test_sharing_on_heterogeneous_rejected(self):
        scenario = build_monaco(seed=7)
        env = TrafficSignalEnv(
            scenario.network,
            scenario.phase_plans,
            scenario.flows,
            EnvConfig(horizon_ticks=60, max_ticks=600),
        )
        with pytest.raises(ConfigError):
            PairUpLightSystem(env, PairUpLightConfig(parameter_sharing=True))

    def test_independent_mode_on_heterogeneous(self):
        scenario = build_monaco(seed=7)
        env = TrafficSignalEnv(
            scenario.network,
            scenario.phase_plans,
            scenario.flows,
            EnvConfig(horizon_ticks=30, max_ticks=600),
        )
        agent = PairUpLightSystem(
            env,
            PairUpLightConfig(
                parameter_sharing=False,
                ppo=PPOConfig(epochs=1, minibatch_agents=30),
            ),
            seed=0,
        )
        avg_wait, total_reward, _ = run_episode(agent, env, training=True, seed=0)
        stats = agent.end_episode(env, training=True)
        assert np.isfinite(stats["policy_loss"])

    def test_message_dim_two_supported(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=60)
        agent = PairUpLightSystem(env, PairUpLightConfig(message_dim=2), seed=0)
        assert agent.communication_bits_per_step(env) == 64
        history = run_training_episodes(agent, env, episodes=1)
        assert np.isfinite(history.episodes[0].avg_wait)


class TestSingleAgent:
    def test_requires_homogeneous(self):
        scenario = build_monaco(seed=7)
        env = TrafficSignalEnv(
            scenario.network,
            scenario.phase_plans,
            scenario.flows,
            EnvConfig(horizon_ticks=60, max_ticks=600),
        )
        with pytest.raises(ConfigError):
            SingleAgentSystem(env)

    def test_no_communication(self, tiny_grid):
        env = make_env(tiny_grid)
        assert SingleAgentSystem(env, seed=0).communication_bits_per_step(env) == 0


class TestMA2C:
    def test_works_on_heterogeneous(self):
        scenario = build_monaco(seed=7)
        env = TrafficSignalEnv(
            scenario.network,
            scenario.phase_plans,
            scenario.flows,
            EnvConfig(horizon_ticks=30, max_ticks=600),
        )
        agent = MA2CSystem(env, seed=0)
        run_episode(agent, env, training=True, seed=0)
        stats = agent.end_episode(env, training=True)
        assert np.isfinite(stats["policy_loss"])

    def test_per_agent_networks_not_shared(self, tiny_grid):
        env = make_env(tiny_grid)
        agent = MA2CSystem(env, seed=0)
        nets = list(agent.networks.values())
        assert nets[0] is not nets[1]

    def test_communication_bits_positive(self, tiny_grid):
        env = make_env(tiny_grid)
        agent = MA2CSystem(env, seed=0)
        bits = agent.communication_bits_per_step(env)
        # Neighbour obs (8) + fingerprints (4) from 2 neighbours at corners.
        assert bits > 32

    def test_spatial_reward_discounting(self, tiny_grid):
        env = make_env(tiny_grid)
        agent = MA2CSystem(env, seed=0)
        rewards = {a: -1.0 for a in env.agent_ids}
        spatial = agent._spatial_rewards(rewards)
        # Corner agents in 2x2 have exactly 2 neighbours.
        expected = -1.0 - agent.config.alpha * 2
        np.testing.assert_allclose(spatial, expected)


class TestCoLight:
    def test_requires_homogeneous(self):
        scenario = build_monaco(seed=7)
        env = TrafficSignalEnv(
            scenario.network,
            scenario.phase_plans,
            scenario.flows,
            EnvConfig(horizon_ticks=60, max_ticks=600),
        )
        with pytest.raises(ConfigError):
            CoLightSystem(env)

    def test_neighbourhood_includes_self_first(self, tiny_grid):
        env = make_env(tiny_grid)
        agent = CoLightSystem(env, seed=0)
        for agent_id, members in agent.neighbourhoods.items():
            assert members[0] == agent_id

    def test_replay_fills_during_training(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=60)
        agent = CoLightSystem(env, seed=0)
        run_episode(agent, env, training=True, seed=0)
        steps = 60 // env.config.delta_t
        assert len(agent.updater.replay) == steps * len(env.agent_ids)

    def test_epsilon_greedy_explores_in_training(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=60)
        agent = CoLightSystem(env, seed=0)
        obs = env.reset(seed=0)
        agent.begin_episode(env, training=True)
        actions = [agent.act(obs, env, training=True) for _ in range(20)]
        distinct = {a[env.agent_ids[0]] for a in actions}
        assert len(distinct) > 1  # epsilon starts at 1.0: must explore

    def test_communication_bits(self, tiny_grid):
        env = make_env(tiny_grid)
        agent = CoLightSystem(env, seed=0)
        obs_dim = env.observation_spaces[env.agent_ids[0]].dim
        assert agent.communication_bits_per_step(env) == 2 * obs_dim * 32
