"""IQL baseline tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.iql import IQLConfig, IQLSystem
from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
from repro.errors import ConfigError
from repro.rl.dqn import DQNConfig
from repro.rl.runner import run_episode, train
from repro.scenarios.monaco import build_monaco

from helpers import make_env


def small_iql(env):
    return IQLSystem(
        env, IQLConfig(dqn=DQNConfig(batch_size=16, learning_starts=16)), seed=0
    )


class TestIQL:
    def test_actions_valid(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=60)
        agent = small_iql(env)
        obs = env.reset(seed=0)
        agent.begin_episode(env, training=True)
        actions = agent.act(obs, env, training=True)
        for node_id, action in actions.items():
            assert env.action_spaces[node_id].contains(action)

    def test_training_episode_completes(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=60)
        history = train(small_iql(env), env, episodes=2, seed=0)
        assert len(history.episodes) == 2

    def test_learning_updates_parameters(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=120)
        agent = small_iql(env)
        before = [p.data.copy() for p in agent.online.parameters()]
        train(agent, env, episodes=2, seed=0)
        after = [p.data for p in agent.online.parameters()]
        assert any(
            not np.array_equal(old, new) for old, new in zip(before, after)
        )

    def test_eval_deterministic(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=60)
        agent = small_iql(env)
        obs = env.reset(seed=0)
        first = agent.act(obs, env, training=False)
        second = agent.act(obs, env, training=False)
        assert first == second

    def test_requires_homogeneous(self):
        scenario = build_monaco(seed=7)
        env = TrafficSignalEnv(
            scenario.network, scenario.phase_plans, scenario.flows,
            EnvConfig(horizon_ticks=60, max_ticks=600),
        )
        with pytest.raises(ConfigError):
            IQLSystem(env)

    def test_no_communication(self, tiny_grid):
        env = make_env(tiny_grid)
        assert small_iql(env).communication_bits_per_step(env) == 0

    def test_replay_fills(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=60)
        agent = small_iql(env)
        run_episode(agent, env, training=True, seed=0)
        assert len(agent.updater.replay) == (60 // 5) * len(env.agent_ids)
