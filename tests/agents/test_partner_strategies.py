"""Partner-selection strategy tests (ablation switch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.pairuplight import PairUpLightConfig, PairUpLightSystem
from repro.agents.pairuplight.messaging import select_partner
from repro.errors import ConfigError

from helpers import make_env


class TestStrategies:
    def test_self_strategy(self, small_grid):
        env = make_env(small_grid)
        env.reset(seed=0)
        for agent_id in env.agent_ids:
            assert select_partner(env, agent_id, strategy="self") == agent_id

    def test_fixed_strategy_deterministic(self, small_grid):
        env = make_env(small_grid)
        env.reset(seed=0)
        first = select_partner(env, "I1_1", strategy="fixed")
        second = select_partner(env, "I1_1", strategy="fixed")
        assert first == second
        assert first in env.upstream_neighbours("I1_1")

    def test_random_strategy_uses_rng(self, small_grid):
        env = make_env(small_grid)
        env.reset(seed=0)
        rng = np.random.default_rng(0)
        picks = {
            select_partner(env, "I1_1", strategy="random", rng=rng)
            for _ in range(30)
        }
        assert picks <= set(env.upstream_neighbours("I1_1"))
        assert len(picks) > 1

    def test_random_without_rng_rejected(self, small_grid):
        env = make_env(small_grid)
        env.reset(seed=0)
        with pytest.raises(ConfigError):
            select_partner(env, "I1_1", strategy="random")

    def test_unknown_strategy_rejected(self, small_grid):
        env = make_env(small_grid)
        env.reset(seed=0)
        with pytest.raises(ConfigError):
            select_partner(env, "I1_1", strategy="nearest")

    def test_config_validates_strategy(self, tiny_grid):
        with pytest.raises(ConfigError):
            PairUpLightConfig(partner_strategy="bogus")

    @pytest.mark.parametrize("strategy", ["self", "fixed", "random", "upstream"])
    def test_system_trains_with_each_strategy(self, tiny_grid, strategy):
        from repro.rl.runner import train

        env = make_env(tiny_grid, horizon_ticks=60)
        agent = PairUpLightSystem(
            env, PairUpLightConfig(partner_strategy=strategy), seed=0
        )
        history = train(agent, env, episodes=1, seed=0)
        assert np.isfinite(history.wait_curve[0])


class TestCentralizedCriticSwitch:
    def test_local_critic_feature_dim(self, small_grid):
        from repro.agents.pairuplight.critic import CriticFeatureBuilder

        env = make_env(small_grid)
        builder = CriticFeatureBuilder(env, centralized=False)
        for node in env.agent_ids:
            assert builder.feature_dim(node) == env.observation_spaces[node].dim

    def test_local_critic_system_trains(self, tiny_grid):
        from repro.rl.runner import train

        env = make_env(tiny_grid, horizon_ticks=60)
        agent = PairUpLightSystem(
            env, PairUpLightConfig(centralized_critic=False), seed=0
        )
        history = train(agent, env, episodes=1, seed=0)
        assert np.isfinite(history.wait_curve[0])
