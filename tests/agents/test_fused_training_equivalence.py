"""End-to-end equivalence of the fused update path (PR 5 tentpole).

Three contracts on a tiny grid:

* ``fused=True`` (default) vs ``fused=False`` — the fused LSTM trunk /
  affine kernels replace composed op chains *with the same op order*, so
  full training episodes must produce bit-identical parameters and stats.
* ``stepwise_eval=True`` (the pre-change per-step-heads evaluator, kept
  as the benchmark baseline) vs the sequence-level evaluator — forward
  outputs are row-local and must match bit-exactly; weight gradients
  reduce over (T*M) rows in one GEMM instead of T accumulated GEMMs, so
  they agree only to reduction-order rounding (~1e-15 relative).
* telemetry on vs off — enabling :data:`repro.perf.timers.TIMERS`
  (the PPO epoch/minibatch spans) must not perturb training.
"""

from __future__ import annotations

import numpy as np

from repro.agents.pairuplight import PairUpLightConfig, PairUpLightSystem
from repro.eval.harness import ExperimentScale, GridExperiment
from repro.perf.timers import TIMERS

TINY = ExperimentScale(
    rows=2,
    cols=2,
    peak_rate=600.0,
    t_peak=60.0,
    light_duration=120.0,
    horizon_ticks=100,
    max_ticks=3600,
    train_episodes=1,
    eval_episodes=1,
)


def _rollout_system(**config_kwargs):
    """Build a system and run one untrained rollout episode."""
    experiment = GridExperiment(TINY, seed=5)
    env = experiment.train_env(1)
    agent = PairUpLightSystem(env, PairUpLightConfig(**config_kwargs), seed=5)
    observations = env.reset(seed=21)
    agent.begin_episode(env, True)
    done = False
    while not done:
        actions = agent.act(observations, env, True)
        result = env.step(actions)
        agent.observe(result, env)
        observations = result.observations
        done = result.done
    return env, agent


def _train(episodes: int = 2, **config_kwargs):
    """Train on the tiny grid; return (per-episode stats, state_dict)."""
    experiment = GridExperiment(TINY, seed=5)
    env = experiment.train_env(1)
    agent = PairUpLightSystem(env, PairUpLightConfig(**config_kwargs), seed=5)
    all_stats = []
    for episode in range(episodes):
        observations = env.reset(seed=21 + episode)
        agent.begin_episode(env, True)
        done = False
        while not done:
            actions = agent.act(observations, env, True)
            result = env.step(actions)
            agent.observe(result, env)
            observations = result.observations
            done = result.done
        all_stats.append(agent.end_episode(env, training=True))
    return all_stats, agent.state_dict()


def _assert_identical(run_a, run_b):
    stats_a, state_a = run_a
    stats_b, state_b = run_b
    assert repr(stats_a) == repr(stats_b)
    assert set(state_a) == set(state_b)
    for key in state_a:
        assert np.array_equal(state_a[key], state_b[key]), key


def _param_grads(agent) -> dict[str, np.ndarray]:
    grads = {}
    for module_name, module in agent._checkpoint_modules().items():
        for name, param in module.named_parameters():
            if param.grad is not None:
                grads[f"{module_name}.{name}"] = param.grad.copy()
    return grads


class TestFusedTrainingEquivalence:
    def test_fused_matches_composed_bit_exact(self):
        _assert_identical(_train(fused=True), _train(fused=False))


class TestStepwiseEvaluatorEquivalence:
    def test_forward_outputs_bit_exact(self):
        _, seq_agent = _rollout_system(fused=False)
        _, step_agent = _rollout_system(fused=False, stepwise_eval=True)
        data = seq_agent.buffer.stacked()
        step_data = step_agent.buffer.stacked()
        for key in data:
            assert np.array_equal(data[key], step_data[key]), key
        batch = np.arange(seq_agent.num_agents)
        for seq_out, step_out in zip(
            seq_agent._evaluate(data, batch), step_agent._evaluate(step_data, batch)
        ):
            assert np.array_equal(seq_out.data, step_out.data)

    def test_gradients_match_to_reduction_rounding(self):
        grads = {}
        for stepwise in (False, True):
            _, agent = _rollout_system(fused=False, stepwise_eval=stepwise)
            data = agent.buffer.stacked()
            batch = np.arange(agent.num_agents)
            logprobs, entropies, values = agent._evaluate(data, batch)
            (logprobs.sum() + entropies.sum() + values.sum()).backward()
            grads[stepwise] = _param_grads(agent)
        assert set(grads[False]) == set(grads[True])
        for key in grads[False]:
            np.testing.assert_allclose(
                grads[False][key], grads[True][key], rtol=1e-10, atol=1e-12,
                err_msg=key,
            )


class TestTelemetryBitExactness:
    def test_timers_enabled_does_not_perturb_training(self):
        baseline = _train(fused=True)
        TIMERS.enable()
        try:
            timed = _train(fused=True)
        finally:
            TIMERS.disable()
            TIMERS.reset()
        _assert_identical(baseline, timed)

    def test_ppo_spans_recorded(self):
        TIMERS.reset()
        TIMERS.enable()
        try:
            _train(episodes=1, fused=True)
        finally:
            TIMERS.disable()
        report = TIMERS.report()
        TIMERS.reset()
        assert "update/epoch" in report
        assert "update/minibatch" in report
        assert report["update/epoch"]["calls"] >= 1
        assert report["update/minibatch"]["calls"] >= report["update/epoch"]["calls"]
