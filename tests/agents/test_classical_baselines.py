"""Tests for the non-learning adaptive baselines (MaxPressure, LongestQueue)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.fixed_time import FixedTimeSystem
from repro.agents.max_pressure import LongestQueueSystem, MaxPressureSystem
from repro.errors import ConfigError
from repro.rl.runner import evaluate, run_episode

from helpers import make_env


class TestMaxPressure:
    def test_actions_valid(self, small_grid):
        env = make_env(small_grid, peak_rate=1200, t_peak=100)
        agent = MaxPressureSystem(env)
        obs = env.reset(seed=0)
        for _ in range(20):
            actions = agent.act(obs, env, training=False)
            for node_id, action in actions.items():
                assert env.action_spaces[node_id].contains(action)
            obs = env.step(actions).observations

    def test_serves_pressured_direction(self, small_grid):
        """With heavy southbound traffic only, NS-through must be chosen."""
        from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
        from repro.sim.demand import Flow, RateProfile

        origin, dest = small_grid.column_route_links(1, southbound=True)
        flows = [Flow("f", origin, dest, RateProfile.constant(1800, 200))]
        env = TrafficSignalEnv(
            small_grid.network,
            small_grid.phase_plans,
            flows,
            EnvConfig(horizon_ticks=300, max_ticks=2400),
        )
        obs = env.reset(seed=0)
        agent = MaxPressureSystem(env)
        for _ in range(20):
            actions = agent.act(obs, env, training=False)
            obs = env.step(actions).observations
        phase_names = {
            node: small_grid.phase_plans[node].phases[a].name
            for node, a in agent.act(obs, env, training=False).items()
        }
        assert phase_names["I0_1"] == "NS-through"

    def test_beats_fixed_time_under_congestion(self, small_grid):
        env = make_env(small_grid, peak_rate=800, t_peak=120, horizon_ticks=360,
                       drain=True)
        mp = evaluate(MaxPressureSystem(env), env, episodes=1, seed=5)
        ft = evaluate(FixedTimeSystem(env), env, episodes=1, seed=5)
        assert mp.average_travel_time < ft.average_travel_time

    def test_min_green_holds_phase(self, small_grid):
        env = make_env(small_grid, peak_rate=1000, t_peak=100)
        agent = MaxPressureSystem(env, min_green=30)
        obs = env.reset(seed=0)
        previous = None
        switches = 0
        for _ in range(10):
            actions = agent.act(obs, env, training=False)
            if previous is not None:
                switches += sum(
                    1 for k in actions if actions[k] != previous[k]
                )
            previous = actions
            obs = env.step(actions).observations
        # min_green=30 with delta_t=5 means at most one switch per 6 steps.
        assert switches <= len(env.agent_ids) * 2

    def test_negative_min_green_rejected(self, small_grid):
        env = make_env(small_grid)
        with pytest.raises(ConfigError):
            MaxPressureSystem(env, min_green=-1)

    def test_no_communication(self, small_grid):
        env = make_env(small_grid)
        assert MaxPressureSystem(env).communication_bits_per_step(env) == 0


class TestLongestQueue:
    def test_runs_episode(self, small_grid):
        env = make_env(small_grid, horizon_ticks=150)
        avg_wait, _, info = run_episode(
            LongestQueueSystem(), env, training=False, seed=0
        )
        assert np.isfinite(avg_wait)

    def test_prefers_longer_queue(self, small_grid):
        from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
        from repro.sim.demand import Flow, RateProfile

        origin, dest = small_grid.row_route_links(1, eastbound=True)
        flows = [Flow("f", origin, dest, RateProfile.constant(1800, 200))]
        env = TrafficSignalEnv(
            small_grid.network,
            small_grid.phase_plans,
            flows,
            EnvConfig(horizon_ticks=300, max_ticks=2400),
        )
        obs = env.reset(seed=0)
        agent = LongestQueueSystem()
        # Force queues to build by holding NS phases for a while.
        for _ in range(20):
            env.step({a: 0 for a in env.agent_ids})
        actions = agent.act(env._observe_all(), env, training=False)
        name = small_grid.phase_plans["I1_0"].phases[actions["I1_0"]].name
        assert name == "EW-through"
