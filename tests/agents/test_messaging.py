"""Message regularizer, message board, and partner-selection tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.pairuplight.messaging import (
    MessageBoard,
    MessageRegularizer,
    select_partner,
)
from repro.errors import ConfigError

from helpers import make_env


class TestMessageRegularizer:
    def test_output_in_unit_interval(self):
        reg = MessageRegularizer(sigma=0.5, seed=0)
        means = np.random.default_rng(0).normal(size=(10, 2)) * 5
        m_hat, _, _ = reg.transmit(means, training=True)
        assert np.all((m_hat > 0) & (m_hat < 1))

    def test_eval_mode_deterministic(self):
        reg = MessageRegularizer(sigma=0.5, seed=0)
        mean = np.array([[0.3]])
        a, raw_a, _ = reg.transmit(mean, training=False)
        b, raw_b, _ = reg.transmit(mean, training=False)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(raw_a, mean)

    def test_training_mode_noisy(self):
        reg = MessageRegularizer(sigma=0.5, seed=0)
        mean = np.zeros((1, 1))
        a, _, _ = reg.transmit(mean, training=True)
        b, _, _ = reg.transmit(mean, training=True)
        assert not np.array_equal(a, b)

    def test_logprob_peaks_at_mean(self):
        reg = MessageRegularizer(sigma=0.5)
        at_mean = reg.logprob(np.array([0.0]), np.array([0.0]))
        off_mean = reg.logprob(np.array([1.0]), np.array([0.0]))
        assert at_mean > off_mean

    def test_logprob_matches_gaussian_density(self):
        sigma = 0.7
        reg = MessageRegularizer(sigma=sigma)
        raw, mean = np.array([0.4]), np.array([0.1])
        expected = (
            -0.5 * ((0.4 - 0.1) / sigma) ** 2
            - np.log(sigma)
            - 0.5 * np.log(2 * np.pi)
        )
        assert float(reg.logprob(raw, mean)) == pytest.approx(expected)

    def test_logprob_sums_over_dims(self):
        reg = MessageRegularizer(sigma=0.5)
        raw = np.array([[0.1, 0.2]])
        mean = np.zeros((1, 2))
        total = reg.logprob(raw, mean)
        parts = reg.logprob(raw[:, :1], mean[:, :1]) + reg.logprob(
            raw[:, 1:], mean[:, 1:]
        )
        np.testing.assert_allclose(total, parts)

    def test_bad_sigma_rejected(self):
        with pytest.raises(ConfigError):
            MessageRegularizer(sigma=0.0)


class TestMessageBoard:
    def test_initial_messages_zero(self):
        board = MessageBoard(["a", "b"], message_dim=2)
        np.testing.assert_array_equal(board.read("a"), np.zeros(2))

    def test_post_and_read(self):
        board = MessageBoard(["a"], message_dim=1)
        board.post("a", np.array([0.7]))
        assert board.read("a")[0] == 0.7

    def test_read_returns_copy(self):
        board = MessageBoard(["a"], message_dim=1)
        board.post("a", np.array([0.5]))
        message = board.read("a")
        message[0] = 99.0
        assert board.read("a")[0] == 0.5

    def test_reset_zeroes(self):
        board = MessageBoard(["a"], message_dim=1)
        board.post("a", np.array([0.5]))
        board.reset()
        assert board.read("a")[0] == 0.0

    def test_wrong_shape_rejected(self):
        board = MessageBoard(["a"], message_dim=2)
        with pytest.raises(ConfigError):
            board.post("a", np.array([1.0]))

    def test_bad_dim_rejected(self):
        with pytest.raises(ConfigError):
            MessageBoard(["a"], message_dim=0)


class TestPartnerSelection:
    def test_empty_network_selects_self(self, small_grid):
        env = make_env(small_grid)
        env.reset(seed=0)
        for agent_id in env.agent_ids:
            assert select_partner(env, agent_id) == agent_id

    def test_partner_is_upstream_or_self(self, small_grid):
        env = make_env(small_grid, peak_rate=2000, t_peak=100)
        env.reset(seed=0)
        for _ in range(40):
            env.step({a: 0 for a in env.agent_ids})
        for agent_id in env.agent_ids:
            partner = select_partner(env, agent_id)
            candidates = set(env.upstream_neighbours(agent_id)) | {agent_id}
            assert partner in candidates

    def test_congested_upstream_preferred(self, small_grid):
        """With southbound flow on column 1 only, I1_1's most congested
        upstream neighbour should be I0_1 once queues build."""
        from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
        from repro.sim.demand import Flow, RateProfile

        origin, dest = small_grid.column_route_links(1, southbound=True)
        flows = [Flow("f", origin, dest, RateProfile.constant(1800, 300))]
        env = TrafficSignalEnv(
            small_grid.network,
            small_grid.phase_plans,
            flows,
            EnvConfig(horizon_ticks=300, max_ticks=2400),
        )
        env.reset(seed=0)
        # Hold an all-red-ish phase (EW phases) so the NS queue builds.
        ew_phase = {
            a: next(
                i
                for i, p in enumerate(small_grid.phase_plans[a].phases)
                if p.name == "EW-through"
            )
            for a in env.agent_ids
        }
        for _ in range(40):
            env.step(ew_phase)
        partner = select_partner(env, "I1_1")
        assert partner == "I0_1"
