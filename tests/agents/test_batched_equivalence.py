"""Batched forwards must equal per-agent forwards (shared-parameter mode).

Parameter sharing runs all agents through one actor/critic as a batch
dimension, both when acting and inside the PPO sequence re-evaluation.
Batching must be a pure layout change: each agent's row must come out
exactly as if it were processed alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.pairuplight import PairUpLightSystem
from repro.agents.pairuplight.actor import CoordinatedActor
from repro.agents.pairuplight.critic import CentralizedCritic
from repro.eval.harness import ExperimentScale, GridExperiment
from repro.nn.tensor import Tensor

TINY = ExperimentScale(
    rows=2,
    cols=2,
    peak_rate=600.0,
    t_peak=60.0,
    light_duration=120.0,
    horizon_ticks=100,
    max_ticks=3600,
    train_episodes=1,
    eval_episodes=1,
)


class TestActorBatching:
    def test_batched_rows_match_single_rows(self):
        rng = np.random.default_rng(0)
        actor = CoordinatedActor(10, 4, 1, 16, rng)
        obs = np.random.default_rng(1).normal(size=(5, 10))
        msg = np.random.default_rng(2).normal(size=(5, 1))
        state = actor.initial_state(5)

        logits_b, msg_b, new_state = actor(obs, msg, state)
        for row in range(5):
            row_state = (
                state[0][row : row + 1],
                state[1][row : row + 1],
            )
            logits_s, msg_s, ns = actor(
                obs[row : row + 1], msg[row : row + 1], row_state
            )
            np.testing.assert_allclose(
                logits_b.data[row], logits_s.data[0], rtol=1e-12, atol=1e-14
            )
            np.testing.assert_allclose(
                msg_b.data[row], msg_s.data[0], rtol=1e-12, atol=1e-14
            )
            np.testing.assert_allclose(
                new_state[0].data[row], ns[0].data[0], rtol=1e-12, atol=1e-14
            )


class TestCriticBatching:
    def test_batched_rows_match_single_rows(self):
        rng = np.random.default_rng(3)
        critic = CentralizedCritic(12, 16, rng)
        feats = np.random.default_rng(4).normal(size=(6, 12))
        state = critic.initial_state(6)
        values_b, new_state = critic(feats, state)
        for row in range(6):
            row_state = (state[0][row : row + 1], state[1][row : row + 1])
            value_s, _ = critic(feats[row : row + 1], row_state)
            np.testing.assert_allclose(
                np.asarray(values_b.data)[row],
                np.asarray(value_s.data)[0],
                rtol=1e-12,
                atol=1e-14,
            )


class TestSharedEvaluateBatching:
    def test_minibatch_columns_independent(self):
        """The PPO sequence unroll over a minibatch of agents must give
        each agent the same logprob/entropy/value it gets alone."""
        experiment = GridExperiment(TINY, seed=5)
        env = experiment.train_env(1)
        agent = PairUpLightSystem(env, seed=5)
        observations = env.reset(seed=11)
        agent.begin_episode(env, True)
        done = False
        while not done:
            actions = agent.act(observations, env, True)
            result = env.step(actions)
            agent.observe(result, env)
            observations = result.observations
            done = result.done
        data = agent.buffer.stacked()
        assert data["obs"].shape[0] > 0

        full_batch = np.arange(agent.num_agents)
        logprobs, entropies, values = agent._evaluate_shared(data, full_batch)
        for index in range(agent.num_agents):
            lp, ent, val = agent._evaluate_shared(data, np.array([index]))
            np.testing.assert_allclose(
                logprobs.data[:, index], lp.data[:, 0], rtol=1e-10, atol=1e-12
            )
            np.testing.assert_allclose(
                entropies.data[:, index], ent.data[:, 0], rtol=1e-10, atol=1e-12
            )
            np.testing.assert_allclose(
                values.data[:, index], val.data[:, 0], rtol=1e-10, atol=1e-12
            )
        agent.buffer.clear()
