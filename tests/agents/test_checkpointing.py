"""Full-system checkpoint tests for PairUpLight."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.pairuplight import PairUpLightConfig, PairUpLightSystem
from repro.errors import CheckpointError
from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
from repro.rl.ppo import PPOConfig
from repro.rl.runner import run_episode, train
from repro.scenarios.monaco import MonacoScenario, MonacoSpec

from helpers import make_env


class TestSharedCheckpoint:
    def test_round_trip_preserves_behaviour(self, tiny_grid, tmp_path):
        env = make_env(tiny_grid, horizon_ticks=60)
        agent = PairUpLightSystem(env, seed=0)
        train(agent, env, episodes=2, seed=0)
        path = tmp_path / "pairuplight.npz"
        agent.save(path)

        clone = PairUpLightSystem(env, seed=99)
        clone.load(path)
        obs = env.reset(seed=5)
        agent.begin_episode(env, training=False)
        clone.begin_episode(env, training=False)
        assert agent.act(obs, env, training=False) == clone.act(
            obs, env, training=False
        )

    def test_state_dict_keys_stable(self, tiny_grid):
        env = make_env(tiny_grid)
        agent = PairUpLightSystem(env, seed=0)
        keys = set(agent.state_dict())
        assert any(k.startswith("actor.") for k in keys)
        assert any(k.startswith("critic.") for k in keys)

    def test_load_rejects_wrong_architecture(self, tiny_grid, tmp_path):
        env = make_env(tiny_grid)
        agent = PairUpLightSystem(env, seed=0)
        path = tmp_path / "weights.npz"
        agent.save(path)
        other = PairUpLightSystem(
            env, PairUpLightConfig(hidden_size=32), seed=0
        )
        with pytest.raises(CheckpointError):
            other.load(path)


class TestIndependentCheckpoint:
    def test_heterogeneous_round_trip(self, tmp_path):
        scenario = MonacoScenario(MonacoSpec(rows=2, cols=3, seed=7, t_peak=60.0))
        env = TrafficSignalEnv(
            scenario.network,
            scenario.phase_plans,
            scenario.flows,
            EnvConfig(horizon_ticks=60, max_ticks=600),
        )
        config = PairUpLightConfig(
            parameter_sharing=False, ppo=PPOConfig(epochs=1, minibatch_agents=6)
        )
        agent = PairUpLightSystem(env, config, seed=0)
        run_episode(agent, env, training=True, seed=0)
        agent.end_episode(env, training=True)
        path = tmp_path / "het.npz"
        agent.save(path)

        clone = PairUpLightSystem(env, config, seed=123)
        clone.load(path)
        for agent_id in agent.agent_ids:
            np.testing.assert_allclose(
                clone.actors[agent_id].policy_head.weight.data,
                agent.actors[agent_id].policy_head.weight.data,
            )


class TestGenericCheckpointing:
    """save/load via the AgentSystem base implementation."""

    def _round_trip(self, make_agent, env, tmp_path, get_probe):
        import numpy as np

        agent = make_agent(0)
        path = tmp_path / "weights.npz"
        agent.save(path)
        clone = make_agent(123)
        clone.load(path)
        np.testing.assert_allclose(get_probe(clone), get_probe(agent))

    def test_single_agent(self, tiny_grid, tmp_path):
        from repro.agents.single_agent import SingleAgentSystem

        env = make_env(tiny_grid)
        self._round_trip(
            lambda s: SingleAgentSystem(env, seed=s), env, tmp_path,
            lambda a: a.actor.policy_head.weight.data,
        )

    def test_ma2c(self, tiny_grid, tmp_path):
        from repro.agents.ma2c import MA2CSystem

        env = make_env(tiny_grid)
        self._round_trip(
            lambda s: MA2CSystem(env, seed=s), env, tmp_path,
            lambda a: a.networks[a.agent_ids[0]].policy_head.weight.data,
        )

    def test_colight(self, tiny_grid, tmp_path):
        from repro.agents.colight import CoLightSystem

        env = make_env(tiny_grid)
        self._round_trip(
            lambda s: CoLightSystem(env, seed=s), env, tmp_path,
            lambda a: a.online.q_head.weight.data,
        )

    def test_iql(self, tiny_grid, tmp_path):
        from repro.agents.iql import IQLSystem

        env = make_env(tiny_grid)
        self._round_trip(
            lambda s: IQLSystem(env, seed=s), env, tmp_path,
            lambda a: a.online.body.output.weight.data,
        )

    def test_static_agent_save_rejected(self, tiny_grid, tmp_path):
        import pytest

        from repro.agents.fixed_time import FixedTimeSystem

        env = make_env(tiny_grid)
        with pytest.raises(ValueError):
            FixedTimeSystem(env).save(tmp_path / "nothing.npz")
