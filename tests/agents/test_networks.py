"""Actor / critic network architecture tests."""

from __future__ import annotations

import numpy as np

from repro.agents.pairuplight.actor import CoordinatedActor
from repro.agents.pairuplight.critic import (
    ONE_HOP_SLOTS,
    TWO_HOP_SLOTS,
    CentralizedCritic,
    CriticFeatureBuilder,
)
from repro.env.observation import DEFAULT_APPROACH_SLOTS

from helpers import make_env


class TestCoordinatedActor:
    def test_output_shapes(self, rng):
        actor = CoordinatedActor(obs_dim=8, num_phases=4, message_dim=1, rng=rng)
        state = actor.initial_state(3)
        logits, message, new_state = actor(
            np.zeros((3, 8)), np.zeros((3, 1)), state
        )
        assert logits.shape == (3, 4)
        assert message.shape == (3, 1)
        assert new_state[0].shape == (3, 64)

    def test_initial_policy_near_uniform(self, rng):
        actor = CoordinatedActor(obs_dim=8, num_phases=4, rng=rng)
        logits, _, _ = actor(np.zeros((1, 8)), np.zeros((1, 1)), actor.initial_state(1))
        probs = np.exp(logits.data[0])
        probs /= probs.sum()
        assert np.allclose(probs, 0.25, atol=0.02)

    def test_message_influences_output(self, rng):
        actor = CoordinatedActor(obs_dim=8, num_phases=4, rng=rng)
        obs = np.random.default_rng(0).normal(size=(1, 8))
        # Run a few steps so the LSTM state differentiates inputs.
        state_a = actor.initial_state(1)
        state_b = actor.initial_state(1)
        for _ in range(3):
            out_a, _, state_a = actor(obs, np.array([[0.0]]), state_a)
            out_b, _, state_b = actor(obs, np.array([[5.0]]), state_b)
        assert not np.allclose(out_a.data, out_b.data)

    def test_recurrence_matters(self, rng):
        actor = CoordinatedActor(obs_dim=4, num_phases=2, rng=rng)
        obs = np.ones((1, 4))
        msg = np.zeros((1, 1))
        out1, _, state = actor(obs, msg, actor.initial_state(1))
        out2, _, _ = actor(obs, msg, state)
        assert not np.allclose(out1.data, out2.data)

    def test_multi_dim_message(self, rng):
        actor = CoordinatedActor(obs_dim=8, num_phases=4, message_dim=2, rng=rng)
        logits, message, _ = actor(
            np.zeros((2, 8)), np.zeros((2, 2)), actor.initial_state(2)
        )
        assert message.shape == (2, 2)


class TestCriticFeatureBuilder:
    def test_feature_dim_structure(self, small_grid):
        env = make_env(small_grid)
        builder = CriticFeatureBuilder(env)
        node = "I1_1"
        expected = (
            env.observation_spaces[node].dim
            + ONE_HOP_SLOTS * DEFAULT_APPROACH_SLOTS
            + TWO_HOP_SLOTS
        )
        assert builder.feature_dim(node) == expected

    def test_feature_vector_shape(self, small_grid):
        env = make_env(small_grid)
        obs = env.reset(seed=0)
        builder = CriticFeatureBuilder(env)
        for node in env.agent_ids:
            features = builder.build(node, obs[node])
            assert features.shape == (builder.feature_dim(node),)

    def test_edge_nodes_zero_padded(self, small_grid):
        """Corner I0_0 has 2 one-hop neighbours: 2 slots must be zeros."""
        env = make_env(small_grid, peak_rate=2000, t_peak=100)
        env.reset(seed=0)
        for _ in range(30):
            env.step({a: 0 for a in env.agent_ids})
        builder = CriticFeatureBuilder(env)
        obs_dim = env.observation_spaces["I0_0"].dim
        features = builder.build("I0_0", np.zeros(obs_dim))
        one_hop_block = features[obs_dim : obs_dim + ONE_HOP_SLOTS * 4]
        slots = one_hop_block.reshape(ONE_HOP_SLOTS, 4)
        empty_slots = sum(1 for row in slots if not row.any())
        assert empty_slots >= 2

    def test_same_layout_across_grid(self, small_grid):
        """Padding makes every node's feature dim identical (paper S V-B)."""
        env = make_env(small_grid)
        builder = CriticFeatureBuilder(env)
        dims = {builder.feature_dim(n) for n in env.agent_ids}
        assert len(dims) == 1


class TestCentralizedCritic:
    def test_value_shape(self, rng):
        critic = CentralizedCritic(feature_dim=32, rng=rng)
        value, state = critic(np.zeros((5, 32)), critic.initial_state(5))
        assert value.shape == (5,)
        assert state[0].shape == (5, 64)

    def test_gradient_flows(self, rng):
        critic = CentralizedCritic(feature_dim=16, rng=rng)
        value, _ = critic(np.ones((2, 16)), critic.initial_state(2))
        value.sum().backward()
        assert all(p.grad is not None for p in critic.parameters())
