"""Cross-cutting tests for corners not covered elsewhere."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.scenarios.monaco import MonacoScenario, MonacoSpec
from repro.sim.signal import default_four_phase_plan

from helpers import make_env


class Test3DTensorOps:
    def test_batched_matmul_forward(self, rng):
        a = rng.normal(size=(4, 2, 3))
        b = rng.normal(size=(4, 3, 5))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b)

    def test_batched_matmul_gradient(self, rng):
        a = Tensor(rng.normal(size=(3, 2, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == a.data.shape
        assert b.grad.shape == b.data.shape
        # Spot-check against the identity d(sum(AB))/dA = 1 @ B^T.
        ones = np.ones((3, 2, 2))
        np.testing.assert_allclose(a.grad, ones @ np.swapaxes(b.data, -1, -2))

    def test_3d_reduction_axes(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        x.sum(axis=(0, 2)).sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((2, 3, 4)))

    def test_transpose_explicit_axes_3d(self, rng):
        data = rng.normal(size=(2, 3, 4))
        x = Tensor(data, requires_grad=True)
        (x.transpose(2, 0, 1) ** 2).sum().backward()
        np.testing.assert_allclose(x.grad, 2 * data)


class TestTJunctionPhasePlans:
    def test_monaco_t_junctions_get_reduced_plans(self):
        """Nodes that lost approaches still produce valid phase plans."""
        scenario = MonacoScenario(
            MonacoSpec(rows=3, cols=4, removal_fraction=0.3, seed=13)
        )
        sizes = {plan.num_phases for plan in scenario.phase_plans.values()}
        assert min(sizes) < 4  # at least one reduced (T-junction-like) plan
        for node_id, plan in scenario.phase_plans.items():
            covered = set()
            for phase in plan.phases:
                assert phase.green_movements  # no empty phases survive
                covered |= phase.green_movements
            expected = {
                m.key for m in scenario.network.movements_at(node_id)
            }
            assert covered == expected


class TestMA2CFeatureShapes:
    def test_feature_dim_matches_network_input(self, small_grid):
        from repro.agents.ma2c import MA2CSystem

        env = make_env(small_grid)
        agent = MA2CSystem(env, seed=0)
        obs = env.reset(seed=0)
        agent.begin_episode(env, training=False)
        for agent_id in env.agent_ids:
            features = agent._build_features(env, agent_id, obs)
            assert features.shape[0] == agent._input_dims[agent_id]

    def test_fingerprints_update_each_step(self, small_grid):
        from repro.agents.ma2c import MA2CSystem

        env = make_env(small_grid, peak_rate=1500, t_peak=100)
        agent = MA2CSystem(env, seed=0)
        obs = env.reset(seed=0)
        agent.begin_episode(env, training=True)
        agent.act(obs, env, training=True)
        first = {a: f.copy() for a, f in agent._fingerprints.items()}
        for _ in range(5):
            result = env.step(agent.act(obs, env, training=True))
            obs = result.observations
        changed = any(
            not np.allclose(first[a], agent._fingerprints[a])
            for a in env.agent_ids
        )
        assert changed

    def test_fingerprints_are_distributions(self, small_grid):
        from repro.agents.ma2c import MA2CSystem

        env = make_env(small_grid)
        agent = MA2CSystem(env, seed=0)
        obs = env.reset(seed=0)
        agent.begin_episode(env, training=True)
        agent.act(obs, env, training=True)
        for probs in agent._fingerprints.values():
            assert probs.min() >= 0
            assert probs.sum() == pytest.approx(1.0)


class TestCoLightInternals:
    def test_q_values_finite_under_load(self, small_grid):
        from repro.agents.colight import CoLightSystem

        env = make_env(small_grid, peak_rate=2000, t_peak=100)
        agent = CoLightSystem(env, seed=0)
        obs = env.reset(seed=0)
        agent.begin_episode(env, training=False)
        for _ in range(10):
            actions = agent.act(obs, env, training=False)
            obs = env.step(actions).observations
        self_obs, neigh, mask = agent._gather(obs)
        q = agent.online(self_obs, neigh, mask)
        assert np.all(np.isfinite(q.data))

    def test_corner_nodes_masked(self, small_grid):
        from repro.agents.colight import CoLightSystem

        env = make_env(small_grid)
        agent = CoLightSystem(env, seed=0)
        obs = env.reset(seed=0)
        _, _, mask = agent._gather(obs)
        corner_index = env.agent_ids.index("I0_0")
        # self + 2 neighbours valid, 2 padding slots masked.
        assert mask[corner_index].sum() == 3


class TestEnvRobustness:
    def test_missing_agent_action_serves_current_phase(self, tiny_env):
        """Partial action dicts are allowed: unmentioned agents hold."""
        tiny_env.reset(seed=0)
        first = tiny_env.agent_ids[0]
        result = tiny_env.step({first: 1})
        assert result.info["time"] == tiny_env.config.delta_t

    def test_observation_dtype_stable_over_long_run(self, tiny_env):
        tiny_env.reset(seed=0)
        for _ in range(30):
            result = tiny_env.step({a: 0 for a in tiny_env.agent_ids})
        for vector in result.observations.values():
            assert np.all(np.isfinite(vector))
