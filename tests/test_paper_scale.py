"""Smoke tests at the paper's full scale (6x6, 2700 s demand).

These do NOT train to convergence — they verify that the full published
configuration constructs, steps, and produces sane numbers, so that
``ExperimentScale.paper()`` is a working path and not documentation
fiction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.fixed_time import FixedTimeSystem
from repro.agents.pairuplight import PairUpLightSystem
from repro.eval.harness import ExperimentScale, GridExperiment


@pytest.fixture(scope="module")
def paper_experiment():
    return GridExperiment(ExperimentScale.paper(), seed=0)


class TestPaperScale:
    def test_grid_matches_paper_geometry(self, paper_experiment):
        scenario = paper_experiment.scenario
        assert len(scenario.network.signalized_nodes()) == 36
        assert scenario.spec.block_length == 200.0
        plan = scenario.phase_plans["I2_3"]
        assert plan.num_phases == 4

    def test_demand_matches_paper(self, paper_experiment):
        env = paper_experiment.train_env(1)
        assert len(env.flows) == 16  # 16 OD pairs
        peak = max(f.profile.peak_rate for f in env.flows)
        assert peak == 500.0
        assert max(f.profile.end_time for f in env.flows) == 2700.0

    def test_env_steps_with_all_36_agents(self, paper_experiment):
        env = paper_experiment.train_env(1)
        observations = env.reset(seed=0)
        assert len(observations) == 36
        agent = PairUpLightSystem(env, seed=0)
        agent.begin_episode(env, training=True)
        for _ in range(6):
            actions = agent.act(observations, env, training=True)
            result = env.step(actions)
            agent.observe(result, env)
            observations = result.observations
        assert result.info["time"] == 30
        assert all(np.isfinite(v).all() for v in observations.values())

    def test_fixed_time_full_episode_runs(self, paper_experiment):
        """One full 2700 s fixed-time episode at paper scale (~1 s)."""
        env = paper_experiment.train_env(1)
        agent = FixedTimeSystem(env)
        observations = env.reset(seed=0)
        done = False
        while not done:
            result = env.step(agent.act(observations, env, training=False))
            observations = result.observations
            done = result.done
        assert result.info["time"] == 2700
        assert env.sim.total_created > 1000  # paper-scale demand volume
