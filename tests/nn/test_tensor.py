"""Autograd engine tests: every op is checked against numerical gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concat, stack, where


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        f_plus = fn(x)
        flat[i] = original - eps
        f_minus = fn(x)
        flat[i] = original
        grad_flat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


def check_gradient(build_fn, x: np.ndarray, atol: float = 1e-5) -> None:
    """Compare autograd gradient of ``build_fn(Tensor)`` with numerics."""
    t = Tensor(x.copy(), requires_grad=True)
    out = build_fn(t)
    out.backward()
    analytic = t.grad

    def scalar_fn(arr: np.ndarray) -> float:
        return float(build_fn(Tensor(arr)).data)

    numeric = numerical_gradient(scalar_fn, x.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)


class TestBasicOps:
    def test_add_forward(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_array_equal(out.data, [4.0, 6.0])

    def test_add_gradient(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t + Tensor(np.ones((3, 4)))).sum(), x)

    def test_add_broadcast_gradient(self, rng):
        x = rng.normal(size=(4,))
        other = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda t: (t + other).sum(), x)

    def test_scalar_radd(self):
        out = 2.0 + Tensor([1.0])
        assert out.data[0] == 3.0

    def test_sub_gradient(self, rng):
        x = rng.normal(size=(2, 3))
        other = Tensor(rng.normal(size=(2, 3)))
        check_gradient(lambda t: (t - other).sum(), x)

    def test_rsub(self):
        out = 5.0 - Tensor([2.0])
        assert out.data[0] == 3.0

    def test_mul_gradient(self, rng):
        x = rng.normal(size=(3, 3))
        other = Tensor(rng.normal(size=(3, 3)))
        check_gradient(lambda t: (t * other).sum(), x)

    def test_mul_broadcast_gradient(self, rng):
        x = rng.normal(size=(1, 3))
        other = Tensor(rng.normal(size=(4, 3)))
        check_gradient(lambda t: (t * other).sum(), x)

    def test_div_gradient(self, rng):
        x = rng.normal(size=(3,)) + 5.0
        other = Tensor(rng.normal(size=(3,)) + 3.0)
        check_gradient(lambda t: (other / t).sum(), x)
        check_gradient(lambda t: (t / other).sum(), x)

    def test_pow_gradient(self, rng):
        x = np.abs(rng.normal(size=(4,))) + 0.5
        check_gradient(lambda t: (t**3).sum(), x)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_neg_gradient(self, rng):
        x = rng.normal(size=(5,))
        check_gradient(lambda t: (-t).sum(), x)


class TestMatmul:
    def test_matmul_forward(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(3, 4))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b)

    def test_matmul_gradient_left(self, rng):
        x = rng.normal(size=(2, 3))
        other = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda t: (t @ other).sum(), x)

    def test_matmul_gradient_right(self, rng):
        x = rng.normal(size=(3, 4))
        other = Tensor(rng.normal(size=(2, 3)))
        check_gradient(lambda t: (other @ t).sum(), x)

    def test_vector_matmul_gradient(self, rng):
        x = rng.normal(size=(3,))
        weight = Tensor(rng.normal(size=(3, 2)))
        check_gradient(lambda t: (t @ weight).sum(), x)


class TestNonlinearities:
    @pytest.mark.parametrize(
        "op",
        ["exp", "tanh", "sigmoid", "relu", "abs"],
    )
    def test_elementwise_gradient(self, rng, op):
        x = rng.normal(size=(3, 4)) + 0.1  # avoid relu/abs kinks at 0
        check_gradient(lambda t: getattr(t, op)().sum(), x)

    def test_log_gradient(self, rng):
        x = np.abs(rng.normal(size=(4,))) + 0.5
        check_gradient(lambda t: t.log().sum(), x)

    def test_leaky_relu_gradient(self, rng):
        x = rng.normal(size=(4,)) + 0.1
        check_gradient(lambda t: t.leaky_relu(0.1).sum(), x)

    def test_sigmoid_extreme_values_stable(self):
        out = Tensor([1000.0, -1000.0]).sigmoid()
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, [1.0, 0.0], atol=1e-9)

    def test_clip_gradient_masks_outside(self):
        t = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all_gradient(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: t.sum(), x)

    def test_sum_axis_gradient(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), x)

    def test_sum_keepdims_gradient(self, rng):
        x = rng.normal(size=(3, 4))
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) ** 2).sum(), x)

    def test_mean_gradient(self, rng):
        x = rng.normal(size=(2, 5))
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), x)

    def test_mean_matches_numpy(self, rng):
        x = rng.normal(size=(4, 4))
        assert np.isclose(float(Tensor(x).mean().data), x.mean())

    def test_max_gradient_unique(self):
        t = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        t.max().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 1.0, 0.0])

    def test_max_gradient_ties_split(self):
        t = Tensor([5.0, 5.0], requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5])

    def test_minimum_gradient(self, rng):
        x = rng.normal(size=(5,))
        other = Tensor(rng.normal(size=(5,)))
        check_gradient(lambda t: t.minimum(other).sum(), x)

    def test_maximum_gradient(self, rng):
        x = rng.normal(size=(5,))
        other = Tensor(rng.normal(size=(5,)))
        check_gradient(lambda t: t.maximum(other).sum(), x)


class TestShapes:
    def test_reshape_gradient(self, rng):
        x = rng.normal(size=(2, 6))
        check_gradient(lambda t: (t.reshape(3, 4) ** 2).sum(), x)

    def test_transpose_gradient(self, rng):
        x = rng.normal(size=(2, 3))
        other = Tensor(rng.normal(size=(2, 3)))
        check_gradient(lambda t: (t.transpose() @ other).sum(), x)

    def test_getitem_slice_gradient(self, rng):
        x = rng.normal(size=(4, 6))
        check_gradient(lambda t: (t[:, 1:4] ** 2).sum(), x)

    def test_getitem_fancy_gradient(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        rows = np.array([0, 1])
        cols = np.array([2, 0])
        t[rows, cols].sum().backward()
        expected = np.zeros((2, 3))
        expected[0, 2] = 1.0
        expected[1, 0] = 1.0
        np.testing.assert_array_equal(t.grad, expected)

    def test_getitem_repeated_index_accumulates(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        rows = np.array([0, 0, 1])
        t[rows].sum().backward()
        np.testing.assert_array_equal(t.grad, [2.0, 1.0])

    def test_concat_gradient(self, rng):
        x = rng.normal(size=(2, 3))
        other = Tensor(rng.normal(size=(2, 2)))
        check_gradient(lambda t: (concat([t, other], axis=1) ** 2).sum(), x)

    def test_stack_gradient(self, rng):
        x = rng.normal(size=(3,))
        other = Tensor(rng.normal(size=(3,)))
        check_gradient(lambda t: (stack([t, other], axis=0) ** 2).sum(), x)

    def test_where_gradient(self):
        cond = np.array([True, False, True])
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0, 6.0], requires_grad=True)
        where(cond, a, b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_array_equal(b.grad, [0.0, 1.0, 0.0])


class TestGraphMechanics:
    def test_gradient_accumulates_on_reuse(self):
        t = Tensor([2.0], requires_grad=True)
        (t * t).sum().backward()  # d(x^2)/dx = 2x = 4
        np.testing.assert_allclose(t.grad, [4.0])

    def test_diamond_graph(self):
        t = Tensor([3.0], requires_grad=True)
        a = t * 2.0
        b = t * 5.0
        (a + b).sum().backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_deep_chain(self, rng):
        x = rng.normal(size=(4,))
        check_gradient(
            lambda t: (((t * 2.0).tanh() + 1.0).sigmoid()).sum(), x
        )

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_detach_cuts_graph(self):
        t = Tensor([2.0], requires_grad=True)
        detached = (t * 3.0).detach()
        assert not detached.requires_grad
        out = detached * 2.0
        assert not out.requires_grad

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_constants_have_no_graph(self):
        out = Tensor([1.0]) + Tensor([2.0])
        assert not out.requires_grad
        assert out._parents == ()

    def test_backward_with_explicit_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 3.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(t.grad, [3.0, 30.0])

    def test_second_backward_accumulates(self):
        t = Tensor([1.0], requires_grad=True)
        out = t * 2.0
        out.backward()
        out2 = t * 2.0
        out2.backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_item_and_shape(self):
        t = Tensor(5.0)
        assert t.item() == 5.0
        assert Tensor(np.zeros((2, 3))).shape == (2, 3)
        assert Tensor(np.zeros((2, 3))).ndim == 2
        assert Tensor(np.zeros((2, 3))).size == 6

    def test_float32_input_promoted(self):
        t = Tensor(np.zeros(3, dtype=np.float32))
        assert t.data.dtype == np.float64
