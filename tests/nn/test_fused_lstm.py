"""Fused-kernel equivalence suite (PR 5 tentpole).

Covers the fused ops (`affine`, `lstm_cell`, `lstm_trunk`) against the
composed op chains they replace — bit-exact forwards and accumulated
gradients, not just within tolerance — plus dtype-coercion behaviour,
workspace reuse, `no_grad`, flat-tape regressions, and bit-exactness of
the fused in-place optimizer step loops.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn.tensor as tensor_mod
from repro.agents.pairuplight.actor import CoordinatedActor
from repro.nn.lstm import LSTMCell
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, RMSProp
from repro.nn.tensor import Tensor, affine, lstm_cell, lstm_trunk, no_grad


def _rand(shape, seed):
    return np.random.default_rng(seed).standard_normal(shape) * 0.5


def _unroll(cell: LSTMCell, xs: list[np.ndarray]):
    """Run a sequence, consuming every h (and the final c) in a loss."""
    state = cell.initial_state(xs[0].shape[0])
    loss = None
    for step, x in enumerate(xs):
        h, state = cell(Tensor(x, requires_grad=True), state)
        term = (h * Tensor(np.full(h.shape, 0.1 * (step + 1)))).sum()
        loss = term if loss is None else loss + term
    loss = loss + (state[1] * Tensor(np.full(state[1].shape, 0.3))).sum()
    return loss, state


class TestFusedVsComposedCell:
    def test_forward_and_grads_bit_exact(self):
        rng_seed = 5
        xs = [_rand((3, 4), 20 + t) for t in range(4)]
        results = {}
        for fused in (True, False):
            cell = LSTMCell(4, 6, np.random.default_rng(rng_seed), fused=fused)
            loss, state = _unroll(cell, xs)
            loss.backward()
            results[fused] = (
                loss.data.copy(),
                state[0].data.copy(),
                state[1].data.copy(),
                cell.weight.grad.copy(),
                cell.bias.grad.copy(),
            )
        for got, want in zip(results[True], results[False]):
            assert np.array_equal(got, want)

    def test_equivalence_within_1e10(self):
        """The issue's explicit <=1e-10 bar (implied by bit-exactness)."""
        xs = [_rand((2, 3), 40 + t) for t in range(3)]
        grads = {}
        for fused in (True, False):
            cell = LSTMCell(3, 5, np.random.default_rng(9), fused=fused)
            loss, _ = _unroll(cell, xs)
            loss.backward()
            grads[fused] = cell.weight.grad.copy()
        assert np.max(np.abs(grads[True] - grads[False])) <= 1e-10

    def test_input_gradient_bit_exact(self):
        x = Tensor(_rand((3, 4), 50), requires_grad=True)
        outs = {}
        for fused in (True, False):
            cell = LSTMCell(4, 6, np.random.default_rng(3), fused=fused)
            x_run = Tensor(x.data.copy(), requires_grad=True)
            h, state = cell(x_run, cell.initial_state(3))
            ((h * h).sum() + state[1].sum()).backward()
            outs[fused] = x_run.grad.copy()
        assert np.array_equal(outs[True], outs[False])


class TestFusedTrunk:
    def _actors(self):
        pair = []
        for fused in (True, False):
            actor = CoordinatedActor(
                obs_dim=5,
                num_phases=3,
                message_dim=1,
                hidden_size=8,
                rng=np.random.default_rng(11),
                fused=fused,
            )
            pair.append(actor)
        return pair

    def test_step_hidden_sequence_bit_exact(self):
        fused_actor, composed_actor = self._actors()
        obs = [_rand((4, 5), 60 + t) for t in range(3)]
        msg = [_rand((4, 1), 70 + t) for t in range(3)]
        results = {}
        for key, actor in (("fused", fused_actor), ("composed", composed_actor)):
            state = actor.initial_state(4)
            loss = None
            for o, m in zip(obs, msg):
                hidden, state = actor.step_hidden(o, m, state)
                term = (hidden * hidden).sum()
                loss = term if loss is None else loss + term
            loss.backward()
            results[key] = {
                "loss": np.asarray(loss.data).copy(),
                "h": state[0].data.copy(),
                "c": state[1].data.copy(),
                **{
                    name: param.grad.copy()
                    for name, param in (
                        ("enc_w", actor.encoder.weight),
                        ("enc_b", actor.encoder.bias),
                        ("lstm_w", actor.lstm.weight),
                        ("lstm_b", actor.lstm.bias),
                    )
                },
            }
        for key in results["fused"]:
            assert np.array_equal(results["fused"][key], results["composed"][key]), key

    def test_trunk_matches_manual_composition(self):
        x = _rand((2, 5), 80)
        h = _rand((2, 4), 81)
        c = _rand((2, 4), 82)
        we = Tensor(_rand((5, 4), 83), requires_grad=True)
        be = Tensor(_rand((4,), 84), requires_grad=True)
        w = Tensor(_rand((8, 16), 85), requires_grad=True)
        b = Tensor(_rand((16,), 86), requires_grad=True)

        h_f, c_f = lstm_trunk(x, h, c, we, be, w, b)
        ((h_f * h_f).sum() + c_f.sum()).backward()
        fused = [p.grad.copy() for p in (we, be, w, b)]
        fused_vals = (h_f.data.copy(), c_f.data.copy())

        for p in (we, be, w, b):
            p.grad = None
        cell = LSTMCell(4, 4, np.random.default_rng(0), fused=False)
        cell.weight = Parameter(w.data.copy())
        cell.bias = Parameter(b.data.copy())
        encoded = affine(Tensor(x), we, be).tanh()
        h_c, state = cell(encoded, (Tensor(h), Tensor(c)))
        ((h_c * h_c).sum() + state[1].sum()).backward()
        composed = [p.grad.copy() for p in (we, be)] + [
            cell.weight.grad.copy(),
            cell.bias.grad.copy(),
        ]
        assert np.array_equal(fused_vals[0], h_c.data)
        assert np.array_equal(fused_vals[1], state[1].data)
        for got, want in zip(fused, composed):
            assert np.array_equal(got, want)


class TestStateDtypeCoercion:
    """Satellite: float32 states must coerce via Tensor.ensure, both paths."""

    @pytest.mark.parametrize("fused", [True, False])
    def test_lstm_cell_accepts_float32_state(self, fused):
        cell = LSTMCell(3, 4, np.random.default_rng(2), fused=fused)
        x = _rand((2, 3), 90)
        h64, c64 = cell.initial_state(2)
        h32 = h64.astype(np.float32)
        c32 = c64.astype(np.float32)
        out32, state32 = cell(Tensor(x), (h32, c32))
        out64, state64 = cell(Tensor(x), (h64, c64))
        assert out32.data.dtype == np.float64
        assert state32[1].data.dtype == np.float64
        assert np.array_equal(out32.data, out64.data)
        assert np.array_equal(state32[1].data, state64[1].data)

    @pytest.mark.parametrize("fused", [True, False])
    def test_nonzero_float32_state_rounds_then_matches(self, fused):
        cell = LSTMCell(3, 4, np.random.default_rng(2), fused=fused)
        x = _rand((2, 3), 91)
        h32 = _rand((2, 4), 92).astype(np.float32)
        c32 = _rand((2, 4), 93).astype(np.float32)
        out32, _ = cell(Tensor(x), (h32, c32))
        # Coercion widens the float32 values; identical to feeding the
        # widened arrays directly.
        out_widened, _ = cell(
            Tensor(x), (h32.astype(np.float64), c32.astype(np.float64))
        )
        assert np.array_equal(out32.data, out_widened.data)

    def test_trunk_accepts_float32_state(self):
        actor = CoordinatedActor(
            obs_dim=3, num_phases=2, hidden_size=4, rng=np.random.default_rng(4)
        )
        h, c = actor.initial_state(2)
        hidden32, _ = actor.step_hidden(
            _rand((2, 3), 94),
            _rand((2, 1), 95),
            (h.astype(np.float32), c.astype(np.float32)),
        )
        hidden64, _ = actor.step_hidden(_rand((2, 3), 94), _rand((2, 1), 95), (h, c))
        assert hidden32.data.dtype == np.float64
        assert np.array_equal(hidden32.data, hidden64.data)


class TestWorkspaceReuse:
    def test_results_stable_across_batch_size_changes(self):
        cell = LSTMCell(3, 4, np.random.default_rng(6), fused=True)
        for batch in (2, 5, 2, 3):
            x = _rand((batch, 3), 100 + batch)
            fresh = LSTMCell(3, 4, np.random.default_rng(6), fused=True)
            out_reused, state_reused = cell(Tensor(x), cell.initial_state(batch))
            out_fresh, state_fresh = fresh(Tensor(x), fresh.initial_state(batch))
            (out_reused.sum() + state_reused[1].sum()).backward()
            (out_fresh.sum() + state_fresh[1].sum()).backward()
            assert np.array_equal(out_reused.data, out_fresh.data)
            assert np.array_equal(cell.weight.grad, fresh.weight.grad)
            cell.weight.grad = None
            cell.bias.grad = None

    def test_workspace_populated_and_reused(self):
        cell = LSTMCell(3, 4, np.random.default_rng(6), fused=True)
        x = _rand((2, 3), 110)
        out, state = cell(Tensor(x), cell.initial_state(2))
        (out.sum() + state[1].sum()).backward()
        buffers = {key: id(buf) for key, buf in cell._workspace.items()}
        assert buffers, "fused cell should populate its workspace"
        out, state = cell(Tensor(x), cell.initial_state(2))
        (out.sum() + state[1].sum()).backward()
        assert {key: id(buf) for key, buf in cell._workspace.items()} == buffers


class TestNoGrad:
    def test_fused_ops_record_nothing_under_no_grad(self):
        x = _rand((2, 3), 120)
        w = Tensor(_rand((3, 2), 121), requires_grad=True)
        b = Tensor(_rand((2,), 122), requires_grad=True)
        cw = Tensor(_rand((4, 8), 123), requires_grad=True)
        cb = Tensor(_rand((8,), 124), requires_grad=True)
        with no_grad():
            y = affine(Tensor(x), w, b)
            h, c = lstm_cell(y, _rand((2, 2), 125), _rand((2, 2), 126), cw, cb)
        for out in (y, h, c):
            assert not out.requires_grad
            assert out._parents == ()
            assert out._backward is None


class TestFlatTape:
    def test_unrelated_graph_backward_leaves_grads_untouched(self):
        x1 = Tensor(_rand((2, 2), 130), requires_grad=True)
        y1 = (x1 * 2.0).tanh().sum()
        x2 = Tensor(_rand((2, 2), 131), requires_grad=True)
        y2 = (x2 * 3.0).sum()
        y2.backward()
        assert x1.grad is None
        assert np.array_equal(x2.grad, np.full((2, 2), 3.0))
        y1.backward()
        assert x1.grad is not None

    def test_grad_accumulation_across_fresh_graphs(self):
        """Each backward over a *fresh* graph adds onto existing ``.grad``.

        This is the accumulation contract the optimizers rely on
        (``zero_grad`` between updates); re-firing an already-walked
        graph is unsupported in both paths because stale intermediate
        grads would re-feed the closures.
        """
        grads = {}
        for fused in (True, False):
            cell = LSTMCell(3, 4, np.random.default_rng(8), fused=fused)
            x = _rand((2, 3), 132)
            out, state = cell(Tensor(x), cell.initial_state(2))
            (out.sum() + state[1].sum()).backward()
            first = cell.weight.grad.copy()
            out, state = cell(Tensor(x), cell.initial_state(2))
            (out.sum() + state[1].sum()).backward()
            grads[fused] = (first, cell.weight.grad.copy())
        assert np.array_equal(grads[True][0], grads[False][0])
        assert np.array_equal(grads[True][1], grads[False][1])
        assert np.array_equal(grads[True][1], 2.0 * grads[True][0])

    def test_shared_subexpression(self):
        x = Tensor(np.array([0.3, -0.2]), requires_grad=True)
        z = x * 2.0
        y = (z.tanh() + z.exp()).sum()
        y.backward()
        expected = (1.0 - np.tanh(x.data * 2.0) ** 2) * 2.0 + np.exp(x.data * 2.0) * 2.0
        assert np.allclose(x.grad, expected, atol=1e-12)

    def test_tape_compaction_bounds_growth(self):
        start = len(tensor_mod._TAPE)
        for index in range(6000):
            x = Tensor(np.ones(2), requires_grad=True)
            (x * 2.0).sum()
        assert len(tensor_mod._TAPE) <= max(8192, 2 * start)
        # A live graph built after heavy churn still backwards correctly.
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 5.0).sum().backward()
        assert np.array_equal(x.grad, np.full(3, 5.0))


class TestFusedOptimizerSteps:
    """The in-place step loops must match the naive formulations bit-for-bit."""

    def _params(self, seed):
        return [
            Parameter(_rand((4, 3), seed)),
            Parameter(_rand((3,), seed + 1)),
        ]

    def _grads(self, params, seed):
        for offset, param in enumerate(params):
            param.grad = _rand(param.data.shape, seed + offset)

    def test_adam_matches_naive(self):
        params = self._params(140)
        reference = [p.data.copy() for p in params]
        opt = Adam(params, lr=1e-3)
        m = [np.zeros_like(p) for p in reference]
        v = [np.zeros_like(p) for p in reference]
        for step in range(1, 6):
            self._grads(params, 150 + 10 * step)
            opt.step()
            for i, param in enumerate(params):
                grad = param.grad
                m[i] = opt.beta1 * m[i] + (1.0 - opt.beta1) * grad
                v[i] = opt.beta2 * v[i] + (1.0 - opt.beta2) * (grad * grad)
                m_hat = m[i] / (1.0 - opt.beta1**step)
                v_hat = v[i] / (1.0 - opt.beta2**step)
                reference[i] = reference[i] - (opt.lr * m_hat) / (
                    np.sqrt(v_hat) + opt.eps
                )
                assert np.array_equal(param.data, reference[i])

    def test_sgd_momentum_matches_naive(self):
        params = self._params(160)
        reference = [p.data.copy() for p in params]
        opt = SGD(params, lr=0.01, momentum=0.9)
        velocity = [np.zeros_like(p) for p in reference]
        for step in range(5):
            self._grads(params, 170 + 10 * step)
            opt.step()
            for i, param in enumerate(params):
                velocity[i] = opt.momentum * velocity[i] - opt.lr * param.grad
                reference[i] = reference[i] + velocity[i]
                assert np.array_equal(param.data, reference[i])

    def test_rmsprop_matches_naive(self):
        params = self._params(180)
        reference = [p.data.copy() for p in params]
        opt = RMSProp(params, lr=5e-4)
        sq = [np.zeros_like(p) for p in reference]
        for step in range(5):
            self._grads(params, 190 + 10 * step)
            opt.step()
            for i, param in enumerate(params):
                grad = param.grad
                sq[i] = opt.alpha * sq[i] + (1.0 - opt.alpha) * (grad * grad)
                reference[i] = reference[i] - (opt.lr * grad) / (
                    np.sqrt(sq[i]) + opt.eps
                )
                assert np.array_equal(param.data, reference[i])

    def test_gradless_parameter_skipped(self):
        params = self._params(200)
        params[1].grad = None
        params[0].grad = np.ones_like(params[0].data)
        before = params[1].data.copy()
        Adam(params, lr=1e-3).step()
        assert np.array_equal(params[1].data, before)
