"""Linear, LSTM cell, and graph-attention layer tests (incl. gradchecks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.attention import GraphAttention
from repro.nn.linear import Linear
from repro.nn.lstm import LSTMCell
from repro.nn.tensor import Tensor

from test_tensor import numerical_gradient


def param_gradcheck(module, loss_fn, atol=1e-4):
    """Check analytic parameter gradients against numerics."""
    loss = loss_fn()
    module.zero_grad()
    loss.backward()
    for name, param in module.named_parameters():
        analytic = param.grad if param.grad is not None else np.zeros_like(param.data)

        def scalar(arr, p=param):
            original = p.data
            p.data = arr
            value = float(loss_fn().data)
            p.data = original
            return value

        numeric = numerical_gradient(scalar, param.data.copy(), eps=1e-6)
        np.testing.assert_allclose(
            analytic, numeric, atol=atol, rtol=1e-3, err_msg=f"param {name}"
        )


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(3, 5, rng)
        assert layer(Tensor(np.zeros((2, 3)))).shape == (2, 5)

    def test_no_bias(self, rng):
        layer = Linear(3, 5, rng, bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((1, 3))))
        np.testing.assert_array_equal(out.data, np.zeros((1, 5)))

    def test_wrong_input_dim_rejected(self, rng):
        layer = Linear(3, 5, rng)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((2, 4))))

    def test_non_positive_sizes_rejected(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 5, rng)

    def test_parameter_gradcheck(self, rng):
        layer = Linear(3, 2, rng)
        x = Tensor(rng.normal(size=(4, 3)))
        param_gradcheck(layer, lambda: (layer(x) ** 2).sum())


class TestLSTMCell:
    def test_output_shapes(self, rng):
        cell = LSTMCell(4, 8, rng)
        h, (h2, c2) = cell(Tensor(np.zeros((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 8)
        assert h2.shape == (3, 8)
        assert c2.shape == (3, 8)

    def test_initial_state_zero(self, rng):
        cell = LSTMCell(4, 8, rng)
        h, c = cell.initial_state(2)
        assert not h.any() and not c.any()

    def test_forget_bias_initialised_to_one(self, rng):
        cell = LSTMCell(4, 8, rng)
        np.testing.assert_array_equal(cell.bias.data[8:16], np.ones(8))

    def test_state_carries_information(self, rng):
        cell = LSTMCell(2, 4, rng)
        x = Tensor(rng.normal(size=(1, 2)))
        _, state1 = cell(x, cell.initial_state(1))
        out_fresh, _ = cell(x, cell.initial_state(1))
        out_carried, _ = cell(x, state1)
        assert not np.allclose(out_fresh.data, out_carried.data)

    def test_wrong_input_size_rejected(self, rng):
        cell = LSTMCell(4, 8, rng)
        with pytest.raises(ValueError):
            cell(Tensor(np.zeros((1, 5))), cell.initial_state(1))

    def test_parameter_gradcheck_over_two_steps(self, rng):
        cell = LSTMCell(2, 3, rng)
        x1 = Tensor(rng.normal(size=(2, 2)))
        x2 = Tensor(rng.normal(size=(2, 2)))

        def loss_fn():
            h, state = cell(x1, cell.initial_state(2))
            h, _ = cell(x2, state)
            return (h**2).sum()

        param_gradcheck(cell, loss_fn)

    def test_gradient_flows_through_time(self, rng):
        cell = LSTMCell(2, 3, rng)
        x1 = Tensor(rng.normal(size=(1, 2)), requires_grad=True)
        h, state = cell(x1, cell.initial_state(1))
        for _ in range(3):
            h, state = cell(Tensor(np.zeros((1, 2))), state)
        (h**2).sum().backward()
        assert x1.grad is not None
        assert np.any(x1.grad != 0)


class TestGraphAttention:
    def _inputs(self, rng, n=3, k=4, d=8):
        nodes = Tensor(rng.normal(size=(n, d)))
        neighbours = Tensor(rng.normal(size=(n, k, d)))
        mask = np.ones((n, k), dtype=bool)
        return nodes, neighbours, mask

    def test_output_shape(self, rng):
        layer = GraphAttention(8, 2, rng)
        nodes, neighbours, mask = self._inputs(rng)
        assert layer(nodes, neighbours, mask).shape == (3, 8)

    def test_masked_neighbours_ignored(self, rng):
        layer = GraphAttention(8, 2, rng)
        nodes, neighbours, mask = self._inputs(rng)
        mask[:, 2:] = False
        out1 = layer(nodes, neighbours, mask)
        # Change the masked neighbours' content: output must not change.
        perturbed = neighbours.data.copy()
        perturbed[:, 2:] += 100.0
        out2 = layer(nodes, Tensor(perturbed), mask)
        np.testing.assert_allclose(out1.data, out2.data, atol=1e-10)

    def test_all_masked_rejected(self, rng):
        layer = GraphAttention(8, 2, rng)
        nodes, neighbours, mask = self._inputs(rng)
        mask[0, :] = False
        with pytest.raises(ValueError):
            layer(nodes, neighbours, mask)

    def test_embed_dim_must_divide(self, rng):
        with pytest.raises(ValueError):
            GraphAttention(8, 3, rng)

    def test_gradients_flow_to_all_params(self, rng):
        layer = GraphAttention(8, 2, rng)
        nodes, neighbours, mask = self._inputs(rng)
        layer(nodes, neighbours, mask).sum().backward()
        grads = [p.grad for p in layer.parameters()]
        assert all(g is not None for g in grads)

    def test_parameter_gradcheck(self, rng):
        layer = GraphAttention(4, 2, rng)
        nodes = Tensor(rng.normal(size=(2, 4)))
        neighbours = Tensor(rng.normal(size=(2, 3, 4)))
        mask = np.array([[True, True, False], [True, True, True]])
        param_gradcheck(layer, lambda: (layer(nodes, neighbours, mask) ** 2).sum())
