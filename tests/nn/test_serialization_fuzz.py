"""Fuzz the checkpoint loader: corruption must always be a clean rejection.

Whatever bytes a truncated or bit-flipped archive contains, loading must
either succeed bit-exactly or raise :class:`CheckpointError` — never a
raw zip/pickle/npy internal error, never a partial load, and never
silently-NaN weights in the target module.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.nn.linear import MLP
from repro.nn.serialization import (
    atomic_savez,
    load_state,
    read_archive,
    save_state,
    validate_finite_state,
)


@pytest.fixture
def checkpoint(tmp_path, rng):
    model = MLP(6, [8, 8], 3, rng)
    path = tmp_path / "model.npz"
    save_state(model, path)
    return model, path


def snapshot(model) -> dict[str, np.ndarray]:
    return {k: np.array(v, copy=True) for k, v in model.state_dict().items()}


def assert_unchanged(model, before) -> None:
    after = model.state_dict()
    assert set(after) == set(before)
    for key in before:
        np.testing.assert_array_equal(after[key], before[key])
        assert np.all(np.isfinite(np.asarray(after[key], dtype=np.float64)))


class TestTruncation:
    def test_every_truncation_point_is_a_clean_error(self, checkpoint, tmp_path):
        model, path = checkpoint
        payload = path.read_bytes()
        target = tmp_path / "trunc.npz"
        before = snapshot(model)
        # Cut at a spread of boundaries: empty, header-only, mid-member,
        # just-shy-of-complete.
        cuts = sorted({0, 1, 30, len(payload) // 4, len(payload) // 2,
                       3 * len(payload) // 4, len(payload) - 1})
        for cut in cuts:
            target.write_bytes(payload[:cut])
            with pytest.raises(CheckpointError):
                load_state(model, target)
            assert_unchanged(model, before)

    def test_missing_file_is_a_clean_error(self, checkpoint, tmp_path):
        model, _ = checkpoint
        with pytest.raises(CheckpointError, match="not found"):
            load_state(model, tmp_path / "ghost.npz")


class TestBitFlips:
    def test_random_bit_flips_never_crash_or_partially_load(
        self, checkpoint, tmp_path
    ):
        model, path = checkpoint
        payload = bytearray(path.read_bytes())
        target = tmp_path / "flip.npz"
        fuzz_rng = np.random.default_rng(0xC0FFEE)
        before = snapshot(model)
        for _ in range(40):
            corrupted = bytearray(payload)
            for position in fuzz_rng.integers(0, len(payload), size=8):
                corrupted[position] ^= 1 << int(fuzz_rng.integers(0, 8))
            target.write_bytes(bytes(corrupted))
            try:
                state = read_archive(target, require_finite=True)
            except CheckpointError:
                assert_unchanged(model, before)
                continue  # clean rejection — the contract held
            # The flips landed somewhere harmless enough to parse; the
            # load must then be all-or-nothing and finite.
            try:
                load_state(model, target)
            except CheckpointError:
                assert_unchanged(model, before)
                continue
            for value in state.values():
                if np.issubdtype(value.dtype, np.floating):
                    assert np.all(np.isfinite(value))

    def test_nan_payload_rejected_by_finite_validation(self, checkpoint, tmp_path):
        model, _ = checkpoint
        state = model.state_dict()
        key = next(iter(state))
        poisoned = dict(state)
        poisoned[key] = np.array(state[key], copy=True)
        poisoned[key].flat[0] = np.nan
        path = tmp_path / "nan.npz"
        atomic_savez(path, poisoned)
        # Plain read succeeds (the archive is well-formed zip)...
        read_archive(path)
        # ...but the serving-grade read refuses it.
        with pytest.raises(CheckpointError, match="non-finite"):
            read_archive(path, require_finite=True)
        with pytest.raises(CheckpointError, match="non-finite"):
            validate_finite_state(poisoned)

    def test_integer_arrays_are_exempt_from_finite_check(self):
        validate_finite_state({"rng.state": np.arange(4, dtype=np.uint64)})


class TestAllOrNothing:
    def test_shape_mismatch_leaves_no_partial_load(self, checkpoint, tmp_path):
        """A checkpoint that matches on early keys but mismatches later
        must not leave the early keys assigned."""
        model, _ = checkpoint
        state = model.state_dict()
        sabotaged = {k: np.array(v, copy=True) for k, v in state.items()}
        last_key = sorted(sabotaged)[-1]
        for key in sabotaged:
            if key != last_key:
                sabotaged[key] = sabotaged[key] + 1000.0  # detectably different
        sabotaged[last_key] = np.zeros((1, 1))  # wrong shape
        path = tmp_path / "partial.npz"
        atomic_savez(path, sabotaged)
        before = snapshot(model)
        with pytest.raises(CheckpointError):
            load_state(model, path)
        assert_unchanged(model, before)

    def test_unknown_keys_rejected_without_side_effects(self, checkpoint, tmp_path):
        model, _ = checkpoint
        state = dict(model.state_dict())
        state["intruder.weight"] = np.ones(2)
        path = tmp_path / "extra.npz"
        atomic_savez(path, state)
        before = snapshot(model)
        with pytest.raises(CheckpointError):
            load_state(model, path)
        assert_unchanged(model, before)
