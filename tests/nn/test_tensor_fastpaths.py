"""Fast paths in the autograd core must not change values or gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import Tensor, _as_array, _is_basic_index, no_grad


class TestAsArray:
    def test_float64_array_not_copied(self):
        array = np.arange(6, dtype=np.float64)
        assert _as_array(array) is array

    def test_other_dtypes_coerced(self):
        array = np.arange(6, dtype=np.float32)
        out = _as_array(array)
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, array.astype(np.float64))

    def test_scalar_float_fast_path(self):
        out = _as_array(2.5)
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.float64
        assert out.shape == ()
        assert float(out) == 2.5

    def test_lists_and_ints(self):
        assert _as_array([1.0, 2.0]).dtype == np.float64
        assert _as_array(3).dtype == np.float64


class TestFromOp:
    def test_requires_grad_propagates(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3))
        assert (a + b).requires_grad
        assert not (b + b).requires_grad

    def test_no_grad_output_has_no_graph(self):
        a = Tensor(np.ones(3))
        out = a * 2.0
        assert out._parents == ()
        assert out._backward is None

    def test_scalar_result_rewrapped(self):
        a = Tensor(np.array(2.0), requires_grad=True)
        out = a * Tensor(np.array(3.0))
        assert isinstance(out.data, np.ndarray)
        out.backward()
        assert float(a.grad) == 3.0


class TestSigmoid:
    @staticmethod
    def _reference(x: np.ndarray) -> np.ndarray:
        # The original two-branch stable logistic, three exp calls.
        return np.where(
            x >= 0,
            1.0 / (1.0 + np.exp(-np.clip(x, -500, 500))),
            np.exp(np.clip(x, -500, 500)) / (1.0 + np.exp(np.clip(x, -500, 500))),
        )

    def test_bit_exact_vs_reference(self):
        x = np.concatenate(
            [
                np.linspace(-30, 30, 997),
                np.array([0.0, -0.0, 1e-300, -1e-300, 700.0, -700.0]),
            ]
        )
        out = Tensor(x).sigmoid().data
        np.testing.assert_array_equal(out, self._reference(x))

    def test_messaging_sigmoid_bit_exact(self):
        from repro.agents.pairuplight.messaging import _sigmoid

        x = np.linspace(-20, 20, 503)
        np.testing.assert_array_equal(_sigmoid(x), self._reference(x))

    def test_gradient(self):
        x = Tensor(np.array([-2.0, 0.0, 3.0]), requires_grad=True)
        y = x.sigmoid()
        y.backward(np.ones(3))
        s = y.data
        np.testing.assert_allclose(x.grad, s * (1 - s), rtol=1e-12)


class TestGetitemBackward:
    def test_basic_index_detection(self):
        assert _is_basic_index(slice(0, 3))
        assert _is_basic_index(2)
        assert _is_basic_index((slice(None), slice(0, 4)))
        assert _is_basic_index((0, slice(None)))
        assert not _is_basic_index(np.array([0, 1]))
        assert not _is_basic_index((slice(None), np.array([0, 0])))
        assert not _is_basic_index([0, 1])

    def test_slice_gradient(self):
        x = Tensor(np.arange(12, dtype=np.float64).reshape(3, 4), requires_grad=True)
        y = x[:, 1:3]
        y.backward(np.ones((3, 2)))
        expected = np.zeros((3, 4))
        expected[:, 1:3] = 1.0
        np.testing.assert_array_equal(x.grad, expected)

    def test_fancy_index_with_duplicates_accumulates(self):
        x = Tensor(np.zeros(4), requires_grad=True)
        index = np.array([1, 1, 2])
        y = x[index]
        y.backward(np.ones(3))
        np.testing.assert_array_equal(x.grad, [0.0, 2.0, 1.0, 0.0])

    def test_int_row_gradient(self):
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        y = x[1]
        y.backward(np.full(4, 2.0))
        expected = np.zeros((3, 4))
        expected[1] = 2.0
        np.testing.assert_array_equal(x.grad, expected)


class TestAccumulate:
    def test_incoming_gradient_not_mutated(self):
        """The first accumulate copies; later in-place adds must never
        write into a gradient array owned by another node."""
        x = Tensor(np.zeros(3), requires_grad=True)
        shared = np.ones(3)
        x._accumulate(shared)
        x._accumulate(shared)
        np.testing.assert_array_equal(shared, np.ones(3))
        np.testing.assert_array_equal(x.grad, np.full(3, 2.0))

    def test_diamond_graph_gradients(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        out = (a + b).sum()
        out.backward()
        np.testing.assert_allclose(x.grad, [5.0, 5.0])


class TestNoGrad:
    def test_values_identical_graph_absent(self):
        a = Tensor(np.arange(4, dtype=np.float64), requires_grad=True)
        b = Tensor(np.full(4, 0.5), requires_grad=True)
        reference = ((a * b).sigmoid() + a).sum()
        with no_grad():
            inference = ((a * b).sigmoid() + a).sum()
        np.testing.assert_array_equal(inference.data, reference.data)
        assert not inference.requires_grad
        assert inference._parents == ()
        assert inference._backward is None

    def test_grad_mode_restored_after_exit(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            pass
        assert (a * 2.0).requires_grad

    def test_restored_after_exception_and_reentrant(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(RuntimeError):
            with no_grad():
                with no_grad():
                    pass
                assert not (a * 2.0).requires_grad
                raise RuntimeError("boom")
        assert (a * 2.0).requires_grad

    def test_training_still_learns_through_act_no_grad(self):
        """PairUpLight act() runs without autograd; the PPO update must
        still produce parameter gradients and change the weights."""
        from repro.agents.pairuplight import PairUpLightSystem
        from repro.eval.harness import ExperimentScale, GridExperiment

        scale = ExperimentScale(
            rows=2, cols=2, peak_rate=600.0, t_peak=60.0, light_duration=120.0,
            horizon_ticks=60, max_ticks=3600, train_episodes=1, eval_episodes=1,
        )
        env = GridExperiment(scale, seed=1).train_env(1)
        agent = PairUpLightSystem(env, seed=1)
        before = next(iter(agent.shared_actor.parameters())).data.copy()
        observations = env.reset(seed=1)
        agent.begin_episode(env, True)
        done = False
        while not done:
            actions = agent.act(observations, env, True)
            result = env.step(actions)
            agent.observe(result, env)
            observations = result.observations
            done = result.done
        stats = agent.end_episode(env, training=True)
        assert stats  # an update ran
        after = next(iter(agent.shared_actor.parameters())).data
        assert not np.array_equal(before, after)


class TestLSTMGradientRegression:
    def test_lstm_step_matches_numerical_gradient(self):
        """End-to-end check that the slice fast path keeps LSTM grads right."""
        from repro.nn.lstm import LSTMCell

        rng = np.random.default_rng(0)
        cell = LSTMCell(3, 4, rng)
        x = np.array([[0.3, -0.2, 0.5], [0.1, 0.0, -0.4]])
        state = cell.initial_state(2)

        def loss_value() -> float:
            h, _ = cell(Tensor(x), state)
            return float((h * h).sum().data)

        h, _ = cell(Tensor(x), state)
        loss = (h * h).sum()
        for p in cell.parameters():
            p.zero_grad()
        loss.backward()
        weight = cell.weight
        eps = 1e-6
        for index in [(0, 0), (2, 5), (6, 15)]:
            original = weight.data[index]
            weight.data[index] = original + eps
            up = loss_value()
            weight.data[index] = original - eps
            down = loss_value()
            weight.data[index] = original
            numerical = (up - down) / (2 * eps)
            assert weight.grad[index] == pytest.approx(numerical, rel=1e-4, abs=1e-7)
