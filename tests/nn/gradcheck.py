"""Reusable finite-difference gradient checker for autograd ops.

``gradcheck(fn, inputs)`` runs ``fn`` on the given input tensors, sums
the output(s) against fixed random cotangents (so every output element
influences the scalar), backpropagates, and compares each input's
accumulated gradient against a central finite difference.  It returns
the worst relative error over all inputs; tests assert it is tiny
(default tolerance 1e-6 with eps 1e-6 on float64).

Keep shapes tiny — the checker perturbs every input element twice.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor


def _as_outputs(result) -> tuple[Tensor, ...]:
    if isinstance(result, Tensor):
        return (result,)
    return tuple(result)


def _scalarize(outputs: Sequence[Tensor], cotangents: Sequence[np.ndarray]):
    total = None
    for out, cot in zip(outputs, cotangents):
        term = (out * Tensor(cot)).sum()
        total = term if total is None else total + term
    return total


def gradcheck(
    fn: Callable[..., Tensor | Sequence[Tensor]],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-6,
    seed: int = 0,
) -> float:
    """Return the worst relative error between autograd and finite diff.

    ``fn`` receives one ``Tensor`` (requires_grad) per input array and
    may return a single ``Tensor`` or a tuple of them.
    """
    rng = np.random.default_rng(seed)
    arrays = [np.asarray(a, dtype=np.float64) for a in inputs]

    probe = _as_outputs(fn(*[Tensor(a, requires_grad=True) for a in arrays]))
    cotangents = [rng.standard_normal(out.shape) for out in probe]

    def scalar(values: list[np.ndarray]) -> float:
        outs = _as_outputs(fn(*[Tensor(v, requires_grad=False) for v in values]))
        total = 0.0
        for out, cot in zip(outs, cotangents):
            total += float(np.sum(out.data * cot))
        return total

    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    loss = _scalarize(_as_outputs(fn(*tensors)), cotangents)
    loss.backward()

    worst = 0.0
    for index, tensor in enumerate(tensors):
        analytic = tensor.grad
        assert analytic is not None, f"input {index} received no gradient"
        numeric = np.zeros_like(arrays[index])
        flat = arrays[index].reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for pos in range(flat.size):
            original = flat[pos]
            flat[pos] = original + eps
            upper = scalar(arrays)
            flat[pos] = original - eps
            lower = scalar(arrays)
            flat[pos] = original
            numeric_flat[pos] = (upper - lower) / (2.0 * eps)
        scale = max(
            float(np.max(np.abs(analytic))), float(np.max(np.abs(numeric))), 1.0
        )
        worst = max(worst, float(np.max(np.abs(analytic - numeric))) / scale)
    return worst
