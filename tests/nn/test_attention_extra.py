"""Additional graph-attention behaviour tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.attention import GraphAttention
from repro.nn.tensor import Tensor


class TestAttentionSemantics:
    def test_attention_weights_respond_to_similarity(self, rng):
        """A neighbourhood member identical to the focal node should not
        be ignored in favour of pure noise (weights are query-driven)."""
        layer = GraphAttention(8, 1, rng)
        node = rng.normal(size=(1, 8))
        twin = node.copy()
        noise = rng.normal(size=(1, 8)) * 3
        neighbours = np.stack([np.vstack([twin, noise])])  # (1, 2, 8)
        mask = np.ones((1, 2), dtype=bool)
        out_both = layer(Tensor(node), Tensor(neighbours), mask)
        # Output is finite and depends on inputs.
        assert np.all(np.isfinite(out_both.data))

    def test_single_member_neighbourhood_deterministic(self, rng):
        """With one unmasked member, attention output equals that member's
        value projection (softmax over a singleton)."""
        layer = GraphAttention(4, 1, rng)
        node = rng.normal(size=(2, 4))
        member = rng.normal(size=(2, 1, 4))
        mask = np.ones((2, 1), dtype=bool)
        out = layer(node, Tensor(member), mask)
        # Recompute by hand: value projection -> output layer -> relu.
        v = layer.value(Tensor(member.reshape(2, 4)))
        expected = layer.output(v).relu()
        np.testing.assert_allclose(out.data, expected.data, atol=1e-12)

    def test_batch_independence(self, rng):
        """Each row of the batch attends independently."""
        layer = GraphAttention(8, 2, rng)
        nodes = rng.normal(size=(3, 8))
        neighbours = rng.normal(size=(3, 4, 8))
        mask = np.ones((3, 4), dtype=bool)
        full = layer(Tensor(nodes), Tensor(neighbours), mask).data
        single = layer(
            Tensor(nodes[1:2]), Tensor(neighbours[1:2]), mask[1:2]
        ).data
        np.testing.assert_allclose(full[1:2], single, atol=1e-12)

    def test_mask_shape_validated(self, rng):
        layer = GraphAttention(8, 2, rng)
        with pytest.raises(ValueError):
            layer(
                Tensor(np.zeros((2, 8))),
                Tensor(np.zeros((2, 3, 8))),
                np.ones((2, 4), dtype=bool),
            )

    def test_wrong_embed_dim_rejected(self, rng):
        layer = GraphAttention(8, 2, rng)
        with pytest.raises(ValueError):
            layer(
                Tensor(np.zeros((2, 8))),
                Tensor(np.zeros((2, 3, 6))),
                np.ones((2, 3), dtype=bool),
            )
