"""Module / Parameter registration, traversal, serialization round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.linear import MLP, Linear
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.tensor import Tensor


class Composite(Module):
    def __init__(self, rng):
        super().__init__()
        self.first = Linear(3, 4, rng)
        self.second = Linear(4, 2, rng)
        self.scale = Parameter(np.ones(2))

    def forward(self, x):
        return self.second(self.first(x).tanh()) * self.scale


class TestRegistration:
    def test_parameters_discovered_recursively(self, rng):
        model = Composite(rng)
        params = list(model.parameters())
        # first: W+b, second: W+b, scale -> 5 parameters
        assert len(params) == 5

    def test_named_parameters_paths(self, rng):
        model = Composite(rng)
        names = dict(model.named_parameters())
        assert "first.weight" in names
        assert "second.bias" in names
        assert "scale" in names

    def test_num_parameters(self, rng):
        model = Composite(rng)
        assert model.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2 + 2

    def test_zero_grad_clears_all(self, rng):
        model = Composite(rng)
        out = model(Tensor(np.ones((1, 3))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_round_trip(self, rng):
        a = Composite(rng)
        b = Composite(np.random.default_rng(999))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_is_copy(self, rng):
        model = Composite(rng)
        state = model.state_dict()
        state["scale"][:] = 99.0
        assert not np.any(model.scale.data == 99.0)

    def test_missing_key_rejected(self, rng):
        model = Composite(rng)
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_rejected(self, rng):
        model = Composite(rng)
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_rejected(self, rng):
        model = Composite(rng)
        state = model.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_copy_from(self, rng):
        a = Composite(rng)
        b = Composite(np.random.default_rng(7))
        b.copy_from(a)
        np.testing.assert_allclose(b.first.weight.data, a.first.weight.data)

    def test_soft_update(self, rng):
        a = Composite(rng)
        b = Composite(np.random.default_rng(7))
        before = b.scale.data.copy()
        b.soft_update_from(a, tau=0.25)
        expected = 0.25 * a.scale.data + 0.75 * before
        np.testing.assert_allclose(b.scale.data, expected)


class TestSequentialAndMLP:
    def test_sequential_applies_in_order(self, rng):
        seq = Sequential(Linear(2, 3, rng), Linear(3, 1, rng))
        out = seq(Tensor(np.ones((4, 2))))
        assert out.shape == (4, 1)

    def test_mlp_shapes(self, rng):
        mlp = MLP(5, [16, 16], 3, rng)
        out = mlp(Tensor(np.zeros((7, 5))))
        assert out.shape == (7, 3)

    def test_mlp_gradient_flows_to_all_layers(self, rng):
        mlp = MLP(4, [8], 2, rng)
        mlp(Tensor(np.ones((1, 4)))).sum().backward()
        for param in mlp.parameters():
            assert param.grad is not None

    def test_mlp_rejects_unknown_activation(self, rng):
        with pytest.raises(ValueError):
            MLP(4, [8], 2, rng, activation="gelu")

    def test_parameter_always_requires_grad(self):
        assert Parameter(np.zeros(3)).requires_grad
