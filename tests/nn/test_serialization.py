"""Checkpoint save/load round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.nn.linear import MLP
from repro.nn.serialization import load_state, save_state
from repro.nn.tensor import Tensor


def test_round_trip(tmp_path, rng):
    model = MLP(4, [8], 2, rng)
    path = tmp_path / "model.npz"
    save_state(model, path)
    other = MLP(4, [8], 2, np.random.default_rng(99))
    load_state(other, path)
    x = Tensor(np.ones((3, 4)))
    np.testing.assert_allclose(model(x).data, other(x).data)


def test_load_into_wrong_architecture_fails(tmp_path, rng):
    model = MLP(4, [8], 2, rng)
    path = tmp_path / "model.npz"
    save_state(model, path)
    wrong = MLP(4, [16], 2, rng)
    with pytest.raises(CheckpointError):
        load_state(wrong, path)


def test_file_is_standard_npz(tmp_path, rng):
    model = MLP(2, [4], 1, rng)
    path = tmp_path / "model.npz"
    save_state(model, path)
    with np.load(path) as archive:
        assert "output.weight" in archive.files
