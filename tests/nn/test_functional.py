"""Tests for softmax / losses / sampling helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from test_tensor import check_gradient


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        logits = Tensor(rng.normal(size=(5, 4)))
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(5))

    def test_stability_large_logits(self):
        probs = F.softmax(Tensor([[1000.0, 999.0]]))
        assert np.all(np.isfinite(probs.data))
        assert probs.data[0, 0] > probs.data[0, 1]

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = Tensor(rng.normal(size=(3, 6)))
        np.testing.assert_allclose(
            F.log_softmax(logits).data, np.log(F.softmax(logits).data), atol=1e-12
        )

    def test_softmax_gradient(self, rng):
        x = rng.normal(size=(2, 4))
        weights = Tensor(rng.normal(size=(2, 4)))
        check_gradient(lambda t: (F.softmax(t) * weights).sum(), x)

    def test_log_softmax_gradient(self, rng):
        x = rng.normal(size=(2, 4))
        weights = Tensor(rng.normal(size=(2, 4)))
        check_gradient(lambda t: (F.log_softmax(t) * weights).sum(), x)

    def test_uniform_logits_give_uniform_probs(self):
        probs = F.softmax(Tensor(np.zeros((1, 4))))
        np.testing.assert_allclose(probs.data, np.full((1, 4), 0.25))


class TestEntropy:
    def test_uniform_distribution_max_entropy(self):
        uniform = Tensor(np.full((1, 4), 0.25))
        assert np.isclose(float(F.entropy(uniform).data[0]), np.log(4))

    def test_deterministic_distribution_zero_entropy(self):
        deterministic = Tensor(np.array([[1.0, 0.0, 0.0]]))
        assert float(F.entropy(deterministic).data[0]) == pytest.approx(0.0, abs=1e-9)

    def test_entropy_gradient_finite_at_zero(self):
        probs = Tensor(np.array([[1.0, 0.0]]), requires_grad=True)
        F.entropy(probs).sum().backward()
        assert np.all(np.isfinite(probs.grad))


class TestGather:
    def test_picks_one_per_row(self):
        t = Tensor(np.arange(12.0).reshape(3, 4))
        out = F.gather(t, np.array([0, 2, 3]))
        np.testing.assert_array_equal(out.data, [0.0, 6.0, 11.0])

    def test_gather_gradient(self):
        t = Tensor(np.zeros((2, 3)), requires_grad=True)
        F.gather(t, np.array([1, 1])).sum().backward()
        expected = np.zeros((2, 3))
        expected[0, 1] = 1.0
        expected[1, 1] = 1.0
        np.testing.assert_array_equal(t.grad, expected)

    def test_gather_wrong_axis_rejected(self):
        with pytest.raises(ValueError):
            F.gather(Tensor(np.zeros((2, 3))), np.array([0, 1]), axis=0)


class TestLosses:
    def test_mse_zero_for_equal(self):
        t = Tensor([1.0, 2.0])
        assert float(F.mse_loss(t, np.array([1.0, 2.0])).data) == 0.0

    def test_mse_gradient(self, rng):
        x = rng.normal(size=(5,))
        target = Tensor(rng.normal(size=(5,)))
        check_gradient(lambda t: F.mse_loss(t, target), x)

    def test_mse_target_detached(self):
        target = Tensor([1.0], requires_grad=True)
        prediction = Tensor([2.0], requires_grad=True)
        F.mse_loss(prediction, target).backward()
        assert target.grad is None

    def test_huber_quadratic_region(self):
        pred = Tensor([0.5])
        loss = F.huber_loss(pred, np.array([0.0]), delta=1.0)
        assert float(loss.data) == pytest.approx(0.5 * 0.25)

    def test_huber_linear_region(self):
        pred = Tensor([3.0])
        loss = F.huber_loss(pred, np.array([0.0]), delta=1.0)
        assert float(loss.data) == pytest.approx(0.5 + 2.0)

    def test_huber_gradient_bounded(self):
        pred = Tensor([100.0], requires_grad=True)
        F.huber_loss(pred, np.array([0.0]), delta=1.0).backward()
        assert abs(pred.grad[0]) <= 1.0 + 1e-9


class TestCategoricalSample:
    def test_deterministic_distribution(self, rng):
        assert F.categorical_sample(np.array([0.0, 1.0, 0.0]), rng) == 1

    def test_respects_probabilities(self):
        rng = np.random.default_rng(0)
        probs = np.array([0.8, 0.2])
        samples = [F.categorical_sample(probs, rng) for _ in range(2000)]
        assert 0.75 < np.mean(np.array(samples) == 0) < 0.85

    def test_unnormalised_probs_accepted(self, rng):
        assert F.categorical_sample(np.array([0.0, 5.0]), rng) == 1

    def test_invalid_probs_rejected(self, rng):
        with pytest.raises(ValueError):
            F.categorical_sample(np.array([0.0, 0.0]), rng)
        with pytest.raises(ValueError):
            F.categorical_sample(np.array([np.nan, 1.0]), rng)
