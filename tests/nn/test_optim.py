"""Optimizer tests: convergence on quadratics + gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, RMSProp, clip_grad_norm
from repro.nn.tensor import Tensor


def quadratic_loss(param: Parameter, target: np.ndarray) -> Tensor:
    diff = param - Tensor(target)
    return (diff * diff).sum()


def minimise(optimizer_cls, steps: int, lr: float, **kwargs) -> float:
    target = np.array([3.0, -2.0, 0.5])
    param = Parameter(np.zeros(3))
    optimizer = optimizer_cls([param], lr=lr, **kwargs)
    for _ in range(steps):
        optimizer.zero_grad()
        quadratic_loss(param, target).backward()
        optimizer.step()
    return float(np.abs(param.data - target).max())


class TestConvergence:
    def test_sgd_converges(self):
        assert minimise(SGD, steps=200, lr=0.1) < 1e-6

    def test_sgd_momentum_converges(self):
        assert minimise(SGD, steps=300, lr=0.05, momentum=0.9) < 1e-5

    def test_adam_converges(self):
        assert minimise(Adam, steps=800, lr=0.05) < 1e-3

    def test_rmsprop_converges(self):
        assert minimise(RMSProp, steps=800, lr=0.05) < 1e-3


class TestMechanics:
    def test_zero_grad(self):
        param = Parameter(np.zeros(2))
        opt = SGD([param], lr=0.1)
        quadratic_loss(param, np.ones(2)).backward()
        assert param.grad is not None
        opt.zero_grad()
        assert param.grad is None

    def test_step_skips_gradless_params(self):
        a, b = Parameter(np.zeros(2)), Parameter(np.ones(2))
        opt = Adam([a, b], lr=0.1)
        quadratic_loss(a, np.ones(2)).backward()
        opt.step()
        np.testing.assert_array_equal(b.data, np.ones(2))
        assert np.any(a.data != 0)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_non_positive_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_invalid_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_adam_bias_correction_first_step(self):
        # After one step on constant gradient g, Adam moves by ~lr*sign(g).
        param = Parameter(np.array([0.0]))
        opt = Adam([param], lr=0.01)
        param.grad = np.array([5.0])
        opt.step()
        assert param.data[0] == pytest.approx(-0.01, rel=1e-3)


class TestClipGradNorm:
    def test_norm_unchanged_when_below(self):
        param = Parameter(np.zeros(3))
        param.grad = np.array([0.1, 0.2, 0.2])
        norm = clip_grad_norm([param], max_norm=10.0)
        assert norm == pytest.approx(0.3)
        np.testing.assert_allclose(param.grad, [0.1, 0.2, 0.2])

    def test_scales_down_when_above(self):
        param = Parameter(np.zeros(2))
        param.grad = np.array([3.0, 4.0])  # norm 5
        clip_grad_norm([param], max_norm=1.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-6)

    def test_handles_missing_grads(self):
        a = Parameter(np.zeros(2))
        b = Parameter(np.zeros(2))
        a.grad = np.array([1.0, 0.0])
        assert clip_grad_norm([a, b], max_norm=10.0) == pytest.approx(1.0)

    def test_global_norm_over_multiple_params(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        clip_grad_norm([a, b], max_norm=1.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(1.0, rel=1e-6)
