"""Initializer scheme tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.initializers import he_normal, initialize, orthogonal, xavier_uniform


class TestOrthogonal:
    def test_square_is_orthogonal(self, rng):
        w = orthogonal((8, 8), gain=1.0, rng=rng)
        np.testing.assert_allclose(w @ w.T, np.eye(8), atol=1e-10)

    def test_tall_is_column_orthonormal(self, rng):
        w = orthogonal((10, 4), gain=1.0, rng=rng)
        np.testing.assert_allclose(w.T @ w, np.eye(4), atol=1e-10)

    def test_wide_is_row_orthonormal(self, rng):
        w = orthogonal((4, 10), gain=1.0, rng=rng)
        np.testing.assert_allclose(w @ w.T, np.eye(4), atol=1e-10)

    def test_gain_scales(self, rng):
        w = orthogonal((6, 6), gain=2.0, rng=rng)
        np.testing.assert_allclose(w @ w.T, 4.0 * np.eye(6), atol=1e-9)

    def test_requires_2d(self, rng):
        with pytest.raises(ValueError):
            orthogonal((3, 3, 3), gain=1.0, rng=rng)

    def test_deterministic_given_seed(self):
        a = orthogonal((5, 5), 1.0, np.random.default_rng(3))
        b = orthogonal((5, 5), 1.0, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestOtherSchemes:
    def test_xavier_bounds(self, rng):
        w = xavier_uniform((100, 50), gain=1.0, rng=rng)
        bound = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= bound)

    def test_he_std(self, rng):
        w = he_normal((2000, 100), gain=1.0, rng=rng)
        assert np.std(w) == pytest.approx(np.sqrt(2.0 / 2000), rel=0.1)

    def test_dispatch(self, rng):
        for scheme in ("orthogonal", "xavier", "he"):
            w = initialize(scheme, (4, 4), rng)
            assert w.shape == (4, 4)

    def test_dispatch_unknown_rejected(self, rng):
        with pytest.raises(ValueError):
            initialize("glorot", (4, 4), rng)
