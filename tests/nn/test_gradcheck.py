"""Finite-difference gradient checks for the fused kernels and a sample
of the composed ops they replace (tentpole correctness bar, PR 5).

Everything runs on tiny shapes so the whole module finishes in seconds;
the ``gradcheck`` marker lets CI select or report the suite explicitly.
"""

from __future__ import annotations

import numpy as np
import pytest

from gradcheck import gradcheck
from repro.nn import functional as F
from repro.nn.tensor import Tensor, affine, lstm_cell, lstm_trunk

TOL = 1e-6

pytestmark = pytest.mark.gradcheck


def _rand(shape, seed):
    return np.random.default_rng(seed).standard_normal(shape) * 0.5


class TestFusedOps:
    def test_affine(self):
        x = _rand((3, 4), 1)
        w = _rand((4, 2), 2)
        b = _rand((2,), 3)
        assert gradcheck(lambda *t: affine(*t), [x, w, b]) <= TOL

    def test_affine_3d_input(self):
        x = _rand((2, 3, 4), 4)
        w = _rand((4, 2), 5)
        b = _rand((2,), 6)
        assert gradcheck(lambda *t: affine(*t), [x, w, b]) <= TOL

    def test_lstm_cell_all_operands(self):
        x = _rand((2, 3), 7)
        h = _rand((2, 4), 8)
        c = _rand((2, 4), 9)
        w = _rand((7, 16), 10)
        b = _rand((16,), 11)
        assert gradcheck(lambda *t: lstm_cell(*t), [x, h, c, w, b]) <= TOL

    def test_lstm_cell_two_step_chain(self):
        """Grads flow through h AND c across a chained double step."""
        x = _rand((2, 3), 12)
        h = _rand((2, 4), 13)
        c = _rand((2, 4), 14)
        w = _rand((7, 16), 15)
        b = _rand((16,), 16)

        def chain(x_t, h_t, c_t, w_t, b_t):
            h1, c1 = lstm_cell(x_t, h_t, c_t, w_t, b_t)
            xh = x_t * 0.5
            return lstm_cell(xh, h1, c1, w_t, b_t)

        assert gradcheck(chain, [x, h, c, w, b]) <= TOL

    def test_lstm_trunk(self):
        x = _rand((2, 5), 17)
        h = _rand((2, 4), 18)
        c = _rand((2, 4), 19)
        we = _rand((5, 4), 20)
        be = _rand((4,), 21)
        w = _rand((8, 16), 22)
        b = _rand((16,), 23)
        assert gradcheck(lambda *t: lstm_trunk(*t), [x, h, c, we, be, w, b]) <= TOL


class TestComposedOpSample:
    def test_matmul_add_tanh(self):
        x = _rand((3, 4), 30)
        w = _rand((4, 3), 31)
        b = _rand((3,), 32)
        assert gradcheck(lambda a, c, d: ((a @ c) + d).tanh(), [x, w, b]) <= TOL

    def test_sigmoid_mul(self):
        a = _rand((3, 3), 33)
        b = _rand((3, 3), 34)
        assert gradcheck(lambda u, v: u.sigmoid() * v, [a, b]) <= TOL

    def test_log_softmax_gather(self):
        logits = _rand((4, 3), 35)
        actions = np.array([0, 2, 1, 2])
        assert (
            gradcheck(lambda t: F.gather(F.log_softmax(t), actions), [logits]) <= TOL
        )

    def test_gather_3d(self):
        logits = _rand((2, 3, 4), 36)
        actions = np.array([[0, 3, 1], [2, 2, 0]])
        assert (
            gradcheck(lambda t: F.gather(F.log_softmax(t), actions), [logits]) <= TOL
        )

    def test_entropy(self):
        logits = _rand((3, 4), 37)
        assert gradcheck(lambda t: F.entropy(F.softmax(t)), [logits]) <= TOL

    def test_concat_slice_sum(self):
        a = _rand((2, 3), 38)
        b = _rand((2, 2), 39)

        def fn(u, v):
            from repro.nn.tensor import concat

            joined = concat([u, v], axis=-1)
            return (joined * joined).sum(axis=0)

        assert gradcheck(fn, [a, b]) <= TOL

    def test_stack_reduce(self):
        a = _rand((2, 2), 40)
        b = _rand((2, 2), 41)

        def fn(u, v):
            from repro.nn.tensor import stack

            return stack([u.tanh(), v.exp()], axis=0).mean()

        assert gradcheck(fn, [a, b]) <= TOL
