"""Bit-exact equivalence of the fast engine path vs the scalar reference.

The vectorized/fast structures in ``Simulation`` (lane-indexed credit
array, red-phase discharge memos, blocked-prefix skip records) must be
pure accelerations: every queue, every vehicle timing field, every
credit value must match the reference dict-loop implementation tick for
tick.  These tests drive both engines through identical randomized phase
churn over a congested grid and compare full state snapshots.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.harness import ExperimentScale, GridExperiment
from repro.sim.engine import Simulation

SCALE = ExperimentScale(
    rows=3,
    cols=3,
    peak_rate=900.0,
    t_peak=200.0,
    light_duration=400.0,
    horizon_ticks=400,
    max_ticks=3600,
    train_episodes=1,
    eval_episodes=1,
)


def _make_sim(fast: bool, **sim_kwargs) -> Simulation:
    # Two independent environments with the same seeds produce two
    # independent-but-identical demand generators, one per engine.
    experiment = GridExperiment(SCALE, seed=7)
    env = experiment.train_env(1)
    env.reset(seed=123)
    return Simulation(
        env.network,
        env.sim.demand,
        env.phase_plans,
        fast_path=fast,
        **sim_kwargs,
    )


def _snapshot(sim: Simulation) -> dict:
    return {
        "time": sim.time,
        "queues": {
            lane_id: [
                (v.vehicle_id, v.wait_total, v.wait_current_link, v.route_index)
                for v in queue
            ]
            for lane_id, queue in sim.lane_queues.items()
        },
        "running": {
            link_id: [
                (v.vehicle_id, v.run_start, v.run_arrival, v.route_index)
                for v in vehicles
            ]
            for link_id, vehicles in sim.running.items()
        },
        "occupancy": dict(sim.link_occupancy),
        "credits": {
            lane_id: sim.discharge_credit(lane_id) for lane_id in sim.lane_queues
        },
        "finished": [
            (v.vehicle_id, v.finished, v.wait_total) for v in sim.finished_vehicles
        ],
        "teleports": sim.teleport_count,
        "signals": {
            node_id: (
                signal.current_phase_index,
                signal.pending_phase_index,
                signal.yellow_remaining,
            )
            for node_id, signal in sim.signals.items()
        },
    }


def _run_paired(
    ticks: int, snapshot_every: int = 50, **sim_kwargs
) -> tuple[Simulation, Simulation]:
    fast = _make_sim(True, **sim_kwargs)
    reference = _make_sim(False, **sim_kwargs)
    churn_fast = np.random.default_rng(42)
    churn_ref = np.random.default_rng(42)

    for t in range(ticks):
        if t % 5 == 0:
            for node_id, signal in fast.signals.items():
                signal.request_phase(int(churn_fast.integers(signal.plan.num_phases)))
            for node_id, signal in reference.signals.items():
                signal.request_phase(int(churn_ref.integers(signal.plan.num_phases)))
        fast.step()
        reference.step()
        if t % snapshot_every == 0 or t == ticks - 1:
            assert _snapshot(fast) == _snapshot(reference), f"divergence at tick {t}"
    return fast, reference


class TestFastPathEquivalence:
    def test_default_config(self):
        """teleport off, permissive lefts on (the paper-faithful setup)."""
        _run_paired(400)

    def test_with_teleport_watchdog(self):
        _run_paired(400, teleport_time=60)

    def test_teleports_actually_fire_in_lockstep(self):
        """Aggressive watchdog on a congested grid: teleports must occur,
        and the fast path's memo/credit bookkeeping must survive heads
        vanishing mid-queue (the ``_dequeue_head`` sharing contract)."""
        fast, reference = _run_paired(400, snapshot_every=25, teleport_time=25)
        assert fast.teleport_count > 0
        assert fast.teleport_count == reference.teleport_count

    def test_protected_lefts_only(self):
        _run_paired(400, permissive_left=False)

    def test_fixed_time_program_equivalence(self):
        """run_fixed_time (hoisted phase table) matches stepwise requests."""
        from repro.sim.signal import FixedTimeProgram

        fast = _make_sim(True)
        reference = _make_sim(False)
        programs = {
            node_id: FixedTimeProgram(
                [(i, 13) for i in range(plan.num_phases)]
            )
            for node_id, plan in fast.phase_plans.items()
        }
        fast.run_fixed_time(programs, 300)
        for t in range(300):
            for node_id, program in programs.items():
                reference.signals[node_id].request_phase(program.phase_at(t))
            reference.step()
        assert _snapshot(fast) == _snapshot(reference)


class TestAccessorErrorParity:
    """Unknown ids raise the same SimulationError on every engine.

    The fast path resolves lanes through ``_lane_index`` and the slow
    path through ``_discharge_credit``; the SoA view resolves through
    ``_lane_of``/``_link_of``.  All three must agree on message shape so
    callers can handle a typo'd detector id uniformly.
    """

    LANE_ACCESSORS = ("discharge_credit", "queue_length", "head_wait")
    LINK_ACCESSORS = ("halting_count", "link_head_wait")

    def _engines(self):
        from repro.sim.soa import SoAEngine

        experiment = GridExperiment(SCALE, seed=7)
        env = experiment.train_env(1)
        env.reset(seed=123)
        yield "fast", _make_sim(True)
        yield "slow", _make_sim(False)
        yield "soa", SoAEngine(
            env.network, [env.sim.demand], env.phase_plans
        ).view(0)

    @pytest.mark.parametrize("accessor", LANE_ACCESSORS)
    def test_unknown_lane_id(self, accessor):
        from repro.errors import SimulationError

        for label, sim in self._engines():
            with pytest.raises(SimulationError) as excinfo:
                getattr(sim, accessor)("no_such_lane")
            assert str(excinfo.value) == "unknown lane id 'no_such_lane'", label

    @pytest.mark.parametrize("accessor", LINK_ACCESSORS)
    def test_unknown_link_id(self, accessor):
        from repro.errors import SimulationError

        for label, sim in self._engines():
            with pytest.raises(SimulationError) as excinfo:
                getattr(sim, accessor)("no_such_link")
            assert str(excinfo.value) == "unknown link id 'no_such_link'", label

    def test_known_ids_do_not_raise(self):
        for label, sim in self._engines():
            link_id = next(iter(sim.network.links))
            lane_id = sim.network.links[link_id].lanes[0].lane_id
            for accessor in self.LANE_ACCESSORS:
                getattr(sim, accessor)(lane_id)
            for accessor in self.LINK_ACCESSORS:
                getattr(sim, accessor)(link_id)


class TestPhaseTable:
    def test_phase_at_matches_scan(self):
        from repro.sim.signal import FixedTimeProgram

        program = FixedTimeProgram([(0, 7), (2, 3), (1, 15)])
        cycle = program.cycle_length

        def scan(t: int) -> int:
            offset = t % cycle
            for phase_index, duration in program.stages:
                if offset < duration:
                    return phase_index
                offset -= duration
            raise AssertionError

        for t in range(3 * cycle + 5):
            assert program.phase_at(t) == scan(t)

    def test_fractional_durations_fall_back(self):
        from repro.sim.signal import FixedTimeProgram

        program = FixedTimeProgram([(0, 2.0), (1, 3.0)])
        assert program.phase_at(0) == 0
        assert program.phase_at(2) == 1
        assert program.phase_at(5) == 0


class TestDetectorCacheEquivalence:
    def test_cached_readings_match_uncached(self):
        from repro.sim.detectors import DetectorSuite

        sim = _make_sim(True)
        cached = DetectorSuite(sim)
        uncached = DetectorSuite(sim)
        uncached._cache_enabled = False
        for _ in range(120):
            sim.step()
        network = sim.network
        for link_id in network.links:
            assert cached.observed_approaching(link_id) == (
                uncached.observed_approaching(link_id)
            )
            assert cached.observed_downstream(link_id) == (
                uncached.observed_downstream(link_id)
            )
            assert cached.link_pressure(link_id) == uncached.link_pressure(link_id)
        for movement in network.movements.values():
            assert cached.movement_pressure(movement) == (
                uncached.movement_pressure(movement)
            )
        for node_id in network.nodes:
            assert cached.intersection_pressure(node_id) == (
                uncached.intersection_pressure(node_id)
            )
            assert cached.intersection_congestion(node_id) == (
                uncached.intersection_congestion(node_id)
            )

    def test_cache_invalidates_on_tick(self):
        from repro.sim.detectors import DetectorSuite

        sim = _make_sim(True)
        suite = DetectorSuite(sim)
        for _ in range(30):
            sim.step()
        before = {n: suite.intersection_congestion(n) for n in sim.network.nodes}
        for _ in range(60):
            sim.step()
        after = {n: suite.intersection_congestion(n) for n in sim.network.nodes}
        fresh = DetectorSuite(sim)
        assert after == {n: fresh.intersection_congestion(n) for n in sim.network.nodes}
        assert before != after  # traffic actually moved

    def test_bulk_mode_restricted_to_base_class(self):
        """The vectorized bulk pass bypasses overridable ``observed_*``
        methods, so only the exact base class may use it."""
        from repro.sim.detectors import DetectorSuite

        sim = _make_sim(True)
        assert DetectorSuite(sim)._bulk_enabled is True

        class Overriding(DetectorSuite):
            def observed_queue(self, lane_id):
                return 0

        assert Overriding(sim)._bulk_enabled is False

    def test_faulty_suite_cache_disabled(self):
        from repro.faults.config import FaultConfig
        from repro.faults.detectors import FaultyDetectorSuite
        from repro.faults.schedule import FaultSchedule

        sim = _make_sim(True)
        config = FaultConfig(detector_dropout=0.5)
        schedule = FaultSchedule(config, seed=3)
        schedule.begin_episode(3)
        suite = FaultyDetectorSuite(sim, schedule)
        assert suite._cache_enabled is False
        lane_id = next(iter(sim.lane_queues))
        # Each read consumes fault RNG, so repeated same-tick reads may
        # differ — exactly why caching must stay off for this subclass.
        readings = {suite.observed_queue(lane_id) for _ in range(50)}
        assert len(readings) >= 1  # draws happened without error
