"""Router tests: shortest paths over the link graph."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.scenarios.grid import build_grid
from repro.sim.routing import Router
from tests_sim_helpers import diamond_network, straight_line_network


class TestBasicRouting:
    def test_straight_chain(self):
        router = Router(straight_line_network())
        assert router.route("l0", "l2") == ["l0", "l1", "l2"]

    def test_origin_equals_destination(self):
        router = Router(straight_line_network())
        assert router.route("l1", "l1") == ["l1"]

    def test_prefers_shorter_route(self):
        router = Router(diamond_network())
        route = router.route("ab", "de")
        assert route == ["ab", "bd", "de"]

    def test_long_route_when_forced(self):
        router = Router(diamond_network())
        route = router.route("ac", "de")
        assert route == ["ac", "cd", "de"]

    def test_unreachable_raises(self):
        router = Router(straight_line_network())
        with pytest.raises(NetworkError):
            router.route("l2", "l0")

    def test_unknown_links_raise(self):
        router = Router(straight_line_network())
        with pytest.raises(NetworkError):
            router.route("nope", "l0")
        with pytest.raises(NetworkError):
            router.route("l0", "nope")

    def test_route_is_copied_not_shared(self):
        router = Router(straight_line_network())
        route = router.route("l0", "l2")
        route.append("tampered")
        assert router.route("l0", "l2") == ["l0", "l1", "l2"]


class TestGridRouting:
    def test_route_follows_declared_movements(self):
        grid = build_grid(3, 3)
        router = Router(grid.network)
        origin, dest = grid.column_route_links(1, southbound=True)
        route = router.route(origin, dest)
        for a, b in zip(route[:-1], route[1:]):
            assert (a, b) in grid.network.movements

    def test_corridor_route_length(self):
        grid = build_grid(3, 3)
        router = Router(grid.network)
        origin, dest = grid.row_route_links(0, eastbound=True)
        route = router.route(origin, dest)
        # terminal->I0, I0->I1, I1->I2, I2->terminal = 4 links.
        assert len(route) == 4

    def test_l_shaped_route_exists(self):
        grid = build_grid(3, 3)
        router = Router(grid.network)
        col_in, _ = grid.column_route_links(0, southbound=True)
        _, row_out = grid.row_route_links(2, eastbound=True)
        route = router.route(col_in, row_out)
        assert route[0] == col_in
        assert route[-1] == row_out

    def test_reachable_set(self):
        router = Router(straight_line_network())
        assert router.reachable("l0") == frozenset({"l0", "l1", "l2"})
        assert router.reachable("l2") == frozenset({"l2"})
