"""Oracle-lockstep equivalence: SoA batched engine vs the object engine.

The object-per-vehicle :class:`Simulation` is the bit-exactness oracle
for :class:`repro.sim.soa.SoAEngine` (DESIGN.md, "SoA engine").  These
tests run B replicas batched in one SoA engine against B independent
reference simulations fed *identical demand streams*, driving both
through the same randomized phase churn, and compare full state
snapshots tick for tick — queues (ids, waits, route positions), running
lists, occupancy, discharge credits, signal state machines, finished
vehicles, and teleport counts — on grid, arterial, and monaco
scenarios, including a spillback-heavy case that actually teleports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.harness import ExperimentScale, GridExperiment
from repro.scenarios.arterial import ArterialScenario, ArterialSpec
from repro.scenarios.monaco import MonacoScenario, MonacoSpec
from repro.sim.demand import DemandGenerator, Router
from repro.sim.engine import Simulation
from repro.sim.soa import SoAEngine

pytestmark = pytest.mark.soa

CONGESTED_SCALE = ExperimentScale(
    rows=3,
    cols=3,
    peak_rate=900.0,
    t_peak=200.0,
    light_duration=400.0,
    horizon_ticks=400,
    max_ticks=3600,
    train_episodes=1,
    eval_episodes=1,
)


def _grid_demand(seed: int) -> tuple:
    """(network, phase_plans, demand) with a fresh generator per call."""
    experiment = GridExperiment(CONGESTED_SCALE, seed=7)
    env = experiment.train_env(1)
    env.reset(seed=seed)
    return env.network, env.phase_plans, env.sim.demand


def _scenario_demand(make_scenario, seed: int, stochastic: bool = True) -> tuple:
    # Fresh scenario per generator: deterministic-emission accumulators
    # live on the Flow objects, so generators must not share them.
    scenario = make_scenario()
    demand = DemandGenerator(
        scenario.flows, Router(scenario.network), seed=seed, stochastic=stochastic
    )
    return scenario.network, scenario.phase_plans, demand


def _snapshot(sim) -> dict:
    """Full-state snapshot; works on Simulation and SoAReplicaView."""
    return {
        "time": sim.time,
        "queues": {
            lane_id: [
                (v.vehicle_id, v.wait_total, v.wait_current_link, v.route_index)
                for v in sim.lane_queues[lane_id]
            ]
            for lane_id in sim.lane_queues
        },
        "running": {
            link_id: [
                (v.vehicle_id, v.run_start, v.run_arrival, v.route_index)
                for v in sim.running[link_id]
            ]
            for link_id in sim.running
        },
        "occupancy": dict(sim.link_occupancy),
        "credits": {
            lane_id: sim.discharge_credit(lane_id) for lane_id in sim.lane_queues
        },
        "finished": [
            (v.vehicle_id, v.finished, v.wait_total) for v in sim.finished_vehicles
        ],
        "teleports": sim.teleport_count,
        "total_created": sim.total_created,
        "in_network": sim.vehicles_in_network(),
        "pending": sim.pending_insertions(),
        "signals": {
            node_id: (
                sim.signals[node_id].current_phase_index,
                sim.signals[node_id].pending_phase_index,
                sim.signals[node_id].yellow_remaining,
                sim.signals[node_id].time_in_phase,
            )
            for node_id in sim.signals
        },
    }


def _run_locked(
    make_demand,
    seeds: list[int],
    ticks: int,
    snapshot_every: int = 25,
    churn_every: int = 5,
    **sim_kwargs,
) -> SoAEngine:
    """Drive SoA batch + per-replica references through identical churn."""
    references = []
    demands = []
    for seed in seeds:
        network, plans, demand_ref = make_demand(seed)
        _, _, demand_soa = make_demand(seed)
        references.append(
            Simulation(network, demand_ref, plans, fast_path=True, **sim_kwargs)
        )
        demands.append(demand_soa)
    engine = SoAEngine(network, demands, plans, **sim_kwargs)
    views = [engine.view(b) for b in range(len(seeds))]
    churn_soa = [np.random.default_rng(1000 + seed) for seed in seeds]
    churn_ref = [np.random.default_rng(1000 + seed) for seed in seeds]
    node_ids = list(plans)

    for t in range(ticks):
        if t % churn_every == 0:
            for b, reference in enumerate(references):
                for node_id in node_ids:
                    plan = plans[node_id]
                    engine.request_phase(
                        b, node_id, int(churn_soa[b].integers(plan.num_phases))
                    )
                    reference.signals[node_id].request_phase(
                        int(churn_ref[b].integers(plan.num_phases))
                    )
        engine.step()
        for reference in references:
            reference.step()
        if t % snapshot_every == 0 or t == ticks - 1:
            for b, reference in enumerate(references):
                assert _snapshot(views[b]) == _snapshot(reference), (
                    f"replica {b} diverged at tick {t}"
                )
    return engine


class TestGridLockstep:
    def test_default_config(self):
        """Teleports off, permissive lefts on (paper-faithful), B=3."""
        _run_locked(_grid_demand, [123, 456, 789], 400)

    def test_protected_lefts_only(self):
        _run_locked(_grid_demand, [123, 456], 300, permissive_left=False)

    def test_teleporting_spillback_heavy(self):
        """Congested grid with an aggressive watchdog: teleports fire and
        the engines stay bit-exact through them."""
        engine = _run_locked(_grid_demand, [123, 456], 400, teleport_time=25)
        assert sum(engine.teleport_count) > 0

    def test_zero_yellow_time(self):
        """yellow_time=0 exercises the instant-commit request path."""
        _run_locked(_grid_demand, [123], 200, yellow_time=0)


class TestArterialLockstep:
    def test_arterial(self):
        make = lambda: ArterialScenario(ArterialSpec(intersections=4))
        _run_locked(lambda seed: _scenario_demand(make, seed), [11, 22], 300)

    def test_arterial_deterministic_demand(self):
        make = lambda: ArterialScenario(ArterialSpec(intersections=3))
        _run_locked(
            lambda seed: _scenario_demand(make, seed, stochastic=False),
            [5, 6],
            250,
        )


class TestMonacoLockstep:
    def test_monaco(self):
        make = lambda: MonacoScenario(MonacoSpec(rows=3, cols=4))
        _run_locked(lambda seed: _scenario_demand(make, seed), [31, 32], 250)


class TestFixedTimeDriver:
    def test_run_fixed_time_matches_stepwise(self):
        from repro.sim.signal import FixedTimeProgram

        network, plans, demand_ref = _grid_demand(123)
        _, _, demand_soa = _grid_demand(123)
        reference = Simulation(network, demand_ref, plans, fast_path=True)
        engine = SoAEngine(network, [demand_soa], plans)
        programs = {
            node_id: FixedTimeProgram([(i, 13) for i in range(plan.num_phases)])
            for node_id, plan in plans.items()
        }
        engine.run_fixed_time(programs, 300)
        for t in range(300):
            for node_id, program in programs.items():
                reference.signals[node_id].request_phase(program.phase_at(t))
            reference.step()
        assert _snapshot(engine.view(0)) == _snapshot(reference)
