"""Text-rendering tests."""

from __future__ import annotations

from repro.scenarios.grid import build_grid
from repro.scenarios.flows import flow_pattern
from repro.sim.demand import DemandGenerator
from repro.sim.engine import Simulation
from repro.sim.render import grid_map, occupancy_table
from repro.sim.routing import Router


def _loaded_grid_sim():
    grid = build_grid(2, 2)
    flows = flow_pattern(grid, 1, peak_rate=1500, t_peak=100)
    demand = DemandGenerator(flows, Router(grid.network), seed=0)
    sim = Simulation(grid.network, demand, grid.phase_plans)
    sim.step(80)
    return grid, sim


class TestOccupancyTable:
    def test_contains_header_and_counts(self):
        _, sim = _loaded_grid_sim()
        text = occupancy_table(sim)
        assert f"t={sim.time}s" in text
        assert "queued" in text

    def test_top_limits_rows(self):
        _, sim = _loaded_grid_sim()
        short = occupancy_table(sim, top=1)
        long = occupancy_table(sim, top=50)
        assert len(short.splitlines()) <= len(long.splitlines())


class TestGridMap:
    def test_one_line_per_row(self):
        grid, sim = _loaded_grid_sim()
        text = grid_map(sim, 2, 2)
        assert len(text.splitlines()) == 3  # header + 2 rows

    def test_phase_glyphs_present(self):
        grid, sim = _loaded_grid_sim()
        for node_id in grid.network.signalized_nodes():
            sim.set_phase(node_id, 0)
        sim.step(5)
        text = grid_map(sim, 2, 2)
        assert "|" in text  # NS-through glyph

    def test_yellow_glyph(self):
        grid, sim = _loaded_grid_sim()
        node = grid.network.signalized_nodes()[0]
        current = sim.signals[node].current_phase_index
        sim.set_phase(node, (current + 1) % grid.phase_plans[node].num_phases)
        text = grid_map(sim, 2, 2)
        assert "y" in text
