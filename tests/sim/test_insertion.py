"""Vehicle insertion mechanics: rate limiting, backlog, full networks."""

from __future__ import annotations

import pytest

from repro.sim.demand import DemandGenerator, Flow, RateProfile
from repro.sim.engine import Simulation
from repro.sim.network import RoadNetwork, TurnType
from repro.sim.routing import Router
from repro.sim.signal import Phase, PhasePlan


def short_corridor(entry_lanes: int = 1):
    net = RoadNetwork()
    net.add_node("A", 0, 0)
    net.add_node("B", 100, 0, signalized=True)
    net.add_node("C", 200, 0)
    all_turns = frozenset(TurnType)
    net.add_link("in", "A", "B", 100, entry_lanes, speed_limit=10.0,
                 lane_turns=[all_turns] * entry_lanes)
    net.add_link("out", "B", "C", 100, 1, speed_limit=10.0)
    net.add_movement("in", "out", turn=TurnType.THROUGH)
    net.validate()
    plans = {
        "B": PhasePlan(
            "B", [Phase("go", frozenset({("in", "out")})), Phase("stop", frozenset())]
        )
    }
    return net, plans


class TestInsertion:
    def test_insertion_rate_limited_by_lanes(self):
        """A burst of simultaneous departures enters at ~saturation rate."""
        net, plans = short_corridor(entry_lanes=1)
        # 7200 veh/h for 5 s: 10 vehicles created almost at once.
        flows = [Flow("f", "in", "out", RateProfile.constant(7200, 5))]
        demand = DemandGenerator(flows, Router(net), seed=0, stochastic=False)
        sim = Simulation(net, demand, plans)
        sim.step(8)
        # With 1 lane at 0.5 veh/s, at most ~4-5 inserted in 8 ticks.
        assert sim.vehicles_in_network() <= 6
        assert sim.pending_insertions() > 0

    def test_two_entry_lanes_insert_faster(self):
        counts = {}
        for lanes in (1, 2):
            net, plans = short_corridor(entry_lanes=lanes)
            flows = [Flow("f", "in", "out", RateProfile.constant(7200, 5))]
            demand = DemandGenerator(flows, Router(net), seed=0, stochastic=False)
            sim = Simulation(net, demand, plans)
            sim.step(8)
            counts[lanes] = sim.vehicles_in_network()
        assert counts[2] > counts[1]

    def test_full_link_blocks_insertion(self):
        net, plans = short_corridor()
        flows = [Flow("f", "in", "out", RateProfile.constant(3600, 120))]
        demand = DemandGenerator(flows, Router(net), seed=0, stochastic=False)
        sim = Simulation(net, demand, plans)
        sim.set_phase("B", 1)  # red forever
        sim.step(300)
        storage = net.links["in"].storage
        assert sim.link_occupancy["in"] == storage
        assert sim.pending_insertions() > 0

    def test_backlog_drains_after_demand_ends(self):
        net, plans = short_corridor()
        flows = [Flow("f", "in", "out", RateProfile.constant(3600, 30))]
        demand = DemandGenerator(flows, Router(net), seed=0, stochastic=False)
        sim = Simulation(net, demand, plans)
        sim.step(600)  # green throughout
        assert sim.pending_insertions() == 0
        assert sim.is_drained()
        # Constant profile spans [0, 30] inclusive: 31 emissions at 1 veh/s.
        assert len(sim.finished_vehicles) == sim.total_created == 31

    def test_storage_unblock_does_not_burst(self):
        """Regression: banked insertion credit is clamped while the
        origin link is storage-blocked (DESIGN.md, "Insertion-credit
        semantics").

        A long red fills the 3-lane entry link while credit would accrue
        at 1.5/tick; on unblock an unclamped engine would dump
        ``num_lanes`` vehicles per freed slot.  With the clamp, no tick
        after the blocked window may insert more than
        ``floor(1.0 + rate * num_lanes) = 2`` vehicles.
        """
        net, plans = short_corridor(entry_lanes=3)
        flows = [Flow("f", "in", "out", RateProfile.constant(10800, 60))]
        demand = DemandGenerator(flows, Router(net), seed=0, stochastic=False)
        sim = Simulation(net, demand, plans)
        sim.set_phase("B", 1)  # red: fill the link, bank a backlog
        sim.step(150)
        assert sim.link_occupancy["in"] == net.links["in"].storage
        assert sim.pending_insertions() > 0
        sim.set_phase("B", 0)  # green: storage frees as the queue drains
        inserted_per_tick = []
        for _ in range(200):
            before = sim.pending_insertions()
            sim.step()
            inserted_per_tick.append(before - sim.pending_insertions())
        assert sum(inserted_per_tick) > 0
        assert max(inserted_per_tick) <= 2

    def test_storage_unblock_engines_agree(self):
        """The clamp behaves identically on slow, fast, and SoA engines."""
        from repro.sim.soa import SoAEngine

        def run(engine: str) -> list[tuple[int, int, int]]:
            net, plans = short_corridor(entry_lanes=3)
            flows = [Flow("f", "in", "out", RateProfile.constant(10800, 60))]
            demand = DemandGenerator(flows, Router(net), seed=0, stochastic=False)
            if engine == "soa":
                sim = SoAEngine(net, [demand], plans).view(0)
            else:
                sim = Simulation(net, demand, plans, fast_path=engine == "fast")
            sim.set_phase("B", 1)
            sim.step(150)
            sim.set_phase("B", 0)
            trace = []
            for _ in range(200):
                sim.step()
                trace.append(
                    (
                        sim.vehicles_in_network(),
                        sim.pending_insertions(),
                        len(sim.finished_vehicles),
                    )
                )
            return trace

        slow, fast, soa = run("slow"), run("fast"), run("soa")
        assert slow == fast == soa

    def test_insertion_delay_counted_in_travel_time(self):
        net, plans = short_corridor()
        flows = [Flow("f", "in", "out", RateProfile.constant(7200, 10))]
        demand = DemandGenerator(flows, Router(net), seed=0, stochastic=False)
        sim = Simulation(net, demand, plans)
        sim.step(600)
        times = [v.travel_time(sim.time) for v in sim.finished_vehicles]
        # Later vehicles waited outside the network; spread must exceed
        # the pure service-rate spacing of 2 s.
        assert max(times) - min(times) >= 10
