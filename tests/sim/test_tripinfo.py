"""Trip-level statistics tests."""

from __future__ import annotations

import pytest

from repro.sim.tripinfo import (
    DelayDecomposition,
    all_trips,
    format_od_table,
    od_summaries,
    trip_record,
)
from repro.sim.vehicle import Vehicle

from test_engine import make_sim


class TestTripRecord:
    def test_completed_trip_fields(self):
        sim = make_sim(rate=360.0, duration=30.0)
        sim.step(300)
        records = [r for r in all_trips(sim) if r.completed]
        assert records
        for record in records:
            assert record.origin == "in"
            assert record.destination == "out"
            assert record.travel_time >= 40  # free-flow bound
            assert record.insertion_delay >= 0
            assert record.links_travelled == 2

    def test_uncompleted_trip_charged_elapsed(self):
        sim = make_sim(rate=720.0, duration=60.0)
        sim.set_phase("B", 1)
        sim.step(100)
        records = all_trips(sim)
        open_records = [r for r in records if not r.completed]
        assert open_records
        for record in open_records:
            assert record.travel_time <= sim.time

    def test_pending_vehicle_insertion_delay_grows(self):
        vehicle = Vehicle(vehicle_id=0, route=["a"], created=10)
        record = trip_record(vehicle, now=50)
        assert record.insertion_delay == 40
        assert record.inserted is None


class TestODSummaries:
    def test_single_od(self):
        sim = make_sim(rate=360.0, duration=30.0)
        sim.step(300)
        summaries = od_summaries(sim)
        assert len(summaries) == 1
        summary = summaries[0]
        assert summary.count == sim.total_created
        assert summary.completed == summary.count
        assert summary.completion_rate == 1.0
        assert summary.mean_travel_time >= 40

    def test_sorted_worst_first(self):
        sim = make_sim(rate=720.0, duration=60.0)
        sim.step(200)
        summaries = od_summaries(sim)
        times = [s.mean_travel_time for s in summaries]
        assert times == sorted(times, reverse=True)

    def test_format_table(self):
        sim = make_sim(rate=360.0, duration=30.0)
        sim.step(200)
        text = format_od_table(od_summaries(sim))
        assert "origin" in text
        assert "in" in text


class TestDelayDecomposition:
    def test_empty_simulation(self):
        sim = make_sim(rate=100.0, duration=1.0)
        decomposition = DelayDecomposition.compute(sim)
        assert decomposition.mean_travel_time == 0.0

    def test_components_sum_to_travel_time(self):
        sim = make_sim(rate=720.0, duration=60.0)
        sim.step(400)
        d = DelayDecomposition.compute(sim)
        assert d.mean_travel_time == pytest.approx(
            d.mean_insertion_delay + d.mean_waiting_time + d.mean_moving_time,
            rel=1e-9,
        )
        assert d.mean_moving_time > 0

    def test_blocked_network_dominated_by_waiting(self):
        sim = make_sim(rate=720.0, duration=100.0)
        sim.set_phase("B", 1)
        sim.step(400)
        d = DelayDecomposition.compute(sim)
        assert d.mean_waiting_time > d.mean_moving_time
