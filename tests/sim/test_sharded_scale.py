"""Heavy sharded-scale tests (marked ``sharded``, excluded from tier-1).

These exercise the city-scale path the quick suites cannot afford:
partitioning and running grids in the hundreds-of-intersections range,
plus a miniature end-to-end pass through the scaling benchmark and its
regression gate.  ``scripts/run_ci.sh`` runs them via
``pytest -m sharded``.
"""

from __future__ import annotations

import json

import pytest

from repro.perf.bench import bench_sharded
from repro.perf.regression import check_sharded_regression
from repro.scenarios.grid import build_grid
from repro.sim.sharded import ShardedSimulation
from repro.sim.sharded.partition import partition_network
from repro.sim.signal import FixedTimeProgram

pytestmark = pytest.mark.sharded


class TestLargeGridPartition:
    def test_20x20_into_8_shards(self):
        network = build_grid(20, 20).network
        partition = partition_network(network, 8)
        sizes = [len(shard) for shard in partition.shards]
        assert sum(sizes) == len(network.nodes)
        assert min(sizes) > 0
        # Contiguous BFS growth keeps the cut a small fraction of links.
        assert partition.edge_cut < len(network.links) * 0.25

    def test_hundreds_of_intersections_run_and_conserve(self):
        scenario = build_grid(15, 15)
        from repro.scenarios.flows import flow_pattern

        flows = flow_pattern(scenario, 5, light_duration=120.0)
        programs = {
            node_id: FixedTimeProgram([(i, 15) for i in range(plan.num_phases)])
            for node_id, plan in scenario.phase_plans.items()
        }
        with ShardedSimulation(
            scenario.network,
            scenario.phase_plans,
            flows,
            8,
            seed=0,
            workers=True,
            programs=programs,
        ) as sim:
            sim.run(120)
            sim.check_conservation()
            summary = sim.summary()
        assert summary["created"] > 100
        assert summary["handoffs"] > 0


class TestBenchSharded:
    def test_tiny_curve_schema(self):
        payload = bench_sharded(
            rows=4, cols=4, shard_counts=(1, 2), warmup_ticks=4,
            measure_ticks=12, rounds=1,
        )
        assert payload["benchmark"] == "sharded"
        assert payload["cpu_count"] >= 1
        counts = [point["num_shards"] for point in payload["curve"]]
        assert counts == [1, 2]
        for point in payload["curve"]:
            assert point["ticks_per_second"] > 0
        assert payload["speedup_max_shards_vs_serial_same_run"] > 0

    def test_regression_gate_round_trip(self, tmp_path):
        payload = bench_sharded(
            rows=4, cols=4, shard_counts=(1, 2), warmup_ticks=4,
            measure_ticks=12, rounds=1,
        )
        baseline_path = tmp_path / "BENCH_sharded.json"
        baseline_path.write_text(json.dumps(payload))
        # A near-1.0 threshold: this asserts the baseline/re-measure
        # plumbing works end to end, not the gate margin — the ratio is
        # far too noisy at these tiny tick counts to gate tightly.
        verdict = check_sharded_regression(str(baseline_path), threshold=0.99)
        assert verdict.ok
        assert "sharded" in verdict.metric
