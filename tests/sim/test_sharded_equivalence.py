"""Sharded-vs-serial equivalence: the bit-exactness contract.

Two oracles pin the sharded protocol down:

* ``num_shards=1`` is **bit-exact with the monolithic engine** — same
  trajectories, tuple for tuple.  This grounds the shard machinery
  (route clipping, per-shard demand, controllers) against the engine
  the rest of the repo trusts.
* At any shard count, the in-process serial driver and the forked
  worker-pool driver run the **identical lockstep protocol** and must
  produce identical episode summaries and vehicle trajectories.  This
  is the oracle for the worker/pipe machinery itself.

A true K>1 run is deliberately *not* bit-exact with the monolithic
engine: a vehicle crossing a cut spends one tick on the wire and remote
occupancy is one tick stale (DESIGN.md section 8) — that protocol is
the thing held fixed across drivers here.
"""

from __future__ import annotations

import pytest

from repro.scenarios.flows import flow_pattern
from repro.scenarios.grid import build_grid
from repro.sim.demand import DemandGenerator
from repro.sim.engine import Simulation
from repro.sim.routing import Router
from repro.sim.sharded import ShardedSimulation
from repro.sim.signal import FixedTimeProgram

TICKS = 300


def _workload(rows=3, cols=3, light_duration=float(TICKS)):
    # Rebuilt for every run: Flow objects carry a mutable deterministic
    # emission accumulator, so runs must never share them.
    scenario = build_grid(rows, cols)
    flows = flow_pattern(scenario, 5, light_duration=light_duration)
    programs = {
        node_id: FixedTimeProgram([(i, 15) for i in range(plan.num_phases)])
        for node_id, plan in scenario.phase_plans.items()
    }
    return scenario, flows, programs


def _mono_trajectories(ticks=TICKS, stochastic=True, rows=3, cols=3):
    scenario, flows, programs = _workload(rows, cols)
    router = Router(scenario.network)
    demand = DemandGenerator(flows, router, seed=0, stochastic=stochastic)
    sim = Simulation(scenario.network, demand, scenario.phase_plans)
    sim.run_fixed_time(programs, ticks)
    return sorted(
        (
            vehicle.vehicle_id,
            vehicle.created,
            vehicle.inserted,
            vehicle.finished,
            vehicle.state.value,
            vehicle.wait_total,
            vehicle.links_travelled,
            tuple(vehicle.route),
            vehicle.route_index,
        )
        for vehicle in sim.vehicles.values()
    )


def _sharded_run(num_shards, workers, ticks=TICKS, stochastic=True,
                 rows=3, cols=3, **kwargs):
    scenario, flows, programs = _workload(rows, cols)
    with ShardedSimulation(
        scenario.network,
        scenario.phase_plans,
        flows,
        num_shards,
        seed=0,
        stochastic=stochastic,
        workers=workers,
        programs=programs,
        **kwargs,
    ) as sim:
        sim.run(ticks)
        sim.check_conservation()
        summary = sim.summary()
        summary.pop("shards")
        return sim.trajectories(), summary


class TestSingleShardIsMonolithic:
    @pytest.mark.parametrize("stochastic", [True, False])
    def test_bit_exact_trajectories(self, stochastic):
        mono = _mono_trajectories(stochastic=stochastic)
        sharded, summary = _sharded_run(1, False, stochastic=stochastic)
        assert sharded == mono
        assert summary["created"] == len(mono)
        assert summary["handoffs"] == 0

    def test_some_vehicles_finish(self):
        # Guard against a vacuously-passing equivalence (empty runs agree).
        _, summary = _sharded_run(1, False)
        assert summary["created"] > 20
        assert summary["finished"] > 0


class TestSerialEqualsWorkers:
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_bit_exact_across_drivers(self, num_shards):
        serial_traj, serial_summary = _sharded_run(num_shards, workers=False)
        worker_traj, worker_summary = _sharded_run(num_shards, workers=True)
        assert serial_traj == worker_traj
        assert serial_summary == worker_summary
        assert serial_summary["handoffs"] > 0  # cuts actually exercised

    def test_max_pressure_controller(self):
        serial_traj, serial_summary = _sharded_run(
            2, workers=False, controller="max_pressure"
        )
        worker_traj, worker_summary = _sharded_run(
            2, workers=True, controller="max_pressure"
        )
        assert serial_traj == worker_traj
        assert serial_summary == worker_summary

    def test_repeat_runs_deterministic(self):
        first, _ = _sharded_run(4, workers=False)
        second, _ = _sharded_run(4, workers=False)
        assert first == second


class TestConservationAcrossShardCounts:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4])
    def test_every_vehicle_accounted(self, num_shards):
        traj, summary = _sharded_run(num_shards, False, rows=2, cols=4)
        assert summary["created"] == (
            summary["finished"]
            + summary["in_network"]
            + summary["pending"]
            + summary["in_flight"]
        )
        # Vehicle ids are globally unique across shards by construction.
        ids = [row[0] for row in traj]
        assert len(ids) == len(set(ids))
