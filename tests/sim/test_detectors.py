"""Detector tests: range-limited sensing and pressure computation."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.demand import DemandGenerator, Flow, RateProfile
from repro.sim.detectors import DetectorSuite
from repro.sim.engine import Simulation
from repro.sim.network import VEHICLE_SPACE_M, RoadNetwork, TurnType
from repro.sim.routing import Router
from repro.sim.signal import Phase, PhasePlan


def build_approach(rate: float = 3600.0, duration: float = 120.0) -> Simulation:
    """One signalized approach with a long in-link for queue buildup."""
    net = RoadNetwork()
    net.add_node("A", 0, 0)
    net.add_node("B", 300, 0, signalized=True)
    net.add_node("C", 600, 0)
    net.add_link("in", "A", "B", 300, 1, speed_limit=10.0)
    net.add_link("out", "B", "C", 300, 1, speed_limit=10.0)
    net.add_movement("in", "out", turn=TurnType.THROUGH)
    net.validate()
    flows = [Flow("f", "in", "out", RateProfile.constant(rate, duration))]
    demand = DemandGenerator(flows, Router(net), seed=0, stochastic=False)
    plans = {
        "B": PhasePlan(
            "B",
            [Phase("go", frozenset({("in", "out")})), Phase("stop", frozenset())],
        )
    }
    return Simulation(net, demand, plans)


class TestObservedQueue:
    def test_coverage_caps_observation(self):
        sim = build_approach()
        sim.set_phase("B", 1)  # red: build a long queue
        sim.step(200)
        true_queue = sim.queue_length("in#0")
        detectors = DetectorSuite(sim, coverage=50.0)
        observed = detectors.observed_queue("in#0")
        max_visible = int(50.0 // VEHICLE_SPACE_M)
        assert true_queue > max_visible
        assert observed == max_visible

    def test_wide_coverage_sees_everything(self):
        sim = build_approach()
        sim.set_phase("B", 1)
        sim.step(100)
        detectors = DetectorSuite(sim, coverage=1000.0)
        assert detectors.observed_queue("in#0") == sim.queue_length("in#0")

    def test_zero_coverage_rejected(self):
        sim = build_approach()
        with pytest.raises(SimulationError):
            DetectorSuite(sim, coverage=0.0)


class TestApproachingVehicles:
    def test_running_vehicle_visible_only_near_stop_line(self):
        sim = build_approach(rate=3600.0, duration=1.0)
        detectors = DetectorSuite(sim, coverage=50.0)
        sim.step(3)  # one vehicle inserted, still far from the stop line
        assert sim.vehicles_in_network() >= 1
        assert detectors.observed_approaching("in") == 0
        sim.step(25)  # 10 m/s on a 300 m link: close to the line by t~28
        visible_late = detectors.observed_approaching("in") + sum(
            detectors.observed_queue(l.lane_id) for l in sim.network.links["in"].lanes
        )
        assert visible_late >= 1


class TestPressure:
    def test_pressure_positive_with_upstream_queue(self):
        sim = build_approach()
        sim.set_phase("B", 1)
        sim.step(150)
        detectors = DetectorSuite(sim, coverage=50.0)
        movement = sim.network.movements[("in", "out")]
        assert detectors.movement_pressure(movement) > 0

    def test_pressure_zero_when_empty(self):
        sim = build_approach(rate=0.1, duration=1.0)
        detectors = DetectorSuite(sim, coverage=50.0)
        movement = sim.network.movements[("in", "out")]
        assert detectors.movement_pressure(movement) == 0.0

    def test_downstream_congestion_reduces_pressure(self):
        """Vehicles sitting just past the intersection lower pressure."""
        sim = build_approach(rate=1800.0, duration=60.0)
        detectors = DetectorSuite(sim, coverage=50.0)
        movement = sim.network.movements[("in", "out")]
        sim.set_phase("B", 1)
        sim.step(60)
        pressure_red = detectors.movement_pressure(movement)
        sim.set_phase("B", 0)
        sim.step(8)  # some vehicles just discharged onto 'out'
        pressure_after = detectors.movement_pressure(movement)
        assert pressure_after < pressure_red

    def test_link_pressure_sums_movements(self):
        sim = build_approach()
        sim.step(60)
        detectors = DetectorSuite(sim, coverage=50.0)
        movement = sim.network.movements[("in", "out")]
        assert detectors.link_pressure("in") == pytest.approx(
            detectors.movement_pressure(movement)
        )

    def test_intersection_congestion_counts_incoming(self):
        sim = build_approach()
        sim.set_phase("B", 1)
        sim.step(100)
        detectors = DetectorSuite(sim, coverage=50.0)
        assert detectors.intersection_congestion("B") > 0

    def test_intersection_pressure_absolute(self):
        sim = build_approach()
        sim.set_phase("B", 1)
        sim.step(100)
        detectors = DetectorSuite(sim, coverage=50.0)
        assert detectors.intersection_pressure("B") >= 0


class TestSharedLaneSplitting:
    def test_shared_lane_counts_split_equally(self):
        """A lane shared by two movements contributes half to each."""
        net = RoadNetwork()
        net.add_node("A", 0, 0)
        net.add_node("B", 300, 0, signalized=True)
        net.add_node("C", 600, 0)
        net.add_node("D", 300, 300)
        net.add_link("in", "A", "B", 300, 1, speed_limit=10.0)
        net.add_link("thr", "B", "C", 300, 1, speed_limit=10.0)
        net.add_link("left", "B", "D", 300, 1, speed_limit=10.0)
        net.add_movement("in", "thr")
        net.add_movement("in", "left")
        net.validate()
        flows = [Flow("f", "in", "thr", RateProfile.constant(1800, 60))]
        demand = DemandGenerator(flows, Router(net), seed=0, stochastic=False)
        plans = {"B": PhasePlan("B", [Phase("stop", frozenset())])}
        sim = Simulation(net, demand, plans)
        sim.step(120)
        detectors = DetectorSuite(sim, coverage=50.0)
        thr = sim.network.movements[("in", "thr")]
        left = sim.network.movements[("in", "left")]
        # All queued vehicles are through-bound, but the shared lane cannot
        # attribute them: both movements see the same (split) count.
        assert detectors.movement_incoming_count(thr) == pytest.approx(
            detectors.movement_incoming_count(left)
        )
        assert detectors.movement_incoming_count(thr) > 0
