"""Opposing-approach map and permissive-left integration on grid networks."""

from __future__ import annotations

from repro.scenarios.flows import flow_pattern
from repro.scenarios.grid import build_grid, intersection_id, link_id
from repro.sim.demand import DemandGenerator
from repro.sim.engine import Simulation
from repro.sim.routing import Router


def _grid_sim(rows=3, cols=3, **kwargs):
    grid = build_grid(rows, cols)
    flows = flow_pattern(grid, 1, peak_rate=800, t_peak=120)
    demand = DemandGenerator(flows, Router(grid.network), seed=0)
    return grid, Simulation(grid.network, demand, grid.phase_plans, **kwargs)


class TestOpposingMap:
    def test_grid_interior_pairs_opposites(self):
        grid, sim = _grid_sim()
        centre = intersection_id(1, 1)
        north_in = link_id(intersection_id(0, 1), centre)
        south_in = link_id(intersection_id(2, 1), centre)
        east_in = link_id(intersection_id(1, 2), centre)
        west_in = link_id(intersection_id(1, 0), centre)
        assert sim._opposing_link[north_in] == south_in
        assert sim._opposing_link[south_in] == north_in
        assert sim._opposing_link[east_in] == west_in
        assert sim._opposing_link[west_in] == east_in

    def test_every_incoming_link_mapped(self):
        grid, sim = _grid_sim()
        for node_id in grid.network.signalized_nodes():
            for in_link in grid.network.nodes[node_id].incoming:
                assert in_link in sim._opposing_link

    def test_opposing_clear_on_empty_network(self):
        grid, sim = _grid_sim()
        centre = intersection_id(1, 1)
        for in_link in grid.network.nodes[centre].incoming:
            assert sim._opposing_clear(in_link)


class TestPermissiveEffect:
    def test_permissive_improves_fixed_time_throughput(self):
        """Permissive lefts strictly help under the same fixed control."""
        from repro.sim.signal import FixedTimeProgram

        results = {}
        for permissive in (True, False):
            grid, sim = _grid_sim(permissive_left=permissive)
            programs = {
                node_id: FixedTimeProgram(
                    [(index, 7) for index in range(plan.num_phases)]
                )
                for node_id, plan in grid.phase_plans.items()
            }
            sim.run_fixed_time(programs, 900)
            results[permissive] = len(sim.finished_vehicles)
        assert results[True] >= results[False]

    def test_conservation_with_permissive_lefts(self):
        grid, sim = _grid_sim(permissive_left=True)
        for _ in range(100):
            for node_id, plan in grid.phase_plans.items():
                sim.set_phase(node_id, sim.time // 10 % plan.num_phases)
            sim.step(5)
            total = (
                sim.vehicles_in_network()
                + sim.pending_insertions()
                + len(sim.finished_vehicles)
            )
            assert total == sim.total_created
