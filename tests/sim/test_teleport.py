"""Teleport-watchdog tests."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.demand import DemandGenerator, Flow, RateProfile
from repro.sim.engine import Simulation
from repro.sim.routing import Router

from test_engine import corridor_network, corridor_plan


def blocked_sim(teleport_time=None):
    """Permanent red: without teleporting, nothing ever crosses."""
    net = corridor_network()
    flows = [Flow("f", "in", "out", RateProfile.constant(720, 60))]
    demand = DemandGenerator(flows, Router(net), seed=0, stochastic=False)
    sim = Simulation(net, demand, corridor_plan(net), teleport_time=teleport_time)
    sim.set_phase("B", 1)
    return sim


class TestTeleport:
    def test_disabled_by_default(self):
        sim = blocked_sim()
        sim.step(600)
        assert sim.teleport_count == 0
        assert len(sim.finished_vehicles) == 0

    def test_teleport_breaks_absolute_blockage(self):
        sim = blocked_sim(teleport_time=120)
        sim.step(800)
        assert sim.teleport_count > 0
        assert len(sim.finished_vehicles) > 0

    def test_conservation_holds_with_teleport(self):
        sim = blocked_sim(teleport_time=60)
        for _ in range(100):
            sim.step(5)
            total = (
                sim.vehicles_in_network()
                + sim.pending_insertions()
                + len(sim.finished_vehicles)
            )
            assert total == sim.total_created

    def test_no_teleport_below_threshold(self):
        sim = blocked_sim(teleport_time=10_000)
        sim.step(300)
        assert sim.teleport_count == 0

    def test_teleported_vehicle_continues_route(self):
        sim = blocked_sim(teleport_time=60)
        sim.step(800)
        for vehicle in sim.finished_vehicles:
            assert vehicle.route_index == len(vehicle.route) - 1

    def test_invalid_threshold_rejected(self):
        net = corridor_network()
        with pytest.raises(SimulationError):
            Simulation(net, None, corridor_plan(net), teleport_time=0)
