"""Demand model tests: rate profiles and vehicle emission."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DemandError
from repro.sim.demand import DemandGenerator, Flow, RateProfile
from repro.sim.routing import Router
from tests_sim_helpers import straight_line_network


class TestRateProfile:
    def test_constant(self):
        profile = RateProfile.constant(600.0, 100.0)
        assert profile.rate_at(0) == 600.0
        assert profile.rate_at(50) == 600.0
        assert profile.rate_at(100) == 600.0
        assert profile.rate_at(101) == 0.0

    def test_triangular_interpolation(self):
        profile = RateProfile.triangular(0, 100, 200, 500)
        assert profile.rate_at(0) == 0.0
        assert profile.rate_at(50) == pytest.approx(250.0)
        assert profile.rate_at(100) == 500.0
        assert profile.rate_at(150) == pytest.approx(250.0)
        assert profile.rate_at(200) == 0.0
        assert profile.rate_at(250) == 0.0

    def test_outside_span_zero(self):
        profile = RateProfile(((100.0, 300.0), (200.0, 300.0)))
        assert profile.rate_at(50) == 0.0
        assert profile.rate_at(150) == 300.0

    def test_unordered_times_rejected(self):
        with pytest.raises(DemandError):
            RateProfile(((10.0, 5.0), (5.0, 5.0)))

    def test_negative_rate_rejected(self):
        with pytest.raises(DemandError):
            RateProfile(((0.0, -1.0),))

    def test_empty_rejected(self):
        with pytest.raises(DemandError):
            RateProfile(())

    def test_triangular_bad_ordering_rejected(self):
        with pytest.raises(DemandError):
            RateProfile.triangular(100, 50, 200, 500)

    def test_peak_rate_and_end_time(self):
        profile = RateProfile.triangular(0, 30, 90, 700)
        assert profile.peak_rate == 700
        assert profile.end_time == 90


class TestFlow:
    def test_expected_vehicles_constant(self):
        flow = Flow("f", "a", "b", RateProfile.constant(3600.0, 10.0))
        assert flow.expected_vehicles() == pytest.approx(10.0)

    def test_expected_vehicles_triangular(self):
        flow = Flow("f", "a", "b", RateProfile.triangular(0, 900, 1800, 500))
        # Area = 0.5 * 1800 * 500 / 3600 = 125 vehicles.
        assert flow.expected_vehicles() == pytest.approx(125.0)


class TestDemandGenerator:
    def _generator(self, stochastic: bool, seed: int = 0) -> DemandGenerator:
        net = straight_line_network()
        flows = [Flow("f", "l0", "l2", RateProfile.constant(1800.0, 100.0))]
        return DemandGenerator(flows, Router(net), seed=seed, stochastic=stochastic)

    def test_deterministic_emission_count(self):
        gen = self._generator(stochastic=False)
        total = sum(len(gen.emit(t)) for t in range(101))
        assert total == 50  # 1800 veh/h * 100 s = 50 vehicles

    def test_deterministic_is_reproducible(self):
        a = self._generator(stochastic=False)
        b = self._generator(stochastic=False)
        for t in range(100):
            assert a.emit(t) == b.emit(t)

    def test_stochastic_reproducible_with_seed(self):
        a = self._generator(stochastic=True, seed=42)
        b = self._generator(stochastic=True, seed=42)
        for t in range(100):
            assert a.emit(t) == b.emit(t)

    def test_stochastic_count_near_expectation(self):
        gen = self._generator(stochastic=True, seed=7)
        total = sum(len(gen.emit(t)) for t in range(101))
        assert 30 <= total <= 70  # Poisson(50), generous bounds

    def test_vehicle_ids_unique_and_monotone(self):
        gen = self._generator(stochastic=False)
        ids = [vid for t in range(100) for vid, _ in gen.emit(t)]
        assert ids == sorted(set(ids))

    def test_routes_resolved(self):
        gen = self._generator(stochastic=False)
        emissions = []
        t = 0
        while not emissions:
            emissions = gen.emit(t)
            t += 1
        _, route = emissions[0]
        assert route[0] == "l0"
        assert route[-1] == "l2"

    def test_reset_restarts_ids(self):
        gen = self._generator(stochastic=False)
        for t in range(50):
            gen.emit(t)
        gen.reset(seed=0)
        ids = [vid for t in range(100) for vid, _ in gen.emit(t)]
        assert ids[0] == 0

    def test_bad_route_fails_fast(self):
        net = straight_line_network()
        flows = [Flow("f", "l2", "l0", RateProfile.constant(100.0, 10.0))]
        with pytest.raises(Exception):
            DemandGenerator(flows, Router(net), seed=0)

    def test_duplicate_flow_names_rejected(self):
        net = straight_line_network()
        flows = [
            Flow("f", "l0", "l2", RateProfile.constant(100.0, 10.0)),
            Flow("f", "l0", "l1", RateProfile.constant(100.0, 10.0)),
        ]
        with pytest.raises(DemandError):
            DemandGenerator(flows, Router(net), seed=0)

    def test_empty_flows_rejected(self):
        net = straight_line_network()
        with pytest.raises(DemandError):
            DemandGenerator([], Router(net), seed=0)

    def test_end_time(self):
        net = straight_line_network()
        flows = [
            Flow("a", "l0", "l2", RateProfile.constant(100.0, 10.0)),
            Flow("b", "l0", "l2", RateProfile.triangular(0, 100, 300, 100.0)),
        ]
        gen = DemandGenerator(flows, Router(net), seed=0)
        assert gen.end_time == 300.0
