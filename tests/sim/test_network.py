"""Road-network model tests."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.sim.network import (
    VEHICLE_SPACE_M,
    RoadNetwork,
    TurnType,
    classify_turn,
)


def build_cross() -> RoadNetwork:
    """A single 4-way intersection with terminals on each side."""
    net = RoadNetwork()
    net.add_node("C", 0, 0, signalized=True)
    net.add_node("N", 0, 200)
    net.add_node("S", 0, -200)
    net.add_node("E", 200, 0)
    net.add_node("W", -200, 0)
    for terminal in ("N", "S", "E", "W"):
        net.add_link(f"{terminal}->C", terminal, "C", 200.0, 1)
        net.add_link(f"C->{terminal}", "C", terminal, 200.0, 1)
    for src in ("N", "S", "E", "W"):
        for dst in ("N", "S", "E", "W"):
            if src != dst:
                net.add_movement(f"{src}->C", f"C->{dst}")
    net.validate()
    return net


class TestConstruction:
    def test_duplicate_node_rejected(self):
        net = RoadNetwork()
        net.add_node("a", 0, 0)
        with pytest.raises(NetworkError):
            net.add_node("a", 1, 1)

    def test_link_with_unknown_node_rejected(self):
        net = RoadNetwork()
        net.add_node("a", 0, 0)
        with pytest.raises(NetworkError):
            net.add_link("l", "a", "b", 100, 1)

    def test_self_loop_rejected(self):
        net = RoadNetwork()
        net.add_node("a", 0, 0)
        with pytest.raises(NetworkError):
            net.add_link("l", "a", "a", 100, 1)

    def test_bad_geometry_rejected(self):
        net = RoadNetwork()
        net.add_node("a", 0, 0)
        net.add_node("b", 100, 0)
        with pytest.raises(NetworkError):
            net.add_link("l", "a", "b", -5, 1)
        with pytest.raises(NetworkError):
            net.add_link("l", "a", "b", 100, 0)

    def test_lane_turns_length_checked(self):
        net = RoadNetwork()
        net.add_node("a", 0, 0)
        net.add_node("b", 100, 0)
        with pytest.raises(NetworkError):
            net.add_link("l", "a", "b", 100, 2, lane_turns=[frozenset(TurnType)])

    def test_movement_requires_meeting_links(self):
        net = RoadNetwork()
        net.add_node("a", 0, 0)
        net.add_node("b", 100, 0)
        net.add_node("c", 200, 0)
        net.add_link("ab", "a", "b", 100, 1)
        net.add_link("cb", "c", "b", 100, 1)
        with pytest.raises(NetworkError):
            net.add_movement("ab", "cb")  # cb starts at c, not b

    def test_duplicate_movement_rejected(self):
        net = build_cross()
        with pytest.raises(NetworkError):
            net.add_movement("N->C", "C->S")


class TestGeometryDerived:
    def test_freeflow_ticks(self):
        net = RoadNetwork()
        net.add_node("a", 0, 0)
        net.add_node("b", 100, 0)
        link = net.add_link("l", "a", "b", 139.0, 1, speed_limit=13.9)
        assert link.freeflow_ticks == 10

    def test_lane_capacity(self):
        net = RoadNetwork()
        net.add_node("a", 0, 0)
        net.add_node("b", 100, 0)
        link = net.add_link("l", "a", "b", 200.0, 2)
        assert link.lane_capacity == int(200 // VEHICLE_SPACE_M)
        assert link.storage == 2 * link.lane_capacity

    def test_link_heading_unit_vector(self):
        net = build_cross()
        hx, hy = net.link_heading("N->C")
        assert hx == pytest.approx(0.0)
        assert hy == pytest.approx(-1.0)


class TestClassifyTurn:
    def test_through(self):
        assert classify_turn((0, -1), (0, -1)) is TurnType.THROUGH

    def test_left(self):
        # Southbound then turning to east-heading is a left turn.
        assert classify_turn((0, -1), (1, 0)) is TurnType.RIGHT or True
        # Explicit: southbound (0,-1) -> eastbound (1,0): cross = 0*0-(-1)*1 = 1 > 0 -> LEFT
        assert classify_turn((0, -1), (1, 0)) is TurnType.LEFT

    def test_right(self):
        assert classify_turn((0, -1), (-1, 0)) is TurnType.RIGHT

    def test_uturn(self):
        assert classify_turn((0, -1), (0, 1)) is TurnType.UTURN

    def test_grid_movements_classified(self):
        net = build_cross()
        assert net.movements[("N->C", "C->S")].turn is TurnType.THROUGH
        assert net.movements[("N->C", "C->E")].turn is TurnType.LEFT
        assert net.movements[("N->C", "C->W")].turn is TurnType.RIGHT


class TestQueries:
    def test_movements_from(self):
        net = build_cross()
        moves = net.movements_from("N->C")
        assert len(moves) == 3

    def test_movements_at_node(self):
        net = build_cross()
        assert len(net.movements_at("C")) == 12

    def test_lanes_for_movement_shared_lane(self):
        net = build_cross()
        movement = net.movements[("N->C", "C->S")]
        assert len(net.lanes_for_movement(movement)) == 1

    def test_signalized_nodes(self):
        net = build_cross()
        assert net.signalized_nodes() == ["C"]

    def test_validation_missing_lane_for_movement(self):
        net = RoadNetwork()
        net.add_node("a", 0, 0, signalized=False)
        net.add_node("b", 100, 0, signalized=True)
        net.add_node("c", 200, 0)
        net.add_link("ab", "a", "b", 100, 1, lane_turns=[frozenset({TurnType.LEFT})])
        net.add_link("bc", "b", "c", 100, 1)
        net.add_movement("ab", "bc", turn=TurnType.THROUGH)
        with pytest.raises(NetworkError):
            net.validate()

    def test_validation_signalized_node_without_movements(self):
        net = RoadNetwork()
        net.add_node("a", 0, 0)
        net.add_node("b", 100, 0, signalized=True)
        net.add_link("ab", "a", "b", 100, 1)
        with pytest.raises(NetworkError):
            net.validate()


class TestNeighbourhoods:
    def test_grid_neighbours(self, small_grid):
        net = small_grid.network
        centre = "I1_1"
        assert sorted(net.neighbours(centre)) == ["I0_1", "I1_0", "I1_2", "I2_1"]

    def test_corner_neighbours(self, small_grid):
        net = small_grid.network
        assert sorted(net.neighbours("I0_0")) == ["I0_1", "I1_0"]

    def test_upstream_neighbours_are_signalized_sources(self, small_grid):
        net = small_grid.network
        upstream = net.upstream_neighbours("I1_1")
        assert sorted(upstream) == ["I0_1", "I1_0", "I1_2", "I2_1"]

    def test_corner_upstream_excludes_terminals(self, small_grid):
        net = small_grid.network
        upstream = net.upstream_neighbours("I0_0")
        assert sorted(upstream) == ["I0_1", "I1_0"]

    def test_two_hop_neighbours(self, small_grid):
        net = small_grid.network
        two_hop = set(net.two_hop_neighbours("I0_0"))
        assert two_hop == {"I0_2", "I2_0", "I1_1"}

    def test_two_hop_excludes_self_and_one_hop(self, small_grid):
        net = small_grid.network
        centre = "I1_1"
        one_hop = set(net.neighbours(centre))
        two_hop = set(net.two_hop_neighbours(centre))
        assert centre not in two_hop
        assert not (one_hop & two_hop)
