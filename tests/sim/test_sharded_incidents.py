"""Incident hooks on the sharded simulation.

PR 9 shipped ``ShardedSimulation`` without the ``set_capacity_factor``/
incident surface, so closure scenarios could not run at city scale.
These tests pin the ported hooks:

* ``num_shards=1`` with an attached :class:`IncidentSchedule` is
  bit-exact with the monolithic engine running the same schedule — the
  K=1 grounding contract extended to incidents.
* The schedule must actually bite (trajectories differ from the healthy
  run) so the equivalence cannot pass vacuously.
* Serial and worker drivers agree at K>1 (schedules cross the pipe).
* ``set_capacity_factor`` validates like the monolithic engine and
  reaches every shard's copy of the link.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.faults.incidents import Incident, IncidentSchedule
from repro.scenarios.flows import flow_pattern
from repro.scenarios.grid import build_grid
from repro.sim.demand import DemandGenerator
from repro.sim.engine import Simulation
from repro.sim.routing import Router
from repro.sim.sharded import ShardedSimulation
from repro.sim.signal import FixedTimeProgram

TICKS = 300


def _workload(rows=3, cols=3):
    scenario = build_grid(rows, cols)
    flows = flow_pattern(scenario, 5, light_duration=float(TICKS))
    programs = {
        node_id: FixedTimeProgram([(i, 15) for i in range(plan.num_phases)])
        for node_id, plan in scenario.phase_plans.items()
    }
    return scenario, flows, programs


def _busy_link(rows=3, cols=3) -> str:
    """A deterministically chosen link that carries traffic."""
    scenario, flows, _ = _workload(rows, cols)
    for flow in flows:
        router = Router(scenario.network)
        route = router.route(flow.origin_link, flow.destination_link)
        if len(route) >= 3:
            return route[1]
    raise AssertionError("no multi-link route in workload")


def _schedule(link_id: str) -> IncidentSchedule:
    return IncidentSchedule(
        [Incident.link_closure(link_id, start=60, duration=180)]
    )


def _mono_trajectories(schedule=None, rows=3, cols=3):
    scenario, flows, programs = _workload(rows, cols)
    router = Router(scenario.network)
    demand = DemandGenerator(flows, router, seed=0, stochastic=True)
    sim = Simulation(scenario.network, demand, scenario.phase_plans)
    if schedule is not None:
        sim.incidents = schedule
    sim.run_fixed_time(programs, TICKS)
    return sorted(
        (
            vehicle.vehicle_id,
            vehicle.created,
            vehicle.inserted,
            vehicle.finished,
            vehicle.state.value,
            vehicle.wait_total,
            vehicle.links_travelled,
            tuple(vehicle.route),
            vehicle.route_index,
        )
        for vehicle in sim.vehicles.values()
    )


def _sharded_run(num_shards, workers, schedule=None, rows=3, cols=3):
    scenario, flows, programs = _workload(rows, cols)
    with ShardedSimulation(
        scenario.network,
        scenario.phase_plans,
        flows,
        num_shards,
        seed=0,
        workers=workers,
        programs=programs,
    ) as sim:
        if schedule is not None:
            sim.incidents = schedule
        sim.run(TICKS)
        sim.check_conservation()
        summary = sim.summary()
        summary.pop("shards")
        return sim.trajectories(), summary


class TestSingleShardIncidentIsMonolithic:
    def test_bit_exact_under_closure(self):
        link = _busy_link()
        schedule = _schedule(link)
        mono = _mono_trajectories(schedule=schedule)
        sharded, summary = _sharded_run(1, False, schedule=schedule)
        assert sharded == mono
        assert summary["created"] == len(mono)

    def test_closure_actually_bites(self):
        # Guard the equivalence against a no-op schedule: the incident
        # run must differ from the healthy run.
        link = _busy_link()
        healthy = _mono_trajectories()
        closed = _mono_trajectories(schedule=_schedule(link))
        assert healthy != closed


class TestIncidentsAcrossDrivers:
    def test_serial_equals_workers_with_schedule(self):
        link = _busy_link()
        serial_traj, serial_summary = _sharded_run(
            2, workers=False, schedule=_schedule(link)
        )
        worker_traj, worker_summary = _sharded_run(
            2, workers=True, schedule=_schedule(link)
        )
        assert serial_traj == worker_traj
        assert serial_summary == worker_summary


class TestCapacityFactorSurface:
    def test_unknown_link_rejected(self):
        scenario, flows, programs = _workload()
        with ShardedSimulation(
            scenario.network, scenario.phase_plans, flows, 2,
            seed=0, programs=programs,
        ) as sim:
            with pytest.raises(SimulationError, match="unknown link"):
                sim.set_capacity_factor("nope", 0.5)

    def test_bad_factor_rejected(self):
        scenario, flows, programs = _workload()
        link = next(iter(scenario.network.links))
        with ShardedSimulation(
            scenario.network, scenario.phase_plans, flows, 2,
            seed=0, programs=programs,
        ) as sim:
            with pytest.raises(SimulationError, match="factor"):
                sim.set_capacity_factor(link, 1.5)

    def test_factor_reaches_every_shard_copy(self):
        scenario, flows, programs = _workload()
        with ShardedSimulation(
            scenario.network, scenario.phase_plans, flows, 2,
            seed=0, programs=programs,
        ) as sim:
            # A cut link exists in two shards (owner + exit stub); the
            # broadcast must reach both copies.
            cut = sorted(sim.partition.cut_links)[0]
            sim.set_capacity_factor(cut, 0.0)
            assert sim.capacity_factors == {cut: 0.0}
            holders = [
                runtime.sim.capacity_factors.get(cut)
                for runtime in sim._driver.runtimes
                if cut in runtime.sim.network.links
            ]
            assert len(holders) == 2
            assert holders == [0.0, 0.0]
            sim.set_capacity_factor(cut, 1.0)
            assert sim.capacity_factors == {}
