"""Spatial partitioner properties (repro.sim.sharded.partition)."""

from __future__ import annotations

from collections import deque

import pytest

from repro.errors import SimulationError
from repro.scenarios.grid import build_grid
from repro.sim.sharded import partition_network


def _assert_contiguous(network, partition) -> None:
    """Every shard's node set is connected in the undirected link graph."""
    neighbours: dict[str, set[str]] = {node_id: set() for node_id in network.nodes}
    for link in network.links.values():
        neighbours[link.from_node].add(link.to_node)
        neighbours[link.to_node].add(link.from_node)
    for shard_nodes in partition.shards:
        members = set(shard_nodes)
        start = next(iter(shard_nodes))
        seen = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for other in neighbours[node]:
                if other in members and other not in seen:
                    seen.add(other)
                    frontier.append(other)
        assert seen == members, "shard is not contiguous"


class TestPartition:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 4, 7])
    def test_covers_every_node_once(self, num_shards):
        grid = build_grid(4, 4)
        partition = partition_network(grid.network, num_shards)
        assigned = [node for shard in partition.shards for node in shard]
        assert sorted(assigned) == sorted(grid.network.nodes)
        assert len(assigned) == len(set(assigned))
        assert set(partition.assignment) == set(grid.network.nodes)

    @pytest.mark.parametrize("num_shards", [2, 3, 4, 6])
    def test_shards_are_contiguous(self, num_shards):
        grid = build_grid(4, 5)
        partition = partition_network(grid.network, num_shards)
        _assert_contiguous(grid.network, partition)

    def test_deterministic(self):
        grid = build_grid(3, 4)
        a = partition_network(grid.network, 4)
        b = partition_network(grid.network, 4)
        assert a.shards == b.shards
        assert a.cut_links == b.cut_links

    @pytest.mark.parametrize("num_shards", [2, 4, 8])
    def test_roughly_balanced(self, num_shards):
        grid = build_grid(6, 6)
        sizes = partition_network(grid.network, num_shards).shard_sizes()
        assert min(sizes) >= 1
        # Greedy BFS with per-shard targets keeps the spread modest.
        assert max(sizes) <= 2 * (len(grid.network.nodes) // num_shards) + 1

    def test_cut_links_cross_shards_and_nothing_else(self):
        grid = build_grid(3, 3)
        partition = partition_network(grid.network, 3)
        assignment = partition.assignment
        cut = set(partition.cut_links)
        for link_id, link in grid.network.links.items():
            crosses = assignment[link.from_node] != assignment[link.to_node]
            assert (link_id in cut) == crosses
        assert partition.edge_cut == len(cut)

    def test_link_owner_is_destination_shard(self):
        grid = build_grid(2, 3)
        partition = partition_network(grid.network, 2)
        for link_id, link in grid.network.links.items():
            assert partition.link_owner[link_id] == partition.assignment[link.to_node]

    def test_single_shard_has_no_cut(self):
        grid = build_grid(2, 2)
        partition = partition_network(grid.network, 1)
        assert partition.edge_cut == 0
        assert partition.shard_sizes() == [len(grid.network.nodes)]

    def test_rejects_bad_arity(self):
        grid = build_grid(2, 2)
        with pytest.raises(SimulationError):
            partition_network(grid.network, 0)
        with pytest.raises(SimulationError):
            partition_network(grid.network, len(grid.network.nodes) + 1)
