"""Boundary-fault semantics of the sharded simulation.

``shard_link_loss`` holds handoff batches upstream (vehicles are never
destroyed) and drops the channel's occupancy/messages; ``message_delay``
drops only occupancy/messages (the staleness-decay path).  Both draw
from a dedicated coordinator RNG stream, so fault injection is
deterministic, identical across drivers, and cannot perturb demand.
"""

from __future__ import annotations

import pytest

from repro.errors import FaultInjectionError
from repro.faults.config import FAULT_KINDS, FaultConfig
from repro.scenarios.flows import flow_pattern
from repro.scenarios.grid import build_grid
from repro.sim.sharded import ShardedSimulation
from repro.sim.signal import FixedTimeProgram

pytestmark = pytest.mark.faults

TICKS = 250


def _run(num_shards, workers, faults, seed=0, ticks=TICKS):
    scenario = build_grid(3, 3)
    flows = flow_pattern(scenario, 5, light_duration=float(ticks))
    programs = {
        node_id: FixedTimeProgram([(i, 15) for i in range(plan.num_phases)])
        for node_id, plan in scenario.phase_plans.items()
    }
    with ShardedSimulation(
        scenario.network,
        scenario.phase_plans,
        flows,
        num_shards,
        seed=seed,
        workers=workers,
        programs=programs,
        faults=faults,
    ) as sim:
        sim.run(ticks)
        sim.check_conservation()
        summary = sim.summary()
        summary.pop("shards")
        return sim.trajectories(), summary


class TestShardFaultConfig:
    def test_shard_kind_registered(self):
        assert "shard" in FAULT_KINDS
        config = FaultConfig.uniform(0.3, kinds=("shard",))
        assert config.shard_link_loss == 0.3
        assert config.any_shard_faults
        assert config.active

    def test_rate_validated(self):
        with pytest.raises(FaultInjectionError):
            FaultConfig(shard_link_loss=1.5)
        with pytest.raises(FaultInjectionError):
            FaultConfig(shard_link_loss=-0.1)


class TestHandoffUnderFaults:
    def test_message_delay_deterministic_across_drivers(self):
        """Handoffs under ``message_delay``: same-seed repeats and both
        drivers produce bit-identical trajectories and loss counts."""
        faults = FaultConfig(message_delay=0.3)
        serial_a = _run(3, workers=False, faults=faults)
        serial_b = _run(3, workers=False, faults=faults)
        workers = _run(3, workers=True, faults=faults)
        assert serial_a == serial_b == workers
        _, summary = serial_a
        assert summary["message_losses"] > 0
        assert summary["link_losses"] == 0  # message_delay never holds vehicles
        assert summary["handoffs"] > 0

    def test_link_loss_holds_vehicles_not_destroys(self):
        faults = FaultConfig(shard_link_loss=0.4)
        traj, summary = _run(3, workers=False, faults=faults)
        assert summary["link_losses"] > 0
        # conservation already checked in _run; in-flight rows are labelled
        in_flight_rows = [row for row in traj if str(row[4]).startswith("in_flight")]
        assert len(in_flight_rows) == summary["in_flight"]
        assert summary["created"] == len(traj)

    def test_combined_faults_deterministic(self):
        faults = FaultConfig(shard_link_loss=0.2, message_delay=0.2)
        a = _run(4, workers=False, faults=faults)
        b = _run(4, workers=True, faults=faults)
        assert a == b

    def test_different_seeds_draw_different_faults(self):
        faults = FaultConfig(shard_link_loss=0.3, message_delay=0.3)
        _, a = _run(3, workers=False, faults=faults, seed=1)
        _, b = _run(3, workers=False, faults=faults, seed=2)
        assert (a["link_losses"], a["message_losses"]) != (
            b["link_losses"],
            b["message_losses"],
        )

    def test_faults_slow_traffic_but_lose_nothing(self):
        """Held handoffs delay vehicles: fewer finish, none vanish."""
        _, clean = _run(3, workers=False, faults=None)
        _, faulty = _run(3, workers=False, faults=FaultConfig(shard_link_loss=0.5))
        assert faulty["created"] == clean["created"]
        assert faulty["finished"] <= clean["finished"]
