"""Seeded property fuzzer: engine invariants on randomized scenarios.

Each case draws a random small grid, demand intensity, optional teleport
watchdog, and a random phase-churn stream, then drives three engines —
the object engine on both ``fast_path`` settings and a single-replica
SoA engine — through the identical scenario.  Checked every few ticks:

* conservation: ``total_created == in_network + pending + finished``,
* non-negative queues and occupancy, halted <= occupancy per link,
* occupancy never exceeds storage (teleports may overshoot by design:
  a teleported head enters its next link ignoring storage),
* the three engines agree on the full public introspection surface.

Seeds are fixed so failures reproduce; widen ``CASES`` locally to fuzz
harder.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import check_engine_invariants, public_engine_snapshot
from repro.eval.harness import ExperimentScale, GridExperiment
from repro.sim.engine import Simulation
from repro.sim.soa import SoAEngine

pytestmark = pytest.mark.soa

CASES = range(6)


def _draw_scenario(case_seed: int):
    rng = np.random.default_rng(5000 + case_seed)
    scale = ExperimentScale(
        rows=int(rng.integers(2, 4)),
        cols=int(rng.integers(2, 4)),
        peak_rate=float(rng.uniform(300.0, 1100.0)),
        t_peak=120.0,
        light_duration=240.0,
        horizon_ticks=240,
        max_ticks=3600,
        train_episodes=1,
        eval_episodes=1,
    )
    teleport = int(rng.integers(25, 70)) if rng.random() < 0.5 else None
    pattern = int(rng.integers(1, 4))
    demand_seed = int(rng.integers(0, 10_000))
    return scale, teleport, pattern, demand_seed


def _fresh_demand(scale, pattern, demand_seed):
    # Each engine consumes its own generator (emission is stateful).
    experiment = GridExperiment(scale, seed=3)
    env = experiment.train_env(pattern)
    env.reset(seed=demand_seed)
    return env.network, env.sim.demand, env.phase_plans


@pytest.mark.parametrize("case_seed", CASES)
def test_fuzzed_invariants_and_cross_engine_agreement(case_seed):
    scale, teleport, pattern, demand_seed = _draw_scenario(case_seed)
    kwargs = {} if teleport is None else {"teleport_time": teleport}

    engines = []
    for which in ("fast", "slow", "soa"):
        network, demand, plans = _fresh_demand(scale, pattern, demand_seed)
        if which == "soa":
            engines.append(SoAEngine(network, [demand], plans, **kwargs).view(0))
        else:
            engines.append(
                Simulation(network, demand, plans, fast_path=which == "fast", **kwargs)
            )

    churn_streams = [np.random.default_rng(case_seed) for _ in engines]
    nodes = sorted(engines[0].network.signalized_nodes())
    plans = engines[0].phase_plans
    for t in range(240):
        if t % 6 == 0:
            for sim, churn in zip(engines, churn_streams):
                for node_id in nodes:
                    sim.set_phase(
                        node_id, int(churn.integers(plans[node_id].num_phases))
                    )
        for sim in engines:
            sim.step()
        if t % 20 == 0 or t == 239:
            for sim in engines:
                check_engine_invariants(sim, teleport)
            snapshots = [public_engine_snapshot(sim) for sim in engines]
            assert snapshots[0] == snapshots[1] == snapshots[2], (
                f"case {case_seed} diverged at tick {t}"
            )
