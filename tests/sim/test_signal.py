"""Signal phase / program / state-machine tests."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.scenarios.grid import build_grid
from repro.sim.network import TurnType
from repro.sim.signal import (
    FixedTimeProgram,
    Phase,
    PhasePlan,
    SignalState,
    default_four_phase_plan,
)


def two_phase_plan() -> PhasePlan:
    return PhasePlan(
        "X",
        [
            Phase("A", frozenset({("in1", "out1")})),
            Phase("B", frozenset({("in2", "out2")})),
        ],
    )


class TestPhasePlan:
    def test_empty_plan_rejected(self):
        with pytest.raises(NetworkError):
            PhasePlan("X", [])

    def test_num_phases(self):
        assert two_phase_plan().num_phases == 2


class TestSignalState:
    def test_initial_state_green_phase_zero(self):
        state = SignalState(two_phase_plan(), yellow_time=2)
        assert state.current_phase_index == 0
        assert not state.in_yellow
        assert state.permits(("in1", "out1"))
        assert not state.permits(("in2", "out2"))

    def test_same_phase_request_is_noop(self):
        state = SignalState(two_phase_plan(), yellow_time=2)
        state.request_phase(0)
        assert not state.in_yellow

    def test_switch_goes_through_yellow(self):
        state = SignalState(two_phase_plan(), yellow_time=2)
        state.request_phase(1)
        assert state.in_yellow
        assert not state.permits(("in1", "out1"))
        assert not state.permits(("in2", "out2"))
        state.tick()
        assert state.in_yellow
        state.tick()
        assert not state.in_yellow
        assert state.current_phase_index == 1
        assert state.permits(("in2", "out2"))

    def test_just_switched_flag_set_on_commit(self):
        state = SignalState(two_phase_plan(), yellow_time=1)
        state.request_phase(1)
        state.tick()
        assert state.just_switched

    def test_zero_yellow_commits_immediately(self):
        state = SignalState(two_phase_plan(), yellow_time=0)
        state.request_phase(1)
        assert state.current_phase_index == 1
        assert state.just_switched

    def test_out_of_range_phase_rejected(self):
        state = SignalState(two_phase_plan(), yellow_time=2)
        with pytest.raises(NetworkError):
            state.request_phase(5)

    def test_time_in_phase_counts(self):
        state = SignalState(two_phase_plan(), yellow_time=2)
        for _ in range(5):
            state.tick()
        assert state.time_in_phase == 5

    def test_request_change_during_yellow_updates_target(self):
        plan = PhasePlan(
            "X",
            [
                Phase("A", frozenset({("a", "b")})),
                Phase("B", frozenset({("c", "d")})),
                Phase("C", frozenset({("e", "f")})),
            ],
        )
        state = SignalState(plan, yellow_time=2)
        state.request_phase(1)
        state.tick()
        state.request_phase(2)  # change mind mid-yellow
        state.tick()
        assert state.current_phase_index == 2

    def test_negative_yellow_rejected(self):
        with pytest.raises(NetworkError):
            SignalState(two_phase_plan(), yellow_time=-1)


class TestFixedTimeProgram:
    def test_cycle_length(self):
        program = FixedTimeProgram([(0, 10), (1, 20)])
        assert program.cycle_length == 30

    def test_phase_at(self):
        program = FixedTimeProgram([(0, 10), (1, 20)])
        assert program.phase_at(0) == 0
        assert program.phase_at(9) == 0
        assert program.phase_at(10) == 1
        assert program.phase_at(29) == 1
        assert program.phase_at(30) == 0  # wraps

    def test_empty_program_rejected(self):
        with pytest.raises(NetworkError):
            FixedTimeProgram([])

    def test_zero_duration_rejected(self):
        with pytest.raises(NetworkError):
            FixedTimeProgram([(0, 0)])


class TestDefaultFourPhasePlan:
    def test_interior_intersection_gets_four_phases(self):
        grid = build_grid(3, 3)
        plan = grid.phase_plans["I1_1"]
        assert plan.num_phases == 4
        names = {phase.name for phase in plan.phases}
        assert names == {"NS-through", "NS-left", "EW-through", "EW-left"}

    def test_phases_partition_turns_correctly(self):
        grid = build_grid(3, 3)
        net = grid.network
        plan = grid.phase_plans["I1_1"]
        for phase in plan.phases:
            for key in phase.green_movements:
                movement = net.movements[key]
                hx, hy = net.link_heading(movement.in_link)
                is_ns = abs(hy) >= abs(hx)
                if phase.name.startswith("NS"):
                    assert is_ns
                else:
                    assert not is_ns
                if phase.name.endswith("left"):
                    assert movement.turn in (TurnType.LEFT, TurnType.UTURN)
                else:
                    assert movement.turn in (TurnType.THROUGH, TurnType.RIGHT)

    def test_every_movement_appears_in_some_phase(self):
        grid = build_grid(2, 2)
        net = grid.network
        for node_id, plan in grid.phase_plans.items():
            covered = set()
            for phase in plan.phases:
                covered |= phase.green_movements
            expected = {m.key for m in net.movements_at(node_id)}
            assert covered == expected
