"""Lane-choice and multi-lane discharge behaviour."""

from __future__ import annotations

import pytest

from repro.sim.demand import DemandGenerator, Flow, RateProfile
from repro.sim.engine import Simulation
from repro.sim.network import RoadNetwork, TurnType
from repro.sim.routing import Router
from repro.sim.signal import Phase, PhasePlan


def two_lane_corridor() -> tuple[RoadNetwork, dict[str, PhasePlan]]:
    """Two-lane link where both lanes permit through movement."""
    net = RoadNetwork()
    net.add_node("A", 0, 0)
    net.add_node("B", 200, 0, signalized=True)
    net.add_node("C", 400, 0)
    both = frozenset({TurnType.THROUGH, TurnType.RIGHT, TurnType.LEFT})
    net.add_link("in", "A", "B", 200, 2, speed_limit=10.0,
                 lane_turns=[both, both])
    net.add_link("out", "B", "C", 200, 2, speed_limit=10.0,
                 lane_turns=[both, both])
    net.add_movement("in", "out", turn=TurnType.THROUGH)
    net.validate()
    plans = {
        "B": PhasePlan(
            "B", [Phase("go", frozenset({("in", "out")})), Phase("stop", frozenset())]
        )
    }
    return net, plans


class TestLaneChoice:
    def _sim(self, rate=3600.0, duration=60.0):
        net, plans = two_lane_corridor()
        flows = [Flow("f", "in", "out", RateProfile.constant(rate, duration))]
        demand = DemandGenerator(flows, Router(net), seed=0, stochastic=False)
        return Simulation(net, demand, plans)

    def test_queues_balance_across_lanes(self):
        sim = self._sim()
        sim.set_phase("B", 1)  # red: queues build
        sim.step(60)
        q0 = sim.queue_length("in#0")
        q1 = sim.queue_length("in#1")
        assert q0 > 0 and q1 > 0
        assert abs(q0 - q1) <= 1  # shortest-queue assignment balances

    def test_two_lanes_double_throughput(self):
        """Green throughput scales with lane count (2x saturation)."""
        sim = self._sim(rate=7200.0, duration=120.0)
        sim.set_phase("B", 1)
        sim.step(100)  # standing queues on both lanes
        sim.set_phase("B", 0)
        start = len(sim.finished_vehicles) + sim.link_occupancy["out"]
        sim.step(40)
        crossed = (len(sim.finished_vehicles) + sim.link_occupancy["out"]) - start
        # Two lanes at 0.5 veh/s each, minus start-up lost time.
        assert crossed >= 2 * 0.5 * 40 * 0.8

    def test_restricted_lane_not_used(self):
        """A vehicle never joins a lane that cannot serve its movement."""
        net = RoadNetwork()
        net.add_node("A", 0, 0)
        net.add_node("B", 200, 0, signalized=True)
        net.add_node("C", 400, 0)
        left_only = frozenset({TurnType.LEFT})
        through = frozenset({TurnType.THROUGH, TurnType.RIGHT})
        net.add_link("in", "A", "B", 200, 2, speed_limit=10.0,
                     lane_turns=[left_only, through])
        net.add_link("out", "B", "C", 200, 1, speed_limit=10.0)
        net.add_movement("in", "out", turn=TurnType.THROUGH)
        net.validate()
        flows = [Flow("f", "in", "out", RateProfile.constant(1800, 60))]
        demand = DemandGenerator(flows, Router(net), seed=0, stochastic=False)
        plans = {"B": PhasePlan("B", [Phase("stop", frozenset())])}
        sim = Simulation(net, demand, plans)
        sim.step(120)
        assert sim.queue_length("in#0") == 0  # left-only lane stays empty
        assert sim.queue_length("in#1") > 0
