"""Seeded property fuzzer: sharded-protocol invariants on random cases.

Each case draws a random small grid, shard count, demand intensity and
optional boundary-fault rates, then drives the sharded simulation
serially, checking every few ticks:

* conservation: created == finished + in_network + pending + in_flight,
* vehicle ids unique across shards and wire batches,
* non-negative link occupancy inside every shard, and exit-stub overlay
  values bounded by the owned link's storage on the downstream side,
* the serial driver and the worker-pool driver agree bit-exactly on the
  final trajectories for a subset of cases (workers are expensive, so
  only the first two cases cross-check drivers).

Seeds are fixed so failures reproduce; widen ``CASES`` locally to fuzz
harder.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.config import FaultConfig
from repro.scenarios.flows import flow_pattern
from repro.scenarios.grid import build_grid
from repro.sim.sharded import ShardedSimulation
from repro.sim.signal import FixedTimeProgram

CASES = range(6)
TICKS = 160
CHECK_EVERY = 8


def _draw_case(case_seed: int):
    rng = np.random.default_rng(7100 + case_seed)
    rows = int(rng.integers(2, 5))
    cols = int(rng.integers(2, 5))
    num_nodes_hint = rows * cols  # shards bounded by intersections, not terminals
    num_shards = int(rng.integers(1, min(5, num_nodes_hint) + 1))
    peak_rate = float(rng.uniform(300.0, 1000.0))
    seed = int(rng.integers(0, 10_000))
    faults = None
    if rng.random() < 0.5:
        faults = FaultConfig(
            shard_link_loss=float(rng.uniform(0.0, 0.4)),
            message_delay=float(rng.uniform(0.0, 0.4)),
        )
    return rows, cols, num_shards, peak_rate, seed, faults


def _build(rows, cols, peak_rate):
    scenario = build_grid(rows, cols)
    flows = flow_pattern(
        scenario, 5, peak_rate=peak_rate, light_duration=float(TICKS)
    )
    programs = {
        node_id: FixedTimeProgram([(i, 15) for i in range(plan.num_phases)])
        for node_id, plan in scenario.phase_plans.items()
    }
    return scenario, flows, programs


def _check_invariants(sim: ShardedSimulation) -> None:
    sim.check_conservation()
    traj = sim.trajectories()
    ids = [row[0] for row in traj]
    assert len(ids) == len(set(ids)), "vehicle id appeared twice"
    for runtime in sim._driver.runtimes:
        engine = runtime.sim
        network = engine.network
        for link_id, occupancy in engine.link_occupancy.items():
            assert occupancy >= 0, f"negative occupancy on {link_id}"
        for stub_id in runtime.spec.exit_stubs:
            # The overlay mirrors the owner's occupancy of a real link,
            # so it can never exceed that link's storage.
            assert engine.link_occupancy[stub_id] <= network.links[stub_id].storage + 1e-9


@pytest.mark.parametrize("case_seed", CASES)
def test_sharded_invariants_fuzz(case_seed):
    rows, cols, num_shards, peak_rate, seed, faults = _draw_case(case_seed)
    scenario, flows, programs = _build(rows, cols, peak_rate)
    with ShardedSimulation(
        scenario.network,
        scenario.phase_plans,
        flows,
        num_shards,
        seed=seed,
        workers=False,
        programs=programs,
        faults=faults,
    ) as sim:
        for _ in range(TICKS // CHECK_EVERY):
            sim.run(CHECK_EVERY)
            _check_invariants(sim)
        final_serial = sim.trajectories()
        summary = sim.summary()
    assert summary["created"] > 0, "fuzz case generated no traffic"

    if case_seed < 2 and num_shards > 1:
        scenario, flows, programs = _build(rows, cols, peak_rate)
        with ShardedSimulation(
            scenario.network,
            scenario.phase_plans,
            flows,
            num_shards,
            seed=seed,
            workers=True,
            programs=programs,
            faults=faults,
        ) as sim:
            sim.run(TICKS)
            assert sim.trajectories() == final_serial


def test_handoff_volume_matches_counts():
    """Boundary-handoff bookkeeping: coordinator totals equal the sum of
    per-shard handoff counters on both sides of every cut."""
    scenario, flows, programs = _build(3, 3, peak_rate=700.0)
    with ShardedSimulation(
        scenario.network,
        scenario.phase_plans,
        flows,
        3,
        seed=0,
        workers=False,
        programs=programs,
    ) as sim:
        sim.run(TICKS)
        sim.check_conservation()
        out_total = sum(s["handoffs_out"] for s in sim._driver.call_all("summary"))
        in_total = sum(s["handoffs_in"] for s in sim._driver.call_all("summary"))
        assert sim.handoffs_total == in_total
        # everything sent is either delivered or still on the wire
        assert out_total == in_total + sim.in_flight()
        assert out_total > 0
