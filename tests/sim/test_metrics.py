"""Metric computation tests (travel/waiting time, episode recorder)."""

from __future__ import annotations

import pytest

from repro.sim.metrics import (
    EpisodeRecorder,
    average_travel_time,
    intersection_max_wait,
    network_average_wait,
    travel_time_stats,
)

from test_engine import corridor_plan, make_sim


class TestTravelTime:
    def test_empty_simulation(self):
        sim = make_sim(rate=100.0, duration=1.0)
        stats = travel_time_stats(sim)
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_all_finished(self):
        sim = make_sim(rate=360.0, duration=30.0)
        sim.step(300)
        stats = travel_time_stats(sim)
        assert stats.finished == stats.count == sim.total_created
        assert stats.mean >= 40.0  # free-flow bound
        assert stats.max >= stats.p95 >= stats.median

    def test_unfinished_charged_elapsed_time(self):
        sim = make_sim(rate=720.0, duration=100.0)
        sim.set_phase("B", 1)  # permanent red
        sim.step(500)
        with_unfinished = average_travel_time(sim, include_unfinished=True)
        only_finished = average_travel_time(sim, include_unfinished=False)
        assert with_unfinished > only_finished == 0.0

    def test_average_grows_under_blockage(self):
        sim = make_sim(rate=720.0, duration=100.0)
        sim.set_phase("B", 1)
        sim.step(200)
        early = average_travel_time(sim)
        sim.step(200)
        late = average_travel_time(sim)
        assert late > early


class TestWaitingTime:
    def test_zero_when_no_queues(self):
        sim = make_sim(rate=100.0, duration=1.0)
        assert network_average_wait(sim) == 0.0

    def test_max_wait_over_incoming_lanes(self):
        sim = make_sim(rate=720.0, duration=100.0)
        sim.set_phase("B", 1)
        sim.step(100)
        assert intersection_max_wait(sim, "B") > 0
        assert network_average_wait(sim) == intersection_max_wait(sim, "B")

    def test_wait_bounded_by_elapsed_time(self):
        sim = make_sim(rate=720.0, duration=100.0)
        sim.set_phase("B", 1)
        sim.step(100)
        assert intersection_max_wait(sim, "B") <= sim.time


class TestEpisodeRecorder:
    def test_summary_aggregates_samples(self):
        sim = make_sim(rate=720.0, duration=100.0)
        sim.set_phase("B", 1)
        recorder = EpisodeRecorder()
        for _ in range(20):
            sim.step(5)
            recorder.sample(sim)
        summary = recorder.summary()
        assert summary["avg_wait"] > 0
        assert summary["peak_queue"] >= summary["avg_queue"] > 0

    def test_empty_recorder_summary(self):
        summary = EpisodeRecorder().summary()
        assert summary == {"avg_wait": 0.0, "avg_queue": 0.0, "peak_queue": 0.0}
