"""Shared network builders for simulator tests."""

from __future__ import annotations

from repro.sim.network import RoadNetwork, TurnType


def straight_line_network(segments: int = 3) -> RoadNetwork:
    """A chain n0 -> n1 -> ... with links l0, l1, ...; middle nodes signal-free."""
    net = RoadNetwork()
    for index in range(segments + 1):
        net.add_node(f"n{index}", index * 100.0, 0.0)
    for index in range(segments):
        net.add_link(f"l{index}", f"n{index}", f"n{index + 1}", 100.0, 1, speed_limit=10.0)
    for index in range(segments - 1):
        net.add_movement(f"l{index}", f"l{index + 1}", turn=TurnType.THROUGH)
    net.validate()
    return net


def diamond_network() -> RoadNetwork:
    """Two routes from a to d: a-b-d (short) and a-c-d (long)."""
    net = RoadNetwork()
    net.add_node("a", 0, 0)
    net.add_node("b", 100, 50)
    net.add_node("c", 100, -50)
    net.add_node("d", 200, 0)
    net.add_node("e", 300, 0)
    net.add_link("ab", "a", "b", 100, 1, speed_limit=10.0)
    net.add_link("bd", "b", "d", 100, 1, speed_limit=10.0)
    net.add_link("ac", "a", "c", 300, 1, speed_limit=10.0)
    net.add_link("cd", "c", "d", 300, 1, speed_limit=10.0)
    net.add_link("de", "d", "e", 100, 1, speed_limit=10.0)
    net.add_movement("ab", "bd", turn=TurnType.THROUGH)
    net.add_movement("ac", "cd", turn=TurnType.THROUGH)
    net.add_movement("bd", "de", turn=TurnType.THROUGH)
    net.add_movement("cd", "de", turn=TurnType.THROUGH)
    net.validate()
    return net
