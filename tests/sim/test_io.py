"""Scenario JSON serialization round-trip tests."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.scenarios.flows import flow_pattern
from repro.scenarios.grid import build_grid
from repro.sim.demand import DemandGenerator
from repro.sim.engine import Simulation
from repro.sim.io import (
    load_scenario,
    network_from_dict,
    network_to_dict,
    save_scenario,
)
from repro.sim.routing import Router


@pytest.fixture(scope="module")
def grid_scenario():
    grid = build_grid(2, 2)
    flows = flow_pattern(grid, 1, peak_rate=500, t_peak=100)
    return grid, flows


class TestRoundTrip:
    def test_network_structure_preserved(self, grid_scenario):
        grid, flows = grid_scenario
        payload = network_to_dict(grid.network, grid.phase_plans, flows)
        network, phase_plans, loaded_flows = network_from_dict(payload)
        assert set(network.nodes) == set(grid.network.nodes)
        assert set(network.links) == set(grid.network.links)
        assert set(network.movements) == set(grid.network.movements)
        assert set(phase_plans) == set(grid.phase_plans)
        assert len(loaded_flows) == len(flows)

    def test_lane_turns_preserved(self, grid_scenario):
        grid, _ = grid_scenario
        payload = network_to_dict(grid.network)
        network, _, _ = network_from_dict(payload)
        for link_id, link in grid.network.links.items():
            loaded = network.links[link_id]
            for lane, loaded_lane in zip(link.lanes, loaded.lanes):
                assert lane.allowed_turns == loaded_lane.allowed_turns

    def test_phase_plans_preserved(self, grid_scenario):
        grid, _ = grid_scenario
        payload = network_to_dict(grid.network, grid.phase_plans)
        _, phase_plans, _ = network_from_dict(payload)
        for node_id, plan in grid.phase_plans.items():
            loaded = phase_plans[node_id]
            assert [p.name for p in plan.phases] == [p.name for p in loaded.phases]
            for original, copy in zip(plan.phases, loaded.phases):
                assert original.green_movements == copy.green_movements

    def test_flow_profiles_preserved(self, grid_scenario):
        grid, flows = grid_scenario
        payload = network_to_dict(grid.network, flows=flows)
        _, _, loaded = network_from_dict(payload)
        for original, copy in zip(flows, loaded):
            assert original.name == copy.name
            assert original.profile.points == copy.profile.points

    def test_file_round_trip_runs_simulation(self, grid_scenario, tmp_path):
        grid, flows = grid_scenario
        path = tmp_path / "scenario.json"
        save_scenario(path, grid.network, grid.phase_plans, flows)
        network, phase_plans, loaded_flows = load_scenario(path)
        demand = DemandGenerator(loaded_flows, Router(network), seed=0)
        sim = Simulation(network, demand, phase_plans)
        sim.step(100)
        assert sim.total_created > 0

    def test_loaded_simulation_matches_original(self, grid_scenario, tmp_path):
        """Same seed, same dynamics: the serialised scenario is exact."""
        grid, flows = grid_scenario
        path = tmp_path / "scenario.json"
        save_scenario(path, grid.network, grid.phase_plans, flows)
        network, phase_plans, loaded_flows = load_scenario(path)

        sims = []
        for net, plans, fls in (
            (grid.network, grid.phase_plans, flows),
            (network, phase_plans, loaded_flows),
        ):
            demand = DemandGenerator(list(fls), Router(net), seed=3)
            sim = Simulation(net, demand, plans)
            sim.step(200)
            sims.append(sim)
        assert sims[0].total_created == sims[1].total_created
        assert len(sims[0].finished_vehicles) == len(sims[1].finished_vehicles)


class TestValidation:
    def test_unknown_turn_rejected(self):
        payload = {
            "nodes": [
                {"id": "a", "x": 0, "y": 0},
                {"id": "b", "x": 100, "y": 0},
            ],
            "links": [
                {"id": "l", "from": "a", "to": "b", "length": 100,
                 "lanes": [["sideways"]]},
            ],
        }
        with pytest.raises(NetworkError):
            network_from_dict(payload)

    def test_empty_payload_gives_empty_network(self):
        network, phase_plans, flows = network_from_dict({})
        assert not network.nodes
        assert not phase_plans
        assert not flows
