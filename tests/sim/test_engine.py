"""Simulation engine tests: dynamics, invariants, failure modes.

A minimal hand-built corridor (two links through one signalized node)
exposes every mechanism precisely: discharge rate, yellow behaviour,
start-up lost time, spillback, and head-of-line blocking.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.demand import DemandGenerator, Flow, RateProfile
from repro.sim.engine import Simulation
from repro.sim.network import RoadNetwork, TurnType
from repro.sim.routing import Router
from repro.sim.signal import Phase, PhasePlan
from repro.sim.vehicle import Vehicle, VehicleState


def corridor_network(out_length: float = 200.0) -> RoadNetwork:
    """A -> B(signal) -> C straight corridor, one lane."""
    net = RoadNetwork()
    net.add_node("A", 0, 0)
    net.add_node("B", 200, 0, signalized=True)
    net.add_node("C", 200 + out_length, 0)
    net.add_link("in", "A", "B", 200.0, 1, speed_limit=10.0)
    net.add_link("out", "B", "C", out_length, 1, speed_limit=10.0)
    net.add_movement("in", "out", turn=TurnType.THROUGH)
    net.validate()
    return net


def corridor_plan(net: RoadNetwork) -> dict[str, PhasePlan]:
    green = Phase("go", frozenset({("in", "out")}))
    red = Phase("stop", frozenset())
    return {"B": PhasePlan("B", [green, red])}


def make_sim(
    net: RoadNetwork | None = None,
    rate: float = 720.0,
    duration: float = 100.0,
    **kwargs,
) -> Simulation:
    net = net or corridor_network()
    flows = [Flow("f", "in", "out", RateProfile.constant(rate, duration))]
    demand = DemandGenerator(flows, Router(net), seed=0, stochastic=False)
    return Simulation(net, demand, corridor_plan(net), **kwargs)


class TestLifecycle:
    def test_vehicles_created_and_finish(self):
        sim = make_sim(rate=360.0, duration=50.0)
        sim.step(300)
        assert sim.total_created == 5
        assert len(sim.finished_vehicles) == 5
        assert sim.is_drained()

    def test_travel_time_at_least_freeflow(self):
        sim = make_sim(rate=360.0, duration=50.0)
        sim.step(300)
        # 400 m at 10 m/s => at least 40 s even with no queueing.
        for vehicle in sim.finished_vehicles:
            assert vehicle.travel_time(sim.time) >= 40

    def test_conservation_invariant(self):
        """created == in_network + pending + finished at every tick."""
        sim = make_sim(rate=1200.0, duration=120.0)
        for _ in range(400):
            sim.step()
            total = (
                sim.vehicles_in_network()
                + sim.pending_insertions()
                + len(sim.finished_vehicles)
            )
            assert total == sim.total_created

    def test_occupancy_never_exceeds_storage(self):
        sim = make_sim(rate=3000.0, duration=200.0)
        for _ in range(300):
            sim.step()
            for link_id, occupancy in sim.link_occupancy.items():
                assert 0 <= occupancy <= sim.network.links[link_id].storage

    def test_vehicle_states_consistent(self):
        sim = make_sim(rate=720.0, duration=100.0)
        sim.step(150)
        for vehicle in sim.vehicles.values():
            if vehicle.state is VehicleState.QUEUED:
                assert vehicle.lane_id is not None
            if vehicle.state is VehicleState.FINISHED:
                assert vehicle.finished is not None


class TestSignalControl:
    def test_red_blocks_discharge(self):
        sim = make_sim(rate=720.0, duration=60.0)
        sim.set_phase("B", 1)  # all red
        sim.step(120)
        assert len(sim.finished_vehicles) == 0
        assert sim.halting_count("in") > 0

    def test_green_after_red_releases_queue(self):
        sim = make_sim(rate=720.0, duration=60.0)
        sim.set_phase("B", 1)
        sim.step(100)
        queued = sim.halting_count("in")
        assert queued > 0
        sim.set_phase("B", 0)
        sim.step(200)
        assert sim.halting_count("in") == 0
        assert len(sim.finished_vehicles) == sim.total_created

    def test_yellow_interrupts_discharge(self):
        sim = make_sim(rate=720.0, duration=300.0, yellow_time=5)
        sim.step(60)  # build some flow on green
        finished_before = len(sim.finished_vehicles)
        # Request red: during the 5 yellow ticks nothing may cross.
        sim.set_phase("B", 1)
        crossed_during_yellow = 0
        for _ in range(5):
            before = len(sim.finished_vehicles) + sim.link_occupancy["out"]
            sim.step()
            after = len(sim.finished_vehicles) + sim.link_occupancy["out"]
            crossed_during_yellow += after - before
        assert crossed_during_yellow == 0
        assert finished_before >= 0  # silence lint; the assertion above is the test

    def test_discharge_rate_bounded_by_saturation(self):
        """With a standing queue and continuous green, throughput over a
        long window is at most the saturation rate."""
        sim = make_sim(rate=3600.0, duration=100.0, saturation_rate=0.5)
        sim.set_phase("B", 1)
        sim.step(100)  # build a standing queue on red
        queue_before = sim.halting_count("in")
        assert queue_before >= 20
        sim.set_phase("B", 0)
        start = len(sim.finished_vehicles) + sim.link_occupancy["out"]
        sim.step(40)
        crossed = (len(sim.finished_vehicles) + sim.link_occupancy["out"]) - start
        assert crossed <= 0.5 * 40 + 1

    def test_startup_lost_time_delays_first_discharge(self):
        slow = make_sim(rate=3600.0, duration=60.0, startup_lost_time=4.0)
        fast = make_sim(rate=3600.0, duration=60.0, startup_lost_time=0.0)
        for sim in (slow, fast):
            sim.set_phase("B", 1)
            sim.step(80)
            sim.set_phase("B", 0)
            sim.step(6)  # yellow 2 + a few green ticks
        crossed_slow = slow.link_occupancy["out"] + len(slow.finished_vehicles)
        crossed_fast = fast.link_occupancy["out"] + len(fast.finished_vehicles)
        assert crossed_fast > crossed_slow

    def test_unsignalized_node_always_permits(self):
        """Vehicles pass through unsignalized midpoints without agents."""
        net = RoadNetwork()
        net.add_node("A", 0, 0)
        net.add_node("M", 200, 0)  # unsignalized midpoint
        net.add_node("B", 400, 0, signalized=True)
        net.add_node("C", 600, 0)
        net.add_link("l1", "A", "M", 200, 1, speed_limit=10.0)
        net.add_link("l2", "M", "B", 200, 1, speed_limit=10.0)
        net.add_link("l3", "B", "C", 200, 1, speed_limit=10.0)
        net.add_movement("l1", "l2")
        net.add_movement("l2", "l3")
        net.validate()
        flows = [Flow("f", "l1", "l3", RateProfile.constant(360, 50))]
        demand = DemandGenerator(flows, Router(net), seed=0, stochastic=False)
        plans = {"B": PhasePlan("B", [Phase("go", frozenset({("l2", "l3")}))])}
        sim = Simulation(net, demand, plans)
        sim.step(400)
        assert len(sim.finished_vehicles) == sim.total_created > 0


class TestSpillback:
    def test_full_downstream_blocks_discharge(self):
        # Short out-link (30 m, 1 lane => storage 4) behind a red exit is
        # impossible here (C is terminal), so use heavy inflow against
        # the storage limit: vehicles exit 'out' only after traversal.
        net = corridor_network(out_length=30.0)
        sim = make_sim(net=net, rate=3600.0, duration=120.0)
        sim.step(200)
        for _ in range(100):
            sim.step()
            assert sim.link_occupancy["out"] <= net.links["out"].storage

    def test_gridlock_possible_without_spill_loss(self):
        """Even jammed, no vehicle is ever lost (conservation under spillback)."""
        net = corridor_network(out_length=30.0)
        sim = make_sim(net=net, rate=3600.0, duration=120.0)
        sim.step(500)
        total = (
            sim.vehicles_in_network()
            + sim.pending_insertions()
            + len(sim.finished_vehicles)
        )
        assert total == sim.total_created


class TestHeadOfLineBlocking:
    def build_shared_lane_network(self):
        """One shared lane feeding two movements with separate phases."""
        net = RoadNetwork()
        net.add_node("A", 0, 0)
        net.add_node("B", 200, 0, signalized=True)
        net.add_node("C", 400, 0)  # through target
        net.add_node("D", 200, 200)  # left target
        net.add_link("in", "A", "B", 200, 1, speed_limit=10.0)
        net.add_link("thr", "B", "C", 200, 1, speed_limit=10.0)
        net.add_link("left", "B", "D", 200, 1, speed_limit=10.0)
        net.add_movement("in", "thr")
        net.add_movement("in", "left")
        net.validate()
        plans = {
            "B": PhasePlan(
                "B",
                [
                    Phase("through", frozenset({("in", "thr")})),
                    Phase("left", frozenset({("in", "left")})),
                ],
            )
        }
        return net, plans

    def test_left_turner_blocks_through_traffic(self):
        """With protected-only lefts, a queued left-turner is an absolute
        blockage for the shared lane (the paper's HoL scenario)."""
        net, plans = self.build_shared_lane_network()
        router = Router(net)
        flows = [
            Flow("left", "in", "left", RateProfile.constant(360, 10)),
            Flow("through", "in", "thr", RateProfile.constant(3600, 60)),
        ]
        demand = DemandGenerator(flows, router, seed=0, stochastic=False)
        sim = Simulation(net, demand, plans, permissive_left=False)
        # Hold the through phase. The first left-turner reaching the head
        # of the shared lane blocks everything behind it.
        for _ in range(200):
            sim.set_phase("B", 0)
            sim.step()
        assert sim.link_occupancy["left"] == 0  # left phase never served
        queue = sim.lane_queues["in#0"]
        assert len(queue) > 0
        assert queue[0].next_link == "left"  # a left-turner is stuck at head
        # Serving the left phase unblocks the lane.
        for _ in range(100):
            sim.set_phase("B", 1)
            sim.step()
        remaining_lefts = sum(1 for v in sim.lane_queues["in#0"] if v.next_link == "left")
        assert remaining_lefts == 0

    def test_permissive_left_proceeds_when_opposing_clear(self):
        """With permissive lefts (default), a head left-turner may cross
        during the through phase when nothing opposes it."""
        net, plans = self.build_shared_lane_network()
        router = Router(net)
        flows = [
            Flow("left", "in", "left", RateProfile.constant(360, 10)),
            Flow("through", "in", "thr", RateProfile.constant(3600, 60)),
        ]
        demand = DemandGenerator(flows, router, seed=0, stochastic=False)
        sim = Simulation(net, demand, plans, permissive_left=True)
        for _ in range(200):
            sim.set_phase("B", 0)  # hold the through phase only
            sim.step()
        # No opposing approach exists, so the left went permissively.
        assert sim.link_occupancy["left"] > 0 or any(
            v.links_travelled >= 2 and v.route[-1] == "left"
            for v in sim.vehicles.values()
        )

    def test_permissive_left_blocked_by_opposing_queue(self):
        """An opposing queue withholds the permissive left (gap acceptance)."""
        net = RoadNetwork()
        net.add_node("W", 0, 0)
        net.add_node("B", 200, 0, signalized=True)
        net.add_node("E", 400, 0)
        net.add_node("N", 200, 200)
        net.add_link("in", "W", "B", 200, 1, speed_limit=10.0)
        net.add_link("opp", "E", "B", 200, 1, speed_limit=10.0)
        net.add_link("out_e", "B", "E", 200, 1, speed_limit=10.0)
        net.add_link("out_w", "B", "W", 200, 1, speed_limit=10.0)
        net.add_link("out_n", "B", "N", 200, 1, speed_limit=10.0)
        net.add_movement("in", "out_e")   # eastbound through
        net.add_movement("in", "out_n")   # eastbound left
        net.add_movement("opp", "out_w")  # westbound through
        net.validate()
        through_phase = Phase(
            "through", frozenset({("in", "out_e"), ("opp", "out_w")})
        )
        left_phase = Phase("left", frozenset({("in", "out_n")}))
        plans = {"B": PhasePlan("B", [through_phase, left_phase])}
        flows = [
            Flow("left", "in", "out_n", RateProfile.constant(720, 20)),
            Flow("opp", "opp", "out_w", RateProfile.constant(1800, 120)),
        ]
        demand = DemandGenerator(flows, Router(net), seed=0, stochastic=False)
        sim = Simulation(net, demand, plans, permissive_left=True)
        # Keep only the opposing-through phase active.  The opposing
        # approach keeps a constant stream, so the left must wait.
        blocked_throughout = True
        for _ in range(100):
            sim.set_phase("B", 0)
            sim.step()
            if sim.link_occupancy["out_n"] > 0 and sim.time < 110:
                queue = sim.lane_queues["opp#0"]
                approaching = sim.running["opp"]
                if queue or approaching:
                    blocked_throughout = False
        assert blocked_throughout


class TestValidationErrors:
    def test_missing_phase_plan_rejected(self):
        net = corridor_network()
        with pytest.raises(SimulationError):
            Simulation(net, None, {})

    def test_bad_saturation_rate_rejected(self):
        net = corridor_network()
        with pytest.raises(SimulationError):
            Simulation(net, None, corridor_plan(net), saturation_rate=0.0)

    def test_negative_lost_time_rejected(self):
        net = corridor_network()
        with pytest.raises(SimulationError):
            Simulation(net, None, corridor_plan(net), startup_lost_time=-1.0)

    def test_no_demand_runs_empty(self):
        net = corridor_network()
        sim = Simulation(net, None, corridor_plan(net))
        sim.step(50)
        assert sim.total_created == 0
        assert sim.is_drained()


class TestMetricsSurface:
    def test_queue_and_wait_metrics(self):
        sim = make_sim(rate=720.0, duration=60.0)
        sim.set_phase("B", 1)
        sim.step(60)
        assert sim.queue_length("in#0") > 0
        assert sim.head_wait("in#0") > 0
        assert sim.link_head_wait("in") == sim.head_wait("in#0")

    def test_wait_resets_on_new_link(self):
        sim = make_sim(rate=360.0, duration=30.0)
        sim.set_phase("B", 1)
        sim.step(50)
        sim.set_phase("B", 0)
        sim.step(10)
        # Vehicles now running on 'out' must have wait_current_link == 0.
        for vehicle in sim.running["out"]:
            assert vehicle.wait_current_link == 0
            assert vehicle.wait_total > 0


class TestVehicleEntity:
    def test_empty_route_rejected(self):
        with pytest.raises(ValueError):
            Vehicle(vehicle_id=0, route=[], created=0)

    def test_travel_time_uses_finish_tick(self):
        vehicle = Vehicle(vehicle_id=0, route=["a"], created=10)
        vehicle.finished = 60
        assert vehicle.travel_time(1000) == 50

    def test_travel_time_elapsed_when_unfinished(self):
        vehicle = Vehicle(vehicle_id=0, route=["a"], created=10)
        assert vehicle.travel_time(35) == 25

    def test_route_navigation_helpers(self):
        vehicle = Vehicle(vehicle_id=0, route=["a", "b"], created=0)
        assert vehicle.current_link == "a"
        assert vehicle.next_link == "b"
        assert not vehicle.on_last_link
        vehicle.route_index = 1
        assert vehicle.on_last_link
        assert vehicle.next_link is None
