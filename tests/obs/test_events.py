"""EventLog: JSONL schema, buffering, atomicity and torn-tail recovery."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.obs.events import SCHEMA_VERSION, EventLog, read_events

pytestmark = pytest.mark.obs


class TestEmitAndRead:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("alpha", x=1)
            log.emit("beta", y=2.5, name="n")
        events = read_events(path)
        assert [e["type"] for e in events] == ["alpha", "beta"]
        assert events[0]["data"] == {"x": 1}
        assert events[1]["data"] == {"y": 2.5, "name": "n"}

    def test_seq_monotonic_and_schema_stamped(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventLog(path) as log:
            for index in range(10):
                log.emit("tick", i=index)
        events = read_events(path)
        assert [e["seq"] for e in events] == list(range(10))
        assert all(e["schema"] == SCHEMA_VERSION for e in events)

    def test_numpy_payloads_serialized(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventLog(path) as log:
            log.emit("np", scalar=np.float64(1.5), vec=np.arange(3))
        data = read_events(path)[0]["data"]
        assert data["scalar"] == 1.5
        assert data["vec"] == [0, 1, 2]

    def test_unserializable_payload_rejected(self, tmp_path):
        with EventLog(tmp_path / "e.jsonl") as log:
            with pytest.raises(TypeError):
                log.emit("bad", value=object())

    def test_empty_type_rejected(self, tmp_path):
        with EventLog(tmp_path / "e.jsonl") as log:
            with pytest.raises(ConfigError):
                log.emit("")

    def test_closed_log_rejects_emits(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl")
        log.emit("a")
        log.close()
        with pytest.raises(ConfigError):
            log.emit("b")


class TestBuffering:
    def test_nothing_on_disk_before_flush(self, tmp_path):
        path = tmp_path / "e.jsonl"
        log = EventLog(path, flush_every=100)
        log.emit("a")
        assert not path.exists() or path.read_text() == ""
        log.flush()
        assert len(read_events(path)) == 1
        log.close()

    def test_auto_flush_at_threshold(self, tmp_path):
        path = tmp_path / "e.jsonl"
        log = EventLog(path, flush_every=3)
        log.emit("a")
        log.emit("b")
        log.emit("c")  # hits the threshold
        assert len(read_events(path)) == 3
        log.close()

    def test_append_across_instances(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventLog(path) as log:
            log.emit("first")
        with EventLog(path) as log:
            log.emit("second")
        assert [e["type"] for e in read_events(path)] == ["first", "second"]

    def test_invalid_flush_every(self, tmp_path):
        with pytest.raises(ConfigError):
            EventLog(tmp_path / "e.jsonl", flush_every=0)


class TestTornTail:
    def _log_two(self, path):
        with EventLog(path) as log:
            log.emit("keep", i=0)
            log.emit("keep", i=1)

    def test_truncated_final_line_skipped(self, tmp_path):
        path = tmp_path / "e.jsonl"
        self._log_two(path)
        with open(path, "a") as handle:
            handle.write('{"schema": 1, "seq": 2, "type": "torn", "da')
        events = read_events(path)
        assert [e["data"]["i"] for e in events] == [0, 1]

    def test_torn_tail_strict_raises(self, tmp_path):
        path = tmp_path / "e.jsonl"
        self._log_two(path)
        with open(path, "a") as handle:
            handle.write("{partial")
        with pytest.raises(ConfigError):
            read_events(path, strict=True)

    def test_complete_tail_without_newline_kept(self, tmp_path):
        path = tmp_path / "e.jsonl"
        self._log_two(path)
        tail = {"schema": SCHEMA_VERSION, "seq": 2, "wall": 0.0,
                "type": "keep", "data": {"i": 2}}
        with open(path, "a") as handle:
            handle.write(json.dumps(tail))  # no trailing newline
        events = read_events(path)
        assert [e["data"]["i"] for e in events] == [0, 1, 2]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with open(path, "w") as handle:
            handle.write("not json\n")
            handle.write('{"schema": 1, "seq": 0, "type": "a", "data": {}}\n')
        with pytest.raises(ConfigError):
            read_events(path)

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with open(path, "w") as handle:
            handle.write('{"schema": 99, "seq": 0, "type": "a", "data": {}}\n')
        with pytest.raises(ConfigError):
            read_events(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigError):
            read_events(tmp_path / "nope.jsonl")


class TestAtomicity:
    def test_flush_is_single_append(self, tmp_path):
        """A flush appends complete lines only — no interleaved partials."""
        path = tmp_path / "e.jsonl"
        log = EventLog(path, flush_every=1000)
        for index in range(50):
            log.emit("burst", i=index)
        log.flush()
        size_after_one_flush = os.path.getsize(path)
        raw = path.read_text()
        assert raw.endswith("\n")
        assert raw.count("\n") == 50
        log.close()  # run_end not emitted here; close only flushes
        assert os.path.getsize(path) == size_after_one_flush
