"""The canonical seeded run behind the golden-trace fixture.

``generate_golden_run`` produces a deterministic telemetry run directory:
a FixedTime controller on the 2x2 grid with guaranteed detector dropout
(so fault activations appear in the trace), two training episodes, short
horizon.  ``scripts/regen_golden_trace.py`` uses the same function to
refresh the committed fixture after an intentional schema change, and
``test_golden_trace.py`` replays it to compare against the fixture.

Keep this free of wall-clock or machine-dependent values in everything
the comparison looks at; VOLATILE_FIELDS lists the event data keys the
comparison must strip because they are timing-dependent.
"""

from __future__ import annotations

from repro.agents import FixedTimeSystem
from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
from repro.faults.config import FaultConfig
from repro.obs.telemetry import Telemetry
from repro.rl.runner import train
from repro.scenarios.flows import flow_pattern
from repro.scenarios.grid import build_grid

#: Event data keys whose values are wall-clock dependent.
VOLATILE_FIELDS = {"duration_s", "wall_s"}

#: Envelope keys that vary between runs (wall-clock timestamps).
VOLATILE_ENVELOPE = {"wall"}

GOLDEN_SEED = 2024
GOLDEN_EPISODES = 2
GOLDEN_HORIZON = 120


def _golden_env() -> TrafficSignalEnv:
    scenario = build_grid(2, 2)
    flows = flow_pattern(
        scenario, 1, peak_rate=500.0, t_peak=120.0, light_duration=240.0
    )
    config = EnvConfig(
        horizon_ticks=GOLDEN_HORIZON,
        max_ticks=GOLDEN_HORIZON * 8,
        drain=False,
        faults=FaultConfig(detector_dropout=0.3),
    )
    return TrafficSignalEnv(
        scenario.network, scenario.phase_plans, flows, config, seed=GOLDEN_SEED
    )


def generate_golden_run(run_dir) -> None:
    """Run the canonical scenario, leaving telemetry artifacts in run_dir."""
    env = _golden_env()
    agent = FixedTimeSystem(env)
    telemetry = Telemetry(
        run_dir,
        config={"model": "fixed_time", "rows": 2, "cols": 2,
                "episodes": GOLDEN_EPISODES, "horizon": GOLDEN_HORIZON},
        seed=GOLDEN_SEED,
        agent_name=agent.name,
    )
    try:
        train(
            agent, env, episodes=GOLDEN_EPISODES, seed=GOLDEN_SEED,
            telemetry=telemetry,
        )
    finally:
        telemetry.close()


def strip_volatile(event: dict) -> dict:
    """Copy of an event with wall-clock-dependent values removed."""
    cleaned = {
        key: value
        for key, value in event.items()
        if key not in VOLATILE_ENVELOPE and key != "data"
    }
    cleaned["data"] = {
        key: value
        for key, value in event.get("data", {}).items()
        if key not in VOLATILE_FIELDS
    }
    return cleaned
