"""MetricRegistry and RunManifest unit tests."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricRegistry

pytestmark = pytest.mark.obs


class TestCounters:
    def test_count_accumulates(self):
        metrics = MetricRegistry()
        metrics.count("a")
        metrics.count("a", 4)
        assert metrics.counter_value("a") == 5

    def test_unknown_counter_reads_zero(self):
        assert MetricRegistry().counter_value("nope") == 0


class TestGauges:
    def test_gauge_keeps_latest(self):
        metrics = MetricRegistry()
        metrics.gauge("g", 1.0)
        metrics.gauge("g", -3.5)
        assert metrics.gauge_value("g") == -3.5

    def test_unknown_gauge_raises(self):
        with pytest.raises(ConfigError):
            MetricRegistry().gauge_value("nope")


class TestHistograms:
    def test_summary_stats(self):
        metrics = MetricRegistry()
        for value in (1.0, 5.0, 3.0):
            metrics.observe("h", value)
        histogram = metrics.histogram("h")
        assert histogram.count == 3
        assert histogram.minimum == 1.0
        assert histogram.maximum == 5.0
        assert histogram.mean == 3.0
        assert histogram.last == 3.0

    def test_unknown_histogram_raises(self):
        with pytest.raises(ConfigError):
            MetricRegistry().histogram("nope")

    def test_empty_histogram_to_dict(self):
        metrics = MetricRegistry()
        metrics.observe("h", 1.0)
        assert metrics.histogram("h").to_dict()["count"] == 1


class TestSnapshotMergeWrite:
    def _filled(self):
        metrics = MetricRegistry()
        metrics.count("c", 2)
        metrics.gauge("g", 7.0)
        metrics.observe("h", 1.0)
        metrics.observe("h", 3.0)
        return metrics

    def test_snapshot_shape(self):
        snap = self._filled().snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 2

    def test_merge_adds_counters_and_combines_histograms(self):
        a, b = self._filled(), self._filled()
        a.merge(b.snapshot())
        assert a.counter_value("c") == 4
        assert a.histogram("h").count == 4
        assert a.histogram("h").minimum == 1.0
        assert a.histogram("h").maximum == 3.0

    def test_merge_into_empty(self):
        target = MetricRegistry()
        target.merge(self._filled().snapshot())
        assert target.counter_value("c") == 2
        assert target.gauge_value("g") == 7.0

    def test_write_is_valid_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        self._filled().write(path)
        payload = json.loads(path.read_text())
        assert payload["counters"]["c"] == 2
        assert not (tmp_path / "metrics.json.tmp").exists()


class TestRunManifest:
    def test_capture_records_environment(self):
        manifest = RunManifest.capture(seed=7, config={"rows": 2}, agent_name="X")
        assert manifest.seed == 7
        assert manifest.config == {"rows": 2}
        assert manifest.agent_name == "X"
        assert manifest.platform
        assert manifest.python_version.count(".") >= 1
        assert manifest.numpy_version
        assert manifest.repro_version
        assert manifest.started_at > 0

    def test_write_load_round_trip(self, tmp_path):
        manifest = RunManifest.capture(seed=3, config={"a": 1})
        manifest.write(tmp_path)
        loaded = RunManifest.load(tmp_path)
        assert loaded.seed == 3
        assert loaded.config == {"a": 1}
        assert loaded.platform == manifest.platform

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ConfigError):
            RunManifest.load(tmp_path)

    def test_load_corrupt_raises(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{broken")
        with pytest.raises(ConfigError):
            RunManifest.load(tmp_path)

    def test_unknown_keys_ignored_on_load(self, tmp_path):
        manifest = RunManifest.capture(seed=1)
        manifest.write(tmp_path)
        payload = json.loads((tmp_path / "manifest.json").read_text())
        payload["future_field"] = True
        (tmp_path / "manifest.json").write_text(json.dumps(payload))
        assert RunManifest.load(tmp_path).seed == 1
