"""Span tracing over PhaseTimers and the Telemetry facade lifecycle."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.errors import ConfigError
from repro.obs.events import read_events
from repro.obs.spans import SpanRecorder
from repro.obs.telemetry import Telemetry
from repro.perf.timers import PhaseTimers

pytestmark = pytest.mark.obs


class TestSpanRecorder:
    def test_sections_become_spans(self):
        timers = PhaseTimers()
        recorder = SpanRecorder()
        recorder.attach(timers)
        with timers.section("work"):
            time.sleep(0.001)
        with timers.section("work"):
            pass
        recorder.detach()
        names = [span.name for span in recorder.spans]
        assert names == ["work", "work"]
        assert recorder.spans[0].duration_s > 0

    def test_totals_match_timer_report(self):
        timers = PhaseTimers()
        recorder = SpanRecorder()
        recorder.attach(timers)
        for _ in range(5):
            with timers.section("a"):
                pass
        recorder.detach()
        assert recorder.totals()["a"] == pytest.approx(timers.seconds("a"))
        assert len(recorder.spans) == timers.calls("a")

    def test_detach_stops_recording(self):
        timers = PhaseTimers()
        recorder = SpanRecorder()
        recorder.attach(timers)
        recorder.detach()
        with timers.section("late"):
            pass
        assert recorder.spans == []

    def test_double_attach_rejected(self):
        timers = PhaseTimers()
        SpanRecorder().attach(timers)
        with pytest.raises(ConfigError):
            SpanRecorder().attach(timers)

    def test_max_spans_drops_not_grows(self):
        timers = PhaseTimers()
        recorder = SpanRecorder(max_spans=3)
        recorder.attach(timers)
        for _ in range(10):
            with timers.section("x"):
                pass
        recorder.detach()
        assert len(recorder.spans) == 3
        assert recorder.dropped == 7

    def test_chrome_trace_export(self, tmp_path):
        timers = PhaseTimers()
        recorder = SpanRecorder()
        recorder.attach(timers)
        with timers.section("phase"):
            pass
        recorder.detach()
        path = recorder.export_chrome_trace(tmp_path / "trace.json")
        payload = json.loads(open(path).read())
        assert payload["traceEvents"][0]["name"] == "phase"
        assert payload["traceEvents"][0]["ph"] == "X"

    def test_disabled_timers_emit_no_spans(self):
        timers = PhaseTimers()
        recorder = SpanRecorder()
        recorder.attach(timers)
        timers.disable()
        with timers.section("quiet"):
            pass
        assert recorder.spans == []


class TestTelemetryLifecycle:
    def test_run_dir_artifacts(self, tmp_path):
        run_dir = tmp_path / "run"
        with Telemetry(run_dir, config={"k": 1}, seed=5, agent_name="A") as tel:
            tel.episode_begin(0, 5)
            tel.episode_end(0, 10.0, -1.0, 0.2)
        assert sorted(os.listdir(run_dir)) == [
            "events.jsonl", "manifest.json", "metrics.json",
        ]
        events = read_events(run_dir / "events.jsonl")
        assert [e["type"] for e in events] == [
            "run_begin", "episode_begin", "episode_end", "run_end",
        ]
        metrics = json.loads((run_dir / "metrics.json").read_text())
        assert metrics["counters"]["train.episodes_completed"] == 1

    def test_trace_spans_written_and_timers_restored(self, tmp_path):
        from repro.perf.timers import TIMERS

        was_enabled = TIMERS.enabled
        with Telemetry(tmp_path / "r", trace_spans=True):
            with TIMERS.section("traced"):
                pass
        assert TIMERS.enabled == was_enabled
        assert TIMERS.span_sink is None
        payload = json.loads((tmp_path / "r" / "trace.json").read_text())
        assert any(e["name"] == "traced" for e in payload["traceEvents"])

    def test_close_idempotent(self, tmp_path):
        tel = Telemetry(tmp_path / "r")
        tel.close()
        tel.close()
        events = read_events(tmp_path / "r" / "events.jsonl")
        assert [e["type"] for e in events] == ["run_begin", "run_end"]

    def test_update_stats_filters_non_numeric(self, tmp_path):
        with Telemetry(tmp_path / "r") as tel:
            tel.update_stats(0, {"loss": 0.5, "note": "text"})
            tel.update_stats(1, {})  # empty stats emit nothing
        updates = [
            e for e in read_events(tmp_path / "r" / "events.jsonl")
            if e["type"] == "update"
        ]
        assert len(updates) == 1
        assert updates[0]["data"] == {"episode": 0, "loss": 0.5}

    def test_fault_activation_scope_validated(self, tmp_path):
        with Telemetry(tmp_path / "r") as tel:
            with pytest.raises(ConfigError):
                tel.fault_activation("k", "id", 0, 1, scope="bogus")

    def test_resume_appends_to_existing_log(self, tmp_path):
        run_dir = tmp_path / "r"
        with Telemetry(run_dir) as tel:
            tel.episode_end(0, 1.0, 0.0, 0.1)
        with Telemetry(run_dir) as tel:
            tel.episode_end(1, 2.0, 0.0, 0.1)
        kinds = [e["type"] for e in read_events(run_dir / "events.jsonl")]
        assert kinds.count("run_begin") == 2
        assert kinds.count("episode_end") == 2

    def test_episode_end_flushes_to_disk(self, tmp_path):
        """Completed episodes survive a kill: no buffering past the boundary."""
        run_dir = tmp_path / "r"
        tel = Telemetry(run_dir, flush_every=10_000)
        tel.episode_begin(0, 0)
        tel.episode_end(0, 1.0, 0.0, 0.1)
        on_disk = read_events(run_dir / "events.jsonl")
        assert [e["type"] for e in on_disk] == [
            "run_begin", "episode_begin", "episode_end",
        ]
        tel.close()
