"""Golden-trace regression suite for the telemetry event stream.

Replays the canonical seeded run (see ``golden_util``) and compares the
produced ``events.jsonl`` against the committed fixture under
``tests/obs/golden/``.  A mismatch means the event schema, ordering or
the simulation's deterministic values changed; if the change is
intentional, regenerate with ``python scripts/regen_golden_trace.py``
and review the fixture diff.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from golden_util import generate_golden_run, strip_volatile
from repro.obs.events import read_events
from repro.obs.report import export_run_csv, load_run, render_report, tail_events

pytestmark = pytest.mark.obs

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: Absolute tolerance for float comparisons against the fixture.  The
#: trace values are pure functions of the seeds, so this only guards
#: against benign last-bit formatting drift, not real value changes.
FLOAT_ATOL = 1e-9


@pytest.fixture(scope="module")
def replayed_run(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("golden_replay")
    generate_golden_run(run_dir)
    return run_dir


def _match(actual, expected, path=""):
    """Recursive comparison with float tolerance; returns mismatch or None."""
    if isinstance(expected, float) and isinstance(actual, (int, float)):
        if math.isclose(actual, expected, rel_tol=0.0, abs_tol=FLOAT_ATOL):
            return None
        return f"{path}: {actual!r} != {expected!r}"
    if isinstance(expected, dict):
        if not isinstance(actual, dict) or set(actual) != set(expected):
            return f"{path}: keys {sorted(actual)} != {sorted(expected)}"
        for key in expected:
            mismatch = _match(actual[key], expected[key], f"{path}.{key}")
            if mismatch:
                return mismatch
        return None
    if actual != expected:
        return f"{path}: {actual!r} != {expected!r}"
    return None


class TestGoldenTrace:
    def test_fixture_exists_and_parses(self):
        events = read_events(os.path.join(GOLDEN_DIR, "events.jsonl"))
        assert events, "committed golden fixture is missing or empty"

    def test_event_stream_matches_fixture(self, replayed_run):
        golden = read_events(os.path.join(GOLDEN_DIR, "events.jsonl"))
        actual = read_events(os.path.join(replayed_run, "events.jsonl"))
        assert [e["type"] for e in actual] == [e["type"] for e in golden]
        for index, (got, want) in enumerate(zip(actual, golden)):
            mismatch = _match(strip_volatile(got), strip_volatile(want))
            assert mismatch is None, f"event #{index} ({want['type']}): {mismatch}"

    def test_fixture_shape(self):
        events = read_events(os.path.join(GOLDEN_DIR, "events.jsonl"))
        kinds = [e["type"] for e in events]
        assert kinds[0] == "run_begin" and kinds[-1] == "run_end"
        assert kinds.count("episode_begin") == 2
        assert kinds.count("episode_end") == 2
        # The 0.3 dropout rate guarantees fault activations in the trace.
        assert "fault_activation" in kinds
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_round_trip_report_recovers_metrics(self, replayed_run):
        """EventLog write -> obs report parse -> same metric values."""
        report = load_run(replayed_run)
        golden_events = read_events(os.path.join(GOLDEN_DIR, "events.jsonl"))
        golden_waits = [
            e["data"]["avg_wait"]
            for e in golden_events
            if e["type"] == "episode_end"
        ]
        assert report.wait_curve == pytest.approx(golden_waits, abs=FLOAT_ATOL)
        assert report.complete
        with open(os.path.join(replayed_run, "metrics.json")) as handle:
            metrics = json.load(handle)
        assert metrics["counters"]["train.episodes_completed"] == len(golden_waits)
        assert metrics["histograms"]["train.avg_wait"]["count"] == len(golden_waits)

    def test_report_renders_curve_without_resimulating(self, replayed_run):
        """The persisted run dir alone reproduces the training curve."""
        text = render_report(replayed_run)
        assert "Fixedtime" in text
        assert "episodes: 2" in text
        assert "fault activations" in text
        tail = tail_events(replayed_run, n=2)
        assert len(tail) == 2
        assert "run_end" in tail[-1]

    def test_round_trip_csv_matches_events(self, replayed_run, tmp_path):
        csv_path = tmp_path / "run.csv"
        export_run_csv(replayed_run, csv_path)
        rows = csv_path.read_text().strip().splitlines()
        assert rows[0] == "episode,avg_wait_s,total_reward,duration_s"
        assert len(rows) == 1 + 2  # header + two episodes
