"""Fault activation events: one per (kind, target) per episode.

Each injectable fault family — detector dropout/stuck/noise, message
drop/corrupt/delay, controller death — must emit exactly one
``fault_activation`` through the schedule's ``event_sink``, carrying the
faulted target's id, a tick inside the episode window, and the right
scope ("episode" for faults pinned for the whole episode, "event" for
per-occurrence faults).
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_env
from repro.agents import FixedTimeSystem
from repro.faults.config import FaultConfig
from repro.faults.controller import ControllerFaultWrapper
from repro.faults.detectors import FaultyDetectorSuite
from repro.faults.schedule import FaultSchedule
from repro.agents.pairuplight.messaging import FaultyMessageChannel

pytestmark = pytest.mark.obs


class SinkStub:
    """Records fault_activation calls the way Telemetry would receive them."""

    def __init__(self) -> None:
        self.calls: list[dict] = []

    def fault_activation(self, kind, fault_id, episode, tick, scope):
        self.calls.append(
            {
                "kind": kind,
                "id": str(fault_id),
                "episode": episode,
                "tick": tick,
                "scope": scope,
            }
        )


def _detector_suite(env, config):
    env.reset(seed=0)
    schedule = FaultSchedule(config, seed=0)
    schedule.begin_episode(0)
    sink = SinkStub()
    schedule.event_sink = sink
    suite = FaultyDetectorSuite(env.sim, schedule, degrade=True)
    link = next(iter(env.network.links))
    return suite, schedule, sink, link


class TestDetectorFaultEvents:
    def test_dropout_emits_once_per_key(self, tiny_env):
        suite, _, sink, link = _detector_suite(
            tiny_env, FaultConfig(detector_dropout=1.0)
        )
        for _ in range(4):
            suite.observed_approaching(link)
        assert len(sink.calls) == 1
        call = sink.calls[0]
        assert call["kind"] == "detector_dropout"
        assert call["id"] == f"approach:{link}"
        assert call["scope"] == "event"
        assert call["tick"] == tiny_env.sim.time
        assert call["episode"] == 0

    def test_stuck_is_episode_scoped(self, tiny_env):
        suite, _, sink, link = _detector_suite(
            tiny_env, FaultConfig(detector_stuck=1.0)
        )
        suite.observed_approaching(link)
        tiny_env.sim.step(5)
        suite.observed_approaching(link)
        assert len(sink.calls) == 1
        assert sink.calls[0]["kind"] == "detector_stuck"
        assert sink.calls[0]["scope"] == "episode"

    def test_noise_emits_once_per_key(self, tiny_env):
        suite, _, sink, link = _detector_suite(
            tiny_env, FaultConfig(detector_noise=2.0)
        )
        for _ in range(3):
            suite.observed_approaching(link)
        noise_calls = [c for c in sink.calls if c["kind"] == "detector_noise"]
        assert len(noise_calls) == 1
        assert noise_calls[0]["id"] == f"approach:{link}"
        assert noise_calls[0]["scope"] == "event"

    def test_distinct_detectors_each_activate(self, tiny_env):
        suite, _, sink, link = _detector_suite(
            tiny_env, FaultConfig(detector_dropout=1.0)
        )
        suite.observed_approaching(link)
        suite.head_wait(link)
        ids = sorted(c["id"] for c in sink.calls)
        assert ids == sorted([f"approach:{link}", f"wait:{link}"])

    def test_new_episode_resets_dedupe(self, tiny_env):
        suite, schedule, sink, link = _detector_suite(
            tiny_env, FaultConfig(detector_dropout=1.0)
        )
        suite.observed_approaching(link)
        schedule.begin_episode(1)
        suite.observed_approaching(link)
        assert len(sink.calls) == 2
        assert [c["episode"] for c in sink.calls] == [0, 1]

    def test_healthy_reads_emit_nothing(self, tiny_env):
        suite, _, sink, link = _detector_suite(tiny_env, FaultConfig())
        for _ in range(5):
            suite.observed_approaching(link)
        assert sink.calls == []


class TestMessageFaultEvents:
    def _channel(self, config):
        schedule = FaultSchedule(config, seed=0)
        schedule.begin_episode(0)
        sink = SinkStub()
        schedule.event_sink = sink
        channel = FaultyMessageChannel(
            schedule, ["I0_0", "I0_1"], message_dim=4, clock=lambda: 42
        )
        return channel, schedule, sink

    @pytest.mark.parametrize(
        "field, kind",
        [
            ("message_drop", "message_drop"),
            ("message_corrupt", "message_corrupt"),
            ("message_delay", "message_delay"),
        ],
    )
    def test_each_kind_emits_once_per_receiver(self, field, kind):
        channel, _, sink = self._channel(FaultConfig(**{field: 1.0}))
        payload = np.full(4, 0.5)
        for _ in range(3):
            channel.deliver("I0_0", payload)
        assert len(sink.calls) == 1
        call = sink.calls[0]
        assert call == {
            "kind": kind, "id": "I0_0", "episode": 0, "tick": 42,
            "scope": "event",
        }

    def test_receivers_activate_independently(self):
        channel, _, sink = self._channel(FaultConfig(message_drop=1.0))
        payload = np.zeros(4)
        channel.deliver("I0_0", payload)
        channel.deliver("I0_1", payload)
        assert sorted(c["id"] for c in sink.calls) == ["I0_0", "I0_1"]

    def test_no_clock_reports_none_tick(self):
        schedule = FaultSchedule(FaultConfig(message_drop=1.0), seed=0)
        schedule.begin_episode(0)
        sink = SinkStub()
        schedule.event_sink = sink
        channel = FaultyMessageChannel(schedule, ["I0_0"], message_dim=2)
        channel.deliver("I0_0", np.zeros(2))
        assert sink.calls[0]["tick"] is None

    def test_clean_channel_emits_nothing(self):
        channel, _, sink = self._channel(FaultConfig())
        channel.deliver("I0_0", np.ones(4))
        assert sink.calls == []


class TestControllerFaultEvents:
    def test_death_emits_once_per_agent_per_episode(self, tiny_env):
        wrapper = ControllerFaultWrapper(
            FixedTimeSystem(tiny_env), FaultConfig(controller_failure=1.0)
        )
        sink = SinkStub()
        wrapper.schedule.event_sink = sink
        observations = tiny_env.reset(seed=0)
        wrapper.begin_episode(tiny_env, training=False)
        wrapper.act(observations, tiny_env, training=False)
        wrapper.act(observations, tiny_env, training=False)
        deaths = [c for c in sink.calls if c["kind"] == "controller_death"]
        assert sorted(c["id"] for c in deaths) == sorted(tiny_env.agent_ids)
        assert all(c["scope"] == "episode" for c in deaths)
        assert all(c["tick"] == tiny_env.sim.time for c in deaths)

    def test_attach_telemetry_routes_sink(self, tiny_env):
        wrapper = ControllerFaultWrapper(
            FixedTimeSystem(tiny_env), FaultConfig(controller_failure=1.0)
        )
        sink = SinkStub()
        wrapper.attach_telemetry(sink)
        assert wrapper.schedule.event_sink is sink

    def test_healthy_controllers_emit_nothing(self, tiny_env):
        wrapper = ControllerFaultWrapper(
            FixedTimeSystem(tiny_env), FaultConfig(controller_failure=0.0)
        )
        sink = SinkStub()
        wrapper.schedule.event_sink = sink
        observations = tiny_env.reset(seed=0)
        wrapper.begin_episode(tiny_env, training=False)
        wrapper.act(observations, tiny_env, training=False)
        assert sink.calls == []


class TestSinkNeverPerturbsSampling:
    def test_identical_decisions_with_and_without_sink(self):
        config = FaultConfig(
            detector_dropout=0.4, message_drop=0.4, message_corrupt=0.2
        )
        plain = FaultSchedule(config, seed=7)
        sunk = FaultSchedule(config, seed=7)
        sunk.event_sink = SinkStub()
        plain.begin_episode(0)
        sunk.begin_episode(0)
        for index in range(200):
            key = f"queue:L{index % 5}"
            assert plain.detector_dropped(key) == sunk.detector_dropped(key)
            if index % 3 == 0:
                sunk.emit_activation("detector_dropout", key, tick=index)
            assert plain.message_dropped() == sunk.message_dropped()
            assert plain.message_corrupted() == sunk.message_corrupted()
