"""Sharded-simulation telemetry: events emitted, RNG untouched.

The telemetry contract (module docstring of ``repro.obs.telemetry``)
says no recording call may draw from any random stream.  For the
sharded coordinator this is load-bearing: ``shard_link_loss`` events
are emitted from inside the fault-exchange path, right next to the
fault RNG — a stray draw there would silently change which boundary
exchanges fail.  The bit-exactness test pins that down.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faults.config import FaultConfig
from repro.obs.events import read_events
from repro.obs.telemetry import Telemetry
from repro.scenarios.flows import flow_pattern
from repro.scenarios.grid import build_grid
from repro.sim.sharded import ShardedSimulation
from repro.sim.signal import FixedTimeProgram

pytestmark = pytest.mark.obs

TICKS = 200


def _run(telemetry=None, faults=None, num_shards=3, workers=False):
    scenario = build_grid(3, 3)
    flows = flow_pattern(scenario, 5, light_duration=float(TICKS))
    programs = {
        node_id: FixedTimeProgram([(i, 15) for i in range(plan.num_phases)])
        for node_id, plan in scenario.phase_plans.items()
    }
    with ShardedSimulation(
        scenario.network,
        scenario.phase_plans,
        flows,
        num_shards,
        seed=0,
        workers=workers,
        programs=programs,
        faults=faults,
        telemetry=telemetry,
        handoff_report_every=50,
    ) as sim:
        sim.run(TICKS)
        sim.check_conservation()
        return sim.trajectories()


class TestShardEvents:
    def test_lifecycle_and_volume_events(self, tmp_path):
        faults = FaultConfig(shard_link_loss=0.3, message_delay=0.3)
        telemetry = Telemetry(tmp_path / "run", seed=0, agent_name="sharded")
        _run(telemetry=telemetry, faults=faults)
        telemetry.close()
        events = read_events(tmp_path / "run" / "events.jsonl")
        by_type: dict[str, list] = {}
        for event in events:
            by_type.setdefault(event["type"], []).append(event["data"])

        spawns = by_type["shard_spawn"]
        assert len(spawns) == 3
        assert sorted(e["shard"] for e in spawns) == [0, 1, 2]
        assert all(e["pid"] is None for e in spawns)  # serial driver
        assert all(e["owned_links"] > 0 for e in spawns)

        handoffs = by_type["shard_handoff"]
        assert handoffs, "no handoff volume reports"
        assert all(e["total"] >= 1 for e in handoffs)
        for event in handoffs:
            assert sum(event["edges"].values()) == event["total"]

        losses = by_type["shard_link_loss"]
        kinds = {e["kind"] for e in losses}
        assert kinds <= {"handoff", "message"}
        assert "message" in kinds
        for event in losses:
            assert event["src"] != event["dst"]

    def test_worker_spawns_report_pids(self, tmp_path):
        telemetry = Telemetry(tmp_path / "run", seed=0, agent_name="sharded")
        _run(telemetry=telemetry, workers=True)
        telemetry.close()
        events = read_events(tmp_path / "run" / "events.jsonl")
        pids = [e["data"]["pid"] for e in events if e["type"] == "shard_spawn"]
        assert len(pids) == 3
        assert all(isinstance(pid, int) for pid in pids)
        assert len(set(pids)) == 3  # distinct worker processes

    def test_metrics_counters(self, tmp_path):
        faults = FaultConfig(shard_link_loss=0.3, message_delay=0.3)
        telemetry = Telemetry(tmp_path / "run", seed=0, agent_name="sharded")
        _run(telemetry=telemetry, faults=faults)
        snapshot = telemetry.metrics.snapshot()
        telemetry.close()
        counters = snapshot["counters"]
        assert counters["sharded.shards"] == 3
        assert counters["sharded.handoffs"] >= 1
        assert counters["sharded.link_loss.message"] >= 1

    def test_unknown_loss_kind_rejected(self, tmp_path):
        telemetry = Telemetry(tmp_path / "run", seed=0)
        with pytest.raises(ConfigError):
            telemetry.shard_link_loss(tick=0, src=0, dst=1, kind="carrier", held=0)
        telemetry.close()


class TestZeroRngPerturbation:
    def test_bit_exact_with_and_without_telemetry(self, tmp_path):
        """Telemetry on vs off: identical trajectories under faults (the
        fault RNG and every demand RNG are untouched by recording)."""
        faults = FaultConfig(shard_link_loss=0.25, message_delay=0.25)
        silent = _run(telemetry=None, faults=faults)
        telemetry = Telemetry(tmp_path / "run", seed=0, agent_name="sharded")
        recorded = _run(telemetry=telemetry, faults=faults)
        telemetry.close()
        assert silent == recorded
