"""Public API consistency: every exported name exists and is documented."""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.agents",
    "repro.env",
    "repro.eval",
    "repro.faults",
    "repro.nn",
    "repro.rl",
    "repro.scenarios",
    "repro.serve",
    "repro.sim",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    assert exported, f"{package_name} should declare __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted(package_name):
    package = importlib.import_module(package_name)
    exported = list(getattr(package, "__all__", []))
    assert exported == sorted(exported), f"{package_name}.__all__ not sorted"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_classes_and_functions_documented(package_name):
    """Every public class/function exported by the package has a docstring."""
    package = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(package, "__all__", []):
        obj = getattr(package, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(f"{package_name}.{name}")
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_package_docstrings():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        assert (package.__doc__ or "").strip(), f"{package_name} lacks a docstring"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)
