"""Observation builder tests (paper Eq. 5 state)."""

from __future__ import annotations

import numpy as np

from repro.env.observation import (
    FEATURES_PER_APPROACH,
    ObservationBuilder,
    approach_slots,
)
from repro.sim.detectors import DetectorSuite

from helpers import make_env


class TestApproachSlots:
    def test_interior_node_fills_all_slots(self, small_grid):
        slots = approach_slots(small_grid.network, "I1_1")
        assert len(slots) == 4
        assert all(slot is not None for slot in slots)

    def test_compass_ordering(self, small_grid):
        net = small_grid.network
        slots = approach_slots(net, "I1_1")
        # Slot 0 = from north, 1 = from east, 2 = from south, 3 = from west.
        assert slots[0] == "I0_1->I1_1"
        assert slots[1] == "I1_2->I1_1"
        assert slots[2] == "I2_1->I1_1"
        assert slots[3] == "I1_0->I1_1"

    def test_corner_node_has_padding(self, small_grid):
        slots = approach_slots(small_grid.network, "I0_0")
        present = [s for s in slots if s is not None]
        # Corner: terminals north+west, intersections east+south => 4 incoming.
        assert len(present) == 4

    def test_all_incoming_links_assigned(self, small_grid):
        net = small_grid.network
        for node_id in net.signalized_nodes():
            slots = approach_slots(net, node_id)
            present = {s for s in slots if s is not None}
            assert present == set(net.nodes[node_id].incoming)


class TestObservationBuilder:
    def test_obs_dim(self, small_grid):
        builder = ObservationBuilder(small_grid.network)
        for node_id in small_grid.network.signalized_nodes():
            assert builder.obs_dim(node_id) == 4 * FEATURES_PER_APPROACH

    def test_observation_shape_and_dtype(self, small_grid):
        env = make_env(small_grid)
        obs = env.reset(seed=0)
        for node_id, vector in obs.items():
            assert vector.shape == (env.obs_builder.obs_dim(node_id),)
            assert vector.dtype == np.float64

    def test_empty_network_observation_zero(self, small_grid):
        env = make_env(small_grid)
        obs = env.reset(seed=0)
        for vector in obs.values():
            np.testing.assert_array_equal(vector, np.zeros_like(vector))

    def test_congestion_produces_nonzero_observation(self, small_grid):
        env = make_env(small_grid, peak_rate=2000.0, t_peak=100)
        env.reset(seed=0)
        for _ in range(30):
            env.step({a: 0 for a in env.agent_ids})
        obs = env.step({a: 0 for a in env.agent_ids}).observations
        total = sum(float(np.abs(v).sum()) for v in obs.values())
        assert total > 0

    def test_wait_feature_normalised(self, small_grid):
        env = make_env(small_grid, peak_rate=2000.0, t_peak=100)
        env.reset(seed=0)
        for _ in range(40):
            result = env.step({a: 0 for a in env.agent_ids})
        # Wait features are at odd indices; they grow with blocked queues.
        waits = np.concatenate(
            [v[1::2] for v in result.observations.values()]
        )
        assert waits.max() > 0
        assert waits.max() <= env.sim.time / env.obs_builder.wait_normaliser

    def test_link_pressures_shape(self, small_grid):
        env = make_env(small_grid)
        env.reset(seed=0)
        pressures = env.link_pressures("I1_1")
        assert pressures.shape == (4,)

    def test_pressure_normaliser_scales_with_coverage(self, small_grid):
        env = make_env(small_grid)
        env.reset(seed=0)
        builder = env.obs_builder
        detectors = env.detectors
        wide = DetectorSuite(env.sim, coverage=150.0)
        assert builder.pressure_normaliser(wide) > builder.pressure_normaliser(detectors)
