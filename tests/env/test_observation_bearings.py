"""Approach-bearing geometry tests for the observation builder."""

from __future__ import annotations

import pytest

from repro.env.observation import _approach_bearing, approach_slots
from repro.sim.network import RoadNetwork


def star_network(angles_deg: list[float]) -> RoadNetwork:
    """A centre node with incoming links arriving from given bearings."""
    import math

    net = RoadNetwork()
    net.add_node("C", 0, 0, signalized=True)
    out_added = False
    for index, angle in enumerate(angles_deg):
        # A link arriving FROM bearing `angle` starts at that compass point.
        rad = math.radians(angle)
        x, y = 100 * math.sin(rad), 100 * math.cos(rad)
        net.add_node(f"P{index}", x, y)
        net.add_link(f"P{index}->C", f"P{index}", "C", 100, 1)
        if not out_added:
            net.add_node("OUT", -100 * math.sin(rad), -100 * math.cos(rad))
            net.add_link("C->OUT", "C", "OUT", 100, 1)
            out_added = True
        net.add_movement(f"P{index}->C", "C->OUT")
    net.validate()
    return net


class TestApproachBearing:
    @pytest.mark.parametrize(
        "angle,expected_slot",
        [(0.0, 0), (90.0, 1), (180.0, 2), (270.0, 3)],
    )
    def test_cardinal_directions(self, angle, expected_slot):
        net = star_network([angle])
        slots = approach_slots(net, "C")
        assert slots[expected_slot] == "P0->C"

    def test_bearing_values(self):
        net = star_network([0.0, 90.0])
        assert _approach_bearing(net, "P0->C") == pytest.approx(0.0, abs=1e-9)
        assert _approach_bearing(net, "P1->C") == pytest.approx(90.0, abs=1e-9)

    def test_diagonal_rounds_to_nearest_slot(self):
        # 40 degrees is closer to north (slot 0) than east (slot 1).
        net = star_network([40.0])
        slots = approach_slots(net, "C")
        assert slots[0] == "P0->C"

    def test_collision_falls_back_to_free_slot(self):
        # Two approaches both near north: second lands in a free slot.
        net = star_network([0.0, 10.0])
        slots = approach_slots(net, "C")
        present = [s for s in slots if s is not None]
        assert len(present) == 2
        assert len(set(present)) == 2

    def test_more_than_four_approaches_grow_slots(self):
        net = star_network([0.0, 72.0, 144.0, 216.0, 288.0])
        slots = approach_slots(net, "C")
        assert len(slots) >= 5
        assert sum(1 for s in slots if s is not None) == 5
