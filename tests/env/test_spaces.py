"""Space descriptor and error-hierarchy tests."""

from __future__ import annotations

import pytest

from repro.env.spaces import BoxSpace, DiscreteSpace
from repro.errors import (
    ConfigError,
    DemandError,
    NetworkError,
    ReproError,
    SimulationError,
)


class TestDiscreteSpace:
    def test_contains(self):
        space = DiscreteSpace(4)
        assert space.contains(0)
        assert space.contains(3)
        assert not space.contains(4)
        assert not space.contains(-1)

    def test_non_int_rejected(self):
        space = DiscreteSpace(4)
        assert not space.contains(1.5)
        assert not space.contains("1")

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            DiscreteSpace(0)


class TestBoxSpace:
    def test_dim(self):
        assert BoxSpace(8).dim == 8

    def test_bad_dim_rejected(self):
        with pytest.raises(ConfigError):
            BoxSpace(0)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_cls", [NetworkError, SimulationError, DemandError, ConfigError]
    )
    def test_all_derive_from_repro_error(self, error_cls):
        assert issubclass(error_cls, ReproError)
        with pytest.raises(ReproError):
            raise error_cls("boom")
