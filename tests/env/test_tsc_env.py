"""Multi-agent environment tests: stepping, rewards, episode modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.reward import intersection_reward
from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
from repro.errors import ConfigError
from repro.scenarios.flows import flow_pattern
from repro.scenarios.monaco import build_monaco

from helpers import make_env


class TestEnvConfig:
    def test_defaults_valid(self):
        config = EnvConfig()
        assert config.delta_t == 5
        assert config.yellow_time == 2

    def test_bad_delta_t_rejected(self):
        with pytest.raises(ConfigError):
            EnvConfig(delta_t=0)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ConfigError):
            EnvConfig(horizon_ticks=100, max_ticks=50)


class TestStepping:
    def test_step_before_reset_rejected(self, tiny_grid):
        env = make_env(tiny_grid)
        with pytest.raises(ConfigError):
            env.step({a: 0 for a in env.agent_ids})

    def test_step_advances_delta_t(self, tiny_env):
        tiny_env.reset(seed=0)
        result = tiny_env.step({a: 0 for a in tiny_env.agent_ids})
        assert result.info["time"] == tiny_env.config.delta_t

    def test_invalid_action_rejected(self, tiny_env):
        tiny_env.reset(seed=0)
        actions = {a: 0 for a in tiny_env.agent_ids}
        actions[tiny_env.agent_ids[0]] = 99
        with pytest.raises(ConfigError):
            tiny_env.step(actions)

    def test_rewards_match_eq6(self, tiny_env):
        tiny_env.reset(seed=0)
        for _ in range(20):
            result = tiny_env.step({a: 0 for a in tiny_env.agent_ids})
        for agent_id in tiny_env.agent_ids:
            expected = intersection_reward(
                tiny_env.sim, agent_id, tiny_env.config.reward_scale
            )
            assert result.rewards[agent_id] == pytest.approx(expected)

    def test_rewards_nonpositive(self, tiny_env):
        tiny_env.reset(seed=0)
        for _ in range(30):
            result = tiny_env.step({a: 0 for a in tiny_env.agent_ids})
            assert all(r <= 0 for r in result.rewards.values())

    def test_done_at_horizon_in_training_mode(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=100)
        env.reset(seed=0)
        steps = 0
        done = False
        while not done:
            done = env.step({a: 0 for a in env.agent_ids}).done
            steps += 1
        assert steps == 100 // env.config.delta_t

    def test_drain_mode_runs_past_horizon(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=100, drain=True, peak_rate=300, t_peak=40)
        env.reset(seed=0)
        done = False
        while not done:
            result = env.step({a: 0 for a in env.agent_ids})
            done = result.done
        assert result.info["time"] >= 100
        assert "average_travel_time" in result.info
        # Cycling phase 0 only still serves some movements: some vehicles finish.
        assert result.info["finished_vehicles"] >= 0

    def test_drain_mode_respects_max_ticks(self, tiny_grid):
        env = make_env(
            tiny_grid, horizon_ticks=50, drain=True, peak_rate=3000, t_peak=40
        )
        env.config.max_ticks = 200
        env.reset(seed=0)
        done = False
        while not done:
            result = env.step({a: 0 for a in env.agent_ids})
            done = result.done
        assert result.info["time"] <= 200 + env.config.delta_t


class TestSeeding:
    def test_same_seed_same_trajectory(self, tiny_grid):
        env_a = make_env(tiny_grid, seed=3)
        env_b = make_env(tiny_grid, seed=3)
        obs_a = env_a.reset(seed=3)
        obs_b = env_b.reset(seed=3)
        for _ in range(20):
            result_a = env_a.step({a: 0 for a in env_a.agent_ids})
            result_b = env_b.step({a: 0 for a in env_b.agent_ids})
        for agent_id in env_a.agent_ids:
            np.testing.assert_array_equal(
                result_a.observations[agent_id], result_b.observations[agent_id]
            )

    def test_auto_seed_changes_between_episodes(self, tiny_grid):
        env = make_env(tiny_grid, peak_rate=1500)
        env.reset()
        totals = []
        for _ in range(2):
            done = False
            while not done:
                done = env.step({a: 0 for a in env.agent_ids}).done
            totals.append(env.sim.total_created)
            env.reset()
        assert totals[0] != totals[1]  # different Poisson draws


class TestTopologyHelpers:
    def test_homogeneous_grid(self, tiny_env):
        assert tiny_env.homogeneous

    def test_heterogeneous_monaco(self):
        scenario = build_monaco(seed=7)
        env = TrafficSignalEnv(
            scenario.network,
            scenario.phase_plans,
            scenario.flows,
            EnvConfig(horizon_ticks=100, max_ticks=1000),
        )
        assert not env.homogeneous

    def test_congestion_score_nonnegative(self, tiny_env):
        tiny_env.reset(seed=0)
        for agent_id in tiny_env.agent_ids:
            assert tiny_env.congestion_score(agent_id) >= 0

    def test_pressure_cache_consistency(self, tiny_env):
        tiny_env.reset(seed=0)
        tiny_env.step({a: 0 for a in tiny_env.agent_ids})
        first = tiny_env.link_pressures("I0_0")
        second = tiny_env.link_pressures("I0_0")
        np.testing.assert_array_equal(first, second)


class TestRewardFunction:
    def test_reward_zero_on_empty_network(self, tiny_env):
        tiny_env.reset(seed=0)
        for agent_id in tiny_env.agent_ids:
            assert intersection_reward(tiny_env.sim, agent_id) == 0.0

    def test_reward_scale_applied(self, tiny_grid):
        env = make_env(tiny_grid, peak_rate=2000, reward_scale=1.0)
        env.reset(seed=0)
        for _ in range(30):
            result = env.step({a: 0 for a in env.agent_ids})
        raw = result.rewards[env.agent_ids[0]]
        half = intersection_reward(env.sim, env.agent_ids[0], reward_scale=0.5)
        assert half == pytest.approx(raw * 0.5)
