"""PPO updater tests on a synthetic bandit task."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import functional as F
from repro.nn.linear import Linear
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, stack
from repro.rl.ppo import PPOConfig, PPOUpdater


class TinyPolicy:
    """Linear policy + value over a constant observation — a bandit."""

    def __init__(self, num_actions: int = 2, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.policy = Linear(1, num_actions, rng, gain=0.01)
        self.value = Linear(1, 1, rng, gain=0.01)
        self.num_actions = num_actions

    def parameters(self):
        return list(self.policy.parameters()) + list(self.value.parameters())

    def action_probs(self) -> np.ndarray:
        logits = self.policy(Tensor(np.ones((1, 1)))).data[0]
        exp = np.exp(logits - logits.max())
        return exp / exp.sum()

    def make_evaluate(self, actions: np.ndarray):
        """evaluate(batch) over a (T, N) action array."""

        def evaluate(batch):
            horizon = actions.shape[0]
            logprob_steps, entropy_steps, value_steps = [], [], []
            for t in range(horizon):
                obs = Tensor(np.ones((len(batch), 1)))
                logits = self.policy(obs)
                log_probs = F.log_softmax(logits)
                probs = F.softmax(logits)
                logprob_steps.append(F.gather(log_probs, actions[t, batch]))
                entropy_steps.append(F.entropy(probs))
                value = self.value(obs)
                value_steps.append(value.reshape(value.shape[0]))
            return (
                stack(logprob_steps, axis=0),
                stack(entropy_steps, axis=0),
                stack(value_steps, axis=0),
            )

        return evaluate


def make_bandit_rollout(policy: TinyPolicy, horizon=16, agents=4, seed=0):
    """Action 0 gets +1 advantage, action 1 gets -1."""
    rng = np.random.default_rng(seed)
    probs = policy.action_probs()
    actions = rng.choice(policy.num_actions, size=(horizon, agents), p=probs)
    old_logprobs = np.log(probs[actions])
    advantages = np.where(actions == 0, 1.0, -1.0)
    returns = advantages.astype(np.float64)
    return actions, old_logprobs, advantages, returns


class TestPPOLearning:
    def test_policy_improves_toward_advantaged_action(self):
        policy = TinyPolicy()
        updater = PPOUpdater(
            policy.parameters(),
            [Adam(policy.parameters(), lr=0.05)],
            PPOConfig(epochs=4, minibatch_agents=2, target_kl=None),
        )
        before = policy.action_probs()[0]
        actions, old_lp, adv, ret = make_bandit_rollout(policy)
        for _ in range(10):
            updater.update(policy.make_evaluate(actions), old_lp, adv, ret)
        after = policy.action_probs()[0]
        assert after > before
        assert after > 0.7

    def test_value_regression(self):
        policy = TinyPolicy()
        updater = PPOUpdater(
            policy.parameters(),
            [Adam(policy.parameters(), lr=0.1)],
            PPOConfig(epochs=4, minibatch_agents=4, target_kl=None),
        )
        actions, old_lp, adv, _ = make_bandit_rollout(policy)
        returns = np.full_like(adv, 3.0)
        for _ in range(60):
            updater.update(policy.make_evaluate(actions), old_lp, adv, returns)
        value = float(policy.value(Tensor(np.ones((1, 1)))).data[0, 0])
        assert value == pytest.approx(3.0, abs=0.5)

    def test_stats_populated(self):
        policy = TinyPolicy()
        updater = PPOUpdater(
            policy.parameters(),
            [Adam(policy.parameters(), lr=0.01)],
            PPOConfig(epochs=2, minibatch_agents=2),
        )
        actions, old_lp, adv, ret = make_bandit_rollout(policy)
        stats = updater.update(policy.make_evaluate(actions), old_lp, adv, ret)
        assert np.isfinite(stats.policy_loss)
        assert np.isfinite(stats.value_loss)
        assert stats.entropy > 0
        assert stats.epochs_run >= 1

    def test_target_kl_early_stop(self):
        policy = TinyPolicy()
        updater = PPOUpdater(
            policy.parameters(),
            [Adam(policy.parameters(), lr=1.0)],  # huge lr forces KL blowup
            PPOConfig(epochs=8, minibatch_agents=4, target_kl=0.01),
        )
        actions, old_lp, adv, ret = make_bandit_rollout(policy)
        stats = updater.update(policy.make_evaluate(actions), old_lp, adv, ret)
        assert stats.epochs_run < 8

    def test_first_epoch_ratio_is_one(self):
        """Before any update the new/old ratio must be exactly 1."""
        policy = TinyPolicy()
        actions, old_lp, _, _ = make_bandit_rollout(policy)
        evaluate = policy.make_evaluate(actions)
        new_lp, _, _ = evaluate(np.arange(4))
        np.testing.assert_allclose(new_lp.data, old_lp, atol=1e-12)


class TestValueClipping:
    def test_value_clip_requires_old_values(self):
        policy = TinyPolicy()
        updater = PPOUpdater(
            policy.parameters(),
            [Adam(policy.parameters(), lr=0.01)],
            PPOConfig(value_clip_eps=0.2),
        )
        actions, old_lp, adv, ret = make_bandit_rollout(policy)
        with pytest.raises(ConfigError):
            updater.update(policy.make_evaluate(actions), old_lp, adv, ret)

    def test_value_clip_limits_update_magnitude(self):
        """With clipping, the value head moves less per update toward a
        distant target than without."""
        deltas = {}
        for clip in (None, 0.05):
            policy = TinyPolicy()
            updater = PPOUpdater(
                policy.parameters(),
                [Adam(policy.parameters(), lr=0.2)],
                PPOConfig(epochs=4, minibatch_agents=4, target_kl=None,
                          value_clip_eps=clip),
            )
            actions, old_lp, adv, _ = make_bandit_rollout(policy)
            returns = np.full_like(adv, 50.0)
            old_values = np.zeros_like(returns)
            before = float(policy.value(Tensor(np.ones((1, 1)))).data[0, 0])
            updater.update(
                policy.make_evaluate(actions), old_lp, adv, returns,
                old_values=old_values,
            )
            after = float(policy.value(Tensor(np.ones((1, 1)))).data[0, 0])
            deltas[clip] = abs(after - before)
        assert deltas[0.05] < deltas[None]

    def test_bad_value_clip_rejected(self):
        with pytest.raises(ConfigError):
            PPOConfig(value_clip_eps=0.0)

    def test_old_values_shape_checked(self):
        policy = TinyPolicy()
        updater = PPOUpdater(
            policy.parameters(),
            [Adam(policy.parameters(), lr=0.01)],
            PPOConfig(value_clip_eps=0.2),
        )
        actions, old_lp, adv, ret = make_bandit_rollout(policy)
        with pytest.raises(ConfigError):
            updater.update(
                policy.make_evaluate(actions), old_lp, adv, ret,
                old_values=np.zeros((1, 1)),
            )


class TestPPOConfigValidation:
    def test_bad_clip_rejected(self):
        with pytest.raises(ConfigError):
            PPOConfig(clip_eps=0.0)

    def test_bad_epochs_rejected(self):
        with pytest.raises(ConfigError):
            PPOConfig(epochs=0)

    def test_shape_mismatch_rejected(self):
        policy = TinyPolicy()
        updater = PPOUpdater(
            policy.parameters(), [Adam(policy.parameters(), lr=0.01)], PPOConfig()
        )
        with pytest.raises(ConfigError):
            updater.update(
                policy.make_evaluate(np.zeros((2, 2), dtype=int)),
                np.zeros((2, 2)),
                np.zeros((2, 3)),
                np.zeros((2, 2)),
            )

    def test_no_optimizer_rejected(self):
        policy = TinyPolicy()
        with pytest.raises(ConfigError):
            PPOUpdater(policy.parameters(), [], PPOConfig())


class TestEmptyMinibatchStats:
    def test_zero_epochs_yields_zero_stats_not_nan(self):
        """Regression: empty diagnostic lists must not hit np.mean([]).

        ``epochs`` cannot be constructed as 0, but mutating it after
        construction (as sweep scripts do to skip updates) used to make
        every PPOStats field NaN with a RuntimeWarning.
        """
        import warnings

        policy = TinyPolicy()
        config = PPOConfig()
        config.epochs = 0
        updater = PPOUpdater(
            policy.parameters(), [Adam(policy.parameters(), lr=0.01)], config
        )
        actions, old_lp, adv, ret = make_bandit_rollout(policy)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            stats = updater.update(policy.make_evaluate(actions), old_lp, adv, ret)
        assert stats.epochs_run == 0
        assert stats.policy_loss == 0.0
        assert stats.value_loss == 0.0
        assert stats.entropy == 0.0
        assert stats.approx_kl == 0.0
        assert stats.clip_fraction == 0.0
