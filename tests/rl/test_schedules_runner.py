"""Schedule and training-runner tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.base import AgentSystem
from repro.agents.fixed_time import FixedTimeSystem
from repro.errors import ConfigError
from repro.rl.runner import evaluate, run_episode, train
from repro.rl.schedules import ExponentialSchedule, LinearSchedule

from helpers import make_env


class TestLinearSchedule:
    def test_endpoints(self):
        schedule = LinearSchedule(1.0, 0.1, steps=100)
        assert schedule.value(0) == 1.0
        assert schedule.value(100) == pytest.approx(0.1)
        assert schedule.value(1000) == pytest.approx(0.1)

    def test_midpoint(self):
        schedule = LinearSchedule(1.0, 0.0, steps=10)
        assert schedule.value(5) == pytest.approx(0.5)

    def test_bad_steps_rejected(self):
        with pytest.raises(ConfigError):
            LinearSchedule(1.0, 0.0, steps=0)


class TestExponentialSchedule:
    def test_decay(self):
        schedule = ExponentialSchedule(1.0, 0.01, decay=0.5)
        assert schedule.value(0) == 1.0
        assert schedule.value(1) == 0.5
        assert schedule.value(100) == 0.01  # floored

    def test_bad_decay_rejected(self):
        with pytest.raises(ConfigError):
            ExponentialSchedule(1.0, 0.0, decay=1.5)


class CountingAgent(AgentSystem):
    """Instrumented agent to verify the runner's call protocol."""

    name = "counting"

    def __init__(self):
        self.begins = 0
        self.acts = 0
        self.observes = 0
        self.ends = 0

    def begin_episode(self, env, training):
        self.begins += 1

    def act(self, observations, env, training):
        self.acts += 1
        return {a: 0 for a in env.agent_ids}

    def observe(self, result, env):
        self.observes += 1

    def end_episode(self, env, training):
        self.ends += 1
        return {"marker": 1.0}


class TestRunner:
    def test_train_protocol(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=50)
        agent = CountingAgent()
        history = train(agent, env, episodes=3, seed=0)
        steps_per_episode = 50 // env.config.delta_t
        assert agent.begins == 3
        assert agent.acts == 3 * steps_per_episode
        assert agent.observes == agent.acts  # training observes every step
        assert agent.ends == 3
        assert len(history.episodes) == 3
        assert history.episodes[0].update_stats == {"marker": 1.0}

    def test_history_curves(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=50)
        history = train(CountingAgent(), env, episodes=4, seed=0)
        assert history.wait_curve.shape == (4,)
        assert history.reward_curve.shape == (4,)
        assert history.best_episode().avg_wait == history.wait_curve.min()

    def test_smoothed_curve_window(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=50)
        history = train(CountingAgent(), env, episodes=6, seed=0)
        smooth = history.smoothed_wait_curve(window=3)
        assert len(smooth) == 4  # valid convolution: 6 - 3 + 1

    def test_run_episode_no_observe_in_eval(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=50)
        agent = CountingAgent()
        run_episode(agent, env, training=False)
        assert agent.observes == 0

    def test_evaluate_returns_travel_time(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=100, drain=True, peak_rate=300, t_peak=40)
        agent = FixedTimeSystem(env)
        result = evaluate(agent, env, episodes=1)
        assert np.isfinite(result.average_travel_time)
        assert result.average_travel_time > 0
        assert 0.0 <= result.completion_rate <= 1.0

    def test_evaluate_multiple_episodes(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=100, drain=True, peak_rate=300, t_peak=40)
        agent = FixedTimeSystem(env)
        result = evaluate(agent, env, episodes=2)
        assert result.episodes == 2
        assert result.total_created > 0


class TestTrainWithEval:
    def test_checkpoints_at_expected_episodes(self, tiny_grid):
        from repro.rl.runner import train_with_eval

        train_env = make_env(tiny_grid, horizon_ticks=50)
        eval_env = make_env(
            tiny_grid, horizon_ticks=50, drain=True, peak_rate=300, t_peak=40
        )
        agent = CountingAgent()
        history, checkpoints = train_with_eval(
            agent, train_env, eval_env, episodes=5, eval_every=2
        )
        assert len(history.episodes) == 5
        assert [episode for episode, _ in checkpoints] == [1, 3, 4]
        for _, result in checkpoints:
            assert np.isfinite(result.average_travel_time)

    def test_bad_eval_every_rejected(self, tiny_grid):
        from repro.rl.runner import train_with_eval

        env = make_env(tiny_grid, horizon_ticks=50)
        with pytest.raises(ValueError):
            train_with_eval(CountingAgent(), env, env, episodes=2, eval_every=0)
