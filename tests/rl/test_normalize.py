"""Running-normaliser tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rl.normalize import ObservationNormalizer, ReturnNormalizer, RunningMeanStd


class TestRunningMeanStd:
    def test_matches_numpy_on_batches(self, rng):
        stats = RunningMeanStd((4,))
        data = rng.normal(3.0, 2.0, size=(500, 4))
        for start in range(0, 500, 50):
            stats.update(data[start : start + 50])
        np.testing.assert_allclose(stats.mean, data.mean(axis=0), atol=1e-10)
        np.testing.assert_allclose(stats.var, data.var(axis=0), atol=1e-8)

    def test_single_sample_updates(self, rng):
        stats = RunningMeanStd((2,))
        samples = rng.normal(size=(20, 2))
        for sample in samples:
            stats.update(sample)
        np.testing.assert_allclose(stats.mean, samples.mean(axis=0), atol=1e-10)

    def test_scalar_shape(self):
        stats = RunningMeanStd(())
        stats.update(np.array([1.0, 2.0, 3.0]))
        assert stats.mean == pytest.approx(2.0)

    def test_empty_batch_noop(self):
        stats = RunningMeanStd((2,))
        stats.update(np.zeros((0, 2)))
        assert stats.count == 0


class TestObservationNormalizer:
    def test_normalises_stream(self, rng):
        normalizer = ObservationNormalizer(dim=3)
        data = rng.normal(10.0, 5.0, size=(1000, 3))
        outputs = np.array([normalizer(x) for x in data])
        late = outputs[500:]
        assert abs(late.mean()) < 0.3
        assert 0.5 < late.std() < 1.5

    def test_clip_applied(self):
        normalizer = ObservationNormalizer(dim=1, clip=2.0)
        for _ in range(10):
            normalizer(np.array([0.0]))
        out = normalizer(np.array([1e9]), update=False)
        assert out[0] == 2.0

    def test_frozen_stops_updates(self):
        normalizer = ObservationNormalizer(dim=1)
        normalizer(np.array([1.0]))
        normalizer.frozen = True
        before = normalizer.state()
        normalizer(np.array([100.0]))
        after = normalizer.state()
        np.testing.assert_array_equal(before["mean"], after["mean"])

    def test_state_round_trip(self, rng):
        normalizer = ObservationNormalizer(dim=2)
        for x in rng.normal(size=(50, 2)):
            normalizer(x)
        other = ObservationNormalizer(dim=2)
        other.load_state(normalizer.state())
        probe = np.array([0.3, -0.7])
        np.testing.assert_allclose(
            normalizer(probe, update=False), other(probe, update=False)
        )

    def test_bad_args_rejected(self):
        with pytest.raises(ConfigError):
            ObservationNormalizer(dim=0)
        with pytest.raises(ConfigError):
            ObservationNormalizer(dim=1, clip=0.0)


class TestReturnNormalizer:
    def test_scales_down_large_rewards(self):
        normalizer = ReturnNormalizer(gamma=0.9)
        outputs = [normalizer(np.array([-100.0, -100.0])) for _ in range(100)]
        late = np.concatenate(outputs[50:])
        assert np.abs(late).max() < 10.0

    def test_preserves_sign(self):
        normalizer = ReturnNormalizer(gamma=0.9)
        for _ in range(20):
            out = normalizer(np.array([-5.0]))
            assert out[0] <= 0.0

    def test_reset_clears_carry(self):
        normalizer = ReturnNormalizer(gamma=0.9)
        normalizer(np.array([1.0]))
        normalizer.reset()
        assert normalizer._carry is None

    def test_bad_gamma_rejected(self):
        with pytest.raises(ConfigError):
            ReturnNormalizer(gamma=1.5)
