"""GAE / return computation tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rl.gae import compute_gae, discounted_returns, normalize_advantages


class TestComputeGae:
    def test_single_step(self):
        rewards = np.array([[1.0]])
        values = np.array([[0.5]])
        adv, ret = compute_gae(rewards, values, bootstrap_value=2.0, gamma=0.9, lam=0.8)
        # delta = 1 + 0.9*2 - 0.5 = 2.3
        assert adv[0, 0] == pytest.approx(2.3)
        assert ret[0, 0] == pytest.approx(2.8)

    def test_lambda_one_equals_mc_advantage(self):
        rewards = np.array([[1.0], [1.0], [1.0]])
        values = np.array([[0.0], [0.0], [0.0]])
        gamma = 0.9
        adv, ret = compute_gae(rewards, values, 0.0, gamma=gamma, lam=1.0)
        expected_ret0 = 1 + gamma + gamma**2
        assert ret[0, 0] == pytest.approx(expected_ret0)

    def test_lambda_zero_equals_td_residual(self):
        rewards = np.array([[1.0], [2.0]])
        values = np.array([[0.5], [0.25]])
        adv, _ = compute_gae(rewards, values, 0.0, gamma=0.9, lam=0.0)
        assert adv[0, 0] == pytest.approx(1 + 0.9 * 0.25 - 0.5)
        assert adv[1, 0] == pytest.approx(2 + 0.0 - 0.25)

    def test_multi_agent_columns_independent(self, rng):
        rewards = rng.normal(size=(10, 3))
        values = rng.normal(size=(10, 3))
        adv_all, _ = compute_gae(rewards, values, np.zeros(3))
        for column in range(3):
            adv_one, _ = compute_gae(
                rewards[:, column : column + 1], values[:, column : column + 1], 0.0
            )
            np.testing.assert_allclose(adv_all[:, column], adv_one[:, 0])

    def test_returns_equal_advantage_plus_value(self, rng):
        rewards = rng.normal(size=(8, 2))
        values = rng.normal(size=(8, 2))
        adv, ret = compute_gae(rewards, values, np.zeros(2))
        np.testing.assert_allclose(ret, adv + values)

    def test_accurate_values_give_zero_advantage(self):
        """If V is exact, every TD residual (and thus GAE) is zero."""
        gamma = 0.9
        rewards = np.ones((5, 1))
        # V(s_t) = sum_{k>=0} gamma^k for remaining steps (infinite tail via bootstrap)
        values = np.full((5, 1), 1.0 / (1.0 - gamma))
        adv, _ = compute_gae(rewards, values, 1.0 / (1.0 - gamma), gamma=gamma, lam=0.95)
        np.testing.assert_allclose(adv, np.zeros_like(adv), atol=1e-10)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            compute_gae(np.zeros((3, 2)), np.zeros((3, 3)), 0.0)

    def test_empty_trajectory_rejected(self):
        with pytest.raises(ConfigError):
            compute_gae(np.zeros((0, 2)), np.zeros((0, 2)), 0.0)

    def test_bad_gamma_rejected(self):
        with pytest.raises(ConfigError):
            compute_gae(np.zeros((2, 1)), np.zeros((2, 1)), 0.0, gamma=1.5)


class TestDiscountedReturns:
    def test_matches_manual(self):
        rewards = np.array([[1.0], [2.0], [3.0]])
        ret = discounted_returns(rewards, gamma=0.5)
        assert ret[2, 0] == 3.0
        assert ret[1, 0] == 2.0 + 0.5 * 3.0
        assert ret[0, 0] == 1.0 + 0.5 * (2.0 + 0.5 * 3.0)

    def test_bootstrap_feeds_tail(self):
        rewards = np.array([[0.0]])
        ret = discounted_returns(rewards, gamma=0.9, bootstrap_value=10.0)
        assert ret[0, 0] == pytest.approx(9.0)


class TestNormalize:
    def test_zero_mean_unit_std(self, rng):
        adv = rng.normal(5.0, 3.0, size=(20, 4))
        out = normalize_advantages(adv)
        assert abs(out.mean()) < 1e-10
        assert out.std() == pytest.approx(1.0, rel=1e-6)

    def test_constant_input_no_blowup(self):
        out = normalize_advantages(np.full((5, 2), 3.0))
        assert np.all(np.isfinite(out))
