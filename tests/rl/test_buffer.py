"""Rollout and replay buffer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rl.buffer import ReplayBuffer, RolloutBuffer


class TestRolloutBuffer:
    def test_stacking_shapes(self):
        buffer = RolloutBuffer()
        for t in range(5):
            buffer.add(obs=np.zeros((3, 4)), reward=np.zeros(3))
        data = buffer.stacked()
        assert data["obs"].shape == (5, 3, 4)
        assert data["reward"].shape == (5, 3)

    def test_len(self):
        buffer = RolloutBuffer()
        assert len(buffer) == 0
        buffer.add(x=np.zeros(1))
        assert len(buffer) == 1

    def test_field_mismatch_rejected(self):
        buffer = RolloutBuffer()
        buffer.add(a=np.zeros(1))
        with pytest.raises(ConfigError):
            buffer.add(b=np.zeros(1))

    def test_empty_stack_rejected(self):
        with pytest.raises(ConfigError):
            RolloutBuffer().stacked()

    def test_clear(self):
        buffer = RolloutBuffer()
        buffer.add(a=np.zeros(1))
        buffer.clear()
        assert len(buffer) == 0
        buffer.add(b=np.zeros(2))  # new field set allowed after clear
        assert buffer.stacked()["b"].shape == (1, 2)

    def test_values_preserved(self):
        buffer = RolloutBuffer()
        buffer.add(value=np.array([1.0, 2.0]))
        buffer.add(value=np.array([3.0, 4.0]))
        np.testing.assert_array_equal(
            buffer.stacked()["value"], [[1.0, 2.0], [3.0, 4.0]]
        )


class TestReplayBuffer:
    def test_fifo_eviction(self):
        buffer = ReplayBuffer(capacity=3)
        for index in range(5):
            buffer.add({"index": index})
        assert len(buffer) == 3
        stored = {t["index"] for t in buffer.sample(100)}
        assert stored <= {2, 3, 4}

    def test_sample_size(self):
        buffer = ReplayBuffer(capacity=10)
        for index in range(10):
            buffer.add({"index": index})
        assert len(buffer.sample(4)) == 4

    def test_sample_with_replacement_when_small(self):
        buffer = ReplayBuffer(capacity=10)
        buffer.add({"index": 0})
        assert len(buffer.sample(5)) == 5

    def test_empty_sample_rejected(self):
        with pytest.raises(ConfigError):
            ReplayBuffer(capacity=5).sample(1)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError):
            ReplayBuffer(capacity=0)

    def test_bad_batch_size_rejected(self):
        buffer = ReplayBuffer(capacity=5)
        buffer.add({})
        with pytest.raises(ConfigError):
            buffer.sample(0)

    def test_seeded_sampling_reproducible(self):
        a = ReplayBuffer(capacity=10, seed=3)
        b = ReplayBuffer(capacity=10, seed=3)
        for index in range(10):
            a.add({"index": index})
            b.add({"index": index})
        assert [t["index"] for t in a.sample(5)] == [t["index"] for t in b.sample(5)]
