"""Runner-level determinism and evaluation-protocol guarantees."""

from __future__ import annotations

import numpy as np

from repro.agents.fixed_time import FixedTimeSystem
from repro.agents.max_pressure import MaxPressureSystem
from repro.rl.runner import evaluate, run_episode

from helpers import make_env


class TestEvaluationProtocol:
    def test_same_seed_same_evaluation(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=100, drain=True, peak_rate=500, t_peak=60)
        results = [
            evaluate(FixedTimeSystem(env), env, episodes=1, seed=42)
            for _ in range(2)
        ]
        assert results[0].average_travel_time == results[1].average_travel_time

    def test_different_seeds_vary(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=100, drain=True, peak_rate=900, t_peak=60)
        a = evaluate(FixedTimeSystem(env), env, episodes=1, seed=1)
        b = evaluate(FixedTimeSystem(env), env, episodes=1, seed=2)
        assert a.average_travel_time != b.average_travel_time

    def test_adaptive_beats_fixed_on_same_seeds(self, small_grid):
        """Seed-matched comparison: MaxPressure vs Fixedtime on identical
        demand draws (the comparison discipline the harness relies on)."""
        env = make_env(small_grid, horizon_ticks=300, drain=True,
                       peak_rate=800, t_peak=120)
        mp = evaluate(MaxPressureSystem(env), env, episodes=2, seed=7)
        ft = evaluate(FixedTimeSystem(env), env, episodes=2, seed=7)
        assert mp.total_created == ft.total_created  # identical demand
        assert mp.average_travel_time < ft.average_travel_time

    def test_episode_isolation(self, tiny_grid):
        """Back-to-back episodes on one env do not leak vehicles."""
        env = make_env(tiny_grid, horizon_ticks=100, peak_rate=600, t_peak=60)
        agent = FixedTimeSystem(env)
        for seed in (1, 2, 3):
            run_episode(agent, env, training=False, seed=seed)
            assert env.sim.time <= env.config.horizon_ticks + env.config.delta_t

    def test_average_wait_info_consistent(self, tiny_grid):
        from repro.sim.metrics import network_average_wait

        env = make_env(tiny_grid, peak_rate=1200, t_peak=60)
        env.reset(seed=0)
        for _ in range(10):
            result = env.step({a: 0 for a in env.agent_ids})
        assert result.info["average_wait"] == network_average_wait(env.sim)
