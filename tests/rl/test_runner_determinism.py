"""Runner-level determinism and evaluation-protocol guarantees."""

from __future__ import annotations

import numpy as np

from repro.agents.fixed_time import FixedTimeSystem
from repro.agents.max_pressure import MaxPressureSystem
from repro.agents.pairuplight.agent import PairUpLightSystem
from repro.faults.config import FaultConfig
from repro.obs.telemetry import Telemetry
from repro.rl.runner import evaluate, run_episode, train

from helpers import make_env


class TestEvaluationProtocol:
    def test_same_seed_same_evaluation(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=100, drain=True, peak_rate=500, t_peak=60)
        results = [
            evaluate(FixedTimeSystem(env), env, episodes=1, seed=42)
            for _ in range(2)
        ]
        assert results[0].average_travel_time == results[1].average_travel_time

    def test_different_seeds_vary(self, tiny_grid):
        env = make_env(tiny_grid, horizon_ticks=100, drain=True, peak_rate=900, t_peak=60)
        a = evaluate(FixedTimeSystem(env), env, episodes=1, seed=1)
        b = evaluate(FixedTimeSystem(env), env, episodes=1, seed=2)
        assert a.average_travel_time != b.average_travel_time

    def test_adaptive_beats_fixed_on_same_seeds(self, small_grid):
        """Seed-matched comparison: MaxPressure vs Fixedtime on identical
        demand draws (the comparison discipline the harness relies on)."""
        env = make_env(small_grid, horizon_ticks=300, drain=True,
                       peak_rate=800, t_peak=120)
        mp = evaluate(MaxPressureSystem(env), env, episodes=2, seed=7)
        ft = evaluate(FixedTimeSystem(env), env, episodes=2, seed=7)
        assert mp.total_created == ft.total_created  # identical demand
        assert mp.average_travel_time < ft.average_travel_time

    def test_episode_isolation(self, tiny_grid):
        """Back-to-back episodes on one env do not leak vehicles."""
        env = make_env(tiny_grid, horizon_ticks=100, peak_rate=600, t_peak=60)
        agent = FixedTimeSystem(env)
        for seed in (1, 2, 3):
            run_episode(agent, env, training=False, seed=seed)
            assert env.sim.time <= env.config.horizon_ticks + env.config.delta_t

    def test_average_wait_info_consistent(self, tiny_grid):
        from repro.sim.metrics import network_average_wait

        env = make_env(tiny_grid, peak_rate=1200, t_peak=60)
        env.reset(seed=0)
        for _ in range(10):
            result = env.step({a: 0 for a in env.agent_ids})
        assert result.info["average_wait"] == network_average_wait(env.sim)


class TestTelemetryBitExactness:
    """Attaching telemetry must not change a single RNG draw.

    The observability layer (repro.obs) only *reads* simulation and
    training state, so a run with telemetry on must be bit-for-bit
    identical — per-episode summaries AND final parameter bytes — to the
    same run with telemetry off.
    """

    def _train(self, tiny_grid, telemetry, **env_kwargs):
        env = make_env(tiny_grid, horizon_ticks=60, peak_rate=600, t_peak=60,
                       **env_kwargs)
        agent = PairUpLightSystem(env, seed=0)
        history = train(agent, env, episodes=3, seed=0, telemetry=telemetry)
        return history, agent

    @staticmethod
    def _assert_identical(baseline, instrumented):
        history_off, agent_off = baseline
        history_on, agent_on = instrumented
        for log_off, log_on in zip(history_off.episodes, history_on.episodes):
            assert log_on.avg_wait == log_off.avg_wait
            assert log_on.total_reward == log_off.total_reward
            assert log_on.update_stats == log_off.update_stats
        state_off = agent_off.state_dict()
        state_on = agent_on.state_dict()
        assert sorted(state_on) == sorted(state_off)
        for key, weights in state_off.items():
            assert state_on[key].tobytes() == weights.tobytes(), key

    def test_training_bit_exact_with_telemetry(self, tiny_grid, tmp_path):
        baseline = self._train(tiny_grid, telemetry=None)
        with Telemetry(tmp_path / "run", seed=0) as telemetry:
            instrumented = self._train(tiny_grid, telemetry=telemetry)
        self._assert_identical(baseline, instrumented)

    def test_training_bit_exact_with_telemetry_under_faults(
        self, tiny_grid, tmp_path
    ):
        """Fault-RNG streams are the most fragile: the activation events
        piggyback on the sampling paths, so this run proves emission
        never adds a draw."""
        faults = FaultConfig(detector_dropout=0.3, message_drop=0.3)
        baseline = self._train(tiny_grid, telemetry=None, faults=faults)
        with Telemetry(tmp_path / "run", seed=0) as telemetry:
            instrumented = self._train(
                tiny_grid, telemetry=telemetry, faults=faults
            )
        self._assert_identical(baseline, instrumented)
