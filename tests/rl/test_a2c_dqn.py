"""A2C and DQN updater tests on synthetic bandit tasks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import functional as F
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.optim import Adam, RMSProp
from repro.nn.tensor import Tensor, stack
from repro.rl.a2c import A2CConfig, A2CUpdater
from repro.rl.dqn import DQNConfig, DQNUpdater


class TestA2C:
    def _setup(self):
        rng = np.random.default_rng(0)
        policy = Linear(1, 2, rng, gain=0.01)
        value = Linear(1, 1, rng, gain=0.01)
        params = list(policy.parameters()) + list(value.parameters())
        updater = A2CUpdater(params, [RMSProp(params, lr=0.05)], A2CConfig())
        return policy, value, updater

    def _evaluate_factory(self, policy, value, actions):
        def evaluate():
            horizon = actions.shape[0]
            lp, ent, val = [], [], []
            for t in range(horizon):
                obs = Tensor(np.ones((actions.shape[1], 1)))
                logits = policy(obs)
                lp.append(F.gather(F.log_softmax(logits), actions[t]))
                ent.append(F.entropy(F.softmax(logits)))
                v = value(obs)
                val.append(v.reshape(v.shape[0]))
            return stack(lp, axis=0), stack(ent, axis=0), stack(val, axis=0)

        return evaluate

    def test_policy_improves(self):
        policy, value, updater = self._setup()
        rng = np.random.default_rng(1)
        actions = rng.integers(0, 2, size=(16, 4))
        advantages = np.where(actions == 0, 1.0, -1.0)
        returns = advantages.copy()
        for _ in range(30):
            updater.update(
                self._evaluate_factory(policy, value, actions), advantages, returns
            )
        logits = policy(Tensor(np.ones((1, 1)))).data[0]
        assert logits[0] > logits[1]

    def test_stats_finite(self):
        policy, value, updater = self._setup()
        actions = np.zeros((4, 2), dtype=int)
        stats = updater.update(
            self._evaluate_factory(policy, value, actions),
            np.ones((4, 2)),
            np.ones((4, 2)),
        )
        assert np.isfinite(stats.policy_loss)
        assert np.isfinite(stats.value_loss)
        assert stats.entropy > 0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            A2CConfig(value_coef=-1.0)

    def test_requires_optimizer(self):
        rng = np.random.default_rng(0)
        layer = Linear(1, 2, rng)
        with pytest.raises(ConfigError):
            A2CUpdater(list(layer.parameters()), [])


class QNet(Module):
    """Minimal Q-network over a constant observation (bandit)."""

    def __init__(self, seed: int):
        super().__init__()
        self.layer = Linear(1, 2, np.random.default_rng(seed), gain=0.01)

    def forward(self, obs):
        return self.layer(Tensor.ensure(obs))


class TestDQN:
    def _setup(self, **config_kwargs):
        online = QNet(0)
        target = QNet(1)
        config_kwargs.setdefault("gamma", 0.0)  # bandit: Q(a) -> E[r|a]
        config_kwargs.setdefault("target_sync_interval", 5)
        config = DQNConfig(
            batch_size=16,
            learning_starts=16,
            **config_kwargs,
        )
        params = list(online.parameters())
        updater = DQNUpdater(
            params, Adam(params, lr=0.05), online, target, config, seed=0
        )
        return online, target, updater

    @staticmethod
    def _q_fn(net):
        def fn(batch):
            obs = np.ones((len(batch), 1))
            return net(obs)

        return fn

    def test_target_initialised_from_online(self):
        online, target, _ = self._setup()
        np.testing.assert_allclose(
            online.layer.weight.data, target.layer.weight.data
        )

    def test_not_ready_before_warmup(self):
        online, target, updater = self._setup()
        assert not updater.ready()
        assert updater.update(self._q_fn(online), lambda b: np.zeros((len(b), 2))) is None

    def test_q_values_converge_to_rewards(self):
        online, target, updater = self._setup()
        rng = np.random.default_rng(2)
        for _ in range(200):
            action = int(rng.integers(2))
            reward = 1.0 if action == 0 else -1.0
            updater.replay.add({"action": action, "reward": reward, "done": True})
        for _ in range(200):
            updater.update(
                self._q_fn(online), lambda b: np.zeros((len(b), 2))
            )
        q = online(np.ones((1, 1))).data[0]
        assert q[0] == pytest.approx(1.0, abs=0.2)
        assert q[1] == pytest.approx(-1.0, abs=0.2)

    def test_target_sync(self):
        online, target, updater = self._setup(target_sync_interval=1)
        for _ in range(32):
            updater.replay.add({"action": 0, "reward": 1.0, "done": True})
        updater.update(self._q_fn(online), lambda b: np.zeros((len(b), 2)))
        np.testing.assert_allclose(
            online.layer.weight.data, target.layer.weight.data
        )

    def test_epsilon_decays_with_env_steps(self):
        _, _, updater = self._setup()
        start = updater.current_epsilon()
        for _ in range(updater.config.epsilon_decay_steps):
            updater.record_step()
        assert updater.current_epsilon() == updater.config.epsilon_end < start

    def test_done_masks_bootstrap(self):
        """With done=True the target must ignore next-state Q-values."""
        online, target, updater = self._setup(gamma=0.9)
        for _ in range(32):
            updater.replay.add({"action": 0, "reward": 1.0, "done": True})
        # Target network returning huge values must not leak through done.
        for _ in range(100):
            updater.update(
                self._q_fn(online), lambda b: np.full((len(b), 2), 1e6)
            )
        q = online(np.ones((1, 1))).data[0]
        assert q[0] == pytest.approx(1.0, abs=0.3)
