"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

# Make tests/ importable from any test subdirectory (helpers.py).
sys.path.insert(0, os.path.dirname(__file__))

from helpers import make_env  # noqa: E402
from repro.scenarios.grid import GridScenario, build_grid  # noqa: E402


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_grid() -> GridScenario:
    """A 2x2 grid — smallest network with real coordination structure."""
    return build_grid(2, 2)


@pytest.fixture(scope="session")
def small_grid() -> GridScenario:
    """A 3x3 grid — has a true interior intersection."""
    return build_grid(3, 3)


@pytest.fixture
def tiny_env(tiny_grid):
    return make_env(tiny_grid)
