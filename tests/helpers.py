"""Shared helpers importable from any test module (see conftest.py)."""

from __future__ import annotations

from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
from repro.scenarios.flows import flow_pattern
from repro.scenarios.grid import GridScenario


def make_env(
    scenario: GridScenario,
    pattern: int = 1,
    peak_rate: float = 500.0,
    t_peak: float = 120.0,
    horizon_ticks: int = 300,
    drain: bool = False,
    seed: int = 0,
    **config_kwargs,
) -> TrafficSignalEnv:
    """Build a small environment over a grid scenario."""
    flows = flow_pattern(
        scenario, pattern, peak_rate=peak_rate, t_peak=t_peak, light_duration=2 * t_peak
    )
    config = EnvConfig(
        horizon_ticks=horizon_ticks,
        max_ticks=max(horizon_ticks * 8, 2400),
        drain=drain,
        **config_kwargs,
    )
    return TrafficSignalEnv(
        scenario.network, scenario.phase_plans, flows, config, seed=seed
    )
