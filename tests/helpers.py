"""Shared helpers importable from any test module (see conftest.py)."""

from __future__ import annotations

from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
from repro.scenarios.flows import flow_pattern
from repro.scenarios.grid import GridScenario


def make_env(
    scenario: GridScenario,
    pattern: int = 1,
    peak_rate: float = 500.0,
    t_peak: float = 120.0,
    horizon_ticks: int = 300,
    drain: bool = False,
    seed: int = 0,
    **config_kwargs,
) -> TrafficSignalEnv:
    """Build a small environment over a grid scenario."""
    flows = flow_pattern(
        scenario, pattern, peak_rate=peak_rate, t_peak=t_peak, light_duration=2 * t_peak
    )
    config = EnvConfig(
        horizon_ticks=horizon_ticks,
        max_ticks=max(horizon_ticks * 8, 2400),
        drain=drain,
        **config_kwargs,
    )
    return TrafficSignalEnv(
        scenario.network, scenario.phase_plans, flows, config, seed=seed
    )


def public_engine_snapshot(sim) -> dict:
    """The full public introspection surface of an engine, as one dict.

    Snapshot equality across engines is the cross-engine agreement
    oracle used by the fuzz suites (``tests/sim/test_engine_fuzz.py``
    and ``tests/scenarios/test_fuzz_zoo.py``).
    """
    network = sim.network
    return {
        "time": sim.time,
        "queues": {
            lane.lane_id: (
                sim.queue_length(lane.lane_id),
                sim.head_wait(lane.lane_id),
                sim.discharge_credit(lane.lane_id),
            )
            for link in network.links.values()
            for lane in link.lanes
        },
        "links": {
            link_id: (
                sim.link_occupancy[link_id],
                sim.halting_count(link_id),
                sim.link_head_wait(link_id),
            )
            for link_id in network.links
        },
        "counts": (
            sim.vehicles_in_network(),
            sim.pending_insertions(),
            sim.total_created,
            len(sim.finished_vehicles),
            sim.teleport_count,
        ),
        "drained": sim.is_drained(),
    }


def check_engine_invariants(sim, teleport=None) -> None:
    """Conservation and bounds every engine must satisfy at any tick.

    ``teleport`` is the engine's teleport watchdog (or None): with the
    watchdog on, a teleported head enters its next link ignoring storage,
    so the static occupancy bound is only asserted without it.
    """
    created = sim.total_created
    in_network = sim.vehicles_in_network()
    pending = sim.pending_insertions()
    finished = len(sim.finished_vehicles)
    assert created == in_network + pending + finished
    assert min(in_network, pending, finished) >= 0
    for link_id, link in sim.network.links.items():
        occupancy = sim.link_occupancy[link_id]
        halted = sim.halting_count(link_id)
        assert 0 <= halted <= occupancy
        if teleport is None:
            assert occupancy <= link.storage
        for lane in link.lanes:
            assert sim.queue_length(lane.lane_id) >= 0
            assert sim.head_wait(lane.lane_id) >= 0
