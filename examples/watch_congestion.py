#!/usr/bin/env python
"""Watch congestion build and dissolve, in ASCII.

Runs the same congested scenario twice — under fixed-time control and
under a briefly-trained PairUpLight policy — printing a live grid map
(phase glyphs + queued vehicles per intersection) at regular intervals,
followed by a delay decomposition and the worst origin-destination
relations for each controller.

Run:
    python examples/watch_congestion.py [--episodes N]
"""

from __future__ import annotations

import argparse

from repro.agents import FixedTimeSystem, PairUpLightSystem
from repro.env import EnvConfig, TrafficSignalEnv
from repro.rl import train
from repro.scenarios import build_grid, flow_pattern
from repro.sim import grid_map
from repro.sim.tripinfo import DelayDecomposition, format_od_table, od_summaries

ROWS, COLS = 3, 3


def make_env(grid, flows, seed=0, drain=False):
    return TrafficSignalEnv(
        grid.network, grid.phase_plans, flows,
        EnvConfig(horizon_ticks=450, max_ticks=3600, drain=drain), seed=seed,
    )


def watch(agent, env, label, snapshots=5):
    print(f"\n=== {label} ===")
    obs = env.reset(seed=321)
    agent.begin_episode(env, training=False)
    done = False
    step = 0
    snap_every = max(1, (450 // env.config.delta_t) // snapshots)
    while not done:
        actions = agent.act(obs, env, training=False)
        result = env.step(actions)
        obs = result.observations
        done = result.done
        step += 1
        if step % snap_every == 0 and env.sim.time <= 460:
            print(grid_map(env.sim, ROWS, COLS))
            print()
    decomposition = DelayDecomposition.compute(env.sim)
    print(f"avg travel {decomposition.mean_travel_time:.1f}s = "
          f"insertion {decomposition.mean_insertion_delay:.1f}s + "
          f"waiting {decomposition.mean_waiting_time:.1f}s + "
          f"moving {decomposition.mean_moving_time:.1f}s")
    print("\nworst OD relations:")
    print(format_od_table(od_summaries(env.sim), top=5))
    return decomposition.mean_travel_time


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    grid = build_grid(ROWS, COLS)
    flows = flow_pattern(grid, 1, peak_rate=600.0, t_peak=150.0)

    train_env = make_env(grid, flows, seed=args.seed)
    print(f"Training PairUpLight for {args.episodes} episodes "
          "(this takes about a minute)...")
    agent = PairUpLightSystem(train_env, seed=args.seed)
    train(agent, train_env, episodes=args.episodes, seed=args.seed,
          log_every=max(1, args.episodes // 4))

    fixed_att = watch(
        FixedTimeSystem(make_env(grid, flows, drain=True)),
        make_env(grid, flows, drain=True),
        "Fixed-time control",
    )
    rl_att = watch(
        agent, make_env(grid, flows, drain=True), "PairUpLight (trained)"
    )
    print(f"\nFixed-time avg travel: {fixed_att:.1f} s; "
          f"PairUpLight: {rl_att:.1f} s "
          f"({1 - rl_att / fixed_att:.0%} reduction)")


if __name__ == "__main__":
    main()
