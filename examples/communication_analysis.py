#!/usr/bin/env python
"""Communication analysis: overhead accounting and bandwidth ablation.

Part 1 reproduces the paper's Table IV — bits of information each model
receives from other intersections per decision step — computed from the
live agent configurations.

Part 2 reproduces the Fig. 11 experiment: training PairUpLight with a
1-element vs a 2-element message and showing that more bandwidth does
not help (the paper's counter-intuitive finding).

Run:
    python examples/communication_analysis.py [--episodes N]
"""

from __future__ import annotations

import argparse

from repro.agents import (
    CoLightSystem,
    FixedTimeSystem,
    MA2CSystem,
    PairUpLightConfig,
    PairUpLightSystem,
    SingleAgentSystem,
)
from repro.env import EnvConfig, TrafficSignalEnv
from repro.eval import formatted_overhead_table, overhead_table
from repro.rl import train
from repro.scenarios import build_grid, flow_pattern


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=30)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    grid = build_grid(3, 3)
    flows = flow_pattern(grid, 1, peak_rate=600.0, t_peak=150.0)
    env = TrafficSignalEnv(
        grid.network, grid.phase_plans, flows,
        EnvConfig(horizon_ticks=450, max_ticks=3600), seed=args.seed,
    )

    print("=" * 72)
    print("Part 1 — communication overhead per intersection per step (Table IV)")
    print("=" * 72)
    agents = [
        MA2CSystem(env, seed=args.seed),
        CoLightSystem(env, seed=args.seed),
        PairUpLightSystem(env, seed=args.seed),
        SingleAgentSystem(env, seed=args.seed),
        FixedTimeSystem(env),
    ]
    print(formatted_overhead_table(overhead_table(agents, env)))

    print()
    print("=" * 72)
    print("Part 2 — message bandwidth ablation (Fig. 11)")
    print("=" * 72)
    trained = {}
    for message_dim in (1, 2):
        agent = PairUpLightSystem(
            env, PairUpLightConfig(message_dim=message_dim), seed=args.seed
        )
        history = train(agent, env, episodes=args.episodes, seed=args.seed)
        trained[message_dim] = agent
        curve = history.wait_curve
        print(f"message_dim={message_dim} ({message_dim * 32:>3} bits): "
              f"first={curve[0]:7.1f} s  best={curve.min():7.1f} s  "
              f"final-5-mean={curve[-5:].mean():7.1f} s")
    print("\nExpected shape: the 32-bit (1-element) message trains at least "
          "as well as the 64-bit one — extra bandwidth does not improve "
          "coordination (paper Fig. 11).")

    print()
    print("=" * 72)
    print("Part 3 — what does the learned message encode?")
    print("=" * 72)
    from repro.eval.message_analysis import analyse, probe_messages

    log = probe_messages(trained[1], env, episodes=1, seed=args.seed + 50)
    print(analyse(log).formatted())


if __name__ == "__main__":
    main()
