#!/usr/bin/env python
"""Quickstart: train PairUpLight on a small grid and beat fixed-time control.

Builds a 3x3 grid with the paper's congested flow pattern 1 (scaled down
so everything finishes in about a minute), trains PairUpLight with
PPO+GAE, and compares average travel time against the fixed-time
baseline in drain-mode evaluation.

Run:
    python examples/quickstart.py [--episodes N] [--rows R] [--cols C]
"""

from __future__ import annotations

import argparse

from repro.agents import FixedTimeSystem, PairUpLightConfig, PairUpLightSystem
from repro.env import EnvConfig, TrafficSignalEnv
from repro.rl import evaluate, train
from repro.scenarios import build_grid, flow_pattern


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=60, help="training episodes")
    parser.add_argument("--rows", type=int, default=3)
    parser.add_argument("--cols", type=int, default=3)
    parser.add_argument("--peak-rate", type=float, default=600.0, help="peak veh/h per OD")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Building a {args.rows}x{args.cols} grid "
          f"(200 m blocks, shared lanes, 50 m detectors)...")
    grid = build_grid(args.rows, args.cols)
    flows = flow_pattern(grid, pattern=1, peak_rate=args.peak_rate, t_peak=150.0)

    train_env = TrafficSignalEnv(
        grid.network,
        grid.phase_plans,
        flows,
        EnvConfig(horizon_ticks=450, max_ticks=3600),
        seed=args.seed,
    )
    eval_env = TrafficSignalEnv(
        grid.network,
        grid.phase_plans,
        flows,
        EnvConfig(horizon_ticks=450, max_ticks=3600, drain=True),
        seed=args.seed + 1000,
    )

    print(f"Training PairUpLight for {args.episodes} episodes "
          f"({len(train_env.agent_ids)} agents, parameter-shared)...")
    agent = PairUpLightSystem(train_env, PairUpLightConfig(), seed=args.seed)
    history = train(agent, train_env, episodes=args.episodes, seed=args.seed,
                    log_every=max(1, args.episodes // 6))
    best = history.best_episode()
    print(f"Best training episode: #{best.episode} "
          f"with average waiting time {best.avg_wait:.2f} s")

    print("\nEvaluating (greedy policies, drain mode)...")
    rl_result = evaluate(agent, eval_env, episodes=2, seed=args.seed + 2000)
    ft_result = evaluate(FixedTimeSystem(eval_env), eval_env, episodes=2,
                         seed=args.seed + 2000)

    print(f"\n{'Controller':<14} {'Avg travel time':>16} {'Completion':>11}")
    for result in (ft_result, rl_result):
        print(f"{result.agent_name:<14} {result.average_travel_time:>14.1f} s "
              f"{result.completion_rate:>10.0%}")
    improvement = 1 - rl_result.average_travel_time / ft_result.average_travel_time
    print(f"\nPairUpLight reduces average travel time by {improvement:.0%} "
          f"vs fixed-time control.")


if __name__ == "__main__":
    main()
