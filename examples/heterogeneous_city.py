#!/usr/bin/env python
"""Heterogeneous city study (the paper's Monaco experiment, Section VI-D).

Builds the synthetic Monaco-style network — 30 signalized intersections
with irregular topology, mixed 1-/2-lane streets, and per-intersection
phase sets — and trains PairUpLight WITHOUT parameter sharing (impossible
here, exactly as the paper notes), comparing its training curve against
MA2C and the fixed-time reference.

Run:
    python examples/heterogeneous_city.py [--episodes N] [--fast]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.agents import FixedTimeSystem, MA2CSystem, PairUpLightConfig, PairUpLightSystem
from repro.env import EnvConfig, TrafficSignalEnv
from repro.rl import run_episode, train
from repro.rl.ppo import PPOConfig
from repro.scenarios import MonacoScenario, MonacoSpec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=15)
    parser.add_argument("--fast", action="store_true", help="tiny 2x3 network")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    if args.fast:
        spec = MonacoSpec(rows=2, cols=3, seed=args.seed, t_peak=120.0)
        episodes = min(args.episodes, 5)
        horizon = 240
    else:
        spec = MonacoSpec(seed=args.seed, t_peak=300.0)
        episodes = args.episodes
        horizon = 900

    scenario = MonacoScenario(spec)
    print(f"Built heterogeneous network: "
          f"{len(scenario.network.signalized_nodes())} signalized intersections, "
          f"{len(scenario.network.links)} links, {len(scenario.flows)} OD flows "
          f"(peak {spec.peak_rate:.0f} veh/h)")
    phase_counts = sorted(p.num_phases for p in scenario.phase_plans.values())
    print(f"Phase-set sizes across intersections: min={phase_counts[0]} "
          f"max={phase_counts[-1]} (heterogeneous -> no parameter sharing)\n")

    def make_env(seed_offset: int) -> TrafficSignalEnv:
        return TrafficSignalEnv(
            scenario.network,
            scenario.phase_plans,
            scenario.flows,
            EnvConfig(horizon_ticks=horizon, max_ticks=horizon * 8),
            seed=args.seed + seed_offset,
        )

    # Fixed-time reference (no training needed): one episode's average wait.
    env = make_env(0)
    ft_wait, _, _ = run_episode(FixedTimeSystem(env), env, training=False, seed=0)
    print(f"Fixedtime reference average wait: {ft_wait:.1f} s\n")

    results = {}
    pul_env = make_env(1)
    pairuplight = PairUpLightSystem(
        pul_env,
        PairUpLightConfig(
            parameter_sharing=False,
            ppo=PPOConfig(epochs=2, minibatch_agents=10),
        ),
        seed=args.seed,
    )
    print(f"Training PairUpLight (independent networks) for {episodes} episodes...")
    results["PairUpLight"] = train(
        pairuplight, pul_env, episodes=episodes, seed=args.seed,
        log_every=max(1, episodes // 5),
    )

    print(f"\nTraining MA2C for {episodes} episodes...")
    ma2c_env = make_env(2)
    results["MA2C"] = train(
        MA2CSystem(ma2c_env, seed=args.seed), ma2c_env,
        episodes=episodes, seed=args.seed, log_every=max(1, episodes // 5),
    )

    print("\nTraining-curve summary (average waiting time, seconds):")
    print(f"{'Model':<14} {'first ep':>9} {'best':>9} {'final':>9}")
    print(f"{'Fixedtime':<14} {ft_wait:>9.1f} {ft_wait:>9.1f} {ft_wait:>9.1f}")
    for name, history in results.items():
        curve = history.wait_curve
        print(f"{name:<14} {curve[0]:>9.1f} {curve.min():>9.1f} {curve[-1]:>9.1f}")

    pul = results["PairUpLight"].wait_curve
    if pul[-1] < pul[0]:
        print("\nPairUpLight improved during training despite heterogeneity "
              "(the Fig. 10 shape).")


if __name__ == "__main__":
    main()
