#!/usr/bin/env python
"""Robustness study: train on one flow pattern, evaluate on all five.

This reproduces the protocol behind the paper's Table II at laptop
scale: every model is trained ONLY on flow pattern 1, then its frozen
policy is evaluated on patterns 1-4 (congested, different OD structure)
and pattern 5 (light uniform traffic).  The paper's headline claim is
that PairUpLight stays strong across patterns where MARL baselines
degrade badly.

Run:
    python examples/robustness_across_patterns.py [--episodes N] [--fast]
"""

from __future__ import annotations

import argparse

from repro.agents import FixedTimeSystem, PairUpLightSystem, SingleAgentSystem
from repro.eval import ExperimentScale, run_table2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=50)
    parser.add_argument("--rows", type=int, default=3)
    parser.add_argument("--cols", type=int, default=3)
    parser.add_argument("--fast", action="store_true",
                        help="fewer episodes / smaller horizon")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    episodes = 12 if args.fast else args.episodes
    scale = ExperimentScale(
        rows=args.rows,
        cols=args.cols,
        peak_rate=600.0,
        t_peak=150.0,
        light_duration=300.0,
        horizon_ticks=450,
        max_ticks=3600,
        train_episodes=episodes,
    )

    factories = {
        "Fixedtime": lambda env: FixedTimeSystem(env),
        "SingleAgent": lambda env: SingleAgentSystem(env, seed=args.seed),
        "PairUpLight": lambda env: PairUpLightSystem(env, seed=args.seed),
    }

    print(f"Training on pattern 1 ({episodes} episodes each), "
          "evaluating on patterns 1-5...\n")
    table = run_table2(scale, factories, seed=args.seed)
    print(table.formatted("Average travel time (s) — trained on pattern 1 only"))
    print()
    for pattern in table.patterns:
        print(f"Pattern {pattern} winner: {table.winner(pattern)}")


if __name__ == "__main__":
    main()
