#!/usr/bin/env bash
# Tier-1 CI gate. Runs, in order:
#   1. the default test suite (pytest.ini excludes -m perf),
#   2. the serve suite explicitly (fault-tolerant control service,
#      including the fault-schedule soak smoke test),
#   3. the sharded suite explicitly (city-scale construction and
#      scaling-curve smokes, excluded from tier-1 for runtime),
#   4. the scenario fuzz stage: the seeded spec fuzzer widened to 50
#      distinct scenarios (tier-1 runs 8), every one driven through the
#      object fast/slow and SoA engines with conservation/round-trip
#      property checks and a fixed per-case time budget,
#   5. the perf-regression gates (engine ticks/s, batched SoA aggregate
#      ticks/s, train env-steps/s, batched-vs-serial train speedup at
#      B=8 (same-run ratio), fused PPO-update steps/s, serve
#      intersections/s, sharded same-run speedup — each vs its
#      committed BENCH_*.json),
#   6. the coverage floors (stdlib trace; no coverage package):
#      src/repro/obs and src/repro/scenarios.
#
# Usage, from the repository root:
#   bash scripts/run_ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== tier-1 test suite =="
python -m pytest

echo "== serve suite (control service + soak smoke) =="
python -m pytest -m serve

echo "== sharded suite (city-scale smokes) =="
python -m pytest -m sharded

echo "== scenario fuzz stage (50 fuzzed specs, fixed seed, per-case budget) =="
REPRO_FUZZ_CASES=50 REPRO_FUZZ_SEED=20260808 REPRO_FUZZ_CASE_BUDGET_S=30 \
    python -m pytest tests/scenarios/test_fuzz_zoo.py -q

echo "== perf regression gates (engine / engine_soa / train / batched-train / update / serve / sharded) =="
python scripts/check_perf_regression.py --engine-soa-baseline benchmarks/BENCH_engine_soa.json

echo "== telemetry coverage floor (src/repro/obs) =="
python scripts/check_obs_coverage.py

echo "== scenario coverage floor (src/repro/scenarios) =="
python scripts/check_obs_coverage.py --package repro.scenarios --floor 85

echo "CI OK"
