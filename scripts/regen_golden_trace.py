#!/usr/bin/env python3
"""Regenerate the golden telemetry trace fixture.

Runs the canonical seeded scenario from ``tests/obs/golden_util.py`` and
replaces ``tests/obs/golden/events.jsonl``.  Only run this after an
*intentional* change to the telemetry schema or the simulation's
deterministic behaviour, and review the fixture diff before committing.

Usage:
    PYTHONPATH=src python scripts/regen_golden_trace.py
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))
sys.path.insert(0, os.path.join(REPO, "tests"))
sys.path.insert(0, os.path.join(REPO, "tests", "obs"))

from golden_util import generate_golden_run  # noqa: E402


def main() -> int:
    golden_dir = os.path.join(REPO, "tests", "obs", "golden")
    os.makedirs(golden_dir, exist_ok=True)
    with tempfile.TemporaryDirectory() as tmp:
        run_dir = os.path.join(tmp, "run")
        generate_golden_run(run_dir)
        shutil.copy(
            os.path.join(run_dir, "events.jsonl"),
            os.path.join(golden_dir, "events.jsonl"),
        )
    print(f"wrote {os.path.join(golden_dir, 'events.jsonl')}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
