#!/usr/bin/env python
"""CI perf gate: fail when engine throughput drops >20% vs the committed
``benchmarks/BENCH_engine.json``.

Run from the repository root::

    PYTHONPATH=src python scripts/check_perf_regression.py

Exit code 0 = within budget, 1 = regression, 2 = baseline missing.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.perf.regression import DEFAULT_THRESHOLD, check_engine_regression


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=os.path.join("benchmarks", "BENCH_engine.json"),
        help="committed benchmark file to gate against",
    )
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)
    if not os.path.exists(args.baseline):
        print(f"error: baseline file {args.baseline!r} not found", file=sys.stderr)
        return 2
    verdict = check_engine_regression(
        args.baseline, threshold=args.threshold, repeats=args.repeats
    )
    print(verdict.summary())
    return 0 if verdict.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
