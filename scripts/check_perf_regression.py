#!/usr/bin/env python
"""CI perf gate: fail when measured throughput drops >20% vs the committed
``benchmarks/BENCH_*.json`` files (engine ticks/s, batched SoA-engine
aggregate ticks/s, train env-steps/s, fused PPO-update steps/s, serve
intersections/s, and the sharded-simulation same-run speedup ratio).

Run from the repository root::

    PYTHONPATH=src python scripts/check_perf_regression.py

Exit code 0 = within budget, 1 = regression, 2 = baseline missing.
Missing baselines are detected for *all* enabled gates up front — every
absent file is reported and the script exits 2 before any benchmark
runs, so a misconfigured CI job fails in milliseconds instead of after
minutes of benching.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.perf.regression import (
    BATCHED_TRAIN_THRESHOLD,
    DEFAULT_THRESHOLD,
    SHARDED_THRESHOLD,
    check_batched_train_regression,
    check_engine_regression,
    check_engine_soa_regression,
    check_serve_regression,
    check_sharded_regression,
    check_train_regression,
    check_update_regression,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=os.path.join("benchmarks", "BENCH_engine.json"),
        help="committed engine benchmark file to gate against",
    )
    parser.add_argument(
        "--engine-soa-baseline",
        default=os.path.join("benchmarks", "BENCH_engine_soa.json"),
        help="committed batched SoA engine benchmark file to gate against",
    )
    parser.add_argument(
        "--train-baseline",
        default=os.path.join("benchmarks", "BENCH_train.json"),
        help="committed train benchmark file to gate against",
    )
    parser.add_argument(
        "--update-baseline",
        default=os.path.join("benchmarks", "BENCH_update.json"),
        help="committed update benchmark file to gate against",
    )
    parser.add_argument(
        "--serve-baseline",
        default=os.path.join("benchmarks", "BENCH_serve.json"),
        help="committed serve benchmark file to gate against",
    )
    parser.add_argument(
        "--sharded-baseline",
        default=os.path.join("benchmarks", "BENCH_sharded.json"),
        help="committed sharded-simulation benchmark file to gate against",
    )
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    parser.add_argument(
        "--sharded-threshold",
        type=float,
        default=SHARDED_THRESHOLD,
        help="allowed drop for the sharded speedup ratio (noisier than "
        "the throughput gates, so its floor is looser)",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--skip-engine-soa",
        action="store_true",
        help="skip the batched SoA engine benchmark gate",
    )
    parser.add_argument(
        "--skip-train", action="store_true", help="skip the train benchmark gate"
    )
    parser.add_argument(
        "--skip-batched-train",
        action="store_true",
        help="skip the batched-train speedup gate",
    )
    parser.add_argument(
        "--batched-train-threshold",
        type=float,
        default=BATCHED_TRAIN_THRESHOLD,
        help="allowed drop for the batched-vs-serial train speedup ratio",
    )
    parser.add_argument(
        "--skip-update", action="store_true", help="skip the update benchmark gate"
    )
    parser.add_argument(
        "--skip-serve", action="store_true", help="skip the serve benchmark gate"
    )
    parser.add_argument(
        "--skip-sharded",
        action="store_true",
        help="skip the sharded-simulation benchmark gate",
    )
    args = parser.parse_args(argv)

    gates: list[tuple[str, object]] = [
        (
            args.baseline,
            lambda path: check_engine_regression(
                path, threshold=args.threshold, repeats=args.repeats
            ),
        )
    ]
    if not args.skip_engine_soa:
        gates.append(
            (
                args.engine_soa_baseline,
                lambda path: check_engine_soa_regression(
                    path, threshold=args.threshold
                ),
            )
        )
    if not args.skip_train:
        gates.append(
            (
                args.train_baseline,
                lambda path: check_train_regression(path, threshold=args.threshold),
            )
        )
    if not args.skip_batched_train:
        # Same baseline file as the train gate: the batched section of
        # BENCH_train.json carries the same-run speedup ratio.
        gates.append(
            (
                args.train_baseline,
                lambda path: check_batched_train_regression(
                    path, threshold=args.batched_train_threshold
                ),
            )
        )
    if not args.skip_update:
        gates.append(
            (
                args.update_baseline,
                lambda path: check_update_regression(path, threshold=args.threshold),
            )
        )
    if not args.skip_serve:
        gates.append(
            (
                args.serve_baseline,
                lambda path: check_serve_regression(path, threshold=args.threshold),
            )
        )
    if not args.skip_sharded:
        gates.append(
            (
                args.sharded_baseline,
                lambda path: check_sharded_regression(
                    path, threshold=args.sharded_threshold
                ),
            )
        )

    # Every enabled gate's baseline is checked before any benchmark runs:
    # uniform exit 2, every absent file named.
    missing = [path for path, _ in gates if not os.path.exists(path)]
    if missing:
        for path in missing:
            print(f"error: baseline file {path!r} not found", file=sys.stderr)
        return 2

    exit_code = 0
    for path, check in gates:
        verdict = check(path)
        print(verdict.summary())
        if not verdict.ok:
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
