#!/usr/bin/env python3
"""Line-coverage floor for gated packages (stdlib only).

This environment has no ``coverage``/``pytest-cov``, so the gate runs a
package's test suite under the standard library's ``trace`` module and
computes line coverage over the package's sources.  Fails (exit 1) when
package coverage drops below the floor.

Gated packages and their default test selections:

* ``repro.obs`` (the original gate) — the observability suite,
* ``repro.scenarios`` — the scenario compiler / zoo / fuzz suite.

Run from the repository root::

    python scripts/check_obs_coverage.py [--floor 80]
    python scripts/check_obs_coverage.py --package repro.scenarios --floor 85

Exit code 0 = floor met, 1 = below floor or tests failed.
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
import trace

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))
sys.path.insert(0, os.path.join(REPO, "tests"))

#: Per-package default test selection that exercises it.
PACKAGE_TESTS = {
    "repro.obs": ["tests/obs", "tests/test_cli.py::TestObsCommands"],
    "repro.scenarios": [
        "tests/scenarios",
        "tests/test_cli.py::TestZooCommand",
        "tests/test_cli.py::TestScenarioFlag",
    ],
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--package", default="repro.obs",
                        choices=sorted(PACKAGE_TESTS),
                        help="dotted package under src/ whose coverage is gated")
    parser.add_argument("--floor", type=float, default=80.0,
                        help="minimum package line coverage percent")
    parser.add_argument("--tests", nargs="*", default=None,
                        help="pytest selection to run under the tracer "
                             "(default: the package's own suite)")
    args = parser.parse_args(argv)

    target = os.path.join(REPO, "src", *args.package.split("."))
    tests = PACKAGE_TESTS[args.package] if args.tests is None else args.tests

    import pytest

    tracer = trace.Trace(
        count=1, trace=0, ignoredirs=[sys.prefix, sys.exec_prefix]
    )
    exit_code = tracer.runfunc(
        pytest.main, [*tests, "-q", "-p", "no:cacheprovider"]
    )
    if exit_code != 0:
        print(f"error: traced test run failed (exit {exit_code})",
              file=sys.stderr)
        return 1

    hits: dict[str, set[int]] = {}
    for (filename, lineno), count in tracer.results().counts.items():
        if count > 0:
            hits.setdefault(os.path.abspath(filename), set()).add(lineno)

    total_executable = total_covered = 0
    print(f"\n{'file':<40} {'lines':>6} {'hit':>6} {'cover':>7}")
    for path in sorted(glob.glob(os.path.join(target, "*.py"))):
        executable = set(trace._find_executable_linenos(path))
        covered = executable & hits.get(os.path.abspath(path), set())
        total_executable += len(executable)
        total_covered += len(covered)
        percent = 100.0 * len(covered) / len(executable) if executable else 100.0
        name = os.path.relpath(path, REPO)
        print(f"{name:<40} {len(executable):>6} {len(covered):>6} {percent:>6.1f}%")

    rel_target = os.path.relpath(target, REPO)
    if total_executable == 0:
        print(f"error: no executable lines found under {rel_target}",
              file=sys.stderr)
        return 1
    package_percent = 100.0 * total_covered / total_executable
    print(f"\n{rel_target} package coverage: {package_percent:.1f}% "
          f"(floor {args.floor:.0f}%)")
    if package_percent < args.floor:
        print("error: coverage below floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
