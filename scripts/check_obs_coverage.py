#!/usr/bin/env python3
"""Line-coverage floor for the telemetry package (stdlib only).

This environment has no ``coverage``/``pytest-cov``, so the gate runs
the observability test suite under the standard library's ``trace``
module and computes line coverage over ``src/repro/obs``.  Fails (exit
1) when package coverage drops below the floor.

Run from the repository root::

    python scripts/check_obs_coverage.py [--floor 80]

Exit code 0 = floor met, 1 = below floor or tests failed.
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
import trace

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))
sys.path.insert(0, os.path.join(REPO, "tests"))

#: Package whose coverage is gated.
TARGET = os.path.join(REPO, "src", "repro", "obs")

#: Test selection that exercises the target package.
DEFAULT_TESTS = ["tests/obs", "tests/test_cli.py::TestObsCommands"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--floor", type=float, default=80.0,
                        help="minimum package line coverage percent")
    parser.add_argument("--tests", nargs="*", default=DEFAULT_TESTS,
                        help="pytest selection to run under the tracer")
    args = parser.parse_args(argv)

    import pytest

    tracer = trace.Trace(
        count=1, trace=0, ignoredirs=[sys.prefix, sys.exec_prefix]
    )
    exit_code = tracer.runfunc(
        pytest.main, [*args.tests, "-q", "-p", "no:cacheprovider"]
    )
    if exit_code != 0:
        print(f"error: traced test run failed (exit {exit_code})",
              file=sys.stderr)
        return 1

    hits: dict[str, set[int]] = {}
    for (filename, lineno), count in tracer.results().counts.items():
        if count > 0:
            hits.setdefault(os.path.abspath(filename), set()).add(lineno)

    total_executable = total_covered = 0
    print(f"\n{'file':<40} {'lines':>6} {'hit':>6} {'cover':>7}")
    for path in sorted(glob.glob(os.path.join(TARGET, "*.py"))):
        executable = set(trace._find_executable_linenos(path))
        covered = executable & hits.get(os.path.abspath(path), set())
        total_executable += len(executable)
        total_covered += len(covered)
        percent = 100.0 * len(covered) / len(executable) if executable else 100.0
        name = os.path.relpath(path, REPO)
        print(f"{name:<40} {len(executable):>6} {len(covered):>6} {percent:>6.1f}%")

    if total_executable == 0:
        print("error: no executable lines found under src/repro/obs",
              file=sys.stderr)
        return 1
    package_percent = 100.0 * total_covered / total_executable
    print(f"\nsrc/repro/obs package coverage: {package_percent:.1f}% "
          f"(floor {args.floor:.0f}%)")
    if package_percent < args.floor:
        print("error: coverage below floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
