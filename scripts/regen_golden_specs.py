#!/usr/bin/env python3
"""Regenerate the golden scenario-spec fixtures.

Exports the canonical zoo scenarios pinned by
``tests/scenarios/test_golden_specs.py`` — each entry's *canonical*
(compiled, round-tripped) spec JSON plus a digest manifest — into
``tests/scenarios/golden/``.  Only run this after an *intentional*
change to the spec schema, the zoo builders, or network serialisation,
and review the fixture diff before committing: a digest drift means
every previously-exported spec file in the wild now compiles to a
different scenario.

Usage:
    PYTHONPATH=src python scripts/regen_golden_specs.py
"""

from __future__ import annotations

import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.scenarios.spec import (  # noqa: E402
    scenario_digest,
    scenario_to_spec,
)
from repro.scenarios.zoo import build_zoo_scenario  # noqa: E402

#: (name, seed) pairs pinned as golden; keep in sync with the test.
GOLDEN_ENTRIES = (
    ("commuter_day", 0),
    ("incident_closure", 0),
    ("stadium_surge", 2),
)


def main() -> int:
    golden_dir = os.path.join(REPO, "tests", "scenarios", "golden")
    os.makedirs(golden_dir, exist_ok=True)
    manifest = {}
    for name, seed in GOLDEN_ENTRIES:
        scenario = build_zoo_scenario(name, seed=seed)
        canonical = scenario_to_spec(scenario)
        filename = f"{name}-s{seed}.json"
        path = os.path.join(golden_dir, filename)
        with open(path, "w") as handle:
            json.dump(canonical, handle, indent=2, sort_keys=True)
            handle.write("\n")
        manifest[filename] = scenario_digest(scenario)
        print(f"wrote {path}")
    manifest_path = os.path.join(golden_dir, "digests.json")
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {manifest_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
