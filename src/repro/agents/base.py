"""Agent-system interface and shared checkpoint plumbing.

An *agent system* controls every signalized intersection in the
environment at once (one logical policy per intersection, possibly with
shared parameters or inter-agent communication).  The training runner
(:mod:`repro.rl.runner`) drives any implementation of this interface,
which keeps Fixedtime, SingleAgentRL, MA2C, CoLight and PairUpLight
interchangeable in experiments.
"""

from __future__ import annotations

import numpy as np

from repro.env.tsc_env import StepResult, TrafficSignalEnv
from repro.errors import CheckpointError
from repro.nn.serialization import atomic_savez, read_archive


class AgentSystem:
    """Base class for all controllers (learning or not)."""

    #: Human-readable name used in experiment tables.
    name: str = "base"

    def begin_episode(self, env: TrafficSignalEnv, training: bool) -> None:
        """Reset per-episode state (hidden states, messages, buffers)."""

    def act(
        self,
        observations: dict[str, np.ndarray],
        env: TrafficSignalEnv,
        training: bool,
    ) -> dict[str, int]:
        """Choose a phase index for every agent."""
        raise NotImplementedError

    def observe(self, result: StepResult, env: TrafficSignalEnv) -> None:
        """Record a transition during training (no-op for static agents)."""

    def end_episode(self, env: TrafficSignalEnv, training: bool) -> dict:
        """Run learning updates at episode end; returns diagnostics."""
        return {}

    # ------------------------------------------------------------------
    # Introspection used by the communication-overhead analysis
    # ------------------------------------------------------------------
    def communication_bits_per_step(self, env: TrafficSignalEnv) -> int:
        """Bits of information received from *other* intersections per
        agent per decision step during execution (Table IV)."""
        return 0

    # ------------------------------------------------------------------
    # Telemetry (opt-in; see repro.obs)
    # ------------------------------------------------------------------
    def attach_telemetry(self, telemetry) -> None:
        """Give the system a :class:`repro.obs.telemetry.Telemetry` sink.

        The default is a no-op; wrappers that own their own fault
        schedules (e.g. :class:`repro.faults.controller.ControllerFaultWrapper`)
        override this to route activation events into the sink.
        """

    # ------------------------------------------------------------------
    # Checkpointing (default implementation over named networks)
    # ------------------------------------------------------------------
    def _checkpoint_modules(self) -> dict:
        """Named networks to persist; override in learning systems."""
        return {}

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat weight map over all :meth:`_checkpoint_modules` networks."""
        state: dict[str, np.ndarray] = {}
        for module_name, module in self._checkpoint_modules().items():
            for name, value in module.state_dict().items():
                state[f"{module_name}.{name}"] = value
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`state_dict`."""
        for module_name, module in self._checkpoint_modules().items():
            prefix = f"{module_name}."
            module.load_state_dict(
                {
                    key[len(prefix):]: value
                    for key, value in state.items()
                    if key.startswith(prefix)
                }
            )

    def save(self, path) -> None:
        """Persist all network weights to an ``.npz`` archive atomically."""
        state = self.state_dict()
        if not state:
            raise ValueError(f"{self.name} has no weights to save")
        atomic_savez(path, state)

    def load(self, path) -> None:
        """Load weights written by :meth:`save`.

        Unreadable archives and key/shape mismatches raise
        :class:`repro.errors.CheckpointError`.
        """
        state = read_archive(path)
        try:
            self.load_state_dict(state)
        except (KeyError, ValueError) as error:
            raise CheckpointError(
                f"checkpoint does not match {self.name}: {error}"
            ) from error

    # ------------------------------------------------------------------
    # Training-state capture (crash-safe resume; see rl.runner.train)
    # ------------------------------------------------------------------
    def training_state(self) -> dict[str, np.ndarray]:
        """Arrays beyond the weights needed to resume training exactly
        (optimizer moments, RNG streams).  Static agents have none."""
        return {}

    def load_training_state(self, state: dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`training_state`."""
        if state:
            raise CheckpointError(
                f"{self.name} cannot restore training state "
                f"(unexpected keys {sorted(state)[:4]}...)"
            )
