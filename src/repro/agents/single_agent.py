"""SingleAgentRL baseline (paper Section VI-B).

One PPO policy trained on local observations only and applied uniformly
to every intersection: no communication, no neighbour information, and a
*local* critic (unlike PairUpLight's centralized one).  Training batches
all intersections' experience through the single shared network, which
is what "its learned policy is uniformly applied to all intersections"
amounts to in a homogeneous grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.agents.base import AgentSystem
from repro.env.tsc_env import StepResult, TrafficSignalEnv
from repro.errors import ConfigError
from repro.nn import functional as F
from repro.nn.linear import Linear
from repro.nn.lstm import LSTMCell
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, stack
from repro.rl.buffer import RolloutBuffer
from repro.rl.gae import compute_gae
from repro.rl.ppo import PPOConfig, PPOUpdater


class LocalActor(Module):
    """Recurrent policy over local observations only."""

    def __init__(
        self,
        obs_dim: int,
        num_phases: int,
        hidden_size: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.obs_dim = obs_dim
        self.encoder = Linear(obs_dim, hidden_size, rng)
        self.lstm = LSTMCell(hidden_size, hidden_size, rng)
        self.policy_head = Linear(hidden_size, num_phases, rng, gain=0.01)

    def initial_state(self, batch: int = 1):
        return self.lstm.initial_state(batch)

    def forward(self, obs, state):
        hidden = self.encoder(Tensor.ensure(obs)).tanh()
        hidden, new_state = self.lstm(hidden, state)
        return self.policy_head(hidden), new_state


class LocalCritic(Module):
    """Recurrent value function over local observations only."""

    def __init__(self, obs_dim: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.obs_dim = obs_dim
        self.encoder = Linear(obs_dim, hidden_size, rng)
        self.lstm = LSTMCell(hidden_size, hidden_size, rng)
        self.value_head = Linear(hidden_size, 1, rng, gain=1.0)

    def initial_state(self, batch: int = 1):
        return self.lstm.initial_state(batch)

    def forward(self, obs, state):
        hidden = self.encoder(Tensor.ensure(obs)).tanh()
        hidden, new_state = self.lstm(hidden, state)
        value = self.value_head(hidden)
        return value.reshape(value.shape[0]), new_state


@dataclass
class SingleAgentConfig:
    """Hyperparameters for the SingleAgentRL baseline."""

    hidden_size: int = 64
    epsilon: float = 0.05
    lr: float = 1e-3
    ppo: PPOConfig = field(default_factory=PPOConfig)

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon < 1.0:
            raise ConfigError("epsilon must lie in [0, 1)")


class SingleAgentSystem(AgentSystem):
    """Shared local PPO policy applied uniformly to all intersections."""

    name = "SingleAgent"

    def __init__(
        self,
        env: TrafficSignalEnv,
        config: SingleAgentConfig | None = None,
        seed: int = 0,
    ) -> None:
        if not env.homogeneous:
            raise ConfigError(
                "SingleAgentRL applies one policy uniformly and requires "
                "homogeneous intersections"
            )
        self.config = config or SingleAgentConfig()
        self._rng = np.random.default_rng(seed)
        self.agent_ids = list(env.agent_ids)
        self.num_agents = len(self.agent_ids)
        net_rng = np.random.default_rng(seed + 1)
        obs_dim = env.observation_spaces[self.agent_ids[0]].dim
        num_phases = env.action_spaces[self.agent_ids[0]].n
        self.actor = LocalActor(obs_dim, num_phases, self.config.hidden_size, net_rng)
        self.critic = LocalCritic(obs_dim, self.config.hidden_size, net_rng)
        params = list(self.actor.parameters()) + list(self.critic.parameters())
        self._optimizer = Adam(params, lr=self.config.lr)
        self._ppo = PPOUpdater(
            params,
            [self._optimizer],
            self.config.ppo,
            rng=np.random.default_rng(seed + 2),
        )
        self.buffer = RolloutBuffer()
        self._actor_state = None
        self._critic_state = None
        self._pending: dict | None = None
        self._final_obs: np.ndarray | None = None

    def begin_episode(self, env: TrafficSignalEnv, training: bool) -> None:
        self.buffer.clear()
        self._pending = None
        self._actor_state = self.actor.initial_state(self.num_agents)
        self._critic_state = self.critic.initial_state(self.num_agents)

    def act(
        self,
        observations: dict[str, np.ndarray],
        env: TrafficSignalEnv,
        training: bool,
    ) -> dict[str, int]:
        cfg = self.config
        obs = np.stack([observations[a] for a in self.agent_ids])
        logits_t, new_state = self.actor(obs, self._actor_state)
        self._actor_state = (new_state[0].detach(), new_state[1].detach())
        actions = np.zeros(self.num_agents, dtype=np.int64)
        logprobs = np.zeros(self.num_agents)
        for index in range(self.num_agents):
            row = logits_t.data[index]
            probs = np.exp(row - row.max())
            probs /= probs.sum()
            if training and self._rng.random() < cfg.epsilon:
                action = int(self._rng.integers(len(probs)))
            elif training:
                action = F.categorical_sample(probs, self._rng)
            else:
                action = int(np.argmax(probs))
            actions[index] = action
            logprobs[index] = math.log(max(probs[action], 1e-12))
        if training:
            values_t, new_cstate = self.critic(obs, self._critic_state)
            self._critic_state = (new_cstate[0].detach(), new_cstate[1].detach())
            self._pending = {
                "obs": obs,
                "action": actions,
                "logprob": logprobs,
                "value": values_t.data.copy(),
            }
        return {a: int(actions[i]) for i, a in enumerate(self.agent_ids)}

    def observe(self, result: StepResult, env: TrafficSignalEnv) -> None:
        if self._pending is None:
            return
        rewards = np.asarray(
            [result.rewards[a] for a in self.agent_ids], dtype=np.float64
        )
        self.buffer.add(rewards=rewards, **self._pending)
        self._pending = None
        self._final_obs = np.stack(
            [result.observations[a] for a in self.agent_ids]
        )

    def end_episode(self, env: TrafficSignalEnv, training: bool) -> dict:
        if not training or len(self.buffer) == 0:
            return {}
        data = self.buffer.stacked()
        bootstrap_t, _ = self.critic(self._final_obs, self._critic_state)
        advantages, returns = compute_gae(
            data["rewards"],
            data["value"],
            bootstrap_t.data.copy(),
            gamma=self.config.ppo.gamma,
            lam=self.config.ppo.lam,
        )
        stats = self._ppo.update(
            lambda batch: self._evaluate(data, batch),
            data["logprob"],
            advantages,
            returns,
            old_values=data["value"],
        )
        self.buffer.clear()
        return {
            "policy_loss": stats.policy_loss,
            "value_loss": stats.value_loss,
            "entropy": stats.entropy,
            "approx_kl": stats.approx_kl,
        }

    def _checkpoint_modules(self) -> dict:
        return {"actor": self.actor, "critic": self.critic}

    def _evaluate(self, data: dict[str, np.ndarray], batch: np.ndarray):
        horizon = data["obs"].shape[0]
        batch = np.asarray(batch, dtype=np.int64)
        a_state = self.actor.initial_state(len(batch))
        c_state = self.critic.initial_state(len(batch))
        logprob_steps, entropy_steps, value_steps = [], [], []
        for t in range(horizon):
            obs = data["obs"][t, batch]
            logits, a_state = self.actor(obs, a_state)
            log_probs = F.log_softmax(logits)
            probs = F.softmax(logits)
            logprob_steps.append(F.gather(log_probs, data["action"][t, batch]))
            entropy_steps.append(F.entropy(probs))
            value, c_state = self.critic(obs, c_state)
            value_steps.append(value)
        return (
            stack(logprob_steps, axis=0),
            stack(entropy_steps, axis=0),
            stack(value_steps, axis=0),
        )
