"""Traffic-signal controllers: PairUpLight and all paper baselines."""

from repro.agents.base import AgentSystem
from repro.agents.colight import CoLightConfig, CoLightNetwork, CoLightSystem
from repro.agents.fixed_time import FixedTimeSystem
from repro.agents.iql import IQLConfig, IQLNetwork, IQLSystem
from repro.agents.ma2c import MA2CConfig, MA2CNetwork, MA2CSystem
from repro.agents.max_pressure import LongestQueueSystem, MaxPressureSystem
from repro.agents.pairuplight import (
    PairUpLightConfig,
    PairUpLightSystem,
)
from repro.agents.single_agent import SingleAgentConfig, SingleAgentSystem

__all__ = [
    "AgentSystem",
    "CoLightConfig",
    "CoLightNetwork",
    "CoLightSystem",
    "FixedTimeSystem",
    "IQLConfig",
    "IQLNetwork",
    "IQLSystem",
    "LongestQueueSystem",
    "MA2CConfig",
    "MA2CNetwork",
    "MA2CSystem",
    "MaxPressureSystem",
    "PairUpLightConfig",
    "PairUpLightSystem",
    "SingleAgentConfig",
    "SingleAgentSystem",
]
