"""CoLight baseline (Wei et al., 2019, as described in paper Section VI-B).

A parameter-shared Deep Q-Network whose state encoder applies multi-head
graph attention over each intersection's neighbourhood (itself plus its
adjacent intersections), so the Q-values of every agent are informed by
a learned weighting of neighbour observations.  Standard DQN training:
epsilon-greedy behaviour, uniform replay, target network, Huber loss.

Requires homogeneous intersections (shared network) — the paper notes
CoLight cannot be applied to the heterogeneous Monaco network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.agents.base import AgentSystem
from repro.env.tsc_env import StepResult, TrafficSignalEnv
from repro.errors import ConfigError
from repro.nn.attention import GraphAttention
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.rl.dqn import DQNConfig, DQNUpdater

#: Neighbourhood size: the agent itself + up to four neighbours.
NEIGHBOURHOOD = 5


class CoLightNetwork(Module):
    """Observation embedding -> graph attention -> per-phase Q-values."""

    def __init__(
        self,
        obs_dim: int,
        num_phases: int,
        embed_dim: int,
        num_heads: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.obs_dim = obs_dim
        self.num_phases = num_phases
        self.embed_dim = embed_dim
        self.embed = Linear(obs_dim, embed_dim, rng, init="he", gain=1.0)
        self.attention = GraphAttention(embed_dim, num_heads, rng)
        self.q_head = Linear(embed_dim, num_phases, rng, gain=0.1)

    def forward(
        self, self_obs: np.ndarray, neighbourhood_obs: np.ndarray, mask: np.ndarray
    ) -> Tensor:
        """Q-values ``(B, num_phases)``.

        ``self_obs`` is ``(B, obs_dim)``; ``neighbourhood_obs`` is
        ``(B, K, obs_dim)`` with the agent itself in slot 0; ``mask`` is
        ``(B, K)`` with ``False`` marking padding.
        """
        batch, k, _ = neighbourhood_obs.shape
        self_embed = self.embed(Tensor.ensure(self_obs)).relu()
        flat = Tensor.ensure(neighbourhood_obs.reshape(batch * k, -1))
        neigh_embed = self.embed(flat).relu().reshape(batch, k, self.embed_dim)
        attended = self.attention(self_embed, neigh_embed, mask)
        return self.q_head(attended)


@dataclass
class CoLightConfig:
    """Hyperparameters of the CoLight baseline."""

    embed_dim: int = 64
    num_heads: int = 4
    lr: float = 1e-3
    update_interval: int = 5  # decision steps between TD updates
    dqn: DQNConfig = field(default_factory=DQNConfig)

    def __post_init__(self) -> None:
        if self.update_interval <= 0:
            raise ConfigError("update_interval must be positive")


class CoLightSystem(AgentSystem):
    """Parameter-shared GAT-DQN controller."""

    name = "CoLight"

    def __init__(
        self,
        env: TrafficSignalEnv,
        config: CoLightConfig | None = None,
        seed: int = 0,
    ) -> None:
        if not env.homogeneous:
            raise ConfigError(
                "CoLight shares one Q-network and requires homogeneous "
                "intersections (the paper makes the same observation for Monaco)"
            )
        self.config = config or CoLightConfig()
        self._rng = np.random.default_rng(seed)
        self.agent_ids = list(env.agent_ids)
        self.num_agents = len(self.agent_ids)
        obs_dim = env.observation_spaces[self.agent_ids[0]].dim
        num_phases = env.action_spaces[self.agent_ids[0]].n
        net_rng = np.random.default_rng(seed + 1)
        self.online = CoLightNetwork(
            obs_dim, num_phases, self.config.embed_dim, self.config.num_heads, net_rng
        )
        self.target = CoLightNetwork(
            obs_dim, num_phases, self.config.embed_dim, self.config.num_heads, net_rng
        )
        params = list(self.online.parameters())
        self.updater = DQNUpdater(
            params,
            Adam(params, lr=self.config.lr),
            self.online,
            self.target,
            self.config.dqn,
            seed=seed + 2,
        )
        # Static neighbourhoods: self in slot 0, then up to 4 neighbours.
        self.neighbourhoods: dict[str, list[str | None]] = {}
        for agent_id in self.agent_ids:
            members: list[str | None] = [agent_id] + list(env.neighbours(agent_id))
            members = members[:NEIGHBOURHOOD]
            while len(members) < NEIGHBOURHOOD:
                members.append(None)
            self.neighbourhoods[agent_id] = members
        self._obs_dim = obs_dim
        self._pending: dict | None = None
        self._decision_count = 0

    # ------------------------------------------------------------------
    def _gather(
        self, observations: dict[str, np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stack (self_obs, neighbourhood_obs, mask) for all agents."""
        self_obs = np.stack([observations[a] for a in self.agent_ids])
        neigh = np.zeros((self.num_agents, NEIGHBOURHOOD, self._obs_dim))
        mask = np.zeros((self.num_agents, NEIGHBOURHOOD), dtype=bool)
        for index, agent_id in enumerate(self.agent_ids):
            for slot, member in enumerate(self.neighbourhoods[agent_id]):
                if member is None:
                    continue
                neigh[index, slot] = observations[member]
                mask[index, slot] = True
        return self_obs, neigh, mask

    def begin_episode(self, env: TrafficSignalEnv, training: bool) -> None:
        self._pending = None

    def act(
        self,
        observations: dict[str, np.ndarray],
        env: TrafficSignalEnv,
        training: bool,
    ) -> dict[str, int]:
        self_obs, neigh, mask = self._gather(observations)
        q_values = self.online(self_obs, neigh, mask).data
        actions = np.argmax(q_values, axis=1).astype(np.int64)
        if training:
            epsilon = self.updater.current_epsilon()
            explore = self._rng.random(self.num_agents) < epsilon
            random_actions = self._rng.integers(
                q_values.shape[1], size=self.num_agents
            )
            actions = np.where(explore, random_actions, actions)
            self._pending = {
                "self_obs": self_obs,
                "neigh": neigh,
                "mask": mask,
                "actions": actions.copy(),
            }
            self.updater.record_step()
        return {a: int(actions[i]) for i, a in enumerate(self.agent_ids)}

    def observe(self, result: StepResult, env: TrafficSignalEnv) -> None:
        if self._pending is None:
            return
        next_self, next_neigh, next_mask = self._gather(result.observations)
        pending = self._pending
        self._pending = None
        for index, agent_id in enumerate(self.agent_ids):
            self.updater.replay.add(
                {
                    "self_obs": pending["self_obs"][index],
                    "neigh": pending["neigh"][index],
                    "mask": pending["mask"][index],
                    "action": int(pending["actions"][index]),
                    "reward": float(result.rewards[agent_id]),
                    "next_self_obs": next_self[index],
                    "next_neigh": next_neigh[index],
                    "next_mask": next_mask[index],
                    "done": bool(result.done),
                }
            )
        self._decision_count += 1
        if self._decision_count % self.config.update_interval == 0:
            self.updater.update(self._q_batch, self._target_q_batch)

    def end_episode(self, env: TrafficSignalEnv, training: bool) -> dict:
        if not training:
            return {}
        stats = self.updater.update(self._q_batch, self._target_q_batch)
        if stats is None:
            return {}
        return {"loss": stats.loss, "mean_q": stats.mean_q}

    # ------------------------------------------------------------------
    def _checkpoint_modules(self) -> dict:
        return {"online": self.online}

    def _q_batch(self, batch: list[dict]) -> Tensor:
        self_obs = np.stack([t["self_obs"] for t in batch])
        neigh = np.stack([t["neigh"] for t in batch])
        mask = np.stack([t["mask"] for t in batch])
        return self.online(self_obs, neigh, mask)

    def _target_q_batch(self, batch: list[dict]) -> np.ndarray:
        self_obs = np.stack([t["next_self_obs"] for t in batch])
        neigh = np.stack([t["next_neigh"] for t in batch])
        mask = np.stack([t["next_mask"] for t in batch])
        return self.target(self_obs, neigh, mask).data

    # ------------------------------------------------------------------
    def communication_bits_per_step(self, env: TrafficSignalEnv) -> int:
        """Link-level observations from up to four neighbours (Table IV)."""
        neighbours = [
            m for m in self.neighbourhoods[self.agent_ids[0]][1:] if m is not None
        ]
        return len(neighbours) * self._obs_dim * 32
