"""The PairUpLight agent system (paper Section V, Algorithm 1).

Combines the coordinated actor (local observation + one incoming
message -> phase distribution + outgoing message), the noisy-logistic
message channel, upstream-congestion partner selection, and the
centralized two-hop critic, all trained with PPO + GAE under CTDE with
optional parameter sharing.

Execution-time information flow per decision step ``t``:

1. every agent reads the regularized message its partner posted at
   ``t - 1`` (zero at episode start — Algorithm 1 line 4),
2. the actor consumes ``(o_t, m_hat_{t-1})`` and produces phase logits
   and a raw outgoing message mean,
3. the channel regularizes the outgoing message and posts it for step
   ``t + 1``.

The critic runs only during training (CTDE): its value estimates are
stored during rollout and re-evaluated during the PPO epochs.

With parameter sharing (homogeneous grids) the agents form a batch
dimension through one shared actor/critic pair, which keeps both acting
and the PPO re-evaluation fully vectorised; heterogeneous networks fall
back to per-agent networks (paper Section V-A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.agents.base import AgentSystem
from repro.agents.pairuplight.actor import CoordinatedActor
from repro.agents.pairuplight.critic import CentralizedCritic, CriticFeatureBuilder
from repro.agents.pairuplight.messaging import (
    FaultyMessageChannel,
    MessageBoard,
    MessageRegularizer,
    ResilientMessageReader,
    select_partner,
)
from repro.env.tsc_env import StepResult, TrafficSignalEnv
from repro.errors import ConfigError
from repro.nn import functional as F
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad, stack
from repro.rl.buffer import RolloutBuffer
from repro.rl.gae import compute_gae
from repro.rl.ppo import PPOConfig, PPOUpdater

#: Bits on the wire per transmitted message element (32-bit value,
#: Table IV's accounting unit).
BITS_PER_MESSAGE_ELEMENT = 32


@dataclass
class PairUpLightConfig:
    """Hyperparameters of the full PairUpLight system."""

    message_dim: int = 1
    hidden_size: int = 64
    sigma: float = 0.25
    epsilon: float = 0.05
    lr: float = 1e-3
    parameter_sharing: bool = True
    communicate: bool = True
    #: Partner-selection strategy (see messaging.select_partner):
    #: "upstream" (paper), "self", "random", or "fixed".
    partner_strategy: str = "upstream"
    #: Whether the critic sees one-/two-hop neighbour pressures (paper)
    #: or only the local observation (ablation).
    centralized_critic: bool = True
    #: Graceful degradation under message loss: reuse the last received
    #: message with staleness decay, then self-pair.  Disable for the
    #: no-fallback ablation (lost messages read as zeros).
    degrade_on_loss: bool = True
    #: Attenuation applied per step of staleness to a reused message.
    message_decay: float = 0.5
    #: Staleness (consecutive losses) beyond which the agent self-pairs.
    max_staleness: int = 3
    #: Use the fused single-kernel LSTM/affine ops in the actor and
    #: critic (bit-exact with the composed op chain; ``False`` runs the
    #: composed path for ablations and equivalence testing).
    fused: bool = True
    #: Re-evaluate sequences with the pre-fusion per-step head loop
    #: (log-softmax/entropy/value computed inside the unroll instead of
    #: once over the stacked hidden states).  Slower; kept as the
    #: reference update path that ``bench_update`` measures its speedup
    #: against, and as an evaluator-structure ablation.
    stepwise_eval: bool = False
    ppo: PPOConfig = field(default_factory=PPOConfig)

    def __post_init__(self) -> None:
        if self.message_dim <= 0:
            raise ConfigError("message_dim must be positive")
        if not 0.0 <= self.epsilon < 1.0:
            raise ConfigError("epsilon must lie in [0, 1)")
        if self.sigma <= 0:
            raise ConfigError("sigma must be positive")
        if self.partner_strategy not in ("upstream", "self", "random", "fixed"):
            raise ConfigError(f"unknown partner strategy {self.partner_strategy!r}")
        if not 0.0 <= self.message_decay <= 1.0:
            raise ConfigError("message_decay must lie in [0, 1]")
        if self.max_staleness < 0:
            raise ConfigError("max_staleness must be non-negative")


class PairUpLightSystem(AgentSystem):
    """Controller for every intersection using the PairUpLight model."""

    name = "PairUpLight"

    def __init__(
        self,
        env: TrafficSignalEnv,
        config: PairUpLightConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config or PairUpLightConfig()
        if not self.config.communicate:
            self.name = "PairUpLight-NoComm"
        self._rng = np.random.default_rng(seed)
        self.agent_ids = list(env.agent_ids)
        self.num_agents = len(self.agent_ids)
        self.feature_builder = CriticFeatureBuilder(
            env, centralized=self.config.centralized_critic
        )
        cfg = self.config

        if cfg.parameter_sharing and not env.homogeneous:
            raise ConfigError(
                "parameter sharing requires homogeneous intersections; "
                "set parameter_sharing=False for this network"
            )
        net_rng = np.random.default_rng(seed + 1)
        if cfg.parameter_sharing:
            obs_dim = env.observation_spaces[self.agent_ids[0]].dim
            num_phases = env.action_spaces[self.agent_ids[0]].n
            feat_dim = self.feature_builder.feature_dim(self.agent_ids[0])
            self.shared_actor: CoordinatedActor | None = CoordinatedActor(
                obs_dim,
                num_phases,
                cfg.message_dim,
                cfg.hidden_size,
                net_rng,
                fused=cfg.fused,
            )
            self.shared_critic: CentralizedCritic | None = CentralizedCritic(
                feat_dim, cfg.hidden_size, net_rng, fused=cfg.fused
            )
            self._unique_actors = [self.shared_actor]
            self._unique_critics = [self.shared_critic]
            self.actors = {a: self.shared_actor for a in self.agent_ids}
            self.critics = {a: self.shared_critic for a in self.agent_ids}
        else:
            self.shared_actor = None
            self.shared_critic = None
            self.actors = {}
            self.critics = {}
            for agent_id in self.agent_ids:
                self.actors[agent_id] = CoordinatedActor(
                    env.observation_spaces[agent_id].dim,
                    env.action_spaces[agent_id].n,
                    cfg.message_dim,
                    cfg.hidden_size,
                    net_rng,
                    fused=cfg.fused,
                )
                self.critics[agent_id] = CentralizedCritic(
                    self.feature_builder.feature_dim(agent_id),
                    cfg.hidden_size,
                    net_rng,
                    fused=cfg.fused,
                )
            self._unique_actors = [self.actors[a] for a in self.agent_ids]
            self._unique_critics = [self.critics[a] for a in self.agent_ids]

        # Stacking widths are fixed by the network topology — resolve once.
        self._obs_width_cached = max(self.actors[a].obs_dim for a in self.agent_ids)
        self._feat_width_cached = max(
            self.critics[a].feature_dim for a in self.agent_ids
        )
        params = [
            p
            for net in self._unique_actors + self._unique_critics
            for p in net.parameters()
        ]
        self._optimizer = Adam(params, lr=cfg.lr)
        self._ppo = PPOUpdater(
            params, [self._optimizer], cfg.ppo, rng=np.random.default_rng(seed + 2)
        )
        self.regularizer = MessageRegularizer(cfg.sigma, seed=seed + 3)
        self.board = MessageBoard(self.agent_ids, cfg.message_dim)
        self.resilient_reader = ResilientMessageReader(
            self.agent_ids, cfg.message_dim, cfg.message_decay, cfg.max_staleness
        )
        self._channel: FaultyMessageChannel | None = None
        self.buffer = RolloutBuffer()
        # Recurrent state: batched (h, c) arrays in shared mode, per-agent
        # dictionaries otherwise.
        self._actor_state: tuple | dict[str, tuple] | None = None
        self._critic_state: tuple | dict[str, tuple] | None = None
        self._pending: dict | None = None
        self._final_obs: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Episode lifecycle
    # ------------------------------------------------------------------
    def begin_episode(self, env: TrafficSignalEnv, training: bool) -> None:
        self.board.reset()
        self.buffer.clear()
        self._pending = None
        self.resilient_reader.reset()
        # Bind to the environment's fault schedule (if any): message
        # faults are injected on the read path, between board and actor.
        schedule = getattr(env, "fault_schedule", None)
        if schedule is not None and schedule.config.any_message_faults:
            self._channel = FaultyMessageChannel(
                schedule,
                self.agent_ids,
                self.config.message_dim,
                clock=lambda: env.sim.time if env.sim is not None else None,
            )
        else:
            self._channel = None
        if self.config.parameter_sharing:
            self._actor_state = self.shared_actor.initial_state(self.num_agents)
            self._critic_state = self.shared_critic.initial_state(self.num_agents)
        else:
            self._actor_state = {
                a: self.actors[a].initial_state(1) for a in self.agent_ids
            }
            self._critic_state = {
                a: self.critics[a].initial_state(1) for a in self.agent_ids
            }

    # ------------------------------------------------------------------
    # Acting
    # ------------------------------------------------------------------
    def _read_incoming(self, env: TrafficSignalEnv) -> np.ndarray:
        """Gather each agent's incoming message (previous-step postings).

        When the environment injects communication faults the read goes
        through the lossy channel; a lost message is then resolved by the
        resilient reader (staleness-decayed reuse, then self-pairing) or
        — for the no-fallback ablation — read as zeros.
        """
        cfg = self.config
        incoming = np.zeros((self.num_agents, cfg.message_dim))
        if cfg.communicate:
            for index, agent_id in enumerate(self.agent_ids):
                partner = select_partner(
                    env, agent_id, strategy=cfg.partner_strategy, rng=self._rng
                )
                message: np.ndarray | None = self.board.read(partner)
                if self._channel is not None:
                    message = self._channel.deliver(agent_id, message)
                if cfg.degrade_on_loss:
                    message = self.resilient_reader.receive(
                        agent_id, message, self.board.read(agent_id)
                    )
                elif message is None:
                    message = np.zeros(cfg.message_dim)
                incoming[index] = message
        return incoming

    def _sample_actions(
        self, probs_rows: list[np.ndarray], training: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Epsilon-greedy / categorical sampling (Algorithm 1 lines 13-14)."""
        cfg = self.config
        actions = np.zeros(len(probs_rows), dtype=np.int64)
        logprobs = np.zeros(len(probs_rows))
        for index, probs in enumerate(probs_rows):
            if training and self._rng.random() < cfg.epsilon:
                action = int(self._rng.integers(len(probs)))
            elif training:
                action = F.categorical_sample(probs, self._rng)
            else:
                action = int(np.argmax(probs))
            actions[index] = action
            logprobs[index] = math.log(max(probs[action], 1e-12))
        return actions, logprobs

    def act(
        self,
        observations: dict[str, np.ndarray],
        env: TrafficSignalEnv,
        training: bool,
    ) -> dict[str, int]:
        return self._act_impl(observations, env, training)

    def _act_impl(
        self,
        observations: dict[str, np.ndarray],
        env: TrafficSignalEnv,
        training: bool,
        critic_feats: np.ndarray | None = None,
    ) -> dict[str, int]:
        """Body of :meth:`act`.

        ``critic_feats`` (``(num_agents, feat_width)``) lets the batched
        lockstep path pass in pre-assembled critic features; the values
        are identical to what :class:`CriticFeatureBuilder` would build
        from ``observations``, so the default per-agent assembly below is
        the reference the batched path is tested against.
        """
        cfg = self.config
        incoming = self._read_incoming(env)
        obs_rows = [observations[a] for a in self.agent_ids]

        # Acting only ever reads ``.data`` from these forwards — PPO
        # re-evaluates the stored transitions at update time — so skip
        # graph construction entirely.
        with no_grad():
            if cfg.parameter_sharing:
                obs = np.stack(obs_rows)
                logits_t, msg_mean_t, new_state = self.shared_actor(
                    obs, incoming, self._actor_state
                )
                self._actor_state = (new_state[0].detach(), new_state[1].detach())
                logits = logits_t.data
                msg_means = msg_mean_t.data
            else:
                logits_rows = []
                msg_rows = []
                for index, agent_id in enumerate(self.agent_ids):
                    logit, msg_mean, new_state = self.actors[agent_id](
                        obs_rows[index].reshape(1, -1),
                        incoming[index].reshape(1, -1),
                        self._actor_state[agent_id],
                    )
                    self._actor_state[agent_id] = (
                        new_state[0].detach(),
                        new_state[1].detach(),
                    )
                    logits_rows.append(logit.data[0])
                    msg_rows.append(msg_mean.data[0])
                logits = logits_rows
                msg_means = np.stack(msg_rows)

        probs_rows = [_softmax_1d(np.asarray(row)) for row in logits]
        actions, action_logprobs = self._sample_actions(probs_rows, training)
        m_hat, raw_msg, msg_logprobs = self.regularizer.transmit(msg_means, training)
        logprobs = action_logprobs + (msg_logprobs if cfg.communicate else 0.0)

        for index, agent_id in enumerate(self.agent_ids):
            self.board.post(agent_id, m_hat[index])

        if training:
            if critic_feats is None:
                critic_feats = np.stack(
                    [
                        _pad(self.feature_builder.build(a, observations[a]), self._feat_width())
                        for a in self.agent_ids
                    ]
                )
            values = self._critic_values(critic_feats, advance_state=True)
            self._pending = {
                "obs": np.stack([_pad(o, self._obs_width()) for o in obs_rows]),
                "msg_in": incoming,
                "action": actions,
                "raw_msg": raw_msg,
                "logprob": logprobs,
                "value": values,
                "critic_feat": critic_feats,
            }
        return {
            agent_id: int(actions[index])
            for index, agent_id in enumerate(self.agent_ids)
        }

    def _obs_width(self) -> int:
        return self._obs_width_cached

    def _feat_width(self) -> int:
        return self._feat_width_cached

    def _critic_values(self, feats: np.ndarray, advance_state: bool) -> np.ndarray:
        """Critic forward over all agents; optionally updates LSTM state.

        Rollout-only (GAE targets come from stored values; the update
        re-evaluates through the graph), so runs without autograd.
        """
        with no_grad():
            return self._critic_values_inner(feats, advance_state)

    def _critic_values_inner(self, feats: np.ndarray, advance_state: bool) -> np.ndarray:
        if self.config.parameter_sharing:
            values_t, new_state = self.shared_critic(feats, self._critic_state)
            if advance_state:
                self._critic_state = (new_state[0].detach(), new_state[1].detach())
            return values_t.data.copy()
        values = np.zeros(self.num_agents)
        for index, agent_id in enumerate(self.agent_ids):
            critic = self.critics[agent_id]
            value_t, new_state = critic(
                feats[index, : critic.feature_dim].reshape(1, -1),
                self._critic_state[agent_id],
            )
            if advance_state:
                self._critic_state[agent_id] = (
                    new_state[0].detach(),
                    new_state[1].detach(),
                )
            values[index] = float(value_t.data[0])
        return values

    def observe(self, result: StepResult, env: TrafficSignalEnv) -> None:
        if self._pending is None:
            return
        rewards = np.asarray(
            [result.rewards[a] for a in self.agent_ids], dtype=np.float64
        )
        self.buffer.add(rewards=rewards, **self._pending)
        self._pending = None
        self._final_obs = {a: result.observations[a] for a in self.agent_ids}

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def end_episode(self, env: TrafficSignalEnv, training: bool) -> dict:
        if not training or len(self.buffer) == 0:
            return {}
        data = self.buffer.stacked()
        final_feats = np.stack(
            [
                _pad(self.feature_builder.build(a, self._final_obs[a]), self._feat_width())
                for a in self.agent_ids
            ]
        )
        bootstrap = self._critic_values(final_feats, advance_state=False)
        advantages, returns = compute_gae(
            data["rewards"],
            data["value"],
            bootstrap,
            gamma=self.config.ppo.gamma,
            lam=self.config.ppo.lam,
        )
        stats = self._ppo.update(
            lambda batch: self._evaluate(data, batch),
            data["logprob"],
            advantages,
            returns,
            old_values=data["value"],
        )
        self.buffer.clear()
        return {
            "policy_loss": stats.policy_loss,
            "value_loss": stats.value_loss,
            "entropy": stats.entropy,
            "approx_kl": stats.approx_kl,
            "clip_fraction": stats.clip_fraction,
        }

    def _evaluate(
        self, data: dict[str, np.ndarray], batch: np.ndarray
    ) -> tuple[Tensor, Tensor, Tensor]:
        """PPO re-evaluation over stored sequences (see module docstring)."""
        if self.config.parameter_sharing:
            if self.config.stepwise_eval:
                return self._evaluate_shared_stepwise(data, batch)
            return self._evaluate_shared(data, batch)
        columns = [self._evaluate_single(data, int(index)) for index in batch]
        logprobs = stack([c[0] for c in columns], axis=1)
        entropies = stack([c[1] for c in columns], axis=1)
        values = stack([c[2] for c in columns], axis=1)
        return logprobs, entropies, values

    def _evaluate_shared(
        self, data: dict[str, np.ndarray], batch: np.ndarray
    ) -> tuple[Tensor, Tensor, Tensor]:
        cfg = self.config
        horizon = data["obs"].shape[0]
        actor = self.shared_actor
        critic = self.shared_critic
        batch = np.asarray(batch, dtype=np.int64)
        a_state = actor.initial_state(len(batch))
        c_state = critic.initial_state(len(batch))
        # Only the LSTM trunk is inherently sequential.  Unroll it step by
        # step, then stack the hidden states and run every head (policy,
        # message, value, log-softmax, entropy, gather) ONCE over the
        # whole (horizon, batch, hidden) sequence.  All head ops operate
        # position-wise / reduce along the last axis only, so the result
        # is element-for-element identical to the per-step formulation —
        # but the autograd tape records ~9 nodes per step instead of ~40.
        # One fancy-index per array for the whole minibatch; the loop
        # below slices views out of these (cheap basic indexing).
        obs_seq = data["obs"][:, batch]
        msg_seq = data["msg_in"][:, batch]
        feat_seq = data["critic_feat"][:, batch]
        a_hidden: list[Tensor] = []
        c_hidden: list[Tensor] = []
        for t in range(horizon):
            hidden, a_state = actor.step_hidden(obs_seq[t], msg_seq[t], a_state)
            a_hidden.append(hidden)
            hidden, c_state = critic.step_hidden(feat_seq[t], c_state)
            c_hidden.append(hidden)
        actor_seq = stack(a_hidden, axis=0)
        critic_seq = stack(c_hidden, axis=0)
        logits = actor.policy_head(actor_seq)
        log_probs = F.log_softmax(logits)
        probs = F.softmax(logits)
        step_logprobs = F.gather(log_probs, data["action"][:, batch])
        if cfg.communicate:
            msg_mean = actor.message_head(actor_seq)
            step_logprobs = step_logprobs + _gaussian_logprob(
                data["raw_msg"][:, batch], msg_mean, cfg.sigma
            )
        entropies = F.entropy(probs)
        values = critic.value_head(critic_seq).reshape(horizon, len(batch))
        return step_logprobs, entropies, values

    def _evaluate_shared_stepwise(
        self, data: dict[str, np.ndarray], batch: np.ndarray
    ) -> tuple[Tensor, Tensor, Tensor]:
        """Pre-fusion reference evaluator: heads computed inside the unroll.

        Numerically this matches :meth:`_evaluate_shared` (every head op
        is position-wise), but it pays the per-step graph cost the fused
        update path was built to remove; ``repro.perf.bench_update``
        measures its speedup against this path.
        """
        cfg = self.config
        horizon = data["obs"].shape[0]
        actor = self.shared_actor
        critic = self.shared_critic
        batch = np.asarray(batch, dtype=np.int64)
        a_state = actor.initial_state(len(batch))
        c_state = critic.initial_state(len(batch))
        logprob_steps: list[Tensor] = []
        entropy_steps: list[Tensor] = []
        value_steps: list[Tensor] = []
        for t in range(horizon):
            logits, msg_mean, a_state = actor(
                data["obs"][t, batch], data["msg_in"][t, batch], a_state
            )
            log_probs = F.log_softmax(logits)
            probs = F.softmax(logits)
            step_logprob = F.gather(log_probs, data["action"][t, batch])
            if cfg.communicate:
                step_logprob = step_logprob + _gaussian_logprob(
                    data["raw_msg"][t, batch], msg_mean, cfg.sigma
                )
            logprob_steps.append(step_logprob)
            entropy_steps.append(F.entropy(probs))
            value, c_state = critic(data["critic_feat"][t, batch], c_state)
            value_steps.append(value)
        return (
            stack(logprob_steps, axis=0),
            stack(entropy_steps, axis=0),
            stack(value_steps, axis=0),
        )

    def _evaluate_single(
        self, data: dict[str, np.ndarray], index: int
    ) -> tuple[Tensor, Tensor, Tensor]:
        cfg = self.config
        agent_id = self.agent_ids[index]
        actor = self.actors[agent_id]
        critic = self.critics[agent_id]
        horizon = data["obs"].shape[0]
        a_state = actor.initial_state(1)
        c_state = critic.initial_state(1)
        logprob_steps: list[Tensor] = []
        entropy_steps: list[Tensor] = []
        value_steps: list[Tensor] = []
        for t in range(horizon):
            obs = data["obs"][t, index, : actor.obs_dim].reshape(1, -1)
            msg_in = data["msg_in"][t, index].reshape(1, -1)
            logits, msg_mean, a_state = actor(obs, msg_in, a_state)
            log_probs = F.log_softmax(logits)
            probs = F.softmax(logits)
            step_logprob = F.gather(log_probs, data["action"][t, index : index + 1])
            if cfg.communicate:
                raw = data["raw_msg"][t, index].reshape(1, -1)
                step_logprob = step_logprob + _gaussian_logprob(raw, msg_mean, cfg.sigma)
            logprob_steps.append(step_logprob[0])
            entropy_steps.append(F.entropy(probs)[0])
            feat = data["critic_feat"][t, index, : critic.feature_dim].reshape(1, -1)
            value, c_state = critic(feat, c_state)
            value_steps.append(value[0])
        return (
            stack(logprob_steps, axis=0),
            stack(entropy_steps, axis=0),
            stack(value_steps, axis=0),
        )

    # ------------------------------------------------------------------
    # Checkpointing (see AgentSystem.save / AgentSystem.load)
    # ------------------------------------------------------------------
    def training_state(self) -> dict[str, np.ndarray]:
        """Optimizer moments plus every RNG stream, so a resumed run
        continues the exact random sequence of the uninterrupted one."""
        from repro.rl.checkpoint import pack_rng

        state = {
            f"optim.{name}": value
            for name, value in self._optimizer.state_dict().items()
        }
        state["rng.agent"] = pack_rng(self._rng)
        state["rng.regularizer"] = pack_rng(self.regularizer._rng)
        state["rng.ppo"] = pack_rng(self._ppo._rng)
        return state

    def load_training_state(self, state: dict[str, np.ndarray]) -> None:
        from repro.rl.checkpoint import unpack_rng

        optim_state = {
            name[len("optim.") :]: value
            for name, value in state.items()
            if name.startswith("optim.")
        }
        self._optimizer.load_state_dict(optim_state)
        unpack_rng(self._rng, state["rng.agent"])
        unpack_rng(self.regularizer._rng, state["rng.regularizer"])
        unpack_rng(self._ppo._rng, state["rng.ppo"])

    def _checkpoint_modules(self) -> dict:
        if self.config.parameter_sharing:
            return {"actor": self.shared_actor, "critic": self.shared_critic}
        modules: dict = {}
        for agent_id in self.agent_ids:
            modules[f"actor.{agent_id}"] = self.actors[agent_id]
            modules[f"critic.{agent_id}"] = self.critics[agent_id]
        return modules

    # ------------------------------------------------------------------
    def communication_bits_per_step(self, env: TrafficSignalEnv) -> int:
        """One message of ``message_dim`` 32-bit elements from one neighbour."""
        if not self.config.communicate:
            return 0
        return self.config.message_dim * BITS_PER_MESSAGE_ELEMENT


def _softmax_1d(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


def _pad(vector: np.ndarray, width: int) -> np.ndarray:
    """Zero-pad a 1-D vector to ``width`` (heterogeneous stacking)."""
    if vector.shape[0] == width:
        return vector
    padded = np.zeros(width)
    padded[: vector.shape[0]] = vector
    return padded


def _gaussian_logprob(raw: np.ndarray, mean: Tensor, sigma: float) -> Tensor:
    """Differentiable Gaussian log-density of stored draws w.r.t. ``mean``."""
    raw_t = Tensor(np.asarray(raw, dtype=np.float64))
    diff = (raw_t - mean) * (1.0 / sigma)
    per_dim = diff * diff * -0.5 - (math.log(sigma) + 0.5 * math.log(2 * math.pi))
    return per_dim.sum(axis=-1)
