"""Coordinated actor network (paper Fig. 5, upper half; Eq. 8).

Input: local observation (Eq. 5) concatenated with the incoming message
from the communication partner.  Body: dense layer -> tanh -> LSTM.
Heads: a phase-logit head (the action probability distribution) and a
message head (the raw outgoing message mean).
"""

from __future__ import annotations

import numpy as np

from repro.nn.linear import Linear
from repro.nn.lstm import LSTMCell
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concat, lstm_trunk


class CoordinatedActor(Module):
    """PairUpLight's recurrent communicating policy network."""

    def __init__(
        self,
        obs_dim: int,
        num_phases: int,
        message_dim: int = 1,
        hidden_size: int = 64,
        rng: np.random.Generator | None = None,
        fused: bool = True,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.obs_dim = obs_dim
        self.num_phases = num_phases
        self.message_dim = message_dim
        self.hidden_size = hidden_size
        self.fused = bool(fused)
        self._trunk_workspace: dict = {}
        self.encoder = Linear(obs_dim + message_dim, hidden_size, rng, fused=fused)
        self.lstm = LSTMCell(hidden_size, hidden_size, rng, fused=fused)
        # Small-gain heads: near-uniform initial policy, near-zero messages.
        self.policy_head = Linear(hidden_size, num_phases, rng, gain=0.01, fused=fused)
        self.message_head = Linear(hidden_size, message_dim, rng, gain=0.01, fused=fused)

    def initial_state(self, batch: int = 1) -> tuple[np.ndarray, np.ndarray]:
        return self.lstm.initial_state(batch)

    def step_hidden(
        self,
        obs: Tensor | np.ndarray,
        incoming_message: Tensor | np.ndarray,
        state: tuple,
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Recurrent trunk only: encode the inputs and advance the LSTM.

        Returns ``(hidden, new_state)``.  The policy/message heads are
        position-wise, so callers that unroll a whole sequence can stack
        the hidden states and apply each head once to the stacked
        ``(horizon, batch, hidden)`` tensor instead of once per step.
        """
        obs = Tensor.ensure(obs)
        incoming_message = Tensor.ensure(incoming_message)
        x = concat([obs, incoming_message], axis=-1)
        if self.fused:
            h_prev, c_prev = state
            h_new, c_new = lstm_trunk(
                x,
                h_prev,
                c_prev,
                self.encoder.weight,
                self.encoder.bias,
                self.lstm.weight,
                self.lstm.bias,
                workspace=self._trunk_workspace,
            )
            return h_new, (h_new, c_new)
        encoded = self.encoder(x).tanh()
        return self.lstm(encoded, state)

    def forward(
        self,
        obs: Tensor | np.ndarray,
        incoming_message: Tensor | np.ndarray,
        state: tuple,
    ) -> tuple[Tensor, Tensor, tuple[Tensor, Tensor]]:
        """One decision step.

        Parameters
        ----------
        obs:
            ``(batch, obs_dim)`` local observations.
        incoming_message:
            ``(batch, message_dim)`` regularized messages from partners.
        state:
            LSTM ``(h, c)``.

        Returns
        -------
        ``(logits, message_mean, new_state)``.
        """
        hidden, new_state = self.step_hidden(obs, incoming_message, state)
        return self.policy_head(hidden), self.message_head(hidden), new_state
