"""Centralized critic network and its neighbourhood feature builder
(paper Fig. 5, lower half; Eq. 9).

The critic sees a broader slice of the network than the actor: its input
concatenates the agent's local observation with link-level pressures of
its one-hop neighbours and intersection-level pressures of its two-hop
neighbours, zero-padded at grid edges so every intersection produces the
same feature layout ("padding technique", Section V-B).  The critic is
only used during centralized training — never at execution time.
"""

from __future__ import annotations

import math

import numpy as np

from repro.env.observation import DEFAULT_APPROACH_SLOTS
from repro.env.tsc_env import TrafficSignalEnv
from repro.nn.linear import Linear
from repro.nn.lstm import LSTMCell
from repro.nn.module import Module
from repro.nn.tensor import Tensor, lstm_trunk

#: Feature slots for one-hop neighbours (N/E/S/W of a grid interior node).
ONE_HOP_SLOTS = 4
#: Feature slots for two-hop neighbours (straight x4 + diagonal x4).
TWO_HOP_SLOTS = 8


def _bearing(env: TrafficSignalEnv, from_node: str, to_node: str) -> float:
    a = env.network.nodes[from_node]
    b = env.network.nodes[to_node]
    return math.degrees(math.atan2(b.x - a.x, b.y - a.y)) % 360.0


class CriticFeatureBuilder:
    """Builds the centralized critic's input vector for each agent.

    With ``centralized=False`` the builder degrades to local-only features
    (the critic-centralisation ablation): the value function then sees
    exactly what the actor sees.
    """

    def __init__(self, env: TrafficSignalEnv, centralized: bool = True) -> None:
        self.env = env
        self.centralized = centralized
        # Neighbour slot assignments are static; compute once.
        self._one_hop: dict[str, list[str | None]] = {}
        self._two_hop: dict[str, list[str | None]] = {}
        for node_id in env.agent_ids:
            self._one_hop[node_id] = self._assign_slots(
                node_id, env.neighbours(node_id), ONE_HOP_SLOTS
            )
            self._two_hop[node_id] = self._assign_slots(
                node_id, env.two_hop_neighbours(node_id), TWO_HOP_SLOTS
            )

    def _assign_slots(
        self, node_id: str, neighbours: list[str], num_slots: int
    ) -> list[str | None]:
        slots: list[str | None] = [None] * max(num_slots, len(neighbours))
        ordered = sorted(neighbours, key=lambda n: _bearing(self.env, node_id, n))
        width = 360.0 / num_slots
        unplaced = []
        for neighbour in ordered:
            index = int(
                ((_bearing(self.env, node_id, neighbour) + width / 2) % 360.0) // width
            )
            if index < len(slots) and slots[index] is None:
                slots[index] = neighbour
            else:
                unplaced.append(neighbour)
        for neighbour in unplaced:
            slots[slots.index(None)] = neighbour
        return slots

    def feature_dim(self, node_id: str) -> int:
        local = self.env.observation_spaces[node_id].dim
        if not self.centralized:
            return local
        one_hop = len(self._one_hop[node_id]) * DEFAULT_APPROACH_SLOTS
        two_hop = len(self._two_hop[node_id])
        return local + one_hop + two_hop

    def build(self, node_id: str, local_obs: np.ndarray) -> np.ndarray:
        """Feature vector: local obs + 1-hop link pressures + 2-hop scalars."""
        if not self.centralized:
            return np.asarray(local_obs, dtype=np.float64)
        env = self.env
        features = [np.asarray(local_obs, dtype=np.float64)]
        for neighbour in self._one_hop[node_id]:
            if neighbour is None:
                features.append(np.zeros(DEFAULT_APPROACH_SLOTS))
            else:
                features.append(env.link_pressures(neighbour))
        two_hop = [
            0.0 if neighbour is None else env.link_pressures(neighbour).sum()
            for neighbour in self._two_hop[node_id]
        ]
        features.append(np.asarray(two_hop, dtype=np.float64))
        return np.concatenate(features)


class CentralizedCritic(Module):
    """Recurrent value network V(s, h; w) over the extended features."""

    def __init__(
        self,
        feature_dim: int,
        hidden_size: int = 64,
        rng: np.random.Generator | None = None,
        fused: bool = True,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.feature_dim = feature_dim
        self.hidden_size = hidden_size
        self.fused = bool(fused)
        self._trunk_workspace: dict = {}
        self.encoder = Linear(feature_dim, hidden_size, rng, fused=fused)
        self.lstm = LSTMCell(hidden_size, hidden_size, rng, fused=fused)
        self.value_head = Linear(hidden_size, 1, rng, gain=1.0, fused=fused)

    def initial_state(self, batch: int = 1) -> tuple[np.ndarray, np.ndarray]:
        return self.lstm.initial_state(batch)

    def step_hidden(
        self, features: Tensor | np.ndarray, state: tuple
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Recurrent trunk only: encode features and advance the LSTM.

        Returns ``(hidden, new_state)``; the value head is position-wise
        and can be applied once to a stacked hidden sequence.
        """
        features = Tensor.ensure(features)
        if self.fused:
            h_prev, c_prev = state
            h_new, c_new = lstm_trunk(
                features,
                h_prev,
                c_prev,
                self.encoder.weight,
                self.encoder.bias,
                self.lstm.weight,
                self.lstm.bias,
                workspace=self._trunk_workspace,
            )
            return h_new, (h_new, c_new)
        encoded = self.encoder(features).tanh()
        return self.lstm(encoded, state)

    def forward(
        self, features: Tensor | np.ndarray, state: tuple
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """One value step: returns ``(values (batch,), new_state)``."""
        hidden, new_state = self.step_hidden(features, state)
        value = self.value_head(hidden)
        return value.reshape(value.shape[0]), new_state
