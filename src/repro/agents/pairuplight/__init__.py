"""PairUpLight: coordinated actor + centralized critic + message channel."""

from repro.agents.pairuplight.actor import CoordinatedActor
from repro.agents.pairuplight.agent import (
    BITS_PER_MESSAGE_ELEMENT,
    PairUpLightConfig,
    PairUpLightSystem,
)
from repro.agents.pairuplight.critic import CentralizedCritic, CriticFeatureBuilder
from repro.agents.pairuplight.messaging import (
    MessageBoard,
    MessageRegularizer,
    select_partner,
)

__all__ = [
    "BITS_PER_MESSAGE_ELEMENT",
    "CentralizedCritic",
    "CoordinatedActor",
    "CriticFeatureBuilder",
    "MessageBoard",
    "MessageRegularizer",
    "PairUpLightConfig",
    "PairUpLightSystem",
    "select_partner",
]
