"""Cross-replica batched policy driver for lockstep training.

``train_lockstep`` batches B replicas' *simulation* into one SoA engine,
but by default still runs B separate policy passes per tick.  This
module drives all replicas' PairUpLight systems together:

* **independent mode** (default) — every seed keeps its own parameters
  and RNG streams, exactly as the serial runner trains them.  The group
  feeds each system pre-assembled critic features (built vectorized for
  all replicas from the batched extractor's pressure matrix) through
  ``PairUpLightSystem._act_impl``; everything else runs the unchanged
  per-system code, so results stay bit-exact with ``rl.runner.train``.

* **shared mode** (``shared_across_replicas=True``) — the common
  train-one-policy-on-B-seeds workload.  One actor/critic pair (the
  first system's) runs a single ``(B·M, ·)`` forward per tick through
  the fused ``lstm_trunk`` kernels with batched ``(h, c)`` state,
  messages are routed through per-replica boards (no cross-replica
  leakage), rollouts accumulate into ``(T, B·M, ·)`` buffers, and one
  PPO update runs over the combined batch.  There is no serial oracle
  for this regime; it is a new, deterministic-in-seed training mode.
"""

from __future__ import annotations

import numpy as np

from repro.agents.pairuplight.agent import PairUpLightSystem, _pad, _softmax_1d
from repro.agents.pairuplight.messaging import (
    FaultyMessageChannel,
    MessageBoard,
    ResilientMessageReader,
    select_partner,
)
from repro.env.tsc_env import StepResult, TrafficSignalEnv
from repro.errors import ConfigError
from repro.nn.tensor import no_grad
from repro.rl.buffer import RolloutBuffer
from repro.rl.gae import compute_gae


class BatchedPolicyGroup:
    """Drives B PairUpLight systems over a :class:`LockstepEnvGroup`."""

    def __init__(
        self,
        agents: list,
        env_group,
        shared_across_replicas: bool = False,
    ) -> None:
        for agent in agents:
            if not isinstance(agent, PairUpLightSystem):
                raise ConfigError(
                    "the batched policy path requires PairUpLightSystem "
                    f"agents; got {type(agent).__name__} "
                    f"({getattr(agent, 'name', '?')}) — drop --batched-policy "
                    "for this model"
                )
        head = agents[0]
        for agent in agents[1:]:
            if agent.agent_ids != head.agent_ids:
                raise ConfigError(
                    "batched policy agents must share the agent-id layout"
                )
        self.agents = agents
        self.group = env_group
        self.envs = env_group.envs
        self.B = len(agents)
        self.agent_ids = list(head.agent_ids)
        self.M = len(self.agent_ids)
        self.shared = bool(shared_across_replicas)
        if self.shared:
            if not head.config.parameter_sharing:
                raise ConfigError(
                    "shared_across_replicas requires parameter_sharing=True"
                )
            self.master = head
            self._buffer = RolloutBuffer()
            self._boards = [
                MessageBoard(self.agent_ids, head.config.message_dim)
                for _ in range(self.B)
            ]
            self._readers = [
                ResilientMessageReader(
                    self.agent_ids,
                    head.config.message_dim,
                    head.config.message_decay,
                    head.config.max_staleness,
                )
                for _ in range(self.B)
            ]
            self._channels: list[FaultyMessageChannel | None] = [None] * self.B
            self._actor_state = None
            self._critic_state = None
            self._pending: dict | None = None
            self._final_obs: np.ndarray | None = None
        self._init_feat_maps(head)

    # ------------------------------------------------------------------
    # Vectorized critic-feature assembly (both modes)
    # ------------------------------------------------------------------
    def _init_feat_maps(self, head: PairUpLightSystem) -> None:
        """Static gather maps turning the extractor's pressure matrix
        into the exact ``CriticFeatureBuilder.build`` layout."""
        self._feats_vectorized = False
        builder = head.feature_builder
        if not builder.centralized:
            return
        agent_pos = {a: i for i, a in enumerate(self.agent_ids)}
        h1_widths = {len(builder._one_hop[a]) for a in self.agent_ids}
        h2_widths = {len(builder._two_hop[a]) for a in self.agent_ids}
        obs_dims = {
            head.actors[a].obs_dim for a in self.agent_ids
        }
        if len(h1_widths) != 1 or len(h2_widths) != 1 or len(obs_dims) != 1:
            return
        self._h1 = h1_widths.pop()
        self._h2 = h2_widths.pop()
        self._obs_dim = obs_dims.pop()
        h1_idx = np.zeros((self.M, self._h1), dtype=np.intp)
        h1_mask = np.zeros((self.M, self._h1), dtype=bool)
        h2_idx = np.zeros((self.M, self._h2), dtype=np.intp)
        h2_mask = np.zeros((self.M, self._h2), dtype=bool)
        for m, node_id in enumerate(self.agent_ids):
            for j, neighbour in enumerate(builder._one_hop[node_id]):
                if neighbour is not None:
                    h1_idx[m, j] = agent_pos[neighbour]
                    h1_mask[m, j] = True
            for j, neighbour in enumerate(builder._two_hop[node_id]):
                if neighbour is not None:
                    h2_idx[m, j] = agent_pos[neighbour]
                    h2_mask[m, j] = True
        self._h1_idx, self._h1_mask = h1_idx, h1_mask
        self._h2_idx, self._h2_mask = h2_idx, h2_mask
        self._feat_width = head._feat_width()
        # The reference builder zero-pads absent one-hop neighbours with
        # DEFAULT_APPROACH_SLOTS-wide blocks; the vectorized gather fills
        # every block from the (M, num_slots) pressure matrix, so both
        # widths must coincide.
        from repro.env.observation import DEFAULT_APPROACH_SLOTS

        slot_widths = {
            len(self.envs[0].obs_builder._slots[a]) for a in self.agent_ids
        }
        self._feats_vectorized = (
            slot_widths == {DEFAULT_APPROACH_SLOTS}
            and self._feat_width
            == self._obs_dim + self._h1 * DEFAULT_APPROACH_SLOTS + self._h2
        )

    def _assemble_feats(self) -> np.ndarray | None:
        """``(B, M, feat_width)`` critic features for the current tick,
        or ``None`` when the extractor's pressures are unavailable (first
        tick of an episode, fallback extraction) — callers then use the
        per-agent reference builder."""
        extractor = getattr(self.group, "extractor", None)
        if not self._feats_vectorized or extractor is None:
            return None
        press = extractor.pressures
        obs = extractor.observations
        if press is None or obs is None:
            return None
        num_slots = press.shape[-1]
        feats = np.zeros((self.B, self.M, self._feat_width))
        feats[..., : self._obs_dim] = obs
        one_hop = np.where(
            self._h1_mask[..., None], press[:, self._h1_idx, :], 0.0
        )
        feats[
            ..., self._obs_dim : self._obs_dim + self._h1 * num_slots
        ] = one_hop.reshape(self.B, self.M, self._h1 * num_slots)
        sums = press.sum(axis=-1)
        feats[..., self._obs_dim + self._h1 * num_slots :] = np.where(
            self._h2_mask, sums[:, self._h2_idx], 0.0
        )
        return feats

    def _reference_feats(self, b: int, observations: dict) -> np.ndarray:
        """Per-agent fallback, identical to the in-system assembly."""
        agent = self.agents[b]
        width = self.master._feat_width() if self.shared else agent._feat_width()
        return np.stack(
            [
                _pad(agent.feature_builder.build(a, observations[a]), width)
                for a in self.agent_ids
            ]
        )

    # ------------------------------------------------------------------
    # Episode lifecycle
    # ------------------------------------------------------------------
    def begin_episode_all(self, training: bool) -> None:
        if not self.shared:
            for agent, env in zip(self.agents, self.envs):
                agent.begin_episode(env, training)
            return
        master = self.master
        self._buffer.clear()
        self._pending = None
        self._final_obs = None
        for b, env in enumerate(self.envs):
            self._boards[b].reset()
            self._readers[b].reset()
            schedule = getattr(env, "fault_schedule", None)
            if schedule is not None and schedule.config.any_message_faults:
                self._channels[b] = FaultyMessageChannel(
                    schedule,
                    self.agent_ids,
                    master.config.message_dim,
                    clock=lambda env=env: (
                        env.sim.time if env.sim is not None else None
                    ),
                )
            else:
                self._channels[b] = None
        flat = self.B * self.M
        self._actor_state = master.shared_actor.initial_state(flat)
        self._critic_state = master.shared_critic.initial_state(flat)

    # ------------------------------------------------------------------
    # Acting
    # ------------------------------------------------------------------
    def act_all(
        self,
        observations: list[dict[str, np.ndarray]],
        training: bool,
        live: list[bool] | None = None,
    ) -> list[dict[str, int] | None]:
        live = [True] * self.B if live is None else live
        if self.shared:
            return self._act_shared(observations, training, live)
        feats = self._assemble_feats() if training else None
        actions: list[dict[str, int] | None] = []
        for b, (agent, env) in enumerate(zip(self.agents, self.envs)):
            if not live[b]:
                actions.append(None)
                continue
            critic_feats = feats[b] if feats is not None else None
            actions.append(
                agent._act_impl(
                    observations[b], env, training, critic_feats=critic_feats
                )
            )
        return actions

    def _act_shared(
        self,
        observations: list[dict[str, np.ndarray]],
        training: bool,
        live: list[bool],
    ) -> list[dict[str, int] | None]:
        master = self.master
        cfg = master.config
        B, M = self.B, self.M
        flat = B * M
        incoming = np.zeros((B, M, cfg.message_dim))
        if cfg.communicate:
            for b in range(B):
                if not live[b]:
                    continue  # drained replica: no detector reads
                board = self._boards[b]
                reader = self._readers[b]
                channel = self._channels[b]
                env = self.envs[b]
                for i, agent_id in enumerate(self.agent_ids):
                    partner = select_partner(
                        env,
                        agent_id,
                        strategy=cfg.partner_strategy,
                        rng=master._rng,
                    )
                    message = board.read(partner)
                    if channel is not None:
                        message = channel.deliver(agent_id, message)
                    if cfg.degrade_on_loss:
                        message = reader.receive(
                            agent_id, message, board.read(agent_id)
                        )
                    elif message is None:
                        message = np.zeros(cfg.message_dim)
                    incoming[b, i] = message

        obs_mat = np.asarray(
            [
                [observations[b][a] for a in self.agent_ids]
                for b in range(B)
            ],
            dtype=np.float64,
        )
        with no_grad():
            logits_t, msg_mean_t, new_state = master.shared_actor(
                obs_mat.reshape(flat, -1),
                incoming.reshape(flat, cfg.message_dim),
                self._actor_state,
            )
            self._actor_state = (new_state[0].detach(), new_state[1].detach())
            logits = np.asarray(logits_t.data)
            msg_means = msg_mean_t.data

        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        actions_flat, action_logprobs = self._sample_flat(probs, training)
        m_hat, raw_msg, msg_logprobs = master.regularizer.transmit(
            msg_means, training
        )
        logprobs = action_logprobs + (msg_logprobs if cfg.communicate else 0.0)

        for b in range(B):
            board = self._boards[b]
            base = b * M
            for i, agent_id in enumerate(self.agent_ids):
                board.post(agent_id, m_hat[base + i])

        if training:
            feats = self._assemble_feats()
            if feats is None:
                feats = np.stack(
                    [self._reference_feats(b, observations[b]) for b in range(B)]
                )
            feats_flat = feats.reshape(flat, -1)
            with no_grad():
                values_t, new_c = master.shared_critic(
                    feats_flat, self._critic_state
                )
                self._critic_state = (new_c[0].detach(), new_c[1].detach())
            self._pending = {
                "obs": obs_mat.reshape(flat, -1),
                "msg_in": incoming.reshape(flat, cfg.message_dim),
                "action": actions_flat,
                "raw_msg": raw_msg,
                "logprob": logprobs,
                "value": values_t.data.copy(),
                "critic_feat": feats_flat,
            }
        return [
            {
                agent_id: int(actions_flat[b * M + i])
                for i, agent_id in enumerate(self.agent_ids)
            }
            if live[b]
            else None
            for b in range(B)
        ]

    def _sample_flat(
        self, probs: np.ndarray, training: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized epsilon-greedy / categorical sampling over all
        replicas, consuming the master RNG in flat row order."""
        flat, num_actions = probs.shape
        if not training:
            actions = np.argmax(probs, axis=1).astype(np.int64)
        else:
            rng = self.master._rng
            explore = rng.random(flat) < self.master.config.epsilon
            randoms = rng.integers(0, num_actions, size=flat)
            u = rng.random(flat)
            cum = np.cumsum(probs, axis=1)
            categorical = np.minimum(
                (cum < u[:, None] * cum[:, -1:]).sum(axis=1), num_actions - 1
            )
            actions = np.where(explore, randoms, categorical).astype(np.int64)
        logprobs = np.log(
            np.maximum(probs[np.arange(flat), actions], 1e-12)
        )
        return actions, logprobs

    # ------------------------------------------------------------------
    # Observation / learning
    # ------------------------------------------------------------------
    def observe_all(
        self, results: list[StepResult | None]
    ) -> None:
        if not self.shared:
            for agent, env, result in zip(self.agents, self.envs, results):
                if result is not None:
                    agent.observe(result, env)
            return
        if self._pending is None:
            return
        rewards = np.asarray(
            [
                result.rewards[a]
                for result in results
                for a in self.agent_ids
            ],
            dtype=np.float64,
        )
        self._buffer.add(rewards=rewards, **self._pending)
        self._pending = None
        self._final_obs = [
            {a: result.observations[a] for a in self.agent_ids}
            for result in results
        ]

    def end_episode_all(self, training: bool) -> list[dict]:
        if not self.shared:
            return [
                agent.end_episode(env, training=training)
                for agent, env in zip(self.agents, self.envs)
            ]
        master = self.master
        if not training or len(self._buffer) == 0:
            return [{} for _ in range(self.B)]
        data = self._buffer.stacked()
        final_feats = np.concatenate(
            [
                self._reference_feats(b, self._final_obs[b])
                for b in range(self.B)
            ]
        )
        with no_grad():
            bootstrap_t, _ = master.shared_critic(
                final_feats, self._critic_state
            )
        advantages, returns = compute_gae(
            data["rewards"],
            data["value"],
            bootstrap_t.data.copy(),
            gamma=master.config.ppo.gamma,
            lam=master.config.ppo.lam,
        )
        stats = master._ppo.update(
            lambda batch: master._evaluate(data, batch),
            data["logprob"],
            advantages,
            returns,
            old_values=data["value"],
        )
        self._buffer.clear()
        shared_stats = {
            "policy_loss": stats.policy_loss,
            "value_loss": stats.value_loss,
            "entropy": stats.entropy,
            "approx_kl": stats.approx_kl,
            "clip_fraction": stats.clip_fraction,
        }
        # One combined update; every seed's history records the same stats.
        return [dict(shared_stats) for _ in range(self.B)]
