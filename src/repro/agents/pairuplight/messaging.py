"""Message channel: regularizer and partner selection.

Two pieces of PairUpLight's communication protocol live here:

* **Message regularizer** (Algorithm 1 line 16): the actor emits a raw
  real-valued message ``m``; the channel transmits
  ``Logistic(N(m, sigma))`` during training and the deterministic
  ``Logistic(m)`` during execution.  We treat the noisy draw as a
  *continuous action*: the Gaussian is the exploration distribution and
  its log-density joins the phase log-probability in the PPO objective,
  which is how the message head receives learning signal.
* **Partner selection** (Section V-B): each intersection pairs up with
  the *most congested upstream* neighbouring intersection — the one whose
  congestion will arrive next — falling back to itself when no upstream
  neighbour is congested.
"""

from __future__ import annotations

import math

import numpy as np

from repro.env.tsc_env import TrafficSignalEnv
from repro.errors import ConfigError

_LOG_2PI = math.log(2.0 * math.pi)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Single shared exp(-|x|): equals 1/(1+exp(-x)) for x >= 0 and
    # exp(x)/(1+exp(x)) for x < 0, same values as the two-branch form.
    e = np.exp(-np.abs(np.clip(x, -500, 500)))
    return np.where(x >= 0, 1.0 / (1.0 + e), e / (1.0 + e))


class MessageRegularizer:
    """Noisy-logistic message channel (DIAL-style discretisation noise)."""

    def __init__(self, sigma: float = 0.25, seed: int = 0) -> None:
        if sigma <= 0:
            raise ConfigError("message noise sigma must be positive")
        self.sigma = sigma
        self._rng = np.random.default_rng(seed)

    def transmit(
        self, message_mean: np.ndarray, training: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Produce the transmitted message.

        Returns ``(m_hat, raw_sample, logprob)`` where ``m_hat`` is the
        squashed message handed to the partner, ``raw_sample`` is the
        pre-squash Gaussian draw (stored for PPO re-evaluation), and
        ``logprob`` is the per-message Gaussian log-density summed over
        message dimensions.
        """
        mean = np.asarray(message_mean, dtype=np.float64)
        if training:
            raw = self._rng.normal(mean, self.sigma)
        else:
            raw = mean.copy()
        logprob = self.logprob(raw, mean)
        return _sigmoid(raw), raw, logprob

    def logprob(self, raw: np.ndarray, mean: np.ndarray) -> np.ndarray:
        """Gaussian log-density of ``raw`` under ``N(mean, sigma)``,
        summed over the trailing (message-dim) axis."""
        z = (np.asarray(raw) - np.asarray(mean)) / self.sigma
        per_dim = -0.5 * (z**2) - math.log(self.sigma) - 0.5 * _LOG_2PI
        return per_dim.sum(axis=-1)


def select_partner(
    env: TrafficSignalEnv,
    node_id: str,
    strategy: str = "upstream",
    rng: np.random.Generator | None = None,
) -> str:
    """Choose the communication partner for ``node_id``.

    ``strategy`` selects between the paper's design and its ablations:

    * ``"upstream"`` (paper, Section V-B) — the most congested *upstream*
      neighbour; congestion is ranked by observed halted/approaching
      vehicles on each candidate's incoming links.  When every upstream
      neighbour is calmer than the agent itself, the agent listens to its
      own previous message (self-loop), matching the paper's "from either
      the current agent itself or one of its neighbouring agents".
    * ``"self"`` — always the self-loop (no inter-agent information).
    * ``"random"`` — a uniformly random upstream neighbour each step
      (requires ``rng``); isolates the value of congestion-aware pairing.
    * ``"fixed"`` — the first upstream neighbour in topological order,
      i.e. a static pairing that never reacts to traffic.
    """
    if strategy == "self":
        return node_id
    upstream = env.upstream_neighbours(node_id)
    if not upstream:
        return node_id
    if strategy == "random":
        if rng is None:
            raise ConfigError("random partner strategy requires an rng")
        return upstream[int(rng.integers(len(upstream)))]
    if strategy == "fixed":
        return upstream[0]
    if strategy != "upstream":
        raise ConfigError(f"unknown partner strategy {strategy!r}")
    best = node_id
    best_score = env.congestion_score(node_id)
    for neighbour in upstream:
        score = env.congestion_score(neighbour)
        if score > best_score:
            best, best_score = neighbour, score
    return best


class MessageBoard:
    """Per-step mailbox holding each agent's latest outgoing message."""

    def __init__(self, agent_ids: list[str], message_dim: int) -> None:
        if message_dim <= 0:
            raise ConfigError("message_dim must be positive")
        self.message_dim = message_dim
        self._messages: dict[str, np.ndarray] = {
            agent_id: np.zeros(message_dim) for agent_id in agent_ids
        }

    def post(self, agent_id: str, message: np.ndarray) -> None:
        message = np.asarray(message, dtype=np.float64)
        if message.shape != (self.message_dim,):
            raise ConfigError(
                f"message shape {message.shape} != ({self.message_dim},)"
            )
        self._messages[agent_id] = message

    def read(self, agent_id: str) -> np.ndarray:
        return self._messages[agent_id].copy()

    def reset(self) -> None:
        for agent_id in self._messages:
            self._messages[agent_id] = np.zeros(self.message_dim)


class FaultyMessageChannel:
    """Lossy transport between the board and a receiving agent.

    Applies the communication faults of a
    :class:`repro.faults.schedule.FaultSchedule` to every read: the
    message may be *dropped* (``deliver`` returns ``None``), *delayed*
    (the previous successful delivery to this receiver is repeated), or
    *corrupted* (the payload is replaced by channel garbage).  What the
    receiver does about a drop is the agent's graceful-degradation
    policy, not the channel's — see :class:`ResilientMessageReader`.
    """

    def __init__(
        self,
        schedule,
        agent_ids: list[str],
        message_dim: int,
        clock=None,
    ) -> None:
        self.schedule = schedule
        self.message_dim = message_dim
        #: Optional zero-arg callable returning the current simulation
        #: tick; only invoked when the schedule has a telemetry sink.
        self.clock = clock
        self._prev_delivered: dict[str, np.ndarray] = {
            agent_id: np.zeros(message_dim) for agent_id in agent_ids
        }

    def reset(self) -> None:
        for agent_id in self._prev_delivered:
            self._prev_delivered[agent_id] = np.zeros(self.message_dim)

    def deliver(self, receiver: str, message: np.ndarray) -> np.ndarray | None:
        """Transport ``message`` to ``receiver``; ``None`` means lost."""
        config = self.schedule.config
        if config.message_drop and self.schedule.message_dropped():
            self._emit("message_drop", receiver)
            return None
        if config.message_delay and self.schedule.message_delayed():
            self._emit("message_delay", receiver)
            delivered = self._prev_delivered[receiver].copy()
        elif config.message_corrupt and self.schedule.message_corrupted():
            self._emit("message_corrupt", receiver)
            delivered = self.schedule.corrupt(message)
        else:
            delivered = np.asarray(message, dtype=np.float64)
        self._prev_delivered[receiver] = delivered.copy()
        return delivered

    def _emit(self, kind: str, receiver: str) -> None:
        """First-activation telemetry (no-op without an attached sink)."""
        if self.schedule.event_sink is None:
            return
        tick = self.clock() if self.clock is not None else None
        self.schedule.emit_activation(kind, receiver, tick=tick)


class ResilientMessageReader:
    """Receive-side graceful degradation under message loss.

    On a successful delivery the message is stored and passed through.
    On a loss the reader reuses the **last received message**, attenuated
    by ``decay ** staleness`` so stale coordination information fades
    rather than being trusted forever; once ``staleness`` exceeds
    ``max_staleness`` the reader falls back to *self-pairing* — it listens
    to the agent's own previous outgoing message, the same degradation
    the paper prescribes for intersections with no congested upstream
    neighbour.
    """

    def __init__(
        self,
        agent_ids: list[str],
        message_dim: int,
        decay: float = 0.5,
        max_staleness: int = 3,
    ) -> None:
        if not 0.0 <= decay <= 1.0:
            raise ConfigError("message decay must lie in [0, 1]")
        if max_staleness < 0:
            raise ConfigError("max_staleness must be non-negative")
        self.message_dim = message_dim
        self.decay = decay
        self.max_staleness = max_staleness
        self._last: dict[str, np.ndarray] = {
            agent_id: np.zeros(message_dim) for agent_id in agent_ids
        }
        self._staleness: dict[str, int] = {agent_id: 0 for agent_id in agent_ids}

    def reset(self) -> None:
        for agent_id in self._last:
            self._last[agent_id] = np.zeros(self.message_dim)
            self._staleness[agent_id] = 0

    def staleness(self, agent_id: str) -> int:
        return self._staleness[agent_id]

    def receive(
        self,
        agent_id: str,
        message: np.ndarray | None,
        own_message: np.ndarray,
    ) -> np.ndarray:
        """Resolve one (possibly lost) delivery into a usable message."""
        if message is not None:
            self._last[agent_id] = np.asarray(message, dtype=np.float64).copy()
            self._staleness[agent_id] = 0
            return self._last[agent_id].copy()
        self._staleness[agent_id] += 1
        staleness = self._staleness[agent_id]
        if staleness > self.max_staleness:
            return np.asarray(own_message, dtype=np.float64).copy()
        return self._last[agent_id] * (self.decay**staleness)
