"""Independent Q-Learning baseline (extension beyond the paper).

IQL is the simplest deep MARL TSC baseline: a parameter-shared DQN over
*local observations only* — i.e. CoLight with the graph-attention
encoder removed.  Comparing CoLight against IQL isolates the
contribution of neighbourhood attention, which complements the paper's
comparison of CoLight against PairUpLight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.agents.base import AgentSystem
from repro.env.tsc_env import StepResult, TrafficSignalEnv
from repro.errors import ConfigError
from repro.nn.linear import MLP
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.rl.dqn import DQNConfig, DQNUpdater


class IQLNetwork(Module):
    """Plain MLP Q-network over the local observation."""

    def __init__(
        self, obs_dim: int, num_phases: int, hidden: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.obs_dim = obs_dim
        self.body = MLP(obs_dim, [hidden, hidden], num_phases, rng,
                        activation="relu", init="he", out_gain=0.1)

    def forward(self, obs) -> Tensor:
        return self.body(Tensor.ensure(obs))


@dataclass
class IQLConfig:
    """Hyperparameters of the IQL baseline."""

    hidden: int = 64
    lr: float = 1e-3
    update_interval: int = 5
    dqn: DQNConfig = field(default_factory=DQNConfig)

    def __post_init__(self) -> None:
        if self.update_interval <= 0:
            raise ConfigError("update_interval must be positive")


class IQLSystem(AgentSystem):
    """Parameter-shared local DQN, one action per intersection."""

    name = "IQL"

    def __init__(
        self,
        env: TrafficSignalEnv,
        config: IQLConfig | None = None,
        seed: int = 0,
    ) -> None:
        if not env.homogeneous:
            raise ConfigError("IQL shares one Q-network; needs homogeneous nodes")
        self.config = config or IQLConfig()
        self._rng = np.random.default_rng(seed)
        self.agent_ids = list(env.agent_ids)
        self.num_agents = len(self.agent_ids)
        obs_dim = env.observation_spaces[self.agent_ids[0]].dim
        num_phases = env.action_spaces[self.agent_ids[0]].n
        net_rng = np.random.default_rng(seed + 1)
        self.online = IQLNetwork(obs_dim, num_phases, self.config.hidden, net_rng)
        self.target = IQLNetwork(obs_dim, num_phases, self.config.hidden, net_rng)
        params = list(self.online.parameters())
        self.updater = DQNUpdater(
            params, Adam(params, lr=self.config.lr), self.online, self.target,
            self.config.dqn, seed=seed + 2,
        )
        self._pending: dict | None = None
        self._decisions = 0

    def begin_episode(self, env: TrafficSignalEnv, training: bool) -> None:
        self._pending = None

    def act(
        self,
        observations: dict[str, np.ndarray],
        env: TrafficSignalEnv,
        training: bool,
    ) -> dict[str, int]:
        obs = np.stack([observations[a] for a in self.agent_ids])
        q_values = self.online(obs).data
        actions = np.argmax(q_values, axis=1).astype(np.int64)
        if training:
            epsilon = self.updater.current_epsilon()
            explore = self._rng.random(self.num_agents) < epsilon
            random_actions = self._rng.integers(q_values.shape[1], size=self.num_agents)
            actions = np.where(explore, random_actions, actions)
            self._pending = {"obs": obs, "actions": actions.copy()}
            self.updater.record_step()
        return {a: int(actions[i]) for i, a in enumerate(self.agent_ids)}

    def observe(self, result: StepResult, env: TrafficSignalEnv) -> None:
        if self._pending is None:
            return
        next_obs = np.stack([result.observations[a] for a in self.agent_ids])
        pending = self._pending
        self._pending = None
        for index, agent_id in enumerate(self.agent_ids):
            self.updater.replay.add(
                {
                    "obs": pending["obs"][index],
                    "action": int(pending["actions"][index]),
                    "reward": float(result.rewards[agent_id]),
                    "next_obs": next_obs[index],
                    "done": bool(result.done),
                }
            )
        self._decisions += 1
        if self._decisions % self.config.update_interval == 0:
            self.updater.update(self._q_batch, self._target_q_batch)

    def end_episode(self, env: TrafficSignalEnv, training: bool) -> dict:
        if not training:
            return {}
        stats = self.updater.update(self._q_batch, self._target_q_batch)
        if stats is None:
            return {}
        return {"loss": stats.loss, "mean_q": stats.mean_q}

    def _checkpoint_modules(self) -> dict:
        return {"online": self.online}

    def _q_batch(self, batch: list[dict]) -> Tensor:
        return self.online(np.stack([t["obs"] for t in batch]))

    def _target_q_batch(self, batch: list[dict]) -> np.ndarray:
        return self.target(np.stack([t["next_obs"] for t in batch])).data
