"""Fixed-time baseline (paper Section VI-B).

Cycles through each intersection's phases on a predetermined schedule
(by default the paper's plan: every phase gets ``stage_seconds`` = 5 s of
green, with the simulator inserting 2 s of yellow at each switch).  No
adaptation, no communication.
"""

from __future__ import annotations

import numpy as np

from repro.agents.base import AgentSystem
from repro.env.tsc_env import TrafficSignalEnv
from repro.errors import ConfigError
from repro.sim.signal import FixedTimeProgram


class FixedTimeSystem(AgentSystem):
    """Cyclic fixed-time controller for every intersection."""

    name = "Fixedtime"

    def __init__(self, env: TrafficSignalEnv, stage_seconds: int = 5) -> None:
        if stage_seconds <= 0:
            raise ConfigError("stage_seconds must be positive")
        self.stage_seconds = stage_seconds
        self.programs: dict[str, FixedTimeProgram] = {}
        for node_id in env.agent_ids:
            num_phases = env.action_spaces[node_id].n
            stages = [(index, stage_seconds) for index in range(num_phases)]
            self.programs[node_id] = FixedTimeProgram(stages)

    def act(
        self,
        observations: dict[str, np.ndarray],
        env: TrafficSignalEnv,
        training: bool,
    ) -> dict[str, int]:
        assert env.sim is not None
        now = env.sim.time
        return {
            node_id: program.phase_at(now)
            for node_id, program in self.programs.items()
        }
