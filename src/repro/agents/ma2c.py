"""MA2C baseline (Chu et al., 2019, as described in paper Section VI-B).

Independent advantage actor-critic agents — **no parameter sharing** —
whose inputs augment the local observation with:

* neighbours' observations, scaled by a spatial discount ``alpha``,
* neighbours' *fingerprints*: the policy distributions they produced at
  the previous step (the mechanism Chu et al. use to fight
  non-stationarity).

Rewards are also spatially discounted: each agent optimises
``r_i + alpha * sum of neighbour rewards``.  Training is one A2C
gradient step per agent per episode with full-episode returns and a
bootstrap value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.agents.base import AgentSystem
from repro.env.tsc_env import StepResult, TrafficSignalEnv
from repro.errors import ConfigError
from repro.nn import functional as F
from repro.nn.linear import Linear
from repro.nn.lstm import LSTMCell
from repro.nn.module import Module
from repro.nn.optim import RMSProp
from repro.nn.tensor import Tensor, stack
from repro.rl.a2c import A2CConfig, A2CUpdater
from repro.rl.buffer import RolloutBuffer
from repro.rl.gae import compute_gae

#: Neighbour slots considered by each agent (grid: N/E/S/W).
NEIGHBOUR_SLOTS = 4


class MA2CNetwork(Module):
    """Per-agent recurrent actor-critic with a shared body."""

    def __init__(
        self,
        input_dim: int,
        num_phases: int,
        hidden_size: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.num_phases = num_phases
        self.encoder = Linear(input_dim, hidden_size, rng, init="xavier", gain=1.0)
        self.lstm = LSTMCell(hidden_size, hidden_size, rng)
        self.policy_head = Linear(hidden_size, num_phases, rng, gain=0.01)
        self.value_head = Linear(hidden_size, 1, rng, gain=1.0)

    def initial_state(self, batch: int = 1):
        return self.lstm.initial_state(batch)

    def forward(self, features, state):
        hidden = self.encoder(Tensor.ensure(features)).relu()
        hidden, new_state = self.lstm(hidden, state)
        logits = self.policy_head(hidden)
        value = self.value_head(hidden)
        return logits, value.reshape(value.shape[0]), new_state


@dataclass
class MA2CConfig:
    """Hyperparameters of the MA2C baseline."""

    alpha: float = 0.75  # spatial discount factor
    hidden_size: int = 64
    lr: float = 5e-4
    gamma: float = 0.95
    a2c: A2CConfig = field(default_factory=A2CConfig)

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigError("alpha must lie in [0, 1]")


class MA2CSystem(AgentSystem):
    """Independent communicating A2C agents (one network per node)."""

    name = "MA2C"

    def __init__(
        self,
        env: TrafficSignalEnv,
        config: MA2CConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config or MA2CConfig()
        self._rng = np.random.default_rng(seed)
        self.agent_ids = list(env.agent_ids)
        self.num_agents = len(self.agent_ids)
        self._index = {a: i for i, a in enumerate(self.agent_ids)}
        # Static neighbour lists (padded to NEIGHBOUR_SLOTS or more).
        self.neighbour_map: dict[str, list[str | None]] = {}
        for agent_id in self.agent_ids:
            neighbours = env.neighbours(agent_id)
            padded: list[str | None] = list(neighbours)
            while len(padded) < NEIGHBOUR_SLOTS:
                padded.append(None)
            self.neighbour_map[agent_id] = padded

        net_rng = np.random.default_rng(seed + 1)
        self.networks: dict[str, MA2CNetwork] = {}
        self.updaters: dict[str, A2CUpdater] = {}
        self._input_dims: dict[str, int] = {}
        for agent_id in self.agent_ids:
            input_dim = self._compute_input_dim(env, agent_id)
            self._input_dims[agent_id] = input_dim
            network = MA2CNetwork(
                input_dim,
                env.action_spaces[agent_id].n,
                self.config.hidden_size,
                net_rng,
            )
            self.networks[agent_id] = network
            params = list(network.parameters())
            self.updaters[agent_id] = A2CUpdater(
                params, [RMSProp(params, lr=self.config.lr)], self.config.a2c
            )

        self.buffer = RolloutBuffer()
        self._states: dict[str, tuple] = {}
        self._fingerprints: dict[str, np.ndarray] = {}
        self._pending: dict | None = None
        self._final_features: dict[str, np.ndarray] = {}

    def _compute_input_dim(self, env: TrafficSignalEnv, agent_id: str) -> int:
        own = env.observation_spaces[agent_id].dim
        total = own
        for neighbour in self.neighbour_map[agent_id]:
            if neighbour is None:
                # Padding slots sized like the agent's own spaces.
                total += own + env.action_spaces[agent_id].n
            else:
                total += (
                    env.observation_spaces[neighbour].dim
                    + env.action_spaces[neighbour].n
                )
        return total

    # ------------------------------------------------------------------
    def begin_episode(self, env: TrafficSignalEnv, training: bool) -> None:
        self.buffer.clear()
        self._pending = None
        for agent_id in self.agent_ids:
            self._states[agent_id] = self.networks[agent_id].initial_state(1)
            self._fingerprints[agent_id] = (
                np.ones(env.action_spaces[agent_id].n)
                / env.action_spaces[agent_id].n
            )

    def _build_features(
        self, env: TrafficSignalEnv, agent_id: str, observations: dict[str, np.ndarray]
    ) -> np.ndarray:
        """Own obs + alpha-discounted neighbour obs + fingerprints."""
        cfg = self.config
        own = observations[agent_id]
        parts = [own]
        for neighbour in self.neighbour_map[agent_id]:
            if neighbour is None:
                parts.append(np.zeros(own.shape[0]))
                parts.append(np.zeros(env.action_spaces[agent_id].n))
            else:
                parts.append(cfg.alpha * observations[neighbour])
                parts.append(self._fingerprints[neighbour])
        return np.concatenate(parts)

    def act(
        self,
        observations: dict[str, np.ndarray],
        env: TrafficSignalEnv,
        training: bool,
    ) -> dict[str, int]:
        actions: dict[str, int] = {}
        features_all: dict[str, np.ndarray] = {}
        logprobs = np.zeros(self.num_agents)
        values = np.zeros(self.num_agents)
        action_arr = np.zeros(self.num_agents, dtype=np.int64)
        new_fingerprints: dict[str, np.ndarray] = {}
        for index, agent_id in enumerate(self.agent_ids):
            features = self._build_features(env, agent_id, observations)
            features_all[agent_id] = features
            logits, value, new_state = self.networks[agent_id](
                features.reshape(1, -1), self._states[agent_id]
            )
            self._states[agent_id] = (new_state[0].detach(), new_state[1].detach())
            row = logits.data[0]
            probs = np.exp(row - row.max())
            probs /= probs.sum()
            new_fingerprints[agent_id] = probs.copy()
            if training:
                action = F.categorical_sample(probs, self._rng)
            else:
                action = int(np.argmax(probs))
            actions[agent_id] = action
            action_arr[index] = action
            logprobs[index] = math.log(max(probs[action], 1e-12))
            values[index] = float(value.data[0])
        self._fingerprints = new_fingerprints
        if training:
            width = max(f.shape[0] for f in features_all.values())
            feats = np.zeros((self.num_agents, width))
            for index, agent_id in enumerate(self.agent_ids):
                feat = features_all[agent_id]
                feats[index, : feat.shape[0]] = feat
            self._pending = {
                "features": feats,
                "action": action_arr,
                "logprob": logprobs,
                "value": values,
            }
        return actions

    def _spatial_rewards(self, rewards: dict[str, float]) -> np.ndarray:
        """Spatially discounted reward: own + alpha * neighbours."""
        out = np.zeros(self.num_agents)
        for index, agent_id in enumerate(self.agent_ids):
            total = rewards[agent_id]
            for neighbour in self.neighbour_map[agent_id]:
                if neighbour is not None:
                    total += self.config.alpha * rewards[neighbour]
            out[index] = total
        return out

    def observe(self, result: StepResult, env: TrafficSignalEnv) -> None:
        if self._pending is None:
            return
        self.buffer.add(
            rewards=self._spatial_rewards(result.rewards), **self._pending
        )
        self._pending = None
        self._final_features = {
            agent_id: self._build_features(env, agent_id, result.observations)
            for agent_id in self.agent_ids
        }

    def end_episode(self, env: TrafficSignalEnv, training: bool) -> dict:
        if not training or len(self.buffer) == 0:
            return {}
        data = self.buffer.stacked()
        stats: dict[str, float] = {"policy_loss": 0.0, "value_loss": 0.0}
        for index, agent_id in enumerate(self.agent_ids):
            network = self.networks[agent_id]
            final = self._final_features[agent_id]
            _, bootstrap, _ = network(
                final.reshape(1, -1), self._states[agent_id]
            )
            advantages, returns = compute_gae(
                data["rewards"][:, index : index + 1],
                data["value"][:, index : index + 1],
                float(bootstrap.data[0]),
                gamma=self.config.gamma,
                lam=1.0,  # plain n-step returns (A2C)
            )
            result = self.updaters[agent_id].update(
                lambda aid=agent_id, idx=index: self._evaluate(data, aid, idx),
                advantages,
                returns,
            )
            stats["policy_loss"] += result.policy_loss / self.num_agents
            stats["value_loss"] += result.value_loss / self.num_agents
        self.buffer.clear()
        return stats

    def _checkpoint_modules(self) -> dict:
        return {f"net.{agent_id}": net for agent_id, net in self.networks.items()}

    def _evaluate(self, data: dict[str, np.ndarray], agent_id: str, index: int):
        network = self.networks[agent_id]
        input_dim = self._input_dims[agent_id]
        horizon = data["features"].shape[0]
        state = network.initial_state(1)
        logprob_steps, entropy_steps, value_steps = [], [], []
        for t in range(horizon):
            features = data["features"][t, index, :input_dim].reshape(1, -1)
            logits, value, state = network(features, state)
            log_probs = F.log_softmax(logits)
            probs = F.softmax(logits)
            logprob_steps.append(
                F.gather(log_probs, data["action"][t, index : index + 1])
            )
            entropy_steps.append(F.entropy(probs))
            value_steps.append(value)
        return (
            stack(logprob_steps, axis=0),
            stack(entropy_steps, axis=0),
            stack(value_steps, axis=0),
        )

    # ------------------------------------------------------------------
    def communication_bits_per_step(self, env: TrafficSignalEnv) -> int:
        """Neighbour observations + fingerprints from up to four
        neighbours, 32 bits per element (Table IV)."""
        agent_id = self.agent_ids[0]
        per_neighbour = 0
        count = 0
        for neighbour in self.neighbour_map[agent_id]:
            if neighbour is None:
                continue
            per_neighbour += (
                env.observation_spaces[neighbour].dim
                + env.action_spaces[neighbour].n
            )
            count += 1
        return per_neighbour * 32
