"""Classical non-learning adaptive baselines (extension beyond the paper).

Two standard comparators from the TSC literature, useful for sanity
checks and ablations against the learned controllers:

* :class:`MaxPressureSystem` — Varaiya's max-pressure policy: each
  decision step, activate the phase whose green movements have the
  largest total pressure.  Provably throughput-optimal under idealised
  assumptions; a strong non-learning adaptive baseline.
* :class:`LongestQueueSystem` — serve the phase with the most queued
  vehicles (greedy); simple but prone to starving minor movements.

Both use the same range-limited detectors as the RL agents, so the
comparison is information-fair.
"""

from __future__ import annotations

import numpy as np

from repro.agents.base import AgentSystem
from repro.env.tsc_env import TrafficSignalEnv
from repro.errors import ConfigError


class MaxPressureSystem(AgentSystem):
    """Max-pressure control over detector-observed pressures."""

    name = "MaxPressure"

    def __init__(self, env: TrafficSignalEnv, min_green: int = 0) -> None:
        if min_green < 0:
            raise ConfigError("min_green must be non-negative")
        self.min_green = min_green

    def act(
        self,
        observations: dict[str, np.ndarray],
        env: TrafficSignalEnv,
        training: bool,
    ) -> dict[str, int]:
        assert env.sim is not None and env.detectors is not None
        actions: dict[str, int] = {}
        for node_id in env.agent_ids:
            signal = env.sim.signals[node_id]
            if self.min_green and 0 < signal.time_in_phase < self.min_green:
                actions[node_id] = signal.current_phase_index
                continue
            plan = env.phase_plans[node_id]
            best_index = 0
            best_pressure = -np.inf
            for index, phase in enumerate(plan.phases):
                pressure = sum(
                    env.detectors.movement_pressure(env.network.movements[key])
                    for key in phase.green_movements
                )
                if pressure > best_pressure:
                    best_index, best_pressure = index, pressure
            actions[node_id] = best_index
        return actions


class LongestQueueSystem(AgentSystem):
    """Greedy longest-queue-first control (known to starve movements)."""

    name = "LongestQueue"

    def act(
        self,
        observations: dict[str, np.ndarray],
        env: TrafficSignalEnv,
        training: bool,
    ) -> dict[str, int]:
        assert env.sim is not None
        sim = env.sim
        network = env.network
        actions: dict[str, int] = {}
        for node_id in env.agent_ids:
            plan = env.phase_plans[node_id]
            best_index = 0
            best_queue = -1
            for index, phase in enumerate(plan.phases):
                queued = 0
                for in_link, out_link in phase.green_movements:
                    movement = network.movements[(in_link, out_link)]
                    for lane in network.lanes_for_movement(movement):
                        queued += sum(
                            1
                            for vehicle in sim.lane_queues[lane.lane_id]
                            if vehicle.next_link == out_link
                        )
                if queued > best_queue:
                    best_index, best_queue = index, queued
            actions[node_id] = best_index
        return actions
