"""Exception hierarchy for the repro library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class NetworkError(ReproError):
    """Raised for malformed road-network definitions."""


class SimulationError(ReproError):
    """Raised when the simulation engine reaches an invalid state."""


class DemandError(ReproError):
    """Raised for invalid traffic-demand specifications."""


class ConfigError(ReproError):
    """Raised for invalid experiment / agent configuration."""


class ScenarioSpecError(ReproError):
    """Raised for invalid declarative scenario specifications."""


class FaultInjectionError(ReproError):
    """Raised for invalid fault-injection configuration or schedules."""


class CheckpointError(ReproError):
    """Raised when a checkpoint cannot be written, read, or applied."""
