"""Service health: counters, latency percentiles, and the ops report."""

from __future__ import annotations

import numpy as np


class HealthTracker:
    """Accumulates one serving session's health signals.

    Every ``decide()`` call reports its latency and outcome here; the
    snapshot (:meth:`report`) is what the ``serve`` CLI prints and what
    ``bench_serve`` commits.
    """

    def __init__(self) -> None:
        self.ticks = 0
        self.intersections_served = 0
        self.unserved = 0
        self.deadline_misses = 0
        self.policy_exceptions = 0
        self.invalid_actions = 0
        self.controller_faults = 0
        self.fallback_ticks = 0
        self.watchdog_stalls = 0
        self.reloads_applied = 0
        self.reloads_rejected = 0
        self.episodes = 0
        self._latencies: list[float] = []

    # ------------------------------------------------------------------
    def observe_tick(
        self,
        latency_s: float,
        served: int,
        expected: int,
        fallback_count: int,
        deadline_missed: bool,
    ) -> None:
        self.ticks += 1
        self.intersections_served += served
        self.unserved += max(expected - served, 0)
        self.fallback_ticks += fallback_count
        if deadline_missed:
            self.deadline_misses += 1
        self._latencies.append(float(latency_s))

    # ------------------------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """Decision latency percentile in milliseconds."""
        if not self._latencies:
            return 0.0
        return float(np.percentile(np.asarray(self._latencies), q)) * 1000.0

    def decision_seconds(self) -> float:
        """Total time spent inside ``decide()`` across the session."""
        return float(np.sum(self._latencies)) if self._latencies else 0.0

    def intersections_per_second(self) -> float:
        """Sustained serving throughput over decision time only."""
        total = self.decision_seconds()
        return self.intersections_served / total if total > 0 else 0.0

    @property
    def healthy(self) -> bool:
        """No intersection ever went unserved."""
        return self.unserved == 0

    # ------------------------------------------------------------------
    def report(self, fallback_snapshot: dict[str, dict] | None = None) -> dict:
        """JSON-safe health snapshot."""
        payload = {
            "ticks": self.ticks,
            "episodes": self.episodes,
            "intersections_served": self.intersections_served,
            "unserved": self.unserved,
            "intersections_per_second": round(self.intersections_per_second(), 1),
            "latency_ms": {
                "p50": round(self.latency_percentile(50.0), 3),
                "p99": round(self.latency_percentile(99.0), 3),
                "max": round(max(self._latencies) * 1000.0, 3)
                if self._latencies
                else 0.0,
            },
            "deadline_misses": self.deadline_misses,
            "policy_exceptions": self.policy_exceptions,
            "invalid_actions": self.invalid_actions,
            "controller_faults": self.controller_faults,
            "fallback_ticks": self.fallback_ticks,
            "watchdog_stalls": self.watchdog_stalls,
            "reloads_applied": self.reloads_applied,
            "reloads_rejected": self.reloads_rejected,
        }
        if fallback_snapshot is not None:
            payload["intersections"] = fallback_snapshot
        return payload

    def summary(self) -> str:
        """One-paragraph operator summary."""
        status = "HEALTHY" if self.healthy else "DEGRADED (unserved ticks!)"
        return (
            f"{status}: {self.ticks} ticks, {self.intersections_served} "
            f"intersection-decisions served ({self.unserved} unserved), "
            f"{self.intersections_per_second():.0f} intersections/s, "
            f"p50 {self.latency_percentile(50.0):.2f} ms / "
            f"p99 {self.latency_percentile(99.0):.2f} ms, "
            f"{self.deadline_misses} deadline misses, "
            f"{self.policy_exceptions} policy exceptions, "
            f"{self.invalid_actions} invalid actions, "
            f"{self.controller_faults} controller-fault ticks, "
            f"{self.fallback_ticks} fallback decisions, "
            f"{self.watchdog_stalls} watchdog stalls, "
            f"reloads {self.reloads_applied} applied / "
            f"{self.reloads_rejected} rejected"
        )
