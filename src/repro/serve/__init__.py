"""Real-time control service for live policies.

Production traffic-signal control is a long-running service under hard
per-tick latency budgets, not a training loop.  This package serves a
checkpointed policy over many intersections with:

* a per-tick **deadline budget** (:class:`DeadlineBudget`) and a
  side-thread **watchdog** (:class:`Watchdog`) for hung evaluations,
* per-intersection **fallback** to classical control with
  exponential-backoff re-promotion (:class:`FallbackManager`, reusing
  :class:`repro.faults.FallbackController`),
* **atomic checkpoint hot-reload** — validate on a shadow agent, swap
  on success, roll back on corruption (:class:`PolicyRuntime`),
* a health plane (:class:`HealthTracker`) streamed through
  :mod:`repro.obs` telemetry.

The invariant the whole package exists to uphold: **every intersection
receives a valid action on every tick**, no matter what the policy,
the checkpoint pipeline, or the fault injector does.

Entry points: ``python -m repro serve`` (CLI) and
:func:`repro.perf.bench.bench_serve` (sustained-throughput benchmark).
"""

from repro.serve.config import ServeConfig
from repro.serve.deadline import DeadlineBudget, Watchdog
from repro.serve.fallback import BACKOFF, PRIMARY, PROBATION, FallbackManager
from repro.serve.health import HealthTracker
from repro.serve.runtime import PolicyRuntime, ReloadResult
from repro.serve.service import ControlService

__all__ = [
    "BACKOFF",
    "ControlService",
    "DeadlineBudget",
    "FallbackManager",
    "HealthTracker",
    "PRIMARY",
    "PROBATION",
    "PolicyRuntime",
    "ReloadResult",
    "ServeConfig",
    "Watchdog",
]
