"""Configuration for the real-time control service."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.faults.controller import FALLBACK_POLICIES


@dataclass(frozen=True)
class ServeConfig:
    """Operating envelope of a :class:`repro.serve.ControlService`.

    The service promises an action for **every intersection on every
    tick**; these knobs control how it keeps that promise when the
    policy is slow, crashing, or producing garbage.
    """

    #: Per-tick decision budget in milliseconds.  A tick whose policy
    #: evaluation runs past this is a *deadline miss*: the whole batch
    #: is served from the fallback and every intersection is demoted.
    deadline_ms: float = 50.0
    #: Classical fallback policy (see :data:`repro.faults.FALLBACK_POLICIES`).
    fallback: str = "max_pressure"
    #: Stage length of the cyclic fixed-time fallback program.
    fixed_stage_seconds: int = 5
    #: Ticks an intersection stays on the fallback after its first failure.
    backoff_base_ticks: int = 2
    #: Backoff multiplier applied when a probe fails again.
    backoff_factor: float = 2.0
    #: Ceiling on the backoff dwell, in ticks.
    backoff_max_ticks: int = 64
    #: Consecutive healthy probe ticks before an intersection is
    #: re-promoted to the primary policy.
    promote_after: int = 2
    #: Consecutive healthy primary ticks after which the escalated
    #: backoff resets to :attr:`backoff_base_ticks` (anti-flapping: a
    #: policy that oscillates keeps its long backoff until it has been
    #: genuinely stable for a while).
    reset_backoff_after: int = 16
    #: Arm a side-thread watchdog around every policy evaluation; it
    #: fires when the evaluation hangs past
    #: ``watchdog_factor * deadline_ms``.
    watchdog: bool = True
    #: Hang threshold as a multiple of the deadline.
    watchdog_factor: float = 10.0

    def __post_init__(self) -> None:
        if self.deadline_ms <= 0:
            raise ConfigError("deadline_ms must be positive")
        if self.fallback not in FALLBACK_POLICIES:
            raise ConfigError(
                f"unknown fallback {self.fallback!r}; "
                f"choose from {FALLBACK_POLICIES}"
            )
        if self.backoff_base_ticks <= 0 or self.backoff_max_ticks <= 0:
            raise ConfigError("backoff tick counts must be positive")
        if self.backoff_max_ticks < self.backoff_base_ticks:
            raise ConfigError("backoff_max_ticks must be >= backoff_base_ticks")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.promote_after <= 0:
            raise ConfigError("promote_after must be positive")
        if self.reset_backoff_after <= 0:
            raise ConfigError("reset_backoff_after must be positive")
        if self.watchdog_factor <= 1.0:
            raise ConfigError("watchdog_factor must exceed 1")

    @property
    def deadline_s(self) -> float:
        return self.deadline_ms / 1000.0

    @property
    def watchdog_threshold_s(self) -> float:
        return self.deadline_s * self.watchdog_factor
