"""Per-intersection fallback state machine with exponential backoff.

Each intersection is in one of three modes:

* ``primary`` — serving the learned policy's action,
* ``backoff`` — serving the classical fallback for a dwell period after
  a failure (deadline miss, policy exception, invalid/NaN action, or an
  injected controller fault),
* ``probation`` — the dwell expired and the policy looks healthy again;
  its actions are served but not yet trusted.  After ``promote_after``
  consecutive healthy ticks the intersection returns to ``primary``.

A failure during probation (or a controller fault persisting past the
dwell) doubles the backoff up to ``backoff_max_ticks``, so a
persistently broken policy is probed ever more rarely instead of
flapping between modes.  The escalated backoff only resets to the base
dwell after ``reset_backoff_after`` consecutive healthy primary ticks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serve.config import ServeConfig

#: Intersection modes (exposed for assertions and reports).
PRIMARY = "primary"
BACKOFF = "backoff"
PROBATION = "probation"


@dataclass
class NodeHealth:
    """Fallback bookkeeping for one intersection."""

    mode: str = PRIMARY
    backoff_ticks: int = 0
    resume_tick: int = 0
    healthy_streak: int = 0
    failures: int = 0
    fallback_ticks: int = 0
    demotions: int = 0
    promotions: int = 0

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "failures": self.failures,
            "fallback_ticks": self.fallback_ticks,
            "demotions": self.demotions,
            "promotions": self.promotions,
            "backoff_ticks": self.backoff_ticks,
        }


@dataclass
class FallbackDecision:
    """Outcome of one per-intersection arbitration."""

    use_fallback: bool
    #: Mode transition this tick, if any: ``"demoted"`` or ``"promoted"``.
    transition: str | None = None


class FallbackManager:
    """Arbitrates policy vs. fallback for every intersection, every tick."""

    def __init__(self, node_ids: list[str], config: ServeConfig) -> None:
        self.config = config
        self._states: dict[str, NodeHealth] = {
            node_id: NodeHealth(backoff_ticks=config.backoff_base_ticks)
            for node_id in node_ids
        }

    # ------------------------------------------------------------------
    def decide(self, node_id: str, tick: int, policy_healthy: bool) -> FallbackDecision:
        """Arbitrate one intersection for one tick.

        ``policy_healthy`` is this tick's verdict for this intersection:
        False on a deadline miss, policy exception, invalid action, or
        injected controller fault.
        """
        cfg = self.config
        state = self._states[node_id]
        if not policy_healthy:
            transition = None
            if state.mode == PRIMARY:
                # Keep an escalated dwell from recent instability
                # (anti-flap); it shrinks back to the base dwell only
                # via ``reset_backoff_after`` sustained healthy ticks.
                state.backoff_ticks = max(
                    state.backoff_ticks, cfg.backoff_base_ticks
                )
                state.resume_tick = tick + state.backoff_ticks
                transition = "demoted"
                state.demotions += 1
            elif state.mode == PROBATION or tick >= state.resume_tick:
                # A probe failed: the policy is still broken — escalate.
                state.backoff_ticks = min(
                    max(
                        int(state.backoff_ticks * cfg.backoff_factor),
                        state.backoff_ticks + 1,
                    ),
                    cfg.backoff_max_ticks,
                )
                state.resume_tick = tick + state.backoff_ticks
            # A failure inside the dwell keeps the existing probe
            # schedule: the next probe happens when the dwell expires,
            # so a permanently broken policy is probed at exponentially
            # growing intervals instead of never (or every tick).
            state.mode = BACKOFF
            state.healthy_streak = 0
            state.failures += 1
            state.fallback_ticks += 1
            return FallbackDecision(True, transition)

        if state.mode == PRIMARY:
            state.healthy_streak += 1
            if state.healthy_streak >= cfg.reset_backoff_after:
                state.backoff_ticks = cfg.backoff_base_ticks
            return FallbackDecision(False)

        if state.mode == BACKOFF and tick < state.resume_tick:
            state.fallback_ticks += 1
            return FallbackDecision(True)

        # Dwell expired and the policy is healthy: probe it.
        state.mode = PROBATION
        state.healthy_streak += 1
        if state.healthy_streak >= cfg.promote_after:
            state.mode = PRIMARY
            state.promotions += 1
            return FallbackDecision(False, "promoted")
        return FallbackDecision(False)

    # ------------------------------------------------------------------
    def mode(self, node_id: str) -> str:
        return self._states[node_id].mode

    def state(self, node_id: str) -> NodeHealth:
        return self._states[node_id]

    def degraded_nodes(self) -> list[str]:
        """Intersections currently not in primary mode."""
        return sorted(
            node for node, state in self._states.items() if state.mode != PRIMARY
        )

    def total_transitions(self) -> int:
        """Demotions + promotions across all intersections (flap metric)."""
        return sum(s.demotions + s.promotions for s in self._states.values())

    def snapshot(self) -> dict[str, dict]:
        """Per-intersection health, JSON-safe."""
        return {node: state.as_dict() for node, state in self._states.items()}
