"""Policy lifecycle for serving: checkpoint loading and atomic hot-reload.

A :class:`PolicyRuntime` owns the live agent and the only code path that
may replace its weights.  Hot-reload is **validate-then-swap**:

1. the candidate archive is read and rejected on any corruption
   (truncation, bit flips, non-finite values — all surfaced as
   :class:`~repro.errors.CheckpointError` by the hardened
   :func:`repro.nn.serialization.read_archive`),
2. the state is loaded into a **shadow** agent built by the same
   factory, and a smoke forward pass must produce valid actions,
3. only then is the state applied to the live agent; if that final
   apply still fails, the pre-reload snapshot is restored.

The live agent is therefore never observable in a half-loaded state,
and a corrupt checkpoint dropped next to a running service degrades to
a rejected reload event instead of an outage.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from repro.agents.base import AgentSystem
from repro.env.tsc_env import TrafficSignalEnv
from repro.errors import CheckpointError
from repro.nn.serialization import read_archive


class ReloadResult:
    """Outcome of one hot-reload attempt."""

    def __init__(self, applied: bool, path: str, reason: str = "") -> None:
        self.applied = applied
        self.path = path
        self.reason = reason

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.applied


class PolicyRuntime:
    """The live policy and its checkpoint lifecycle.

    Parameters
    ----------
    factory:
        Zero-argument callable building a fresh agent system (also used
        to build shadow agents for reload validation).
    checkpoint:
        Optional initial checkpoint; a bad initial checkpoint raises
        :class:`CheckpointError` (refusing to start is the correct
        behaviour — there is no previous generation to fall back to).
    """

    def __init__(
        self,
        factory: Callable[[], AgentSystem],
        checkpoint: str | os.PathLike | None = None,
    ) -> None:
        self._factory = factory
        self.agent = factory()
        self.generation = 0
        self.checkpoint_path: str | None = None
        if checkpoint is not None:
            state = self._read_validated(os.fspath(checkpoint))
            self.agent.load_state_dict(state)
            self.generation = 1
            self.checkpoint_path = os.fspath(checkpoint)

    # ------------------------------------------------------------------
    # Serving surface
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.agent.name

    def begin_episode(self, env: TrafficSignalEnv) -> None:
        self.agent.begin_episode(env, training=False)

    def act(
        self, observations: dict[str, np.ndarray], env: TrafficSignalEnv
    ) -> dict[str, int]:
        """Greedy policy actions; exceptions propagate to the service."""
        return self.agent.act(observations, env, training=False)

    # ------------------------------------------------------------------
    # Hot-reload
    # ------------------------------------------------------------------
    def try_reload(
        self, path: str | os.PathLike, env: TrafficSignalEnv | None = None
    ) -> ReloadResult:
        """Validate ``path`` on a shadow agent and swap atomically.

        Never raises for a bad checkpoint: returns a rejected
        :class:`ReloadResult` carrying the reason, with the live agent's
        weights untouched (or restored from the pre-reload snapshot if
        the final apply itself failed).
        """
        path = os.fspath(path)
        try:
            state = self._read_validated(path)
            self._validate_on_shadow(state, env)
        except CheckpointError as error:
            return ReloadResult(False, path, str(error))
        snapshot = self.agent.state_dict()
        try:
            self.agent.load_state_dict(state)
        except Exception as error:  # pre-validated, so this is a bug —
            # but the service must stay up: restore the snapshot.
            self.agent.load_state_dict(snapshot)
            return ReloadResult(False, path, f"apply failed, rolled back: {error}")
        self.generation += 1
        self.checkpoint_path = path
        return ReloadResult(True, path)

    # ------------------------------------------------------------------
    def _read_validated(self, path: str) -> dict[str, np.ndarray]:
        """Read an archive and check it matches the live agent exactly."""
        state = read_archive(path, require_finite=True)
        expected = set(self.agent.state_dict())
        got = set(state)
        if expected != got:
            missing = sorted(expected - got)[:4]
            unexpected = sorted(got - expected)[:4]
            raise CheckpointError(
                f"checkpoint {path} does not match policy "
                f"{self.agent.name}: missing={missing} unexpected={unexpected}"
            )
        return state

    def _validate_on_shadow(
        self, state: dict[str, np.ndarray], env: TrafficSignalEnv | None
    ) -> None:
        """Load ``state`` into a throwaway agent and smoke-test it."""
        shadow = self._factory()
        try:
            shadow.load_state_dict(state)
        except (KeyError, ValueError) as error:
            raise CheckpointError(f"shadow load failed: {error}") from error
        if env is None or env.sim is None:
            # No live episode to smoke-test against (detector suite and
            # congestion state only exist after ``env.reset``); archive
            # and shadow-load validation still apply.
            return
        # Hide the env's fault schedule during the smoke test: the
        # shadow must not consume fault randomness the live session
        # would otherwise draw (reloads stay invisible to determinism).
        schedule = env.fault_schedule
        env.fault_schedule = None
        try:
            shadow.begin_episode(env, training=False)
            observations = {
                node_id: np.zeros(env.observation_spaces[node_id].dim)
                for node_id in env.agent_ids
            }
            actions = shadow.act(observations, env, training=False)
        except Exception as error:
            raise CheckpointError(f"shadow smoke test crashed: {error}") from error
        finally:
            env.fault_schedule = schedule
        for node_id in env.agent_ids:
            action = actions.get(node_id)
            try:
                valid = action is not None and env.action_spaces[node_id].contains(
                    int(action)
                )
            except (TypeError, ValueError):
                valid = False
            if not valid:
                raise CheckpointError(
                    f"shadow smoke test produced invalid action "
                    f"{action!r} for {node_id}"
                )
