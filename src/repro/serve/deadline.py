"""Deadline accounting and hung-evaluation watchdog.

A :class:`DeadlineBudget` is a one-shot stopwatch started at tick entry;
the service reads it after the policy evaluation to classify the tick.
The clock is injectable so deadline behaviour is deterministic under
test (a fake clock advances exactly as scripted).

A :class:`Watchdog` covers the failure the budget cannot: a policy
evaluation that never returns.  It arms a side-thread timer before the
evaluation; if the evaluation is still running when the hang threshold
expires, the timer fires from its own thread and reports the stall
(telemetry + counters) while the main thread is still stuck — the ops
plane sees the hang even though the service thread cannot preempt it.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import ConfigError


class DeadlineBudget:
    """One tick's decision budget, measured from construction."""

    def __init__(
        self,
        deadline_s: float,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if deadline_s <= 0:
            raise ConfigError("deadline must be positive")
        self.deadline_s = deadline_s
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        """Seconds since the budget was opened."""
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left before the deadline (negative once missed)."""
        return self.deadline_s - self.elapsed()

    def exceeded(self) -> bool:
        """Whether the deadline has been missed."""
        return self.elapsed() > self.deadline_s


class Watchdog:
    """Side-thread detector for hung policy evaluations.

    ``arm(tick)`` starts a timer; ``disarm()`` cancels it and reports
    whether it fired.  The optional ``on_stall(tick, threshold_s)``
    callback runs on the timer thread, so it must only do thread-safe
    reporting (the telemetry event log append qualifies).
    """

    def __init__(
        self,
        threshold_s: float,
        on_stall: Callable[[int, float], None] | None = None,
    ) -> None:
        if threshold_s <= 0:
            raise ConfigError("watchdog threshold must be positive")
        self.threshold_s = threshold_s
        self.on_stall = on_stall
        self.stalls = 0
        self.last_stall_tick: int | None = None
        self._timer: threading.Timer | None = None
        self._fired = threading.Event()

    def arm(self, tick: int) -> None:
        """Start watching one policy evaluation."""
        self.disarm()
        self._fired.clear()

        def _fire() -> None:
            self._fired.set()
            self.stalls += 1
            self.last_stall_tick = tick
            if self.on_stall is not None:
                self.on_stall(tick, self.threshold_s)

        self._timer = threading.Timer(self.threshold_s, _fire)
        self._timer.daemon = True
        self._timer.start()

    def disarm(self) -> bool:
        """Stop watching; returns whether the watchdog fired."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        return self._fired.is_set()
