"""The fault-tolerant real-time control service.

A :class:`ControlService` steps every signalized intersection of one
environment on batched observations, inside a per-tick deadline budget,
and **never fails open**: whatever the policy does — run past the
deadline, raise, emit NaN/invalid actions, or get killed by an injected
controller fault — every intersection receives a valid action every
tick.  Failures are covered per-intersection by a classical fallback
(:class:`repro.faults.FallbackController`) with exponential-backoff
re-promotion once the policy proves healthy again.

Checkpoint hot-reload is atomic (validate on a shadow, swap on success,
roll back on corruption) and applied only between ticks, so a reload can
never tear a decision.  The optional :mod:`repro.obs` telemetry sink is
the ops plane: deadline misses, fallback transitions, watchdog stalls
and reload outcomes all land in the event log.
"""

from __future__ import annotations

import os
import time
from typing import Callable

import numpy as np

from repro.env.tsc_env import TrafficSignalEnv
from repro.errors import ConfigError
from repro.faults.controller import FallbackController
from repro.serve.config import ServeConfig
from repro.serve.deadline import DeadlineBudget, Watchdog
from repro.serve.fallback import FallbackManager
from repro.serve.health import HealthTracker
from repro.serve.runtime import PolicyRuntime

#: Per-intersection failure verdicts (event/report vocabulary).
VERDICTS = (
    "policy_exception",
    "deadline_miss",
    "invalid_action",
    "controller_fault",
)


class ControlService:
    """Serve one environment's intersections from a live policy.

    Parameters
    ----------
    env:
        The environment being controlled.  Its fault schedule (if any)
        supplies injected controller deaths; detector/message faults act
        through the usual observation/message paths.
    runtime:
        The policy runtime (checkpoint loading + hot-reload).
    config:
        Deadline/fallback/backoff/watchdog envelope.
    telemetry:
        Optional :class:`repro.obs.telemetry.Telemetry` ops sink.
    clock:
        Injectable monotonic clock for the deadline budget (tests pass a
        scripted clock to exercise deadline misses deterministically).
    """

    def __init__(
        self,
        env: TrafficSignalEnv,
        runtime: PolicyRuntime,
        config: ServeConfig | None = None,
        telemetry=None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.env = env
        self.runtime = runtime
        self.config = config or ServeConfig()
        self.telemetry = telemetry
        self._clock = clock
        self.health = HealthTracker()
        self.fallbacks = FallbackManager(list(env.agent_ids), self.config)
        self.fallback_controller = FallbackController(
            self.config.fallback, self.config.fixed_stage_seconds
        )
        self.watchdog: Watchdog | None = None
        if self.config.watchdog:
            self.watchdog = Watchdog(
                self.config.watchdog_threshold_s, on_stall=self._on_stall
            )
        self.tick_index = 0
        self._pending_reload: str | None = None
        self.reload_log: list = []
        if telemetry is not None:
            env.attach_telemetry(telemetry)

    # ------------------------------------------------------------------
    # Episode / session control
    # ------------------------------------------------------------------
    def start_episode(self, seed: int | None = None) -> dict[str, np.ndarray]:
        """Reset the environment and the policy's episode state."""
        observations = self.env.reset(seed=seed)
        self.runtime.begin_episode(self.env)
        return observations

    def serve(self, ticks: int, seed: int | None = 0) -> HealthTracker:
        """Serve ``ticks`` decision steps, spanning episodes as needed."""
        if ticks <= 0:
            raise ConfigError("ticks must be positive")
        observations = self.start_episode(seed)
        for _ in range(ticks):
            actions = self.decide(observations)
            result = self.env.step(actions)
            observations = result.observations
            if result.done:
                self.health.episodes += 1
                observations = self.start_episode()
        if self.telemetry is not None:
            self.telemetry.serve_session(self.health.report())
        return self.health

    # ------------------------------------------------------------------
    # Hot-reload
    # ------------------------------------------------------------------
    def request_reload(self, path: str | os.PathLike) -> None:
        """Schedule a checkpoint reload for the next tick boundary."""
        self._pending_reload = os.fspath(path)

    def _apply_pending_reload(self) -> None:
        path, self._pending_reload = self._pending_reload, None
        result = self.runtime.try_reload(path, env=self.env)
        self.reload_log.append(result)
        if result.applied:
            self.health.reloads_applied += 1
        else:
            self.health.reloads_rejected += 1
        if self.telemetry is not None:
            self.telemetry.serve_reload(
                path=result.path,
                applied=result.applied,
                generation=self.runtime.generation,
                reason=result.reason,
            )

    # ------------------------------------------------------------------
    # The per-tick decision
    # ------------------------------------------------------------------
    def decide(self, observations: dict[str, np.ndarray]) -> dict[str, int]:
        """One guaranteed-coverage decision tick.

        Always returns a valid action for every intersection; never
        raises for a policy-side failure.
        """
        env = self.env
        tick = self.tick_index
        self.tick_index += 1
        if self._pending_reload is not None:
            # Reloads happen between ticks, outside the deadline budget.
            self._apply_pending_reload()

        budget = DeadlineBudget(self.config.deadline_s, clock=self._clock)
        failure: str | None = None
        raw_actions: dict[str, int] = {}
        if self.watchdog is not None:
            self.watchdog.arm(tick)
        try:
            raw_actions = self.runtime.act(observations, env)
        except Exception as error:  # the service must never fail open
            failure = f"{type(error).__name__}: {error}"
        finally:
            if self.watchdog is not None and self.watchdog.disarm():
                self.health.watchdog_stalls += 1
        deadline_missed = budget.exceeded()

        if failure is not None:
            self.health.policy_exceptions += 1
            if self.telemetry is not None:
                self.telemetry.serve_policy_failure(tick=tick, error=failure)
        if deadline_missed and self.telemetry is not None:
            self.telemetry.serve_deadline_miss(
                tick=tick,
                elapsed_ms=budget.elapsed() * 1000.0,
                deadline_ms=self.config.deadline_ms,
            )

        actions: dict[str, int] = {}
        fallback_count = 0
        for node_id in env.agent_ids:
            verdict = self._verdict(
                env, node_id, raw_actions, failure, deadline_missed
            )
            decision = self.fallbacks.decide(node_id, tick, verdict is None)
            if self.telemetry is not None:
                if decision.transition == "demoted":
                    self.telemetry.serve_fallback(
                        node_id=node_id,
                        tick=tick,
                        reason=verdict or "unknown",
                        backoff_ticks=self.fallbacks.state(node_id).backoff_ticks,
                    )
                elif decision.transition == "promoted":
                    self.telemetry.serve_promotion(node_id=node_id, tick=tick)
            if decision.use_fallback:
                actions[node_id] = self.fallback_controller.action(env, node_id)
                fallback_count += 1
            else:
                actions[node_id] = int(raw_actions[node_id])

        self.health.observe_tick(
            latency_s=budget.elapsed(),
            served=len(actions),
            expected=len(env.agent_ids),
            fallback_count=fallback_count,
            deadline_missed=deadline_missed,
        )
        if self.telemetry is not None:
            self.telemetry.metrics.count("serve.ticks")
            self.telemetry.metrics.count("serve.intersections_served", len(actions))
            if fallback_count:
                self.telemetry.metrics.count("serve.fallback_decisions", fallback_count)
        return actions

    # ------------------------------------------------------------------
    def _verdict(
        self,
        env: TrafficSignalEnv,
        node_id: str,
        raw_actions: dict[str, int],
        failure: str | None,
        deadline_missed: bool,
    ) -> str | None:
        """This tick's failure verdict for one intersection (None = healthy)."""
        verdict: str | None = None
        if failure is not None:
            verdict = "policy_exception"
        elif deadline_missed:
            verdict = "deadline_miss"
        else:
            action = raw_actions.get(node_id)
            try:
                valid = action is not None and env.action_spaces[node_id].contains(
                    int(action)
                )
            except (TypeError, ValueError, OverflowError):
                valid = False
            if not valid:
                verdict = "invalid_action"
                self.health.invalid_actions += 1
        if self._controller_dead(env, node_id):
            verdict = "controller_fault"
            self.health.controller_faults += 1
        return verdict

    def _controller_dead(self, env: TrafficSignalEnv, node_id: str) -> bool:
        """Injected controller death (reuses the env's fault schedule)."""
        schedule = env.fault_schedule
        if schedule is None or not schedule.config.any_controller_faults:
            return False
        if not schedule.controller_dead(node_id):
            return False
        tick = env.sim.time if env.sim is not None else None
        schedule.emit_activation(
            "controller_death", node_id, tick=tick, scope="episode"
        )
        return True

    def _on_stall(self, tick: int, threshold_s: float) -> None:
        """Watchdog timer callback (runs on the timer thread)."""
        if self.telemetry is not None:
            self.telemetry.serve_watchdog_stall(
                tick=tick, threshold_ms=threshold_s * 1000.0
            )
