"""Synthetic grid networks (paper Section VI-A, Fig. 6).

The paper's 6x6 grid has:

* 200 m spacing between intersections,
* two-lane **arterial** streets east-west (right lane shared
  through+right, left lane dedicated left-turn),
* one-lane **avenues** north-south (single lane shared for all turns),
* 50 m detector coverage,
* a four-phase plan per intersection (Fig. 3), 5 s green actions + 2 s
  yellow.

Fringe (terminal) nodes sit one block outside the grid on every approach
so that demand can be injected toward and drained from every border
intersection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkError
from repro.sim.network import RoadNetwork, TurnType
from repro.sim.signal import PhasePlan, default_four_phase_plan

#: Arterial (east-west) lane layout: left lane turns left, right lane is
#: the paper's shared through/right lane.
ARTERIAL_LANES = [
    frozenset({TurnType.LEFT, TurnType.UTURN}),
    frozenset({TurnType.THROUGH, TurnType.RIGHT}),
]
#: Avenue (north-south) lane layout: one lane shared by every movement.
AVENUE_LANES = [frozenset({TurnType.LEFT, TurnType.THROUGH, TurnType.RIGHT, TurnType.UTURN})]


@dataclass(frozen=True)
class GridSpec:
    """Parameters of a synthetic grid scenario."""

    rows: int = 6
    cols: int = 6
    block_length: float = 200.0
    speed_limit: float = 13.89  # 50 km/h
    arterial_horizontal: bool = True  # east-west streets get 2 lanes

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise NetworkError("grid needs at least 1x1 intersections")
        if self.block_length <= 0 or self.speed_limit <= 0:
            raise NetworkError("grid geometry must be positive")


def intersection_id(row: int, col: int) -> str:
    """Canonical id of the intersection at (row, col); row 0 is north."""
    return f"I{row}_{col}"


def terminal_id(side: str, index: int) -> str:
    """Canonical id of a fringe terminal (side in n/s/e/w)."""
    return f"T{side}{index}"


def link_id(from_node: str, to_node: str) -> str:
    """Canonical id of the directed link between two nodes."""
    return f"{from_node}->{to_node}"


class GridScenario:
    """A built grid: network + phase plans + corridor lookup helpers."""

    def __init__(self, spec: GridSpec) -> None:
        self.spec = spec
        self.network = RoadNetwork()
        self._build_nodes()
        self._build_links()
        self._build_movements()
        self.network.validate()
        self.phase_plans: dict[str, PhasePlan] = {
            node_id: default_four_phase_plan(self.network, node_id)
            for node_id in self.network.signalized_nodes()
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_nodes(self) -> None:
        spec = self.spec
        block = spec.block_length
        for row in range(spec.rows):
            for col in range(spec.cols):
                self.network.add_node(
                    intersection_id(row, col), x=col * block, y=-row * block, signalized=True
                )
        for col in range(spec.cols):
            self.network.add_node(terminal_id("n", col), x=col * block, y=block)
            self.network.add_node(
                terminal_id("s", col), x=col * block, y=-spec.rows * block
            )
        for row in range(spec.rows):
            self.network.add_node(terminal_id("w", row), x=-block, y=-row * block)
            self.network.add_node(
                terminal_id("e", row), x=spec.cols * block, y=-row * block
            )

    def _lane_layout(self, horizontal: bool) -> list[frozenset[TurnType]]:
        if horizontal == self.spec.arterial_horizontal:
            return list(ARTERIAL_LANES)
        return list(AVENUE_LANES)

    def _add_two_way(self, a: str, b: str, horizontal: bool) -> None:
        layout = self._lane_layout(horizontal)
        for src, dst in ((a, b), (b, a)):
            self.network.add_link(
                link_id(src, dst),
                src,
                dst,
                length=self.spec.block_length,
                num_lanes=len(layout),
                speed_limit=self.spec.speed_limit,
                lane_turns=layout,
            )

    def _build_links(self) -> None:
        spec = self.spec
        for row in range(spec.rows):
            for col in range(spec.cols):
                here = intersection_id(row, col)
                if col + 1 < spec.cols:
                    self._add_two_way(here, intersection_id(row, col + 1), horizontal=True)
                if row + 1 < spec.rows:
                    self._add_two_way(here, intersection_id(row + 1, col), horizontal=False)
        for col in range(spec.cols):
            self._add_two_way(terminal_id("n", col), intersection_id(0, col), horizontal=False)
            self._add_two_way(
                intersection_id(spec.rows - 1, col), terminal_id("s", col), horizontal=False
            )
        for row in range(spec.rows):
            self._add_two_way(terminal_id("w", row), intersection_id(row, 0), horizontal=True)
            self._add_two_way(
                intersection_id(row, spec.cols - 1), terminal_id("e", row), horizontal=True
            )

    def _build_movements(self) -> None:
        """Declare every non-U-turn movement at every intersection."""
        network = self.network
        for node_id in network.signalized_nodes():
            node = network.nodes[node_id]
            for in_link_id in node.incoming:
                in_link = network.links[in_link_id]
                for out_link_id in node.outgoing:
                    out_link = network.links[out_link_id]
                    if out_link.to_node == in_link.from_node:
                        continue  # skip U-turns back where we came from
                    network.add_movement(in_link_id, out_link_id)

    # ------------------------------------------------------------------
    # Corridor helpers (used by the flow patterns)
    # ------------------------------------------------------------------
    def column_route_links(self, col: int, southbound: bool) -> tuple[str, str]:
        """(origin_link, destination_link) of a full vertical corridor."""
        if not 0 <= col < self.spec.cols:
            raise NetworkError(f"column {col} outside grid")
        top_terminal = terminal_id("n", col)
        bottom_terminal = terminal_id("s", col)
        first = intersection_id(0, col)
        last = intersection_id(self.spec.rows - 1, col)
        if southbound:
            return link_id(top_terminal, first), link_id(last, bottom_terminal)
        return link_id(bottom_terminal, last), link_id(first, top_terminal)

    def row_route_links(self, row: int, eastbound: bool) -> tuple[str, str]:
        """(origin_link, destination_link) of a full horizontal corridor."""
        if not 0 <= row < self.spec.rows:
            raise NetworkError(f"row {row} outside grid")
        west_terminal = terminal_id("w", row)
        east_terminal = terminal_id("e", row)
        first = intersection_id(row, 0)
        last = intersection_id(row, self.spec.cols - 1)
        if eastbound:
            return link_id(west_terminal, first), link_id(last, east_terminal)
        return link_id(east_terminal, last), link_id(first, west_terminal)


def build_grid(rows: int = 6, cols: int = 6, **kwargs) -> GridScenario:
    """Convenience constructor; ``build_grid()`` is the paper's 6x6 grid.

    Construction is O(N) in the number of intersections (every loop is
    per-node/per-link/per-movement with bounded degree), so city-scale
    grids — the 50x50, 2500-intersection sharding workload — build in
    seconds, not minutes.
    """
    return GridScenario(GridSpec(rows=rows, cols=cols, **kwargs))


def parse_grid_size(text: str) -> tuple[int, int]:
    """Parse a ``"WxH"`` grid size into ``(rows, cols)``.

    ``W`` is the number of columns (width, east-west extent) and ``H``
    the number of rows; a bare ``"N"`` means the square ``NxN``.  This
    is the format of the ``--grid-size`` CLI flag.
    """
    cleaned = text.strip().lower()
    parts = cleaned.split("x")
    try:
        if len(parts) == 1:
            width = height = int(parts[0])
        elif len(parts) == 2:
            width, height = int(parts[0]), int(parts[1])
        else:
            raise ValueError
    except ValueError:
        raise NetworkError(
            f"grid size must look like '50x50' (WxH) or '50', got {text!r}"
        ) from None
    if width < 1 or height < 1:
        raise NetworkError(f"grid size must be at least 1x1, got {text!r}")
    return height, width
