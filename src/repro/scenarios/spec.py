"""Declarative scenario compiler: JSON specs -> runnable scenarios.

The paper evaluates on five hand-coded flow patterns over one grid;
measuring generalisation needs *many* workloads, defined as data rather
than Python.  A **scenario spec** is a JSON document:

.. code-block:: json

    {
      "version": 1,
      "name": "rush-hour",
      "network": {"kind": "grid", "rows": 4, "cols": 4},
      "demand": [
        {"kind": "od", "name": "main", "origin": "Tn1->I0_1",
         "destination": "I3_1->Ts1",
         "profile": {"kind": "triangular", "start": 0, "peak_time": 900,
                     "end": 1800, "peak_rate": 450}}
      ],
      "incidents": [
        {"kind": "link_closure", "link": "I1_1->I1_2",
         "start": 600, "duration": 300}
      ],
      "horizon": 2100
    }

Network kinds:

* ``grid`` — the paper's synthetic grid (:class:`~repro.scenarios.grid.GridSpec`
  fields: ``rows``, ``cols``, ``block_length``, ``speed_limit``).
* ``edge_list`` — arbitrary topologies from ``nodes`` + ``edges``
  (two-way unless ``"oneway": true``); movements are auto-declared at
  every pass-through node and signalized nodes get the default
  four-phase plan.
* ``explicit`` — the full :mod:`repro.sim.io` payload
  (``nodes``/``links``/``movements``/``phase_plans``), for scenarios
  exported by :func:`scenario_to_spec` or written by hand.

Demand entry kinds: ``od`` (one flow, any profile kind below),
``pattern`` (the paper's patterns 1-5, grid networks only) and
``uniform`` (light uniform grid background).  Profile kinds:
``constant``, ``triangular``, ``multi_peak`` (day-long AM/PM commuter
shapes), ``surge`` (trapezoidal special-event pulse) and raw ``points``.

Every compiled scenario has a *canonical* form — network serialised
explicitly, every flow reduced to an ``od`` entry with a ``points``
profile, incidents normalised to ``capacity`` windows — produced by
:func:`scenario_to_spec`.  Canonicalisation is idempotent, and
:func:`scenario_digest` hashes the canonical JSON, which is what the
golden-spec regression tests and the fuzzer's distinctness guarantee
are built on.  All validation errors raise :class:`ScenarioSpecError`
with the offending path spelled out.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import dataclass, field
from typing import Any

from repro.errors import (
    DemandError,
    FaultInjectionError,
    NetworkError,
    ScenarioSpecError,
)
from repro.faults.incidents import Incident, IncidentSchedule
from repro.scenarios.flows import flow_pattern, light_uniform_pattern
from repro.scenarios.grid import GridScenario, GridSpec
from repro.sim.demand import DemandGenerator, Flow, RateProfile
from repro.sim.io import network_from_dict, network_to_dict
from repro.sim.network import RoadNetwork, TurnType
from repro.sim.routing import Router
from repro.sim.signal import PhasePlan, default_four_phase_plan

SPEC_VERSION = 1

NETWORK_KINDS = ("grid", "edge_list", "explicit")
DEMAND_KINDS = ("od", "pattern", "uniform")
PROFILE_KINDS = ("constant", "triangular", "multi_peak", "surge", "points")
INCIDENT_SPEC_KINDS = ("link_closure", "lane_closure", "capacity")

#: Seconds appended to the last demand/incident event when the spec does
#: not pin ``horizon`` — lets emitted vehicles drain before the episode ends.
DEFAULT_DRAIN_MARGIN_S = 300

#: All-turns lane layout used for ``edge_list`` links without an explicit
#: per-lane turn assignment.
_ALL_TURNS = frozenset(
    {TurnType.LEFT, TurnType.THROUGH, TurnType.RIGHT, TurnType.UTURN}
)


@dataclass
class CompiledScenario:
    """A spec compiled to runnable objects.

    ``flows`` hold mutable emission accumulators; never share them
    between concurrent runs — call :meth:`fresh_flows` per run.
    """

    name: str
    network: RoadNetwork
    phase_plans: dict[str, PhasePlan]
    flows: list[Flow]
    incidents: IncidentSchedule | None
    horizon_ticks: int
    metadata: dict[str, Any] = field(default_factory=dict)
    #: Set when the network kind was ``grid`` — gives eval harnesses the
    #: corridor helpers without re-deriving geometry.
    grid: GridScenario | None = None

    def fresh_flows(self) -> list[Flow]:
        """Per-run copies of the flows (clean emission accumulators)."""
        return [
            Flow(flow.name, flow.origin_link, flow.destination_link, flow.profile)
            for flow in self.flows
        ]

    def expected_vehicles(self) -> float:
        """Total expected emissions over the whole scenario."""
        return sum(flow.expected_vehicles() for flow in self.flows)

    def demand_generator(
        self, seed: int = 0, stochastic: bool = True
    ) -> DemandGenerator:
        """A fresh, independently-seeded demand source for one run."""
        return DemandGenerator(
            self.fresh_flows(), Router(self.network), seed=seed, stochastic=stochastic
        )

    def build_simulation(
        self, seed: int = 0, stochastic: bool = True, **sim_kwargs
    ):
        """An object-engine :class:`~repro.sim.engine.Simulation` with
        demand and the incident schedule attached."""
        from repro.sim.engine import Simulation

        sim = Simulation(
            self.network,
            self.demand_generator(seed=seed, stochastic=stochastic),
            self.phase_plans,
            **sim_kwargs,
        )
        if self.incidents:
            sim.incidents = self.incidents
        return sim


# ----------------------------------------------------------------------
# Validation helpers
# ----------------------------------------------------------------------
def _require(payload: dict, key: str, where: str) -> Any:
    if key not in payload:
        raise ScenarioSpecError(f"{where}: missing required field {key!r}")
    return payload[key]


def _number(payload: dict, key: str, where: str, default=None, minimum=None):
    value = payload.get(key, default)
    if value is None:
        raise ScenarioSpecError(f"{where}: missing required field {key!r}")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioSpecError(f"{where}: {key!r} must be a number, got {value!r}")
    if minimum is not None and value < minimum:
        raise ScenarioSpecError(f"{where}: {key!r} must be >= {minimum}, got {value}")
    return float(value)


def _integer(payload: dict, key: str, where: str, default=None, minimum=None) -> int:
    value = _number(payload, key, where, default=default, minimum=minimum)
    if value != int(value):
        raise ScenarioSpecError(f"{where}: {key!r} must be an integer, got {value}")
    return int(value)


def _kind_of(payload: Any, allowed: tuple[str, ...], where: str) -> str:
    if not isinstance(payload, dict):
        raise ScenarioSpecError(f"{where}: expected an object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind not in allowed:
        raise ScenarioSpecError(
            f"{where}: 'kind' must be one of {list(allowed)}, got {kind!r}"
        )
    return kind


def validate_spec(spec: Any) -> dict[str, Any]:
    """Structural validation; returns the spec (raises on bad shape).

    Checks field presence, kinds and value ranges — everything that can
    be checked without building the network.  Link existence and route
    feasibility are checked during :func:`compile_spec`.
    """
    if not isinstance(spec, dict):
        raise ScenarioSpecError(f"spec must be a JSON object, got {type(spec).__name__}")
    version = spec.get("version", SPEC_VERSION)
    if version != SPEC_VERSION:
        raise ScenarioSpecError(
            f"unsupported spec version {version!r} (this library reads {SPEC_VERSION})"
        )
    name = spec.get("name", "scenario")
    if not isinstance(name, str) or not name:
        raise ScenarioSpecError(f"'name' must be a non-empty string, got {name!r}")

    network = _require(spec, "network", "spec")
    net_kind = _kind_of(network, NETWORK_KINDS, "network")
    if net_kind == "grid":
        _integer(network, "rows", "network(grid)", default=6, minimum=1)
        _integer(network, "cols", "network(grid)", default=6, minimum=1)
    elif net_kind == "edge_list":
        nodes = _require(network, "nodes", "network(edge_list)")
        edges = _require(network, "edges", "network(edge_list)")
        if not isinstance(nodes, list) or not nodes:
            raise ScenarioSpecError("network(edge_list): 'nodes' must be a non-empty list")
        if not isinstance(edges, list) or not edges:
            raise ScenarioSpecError("network(edge_list): 'edges' must be a non-empty list")
        for i, node in enumerate(nodes):
            _require(node, "id", f"network.nodes[{i}]")
        for i, edge in enumerate(edges):
            _require(edge, "from", f"network.edges[{i}]")
            _require(edge, "to", f"network.edges[{i}]")
    else:  # explicit
        for key in ("nodes", "links"):
            if not network.get(key):
                raise ScenarioSpecError(
                    f"network(explicit): non-empty {key!r} list required"
                )

    demand = spec.get("demand", [])
    if not isinstance(demand, list):
        raise ScenarioSpecError("'demand' must be a list of demand entries")
    embedded_flows = net_kind == "explicit" and bool(network.get("flows"))
    if demand and embedded_flows:
        raise ScenarioSpecError(
            "demand is ambiguous: both spec['demand'] and explicit network "
            "'flows' are present; keep one"
        )
    if not demand and not embedded_flows:
        raise ScenarioSpecError("scenario has no demand: add 'demand' entries")
    names: set[str] = set()
    for i, entry in enumerate(demand):
        where = f"demand[{i}]"
        kind = _kind_of(entry, DEMAND_KINDS, where)
        if kind == "od":
            flow_name = _require(entry, "name", where)
            if flow_name in names:
                raise ScenarioSpecError(f"{where}: duplicate flow name {flow_name!r}")
            names.add(flow_name)
            _require(entry, "origin", where)
            _require(entry, "destination", where)
            _validate_profile(_require(entry, "profile", where), f"{where}.profile")
        elif kind == "pattern":
            pattern = _integer(entry, "pattern", where, minimum=1)
            if pattern > 5:
                raise ScenarioSpecError(f"{where}: pattern must be 1-5, got {pattern}")
        else:  # uniform
            _number(entry, "duration", where, default=1800.0, minimum=1.0)

    incidents = spec.get("incidents", [])
    if not isinstance(incidents, list):
        raise ScenarioSpecError("'incidents' must be a list")
    for i, entry in enumerate(incidents):
        where = f"incidents[{i}]"
        kind = _kind_of(entry, INCIDENT_SPEC_KINDS, where)
        _require(entry, "link", where)
        _integer(entry, "start", where, minimum=0)
        _integer(entry, "duration", where, minimum=1)
        if kind == "capacity":
            factor = _number(entry, "factor", where, minimum=0.0)
            if factor > 1.0:
                raise ScenarioSpecError(f"{where}: factor must be <= 1, got {factor}")
        elif kind == "lane_closure":
            _integer(entry, "lanes_closed", where, default=1, minimum=1)

    if "horizon" in spec:
        _integer(spec, "horizon", "spec", minimum=1)
    metadata = spec.get("metadata", {})
    if not isinstance(metadata, dict):
        raise ScenarioSpecError("'metadata' must be a JSON object")
    return spec


def _validate_profile(payload: Any, where: str) -> None:
    kind = _kind_of(payload, PROFILE_KINDS, where)
    if kind == "constant":
        _number(payload, "rate", where, minimum=0.0)
        _number(payload, "duration", where, minimum=0.0)
    elif kind == "triangular":
        start = _number(payload, "start", where, default=0.0, minimum=0.0)
        peak = _number(payload, "peak_time", where, minimum=0.0)
        end = _number(payload, "end", where, minimum=0.0)
        _number(payload, "peak_rate", where, minimum=0.0)
        if not start <= peak <= end:
            raise ScenarioSpecError(f"{where}: requires start <= peak_time <= end")
    elif kind == "multi_peak":
        peaks = _require(payload, "peaks", where)
        if not isinstance(peaks, list) or not peaks:
            raise ScenarioSpecError(f"{where}: 'peaks' must be a non-empty list")
        _number(payload, "base_rate", where, default=0.0, minimum=0.0)
        _number(payload, "duration", where, minimum=1.0)
        for j, peak in enumerate(peaks):
            _number(peak, "time", f"{where}.peaks[{j}]", minimum=0.0)
            _number(peak, "rate", f"{where}.peaks[{j}]", minimum=0.0)
            _number(peak, "width", f"{where}.peaks[{j}]", minimum=1.0)
    elif kind == "surge":
        start = _number(payload, "start", where, default=0.0, minimum=0.0)
        duration = _number(payload, "duration", where, minimum=1.0)
        _number(payload, "rate", where, minimum=0.0)
        ramp = _number(payload, "ramp", where, default=duration / 4.0, minimum=0.0)
        if 2 * ramp > duration:
            raise ScenarioSpecError(
                f"{where}: ramp ({ramp}) too long for duration ({duration})"
            )
    else:  # points
        points = _require(payload, "points", where)
        if not isinstance(points, list) or not points:
            raise ScenarioSpecError(f"{where}: 'points' must be a non-empty list")
        for j, point in enumerate(points):
            if not isinstance(point, (list, tuple)) or len(point) != 2:
                raise ScenarioSpecError(
                    f"{where}.points[{j}]: expected a [time, rate] pair"
                )


# ----------------------------------------------------------------------
# Profile / demand compilation
# ----------------------------------------------------------------------
def _compile_profile(payload: dict, where: str) -> RateProfile:
    kind = payload["kind"]
    try:
        if kind == "constant":
            return RateProfile.constant(payload["rate"], payload["duration"])
        if kind == "triangular":
            return RateProfile.triangular(
                payload.get("start", 0.0),
                payload["peak_time"],
                payload["end"],
                payload["peak_rate"],
            )
        if kind == "multi_peak":
            return _multi_peak_profile(payload, where)
        if kind == "surge":
            return _surge_profile(payload)
        return RateProfile(
            tuple((float(t), float(r)) for t, r in payload["points"])
        )
    except DemandError as exc:
        raise ScenarioSpecError(f"{where}: {exc}") from exc


def _multi_peak_profile(payload: dict, where: str) -> RateProfile:
    """Day-long commuter shape: a base rate with trapezoid-free triangular
    peaks (AM/PM rush) riding on top."""
    base = float(payload.get("base_rate", 0.0))
    duration = float(payload["duration"])
    points: list[tuple[float, float]] = [(0.0, base)]
    for peak in sorted(payload["peaks"], key=lambda p: float(p["time"])):
        t, rate, width = float(peak["time"]), float(peak["rate"]), float(peak["width"])
        rise, fall = max(0.0, t - width / 2), min(duration, t + width / 2)
        if rise < points[-1][0]:
            raise ScenarioSpecError(
                f"{where}: peaks overlap near t={t} (previous point at "
                f"t={points[-1][0]}); widen spacing or merge peaks"
            )
        points.extend([(rise, base), (t, rate), (fall, base)])
    if points[-1][0] < duration:
        points.append((duration, base))
    return RateProfile(tuple(points))


def _surge_profile(payload: dict) -> RateProfile:
    """Trapezoidal special-event pulse: ramp up, hold, ramp down."""
    start = float(payload.get("start", 0.0))
    duration = float(payload["duration"])
    rate = float(payload["rate"])
    ramp = float(payload.get("ramp", duration / 4.0))
    return RateProfile(
        (
            (start, 0.0),
            (start + ramp, rate),
            (start + duration - ramp, rate),
            (start + duration, 0.0),
        )
    )


def _compile_demand(
    spec: dict, network_kind: str, grid: GridScenario | None, embedded: list[Flow]
) -> list[Flow]:
    flows: list[Flow] = list(embedded)
    for i, entry in enumerate(spec.get("demand", [])):
        where = f"demand[{i}]"
        kind = entry["kind"]
        if kind == "od":
            flows.append(
                Flow(
                    entry["name"],
                    entry["origin"],
                    entry["destination"],
                    _compile_profile(entry["profile"], f"{where}.profile"),
                )
            )
            continue
        if grid is None:
            raise ScenarioSpecError(
                f"{where}: kind {kind!r} needs a grid network, "
                f"got {network_kind!r}"
            )
        try:
            if kind == "pattern":
                flows.extend(
                    flow_pattern(
                        grid,
                        int(entry["pattern"]),
                        peak_rate=float(entry.get("peak_rate", 500.0)),
                        t_peak=float(entry.get("t_peak", 900.0)),
                        light_duration=float(entry.get("light_duration", 1800.0)),
                    )
                )
            else:  # uniform
                flows.extend(
                    light_uniform_pattern(
                        grid,
                        duration=float(entry.get("duration", 1800.0)),
                        ew_rate=float(entry.get("ew_rate", 300.0)),
                        sn_rate=float(entry.get("sn_rate", 90.0)),
                    )
                )
        except DemandError as exc:
            raise ScenarioSpecError(f"{where}: {exc}") from exc
    seen: set[str] = set()
    for flow in flows:
        if flow.name in seen:
            raise ScenarioSpecError(
                f"duplicate flow name {flow.name!r} after demand expansion; "
                "rename the 'od' entry or drop the overlapping pattern"
            )
        seen.add(flow.name)
    return flows


# ----------------------------------------------------------------------
# Network compilation
# ----------------------------------------------------------------------
def _compile_edge_list(
    payload: dict,
) -> tuple[RoadNetwork, dict[str, PhasePlan]]:
    network = RoadNetwork()
    try:
        for node in payload["nodes"]:
            network.add_node(
                node["id"],
                float(node.get("x", 0.0)),
                float(node.get("y", 0.0)),
                bool(node.get("signalized", False)),
            )
        for edge in payload["edges"]:
            src, dst = edge["from"], edge["to"]
            num_lanes = int(edge.get("lanes", 1))
            if num_lanes < 1:
                raise ScenarioSpecError(
                    f"edge {src}->{dst}: 'lanes' must be >= 1, got {num_lanes}"
                )
            pairs = [(src, dst)]
            if not edge.get("oneway", False):
                pairs.append((dst, src))
            for a, b in pairs:
                network.add_link(
                    f"{a}->{b}",
                    a,
                    b,
                    length=float(edge.get("length", 200.0)),
                    num_lanes=num_lanes,
                    speed_limit=float(edge.get("speed_limit", 13.89)),
                    lane_turns=[_ALL_TURNS] * num_lanes,
                )
        # Declare movements at every pass-through node.  U-turns are
        # skipped unless they are a node's only way out (dead ends).
        for node_id, node in network.nodes.items():
            for in_link_id in node.incoming:
                in_link = network.links[in_link_id]
                non_uturn = [
                    out_id
                    for out_id in node.outgoing
                    if network.links[out_id].to_node != in_link.from_node
                ]
                for out_id in non_uturn or list(node.outgoing):
                    network.add_movement(in_link_id, out_id)
        network.validate()
    except NetworkError as exc:
        raise ScenarioSpecError(f"network(edge_list): {exc}") from exc
    try:
        plans = {
            node_id: default_four_phase_plan(network, node_id)
            for node_id in network.signalized_nodes()
        }
    except NetworkError as exc:
        raise ScenarioSpecError(f"network(edge_list): {exc}") from exc
    return network, plans


def _compile_network(
    payload: dict,
) -> tuple[RoadNetwork, dict[str, PhasePlan], list[Flow], GridScenario | None]:
    kind = payload["kind"]
    if kind == "grid":
        try:
            grid = GridScenario(
                GridSpec(
                    rows=int(payload.get("rows", 6)),
                    cols=int(payload.get("cols", 6)),
                    block_length=float(payload.get("block_length", 200.0)),
                    speed_limit=float(payload.get("speed_limit", 13.89)),
                )
            )
        except NetworkError as exc:
            raise ScenarioSpecError(f"network(grid): {exc}") from exc
        return grid.network, dict(grid.phase_plans), [], grid
    if kind == "edge_list":
        network, plans = _compile_edge_list(payload)
        return network, plans, [], None
    # explicit: the sim.io payload, minus our 'kind' discriminator
    try:
        network, plans, embedded = network_from_dict(
            {key: value for key, value in payload.items() if key != "kind"}
        )
    except NetworkError as exc:
        raise ScenarioSpecError(f"network(explicit): {exc}") from exc
    return network, plans, embedded, None


def _compile_incidents(
    spec: dict, network: RoadNetwork
) -> IncidentSchedule | None:
    entries = spec.get("incidents", [])
    if not entries:
        return None
    incidents: list[Incident] = []
    for i, entry in enumerate(entries):
        where = f"incidents[{i}]"
        link = network.links.get(entry["link"])
        if link is None:
            raise ScenarioSpecError(
                f"{where}: unknown link {entry['link']!r}"
            )
        start, duration = int(entry["start"]), int(entry["duration"])
        try:
            if entry["kind"] == "link_closure":
                incidents.append(Incident.link_closure(link.link_id, start, duration))
            elif entry["kind"] == "lane_closure":
                incidents.append(
                    Incident.lane_closure(
                        link.link_id,
                        start,
                        duration,
                        num_lanes=link.num_lanes,
                        lanes_closed=int(entry.get("lanes_closed", 1)),
                    )
                )
            else:
                incidents.append(
                    Incident(link.link_id, start, duration, float(entry["factor"]))
                )
        except FaultInjectionError as exc:
            raise ScenarioSpecError(f"{where}: {exc}") from exc
    return IncidentSchedule(incidents)


# ----------------------------------------------------------------------
# Compile / canonicalise / digest
# ----------------------------------------------------------------------
def compile_spec(spec: dict[str, Any]) -> CompiledScenario:
    """Validate and compile a spec into a :class:`CompiledScenario`.

    Every flow's route is resolved eagerly so unroutable OD pairs fail
    here — with the flow named — rather than mid-run.
    """
    spec = validate_spec(spec)
    network, plans, embedded, grid = _compile_network(spec["network"])
    flows = _compile_demand(spec, spec["network"]["kind"], grid, embedded)
    if not flows:
        raise ScenarioSpecError("scenario compiled to zero flows")
    router = Router(network)
    for flow in flows:
        try:
            router.route(flow.origin_link, flow.destination_link)
        except NetworkError as exc:
            raise ScenarioSpecError(f"flow {flow.name!r}: {exc}") from exc
    incidents = _compile_incidents(spec, network)

    if "horizon" in spec:
        horizon = int(spec["horizon"])
    else:
        last_event = max(flow.profile.end_time for flow in flows)
        if incidents:
            last_event = max(last_event, float(incidents.end_time))
        horizon = int(math.ceil(last_event)) + DEFAULT_DRAIN_MARGIN_S
    return CompiledScenario(
        name=spec.get("name", "scenario"),
        network=network,
        phase_plans=plans,
        flows=flows,
        incidents=incidents,
        horizon_ticks=horizon,
        metadata=dict(spec.get("metadata", {})),
        grid=grid,
    )


def scenario_to_spec(scenario: CompiledScenario) -> dict[str, Any]:
    """The canonical spec of a compiled scenario.

    The network is serialised explicitly, every flow becomes an ``od``
    entry with a raw ``points`` profile and incidents become explicit
    ``capacity`` windows — so ``compile_spec(scenario_to_spec(s))``
    rebuilds an identical scenario, and canonicalisation is idempotent
    (the round-trip property the spec tests pin).
    """
    network_payload: dict[str, Any] = {"kind": "explicit"}
    network_payload.update(network_to_dict(scenario.network, scenario.phase_plans))
    return {
        "version": SPEC_VERSION,
        "name": scenario.name,
        "network": network_payload,
        "demand": [
            {
                "kind": "od",
                "name": flow.name,
                "origin": flow.origin_link,
                "destination": flow.destination_link,
                "profile": {
                    "kind": "points",
                    "points": [
                        [float(t), float(rate)] for t, rate in flow.profile.points
                    ],
                },
            }
            for flow in scenario.flows
        ],
        "incidents": scenario.incidents.to_payload() if scenario.incidents else [],
        "horizon": scenario.horizon_ticks,
        "metadata": dict(scenario.metadata),
    }


def scenario_digest(scenario: CompiledScenario) -> str:
    """SHA-256 of the canonical spec JSON (network + demand + incidents)."""
    canonical = json.dumps(
        scenario_to_spec(scenario), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def spec_digest(spec: dict[str, Any]) -> str:
    """Digest of a spec's *compiled* scenario (compile + canonicalise)."""
    return scenario_digest(compile_spec(spec))


def resolve_scenario(source) -> CompiledScenario:
    """Compile a scenario from whatever the caller has in hand.

    Accepts a :class:`CompiledScenario` (returned as-is), a spec dict, a
    ``"zoo:<name>"`` / ``"zoo:<name>:<seed>"`` reference, or a path to a
    spec JSON file — the forms the ``--scenario`` CLI flag takes.
    """
    if isinstance(source, CompiledScenario):
        return source
    if isinstance(source, dict):
        return compile_spec(source)
    text = os.fspath(source)
    if text.startswith("zoo:"):
        from repro.scenarios.zoo import build_zoo_scenario

        parts = text.split(":")
        if len(parts) not in (2, 3) or not parts[1]:
            raise ScenarioSpecError(
                f"zoo reference must look like 'zoo:<name>' or "
                f"'zoo:<name>:<seed>', got {text!r}"
            )
        try:
            seed = int(parts[2]) if len(parts) == 3 else 0
        except ValueError:
            raise ScenarioSpecError(
                f"zoo seed must be an integer, got {parts[2]!r}"
            ) from None
        return build_zoo_scenario(parts[1], seed=seed)
    return compile_spec(load_spec(text))


def load_spec(path: str | os.PathLike) -> dict[str, Any]:
    """Read a spec JSON file (structure validated, not yet compiled)."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ScenarioSpecError(f"cannot read spec {os.fspath(path)!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ScenarioSpecError(f"spec {os.fspath(path)!r} is not valid JSON: {exc}") from exc
    return validate_spec(payload)


def save_spec(path: str | os.PathLike, spec: dict[str, Any]) -> None:
    """Write a validated spec as JSON."""
    validate_spec(spec)
    with open(path, "w") as handle:
        json.dump(spec, handle, indent=2, sort_keys=True)
        handle.write("\n")
