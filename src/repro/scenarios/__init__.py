"""Evaluation scenarios: grids, flow patterns, Monaco-style net, arterials."""

from repro.scenarios.arterial import (
    ArterialScenario,
    ArterialSpec,
    OffsetProgram,
    build_arterial,
)
from repro.scenarios.flows import (
    PATTERN_GROUPS,
    congested_pattern,
    corridor_groups,
    flow_pattern,
    light_uniform_pattern,
)
from repro.scenarios.grid import (
    GridScenario,
    GridSpec,
    build_grid,
    intersection_id,
    link_id,
    terminal_id,
)
from repro.scenarios.monaco import MonacoScenario, MonacoSpec, build_monaco

__all__ = [
    "ArterialScenario",
    "ArterialSpec",
    "GridScenario",
    "GridSpec",
    "MonacoScenario",
    "MonacoSpec",
    "OffsetProgram",
    "PATTERN_GROUPS",
    "build_arterial",
    "build_grid",
    "build_monaco",
    "congested_pattern",
    "corridor_groups",
    "flow_pattern",
    "intersection_id",
    "light_uniform_pattern",
    "link_id",
    "terminal_id",
]
