"""Evaluation scenarios: grids, flow patterns, Monaco-style net, arterials,
plus the declarative spec compiler, the demand zoo and the spec fuzzer."""

from repro.scenarios.arterial import (
    ArterialScenario,
    ArterialSpec,
    OffsetProgram,
    build_arterial,
)
from repro.scenarios.flows import (
    PATTERN_GROUPS,
    congested_pattern,
    corridor_groups,
    flow_pattern,
    light_uniform_pattern,
)
from repro.scenarios.grid import (
    GridScenario,
    GridSpec,
    build_grid,
    intersection_id,
    link_id,
    terminal_id,
)
from repro.scenarios.fuzz import fuzz_specs, sample_spec
from repro.scenarios.monaco import MonacoScenario, MonacoSpec, build_monaco
from repro.scenarios.spec import (
    SPEC_VERSION,
    CompiledScenario,
    compile_spec,
    load_spec,
    resolve_scenario,
    save_spec,
    scenario_digest,
    scenario_to_spec,
    spec_digest,
    validate_spec,
)
from repro.scenarios.zoo import build_zoo_scenario, build_zoo_spec, zoo_catalogue

__all__ = [
    "ArterialScenario",
    "ArterialSpec",
    "CompiledScenario",
    "GridScenario",
    "GridSpec",
    "MonacoScenario",
    "MonacoSpec",
    "OffsetProgram",
    "PATTERN_GROUPS",
    "SPEC_VERSION",
    "build_arterial",
    "build_grid",
    "build_monaco",
    "build_zoo_scenario",
    "build_zoo_spec",
    "compile_spec",
    "congested_pattern",
    "corridor_groups",
    "flow_pattern",
    "fuzz_specs",
    "intersection_id",
    "light_uniform_pattern",
    "link_id",
    "load_spec",
    "resolve_scenario",
    "sample_spec",
    "save_spec",
    "scenario_digest",
    "scenario_to_spec",
    "spec_digest",
    "terminal_id",
    "validate_spec",
    "zoo_catalogue",
]
