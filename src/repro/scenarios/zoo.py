"""The demand zoo: a seeded library of named scenario specs.

Every zoo entry is a *spec builder* — it returns a plain JSON-compatible
spec dict and all compilation goes through :func:`repro.scenarios.spec.compile_spec`,
so the round-trip, digest and conservation machinery covers the zoo for
free.  Builders are deterministic in ``(name, seed, rows, cols)``: the
seed drives bounded jitter (corridor choice, ±10 % rate wobble) so a
sweep over seeds yields *distinct but comparable* workloads, which is
what the generalisation tables need.

Catalogue:

* ``commuter_day`` — day-long multi-peak demand: AM rush into the grid
  core on selected corridors, PM rush back out on the reverse corridors,
  light base load in between.
* ``incident_closure`` — the paper's pattern-1 congestion with a
  mid-episode full closure of a core link plus a lane closure on a
  second approach, both clearing before the end.
* ``stadium_surge`` — light uniform background, then a special-event
  surge: trapezoidal pulses from every compass edge converging on the
  south-east corner ("the stadium").
* ``emergency_corridor`` — moderate background with a sustained
  high-priority flow along one arterial row; the flow names are listed
  under ``metadata["priority_flows"]`` for controllers that implement
  emergency-vehicle priority.
* ``closure_wave`` — light uniform demand while a half-capacity
  restriction marches link-by-link along an arterial row (rolling
  roadworks).
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Callable

from repro.errors import ScenarioSpecError
from repro.scenarios.flows import _spread
from repro.scenarios.grid import GridScenario, GridSpec, intersection_id, link_id
from repro.scenarios.spec import CompiledScenario, compile_spec


def _grid_payload(rows: int, cols: int) -> dict[str, Any]:
    return {"kind": "grid", "rows": rows, "cols": cols}


def _jitter(rng: random.Random, value: float, spread: float = 0.1) -> float:
    """``value`` wobbled by up to ±``spread``, rounded to keep specs tidy."""
    return round(value * (1.0 + rng.uniform(-spread, spread)), 1)


def _corridors(grid: GridScenario, rng: random.Random, per_axis: int):
    """Pick ``per_axis`` row and column corridors, evenly spread then
    seed-shuffled so different seeds load different streets."""
    rows = _spread(per_axis, grid.spec.rows)
    cols = _spread(per_axis, grid.spec.cols)
    rng.shuffle(rows)
    rng.shuffle(cols)
    return rows, cols


def _commuter_day(rng: random.Random, rows: int, cols: int) -> dict[str, Any]:
    grid = GridScenario(GridSpec(rows=rows, cols=cols))
    row_idx, col_idx = _corridors(grid, rng, per_axis=2)
    am, pm, day = 900.0, 3600.0, 4500.0
    demand = []
    for axis, indices in (("row", row_idx), ("col", col_idx)):
        for idx in indices:
            if axis == "row":
                fwd = grid.row_route_links(idx, eastbound=True)
                rev = grid.row_route_links(idx, eastbound=False)
            else:
                fwd = grid.column_route_links(idx, southbound=True)
                rev = grid.column_route_links(idx, southbound=False)
            peak = _jitter(rng, 420.0)
            base = _jitter(rng, 60.0)
            demand.append(
                {
                    "kind": "od",
                    "name": f"commute-{axis}{idx}-am",
                    "origin": fwd[0],
                    "destination": fwd[1],
                    "profile": {
                        "kind": "multi_peak",
                        "base_rate": base,
                        "duration": day,
                        "peaks": [{"time": am, "rate": peak, "width": 1200.0}],
                    },
                }
            )
            demand.append(
                {
                    "kind": "od",
                    "name": f"commute-{axis}{idx}-pm",
                    "origin": rev[0],
                    "destination": rev[1],
                    "profile": {
                        "kind": "multi_peak",
                        "base_rate": base,
                        "duration": day,
                        "peaks": [{"time": pm, "rate": peak, "width": 1200.0}],
                    },
                }
            )
    return {
        "network": _grid_payload(rows, cols),
        "demand": demand,
        "metadata": {"family": "commuter_day", "am_peak_s": am, "pm_peak_s": pm},
    }


def _incident_closure(rng: random.Random, rows: int, cols: int) -> dict[str, Any]:
    mid_r, mid_c = rows // 2, cols // 2
    closed = link_id(
        intersection_id(mid_r, max(0, mid_c - 1)), intersection_id(mid_r, mid_c)
    )
    restricted = link_id(
        intersection_id(max(0, mid_r - 1), mid_c), intersection_id(mid_r, mid_c)
    )
    start = 200 + rng.randrange(0, 201, 50)
    return {
        "network": _grid_payload(rows, cols),
        "demand": [
            {
                "kind": "pattern",
                "pattern": 1,
                "peak_rate": _jitter(rng, 400.0),
                "t_peak": 600.0,
            }
        ],
        "incidents": [
            {"kind": "link_closure", "link": closed, "start": start, "duration": 400},
            {
                "kind": "lane_closure",
                "link": restricted,
                "start": start + 300,
                "duration": 300,
                "lanes_closed": 1,
            },
        ],
        "metadata": {"family": "incident_closure", "closed_link": closed},
    }


def _stadium_surge(rng: random.Random, rows: int, cols: int) -> dict[str, Any]:
    grid = GridScenario(GridSpec(rows=rows, cols=cols))
    start = 600 + rng.randrange(0, 301, 100)
    surge_rate = _jitter(rng, 520.0)
    # Four approach streams converging on the south-east corner.
    south_col = grid.column_route_links(cols - 1, southbound=True)
    north_col = grid.column_route_links(cols - 1, southbound=False)
    east_row = grid.row_route_links(rows - 1, eastbound=True)
    west_row = grid.row_route_links(rows - 1, eastbound=False)
    approaches = {
        "from-north": (south_col[0], east_row[1]),
        "from-south": (north_col[0], east_row[1]),
        "from-west": (east_row[0], south_col[1]),
        "from-east": (west_row[0], south_col[1]),
    }
    demand: list[dict[str, Any]] = [
        {"kind": "uniform", "duration": 1800.0, "ew_rate": 120.0, "sn_rate": 60.0}
    ]
    for label, (origin, dest) in approaches.items():
        demand.append(
            {
                "kind": "od",
                "name": f"event-{label}",
                "origin": origin,
                "destination": dest,
                "profile": {
                    "kind": "surge",
                    "start": float(start),
                    "duration": 600.0,
                    "rate": surge_rate,
                    "ramp": 120.0,
                },
            }
        )
    return {
        "network": _grid_payload(rows, cols),
        "demand": demand,
        "metadata": {"family": "stadium_surge", "event_start_s": start},
    }


def _emergency_corridor(rng: random.Random, rows: int, cols: int) -> dict[str, Any]:
    grid = GridScenario(GridSpec(rows=rows, cols=cols))
    ev_row = rng.randrange(rows)
    origin, dest = grid.row_route_links(ev_row, eastbound=True)
    return {
        "network": _grid_payload(rows, cols),
        "demand": [
            {"kind": "uniform", "duration": 1800.0, "ew_rate": 180.0, "sn_rate": 90.0},
            {
                "kind": "od",
                "name": "ev-priority",
                "origin": origin,
                "destination": dest,
                "profile": {"kind": "constant", "rate": _jitter(rng, 120.0), "duration": 1800.0},
            },
        ],
        "metadata": {
            "family": "emergency_corridor",
            "priority_flows": ["ev-priority"],
            "priority_row": ev_row,
        },
    }


def _closure_wave(rng: random.Random, rows: int, cols: int) -> dict[str, Any]:
    wave_row = rng.randrange(rows)
    incidents = []
    start = 300
    for col in range(cols - 1):
        incidents.append(
            {
                "kind": "capacity",
                "link": link_id(
                    intersection_id(wave_row, col), intersection_id(wave_row, col + 1)
                ),
                "start": start + col * 200,
                "duration": 400,
                "factor": 0.5,
            }
        )
    return {
        "network": _grid_payload(rows, cols),
        "demand": [{"kind": "pattern", "pattern": 5, "light_duration": 1800.0}],
        "incidents": incidents,
        "metadata": {"family": "closure_wave", "wave_row": wave_row},
    }


_BUILDERS: dict[str, tuple[str, Callable[[random.Random, int, int], dict[str, Any]]]] = {
    "commuter_day": ("day-long AM/PM multi-peak commuter demand", _commuter_day),
    "incident_closure": (
        "pattern-1 congestion with a mid-episode link + lane closure",
        _incident_closure,
    ),
    "stadium_surge": (
        "light background plus a special-event surge into one corner",
        _stadium_surge,
    ),
    "emergency_corridor": (
        "uniform background with a sustained priority flow on one arterial",
        _emergency_corridor,
    ),
    "closure_wave": (
        "light uniform demand under rolling half-capacity roadworks",
        _closure_wave,
    ),
}


def zoo_catalogue() -> dict[str, str]:
    """``{scenario name: one-line description}`` for every zoo entry."""
    return {name: description for name, (description, _) in _BUILDERS.items()}


def build_zoo_spec(
    name: str, seed: int = 0, rows: int = 4, cols: int = 4
) -> dict[str, Any]:
    """The spec dict for zoo entry ``name`` at ``seed`` on a rows x cols grid."""
    if name not in _BUILDERS:
        raise ScenarioSpecError(
            f"unknown zoo scenario {name!r}; available: {sorted(_BUILDERS)}"
        )
    if rows < 2 or cols < 2:
        raise ScenarioSpecError("zoo scenarios need at least a 2x2 grid")
    # crc32, not hash(): str hashes are salted per process and would make
    # "the same zoo scenario" differ between runs.
    rng = random.Random(zlib.crc32(name.encode()) ^ (seed * 0x9E3779B1))
    spec = _BUILDERS[name][1](rng, rows, cols)
    spec.setdefault("version", 1)
    spec["name"] = f"{name}-s{seed}-{rows}x{cols}"
    spec.setdefault("metadata", {})
    spec["metadata"].update({"zoo": name, "seed": seed, "rows": rows, "cols": cols})
    return spec


def build_zoo_scenario(
    name: str, seed: int = 0, rows: int = 4, cols: int = 4
) -> CompiledScenario:
    """Compile zoo entry ``name`` (validated end to end)."""
    return compile_spec(build_zoo_spec(name, seed=seed, rows=rows, cols=cols))
