"""The paper's five traffic-flow patterns (Section VI-A, Fig. 6).

Patterns 1-4 are congested, time-varying scenarios built from two of four
corridor *groups*.  A group is four parallel corridors; each corridor
carries a *forward* flow (southbound / eastbound, loaded from t = 0,
triangular peak of ``peak_rate`` veh/h at ``t_peak``) and a *reverse*
flow (northbound / westbound, starting at ``t_peak`` and peaking at
``2 * t_peak``).  With two groups active, 16 OD pairs coexist during the
overlap window — the paper's headline congestion stressor.

Pattern 5 is the light uniform pattern: 300 veh/h west-to-east on every
row and 90 veh/h south-to-north on every column.
"""

from __future__ import annotations

from repro.errors import DemandError
from repro.scenarios.grid import GridScenario
from repro.sim.demand import Flow, RateProfile


def _spread(indices_wanted: int, available: int) -> list[int]:
    """Pick ``min(indices_wanted, available)`` evenly-spread distinct indices.

    Exact integer arithmetic: index ``i`` maps to the midpoint of the
    ``i``-th of ``count`` equal bins, ``((2*i + 1) * available) // (2 * count)``.
    Consecutive midpoints differ by at least ``available // count >= 1``,
    so the result always has exactly ``count`` distinct sorted entries —
    no float rounding, no set-dedupe shrinkage.
    """
    if indices_wanted <= 0:
        raise DemandError("must request at least one corridor index")
    if available <= 0:
        raise DemandError("grid has no corridors")
    count = min(indices_wanted, available)
    return [((2 * i + 1) * available) // (2 * count) for i in range(count)]


def corridor_groups(scenario: GridScenario) -> dict[str, list[tuple]]:
    """The four corridor groups F1-F4 (paper Fig. 6).

    Each group mixes both axes, like the paper's scenarios whose arrows
    cross the grid in several directions:

    * **F1** — two vertical + two horizontal straight corridors,
    * **F2** — the alternate vertical/horizontal straight corridors,
    * **F3** — four L-shaped (turning) routes, north-to-east and
      west-to-south,
    * **F4** — four L-shaped routes through the alternate corridors.

    Entries are ``("col", c)``, ``("row", r)`` or ``("L", kind, c, r)``
    tuples consumed by :func:`_corridor_links`.
    """
    cols = scenario.spec.cols
    rows = scenario.spec.rows
    col_idx = _spread(4, cols)
    row_idx = _spread(4, rows)

    def col(i: int) -> int:
        return col_idx[i % len(col_idx)]

    def row(i: int) -> int:
        return row_idx[i % len(row_idx)]

    return {
        "F1": [("col", col(0)), ("col", col(2)), ("row", row(0)), ("row", row(2))],
        "F2": [("col", col(1)), ("col", col(3)), ("row", row(1)), ("row", row(3))],
        "F3": [
            ("L", "n2e", col(0), row(3)),
            ("L", "n2e", col(2), row(1)),
            ("L", "w2s", col(1), row(0)),
            ("L", "w2s", col(3), row(2)),
        ],
        "F4": [
            ("L", "n2e", col(1), row(2)),
            ("L", "n2e", col(3), row(0)),
            ("L", "w2s", col(0), row(1)),
            ("L", "w2s", col(2), row(3)),
        ],
    }


#: Which two corridor groups compose each congested pattern.  Every
#: pattern pairs one straight group with one L-shaped (turning) group —
#: as in the paper's Fig. 6, where each scenario mixes straight and
#: bending flows — so that all signal phases (including protected lefts)
#: and both axes carry traffic in every pattern, while the *locations*
#: of the loaded corridors differ between patterns.
PATTERN_GROUPS = {
    1: ("F1", "F3"),
    2: ("F1", "F4"),
    3: ("F2", "F3"),
    4: ("F2", "F4"),
}


def _corridor_links(scenario: GridScenario, corridor: tuple, forward: bool) -> tuple[str, str]:
    """Resolve a corridor-group entry to ``(origin_link, destination_link)``."""
    axis = corridor[0]
    if axis == "col":
        return scenario.column_route_links(corridor[1], southbound=forward)
    if axis == "row":
        return scenario.row_route_links(corridor[1], eastbound=forward)
    if axis == "L":
        _, kind, col, row = corridor
        south_in, south_out = scenario.column_route_links(col, southbound=True)
        north_in, north_out = scenario.column_route_links(col, southbound=False)
        east_in, east_out = scenario.row_route_links(row, eastbound=True)
        west_in, west_out = scenario.row_route_links(row, eastbound=False)
        if kind == "n2e":  # enter north, exit east; reverse enters east, exits north
            return (south_in, east_out) if forward else (west_in, north_out)
        if kind == "w2s":  # enter west, exit south; reverse enters south, exits west
            return (east_in, south_out) if forward else (north_in, west_out)
        raise DemandError(f"unknown L-route kind {kind!r}")
    raise DemandError(f"unknown corridor axis {axis!r}")


def congested_pattern(
    scenario: GridScenario,
    pattern: int,
    peak_rate: float = 500.0,
    t_peak: float = 900.0,
) -> list[Flow]:
    """Build flow pattern 1, 2, 3 or 4.

    Forward flows ramp 0 -> ``peak_rate`` -> 0 over ``[0, 2*t_peak]``;
    reverse flows over ``[t_peak, 3*t_peak]``.  Flow names encode the
    corridor and direction for debugging.
    """
    if pattern not in PATTERN_GROUPS:
        raise DemandError(f"congested pattern must be 1-4, got {pattern}")
    if peak_rate <= 0 or t_peak <= 0:
        raise DemandError("peak_rate and t_peak must be positive")
    groups = corridor_groups(scenario)
    forward_profile = RateProfile.triangular(0.0, t_peak, 2 * t_peak, peak_rate)
    reverse_profile = RateProfile.triangular(t_peak, 2 * t_peak, 3 * t_peak, peak_rate)
    flows: list[Flow] = []
    for group_name in PATTERN_GROUPS[pattern]:
        for slot, corridor in enumerate(groups[group_name]):
            fwd_o, fwd_d = _corridor_links(scenario, corridor, forward=True)
            rev_o, rev_d = _corridor_links(scenario, corridor, forward=False)
            flows.append(
                Flow(f"{group_name}-{slot}-fwd", fwd_o, fwd_d, forward_profile)
            )
            flows.append(
                Flow(f"{group_name}-{slot}-rev", rev_o, rev_d, reverse_profile)
            )
    return flows


def light_uniform_pattern(
    scenario: GridScenario,
    duration: float = 1800.0,
    ew_rate: float = 300.0,
    sn_rate: float = 90.0,
) -> list[Flow]:
    """Flow pattern 5: uniform light traffic.

    300 veh/h west-to-east on every row, 90 veh/h south-to-north on every
    column (paper Section VI-A).
    """
    if duration <= 0:
        raise DemandError("duration must be positive")
    flows: list[Flow] = []
    ew_profile = RateProfile.constant(ew_rate, duration)
    sn_profile = RateProfile.constant(sn_rate, duration)
    for row in range(scenario.spec.rows):
        origin, dest = scenario.row_route_links(row, eastbound=True)
        flows.append(Flow(f"P5-row{row}-we", origin, dest, ew_profile))
    for col in range(scenario.spec.cols):
        origin, dest = scenario.column_route_links(col, southbound=False)
        flows.append(Flow(f"P5-col{col}-sn", origin, dest, sn_profile))
    return flows


def flow_pattern(
    scenario: GridScenario,
    pattern: int,
    peak_rate: float = 500.0,
    t_peak: float = 900.0,
    light_duration: float = 1800.0,
) -> list[Flow]:
    """Dispatch to one of the paper's five patterns by number."""
    if pattern in PATTERN_GROUPS:
        return congested_pattern(scenario, pattern, peak_rate, t_peak)
    if pattern == 5:
        return light_uniform_pattern(scenario, duration=light_duration)
    raise DemandError(f"flow pattern must be 1-5, got {pattern}")
