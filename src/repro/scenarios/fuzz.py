"""Random valid scenario specs for the property-test harness.

:func:`sample_spec` draws one random-but-valid spec: a small grid,
1-6 OD flows over randomly chosen corridors with random profile shapes,
and (sometimes) incidents on random core links.  Everything routes by
construction — corridors always have a path — so every sample compiles;
the property suites then assert the *engine* invariants (conservation,
occupancy bounds, cross-engine agreement) on the compiled result.

:func:`fuzz_specs` returns ``count`` specs with **distinct compiled
digests** (the CI acceptance bar: >= 50 distinct valid specs per run).
Sampling is pure in the passed ``random.Random``; the same seed yields
the same spec sequence on every platform.
"""

from __future__ import annotations

import random
from typing import Any

from repro.scenarios.grid import GridScenario, GridSpec, intersection_id, link_id
from repro.scenarios.spec import compile_spec, spec_digest

#: Grid size bounds for fuzzed scenarios — small enough that a compile +
#: short engine run fits a per-case CI time budget.
MIN_DIM, MAX_DIM = 2, 4

_PROFILE_SAMPLERS = ("constant", "triangular", "multi_peak", "surge", "points")


def _sample_profile(rng: random.Random) -> dict[str, Any]:
    kind = rng.choice(_PROFILE_SAMPLERS)
    rate = float(rng.randrange(60, 540, 20))
    if kind == "constant":
        return {"kind": "constant", "rate": rate, "duration": float(rng.randrange(300, 1501, 300))}
    if kind == "triangular":
        start = float(rng.randrange(0, 301, 100))
        peak = start + rng.randrange(100, 601, 100)
        end = peak + rng.randrange(100, 601, 100)
        return {
            "kind": "triangular",
            "start": start,
            "peak_time": peak,
            "end": end,
            "peak_rate": rate,
        }
    if kind == "multi_peak":
        width = float(rng.randrange(200, 601, 100))
        first = width / 2 + rng.randrange(0, 201, 100)
        second = first + width + rng.randrange(100, 401, 100)
        return {
            "kind": "multi_peak",
            "base_rate": float(rng.randrange(0, 81, 20)),
            "duration": second + width,
            "peaks": [
                {"time": first, "rate": rate, "width": width},
                {"time": second, "rate": rate * 0.8, "width": width},
            ],
        }
    if kind == "surge":
        duration = float(rng.randrange(400, 1201, 200))
        return {
            "kind": "surge",
            "start": float(rng.randrange(0, 601, 200)),
            "duration": duration,
            "rate": rate,
            "ramp": duration / rng.choice((4, 5, 6)),
        }
    t = 0.0
    points = [[t, 0.0]]
    for _ in range(rng.randrange(2, 5)):
        t += rng.randrange(100, 501, 100)
        points.append([t, float(rng.randrange(0, 521, 40))])
    points.append([t + 200.0, 0.0])
    return {"kind": "points", "points": points}


def _sample_od(rng: random.Random, grid: GridScenario, index: int) -> dict[str, Any]:
    if rng.random() < 0.5:
        origin, dest = grid.row_route_links(
            rng.randrange(grid.spec.rows), eastbound=rng.random() < 0.5
        )
    else:
        origin, dest = grid.column_route_links(
            rng.randrange(grid.spec.cols), southbound=rng.random() < 0.5
        )
    return {
        "kind": "od",
        "name": f"fz{index}",
        "origin": origin,
        "destination": dest,
        "profile": _sample_profile(rng),
    }


def _sample_incidents(rng: random.Random, rows: int, cols: int) -> list[dict[str, Any]]:
    incidents: list[dict[str, Any]] = []
    for _ in range(rng.randrange(0, 3)):
        r = rng.randrange(rows)
        c = rng.randrange(cols - 1) if cols > 1 else 0
        east = link_id(intersection_id(r, c), intersection_id(r, c + 1))
        kind = rng.choice(("link_closure", "lane_closure", "capacity"))
        entry: dict[str, Any] = {
            "kind": kind,
            "link": east,
            "start": rng.randrange(0, 601, 100),
            "duration": rng.randrange(100, 501, 100),
        }
        if kind == "capacity":
            entry["factor"] = rng.choice((0.0, 0.25, 0.5, 0.75))
        incidents.append(entry)
    return incidents


def sample_spec(rng: random.Random) -> dict[str, Any]:
    """One random valid spec (compiles without error by construction)."""
    rows = rng.randrange(MIN_DIM, MAX_DIM + 1)
    cols = rng.randrange(MIN_DIM, MAX_DIM + 1)
    grid = GridScenario(GridSpec(rows=rows, cols=cols))
    demand: list[dict[str, Any]] = [
        _sample_od(rng, grid, i) for i in range(rng.randrange(1, 7))
    ]
    if rng.random() < 0.3:
        demand.append(
            {
                "kind": "uniform",
                "duration": float(rng.randrange(600, 1801, 300)),
                "ew_rate": float(rng.randrange(60, 301, 60)),
                "sn_rate": float(rng.randrange(30, 121, 30)),
            }
        )
    elif rng.random() < 0.2:
        demand.append({"kind": "pattern", "pattern": rng.randrange(1, 6), "t_peak": 600.0})
    spec: dict[str, Any] = {
        "version": 1,
        "name": f"fuzz-{rows}x{cols}",
        "network": {"kind": "grid", "rows": rows, "cols": cols},
        "demand": demand,
        "incidents": _sample_incidents(rng, rows, cols),
    }
    if rng.random() < 0.5:
        spec["horizon"] = rng.randrange(300, 1501, 300)
    return spec


def fuzz_specs(seed: int, count: int, max_attempts: int | None = None) -> list[dict[str, Any]]:
    """``count`` random valid specs with pairwise-distinct compiled digests."""
    rng = random.Random(seed)
    if max_attempts is None:
        max_attempts = 20 * count
    specs: list[dict[str, Any]] = []
    digests: set[str] = set()
    for _ in range(max_attempts):
        if len(specs) >= count:
            break
        spec = sample_spec(rng)
        digest = spec_digest(spec)
        if digest in digests:
            continue
        digests.add(digest)
        # Unique, reproducible names: the sampled name only encodes the
        # grid shape, which collides across draws; suffix with the case
        # index and digest prefix so pytest ids / CI logs identify cases.
        spec["name"] = f"{spec['name']}-c{len(specs):03d}-{digest[:8]}"
        specs.append(spec)
    if len(specs) < count:
        raise RuntimeError(
            f"fuzzer produced only {len(specs)}/{count} distinct specs "
            f"in {max_attempts} attempts (seed {seed})"
        )
    return specs


__all__ = ["MAX_DIM", "MIN_DIM", "compile_spec", "fuzz_specs", "sample_spec"]
