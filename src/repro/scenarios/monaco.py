"""Monaco-style heterogeneous scenario (paper Section VI-D).

The paper trains on a real Monaco dataset: 30 signalized intersections
with varying lane configurations and per-intersection phase sets, loaded
with conflicting flows peaking at 975 veh/h.  That dataset ships as SUMO
input files we cannot use here, so — per the substitution rule recorded
in DESIGN.md — this module synthesises a network with the same
*properties* the experiment exercises:

* exactly 30 signalized intersections,
* irregular topology (jittered positions, randomly removed street
  segments, dead ends and T-junctions),
* heterogeneous geometry (1-2 lanes per link, varying block lengths),
* heterogeneous phase sets (2-4 phases depending on surviving
  approaches), which makes parameter sharing impossible — the property
  the paper's heterogeneous study is about,
* conflicting OD flows with a 975 veh/h peak producing saturation.

Everything is deterministic given ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NetworkError
from repro.sim.demand import Flow, RateProfile
from repro.sim.network import RoadNetwork, TurnType
from repro.sim.signal import PhasePlan, default_four_phase_plan

_ALL_TURNS = frozenset({TurnType.LEFT, TurnType.THROUGH, TurnType.RIGHT, TurnType.UTURN})


@dataclass(frozen=True)
class MonacoSpec:
    """Parameters of the synthetic heterogeneous scenario."""

    rows: int = 5
    cols: int = 6
    base_block: float = 180.0
    jitter: float = 35.0
    removal_fraction: float = 0.18
    seed: int = 7
    peak_rate: float = 975.0
    t_peak: float = 900.0

    @property
    def num_intersections(self) -> int:
        return self.rows * self.cols


class MonacoScenario:
    """Synthetic heterogeneous network + phase plans + demand flows."""

    def __init__(self, spec: MonacoSpec | None = None) -> None:
        self.spec = spec or MonacoSpec()
        self._rng = np.random.default_rng(self.spec.seed)
        self.network = RoadNetwork()
        self._positions: dict[tuple[int, int], tuple[float, float]] = {}
        self._terminal_links: list[tuple[str, str]] = []  # (inbound, outbound) per terminal
        self._build_nodes()
        edges = self._select_edges()
        self._build_links(edges)
        self._build_terminals(edges)
        self._build_movements()
        self.network.validate()
        self.phase_plans: dict[str, PhasePlan] = {
            node_id: default_four_phase_plan(self.network, node_id)
            for node_id in self.network.signalized_nodes()
        }
        self.flows = self._build_flows()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @staticmethod
    def _iid(row: int, col: int) -> str:
        return f"M{row}_{col}"

    def _build_nodes(self) -> None:
        spec = self.spec
        for row in range(spec.rows):
            for col in range(spec.cols):
                x = col * spec.base_block + self._rng.uniform(-spec.jitter, spec.jitter)
                y = -row * spec.base_block + self._rng.uniform(-spec.jitter, spec.jitter)
                self._positions[(row, col)] = (x, y)
                self.network.add_node(self._iid(row, col), x, y, signalized=True)

    def _grid_edges(self) -> list[tuple[tuple[int, int], tuple[int, int]]]:
        spec = self.spec
        edges = []
        for row in range(spec.rows):
            for col in range(spec.cols):
                if col + 1 < spec.cols:
                    edges.append(((row, col), (row, col + 1)))
                if row + 1 < spec.rows:
                    edges.append(((row, col), (row + 1, col)))
        return edges

    def _select_edges(self) -> list[tuple[tuple[int, int], tuple[int, int]]]:
        """Drop a fraction of street segments while keeping connectivity."""
        edges = self._grid_edges()
        target_removals = int(len(edges) * self.spec.removal_fraction)
        order = self._rng.permutation(len(edges))
        kept = list(edges)
        removed = 0
        for index in order:
            if removed >= target_removals:
                break
            candidate = edges[index]
            trial = [e for e in kept if e != candidate]
            if self._connected(trial):
                kept = trial
                removed += 1
        return kept

    def _connected(self, edges: list[tuple[tuple[int, int], tuple[int, int]]]) -> bool:
        nodes = {
            (r, c) for r in range(self.spec.rows) for c in range(self.spec.cols)
        }
        adjacency: dict[tuple[int, int], list[tuple[int, int]]] = {n: [] for n in nodes}
        for a, b in edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        start = next(iter(nodes))
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for other in adjacency[node]:
                if other not in seen:
                    seen.add(other)
                    stack.append(other)
        return seen == nodes

    def _distance(self, a: tuple[int, int], b: tuple[int, int]) -> float:
        (ax, ay), (bx, by) = self._positions[a], self._positions[b]
        return float(np.hypot(bx - ax, by - ay))

    def _add_two_way(self, node_a: str, node_b: str, length: float) -> None:
        for src, dst in ((node_a, node_b), (node_b, node_a)):
            lanes = int(self._rng.integers(1, 3))  # 1 or 2 lanes
            if lanes == 1:
                layout = [_ALL_TURNS]
            else:
                layout = [
                    frozenset({TurnType.LEFT, TurnType.UTURN, TurnType.THROUGH}),
                    frozenset({TurnType.THROUGH, TurnType.RIGHT}),
                ]
            self.network.add_link(
                f"{src}->{dst}", src, dst, length=length, num_lanes=lanes,
                speed_limit=13.89, lane_turns=layout,
            )

    def _build_links(self, edges: list[tuple[tuple[int, int], tuple[int, int]]]) -> None:
        for a, b in edges:
            self._add_two_way(self._iid(*a), self._iid(*b), self._distance(a, b))

    def _build_terminals(self, edges) -> None:
        """Attach entry/exit terminals to every border intersection."""
        spec = self.spec
        border: list[tuple[int, int, float, float]] = []
        for col in range(spec.cols):
            border.append((0, col, 0.0, spec.base_block))
            border.append((spec.rows - 1, col, 0.0, -spec.base_block))
        for row in range(spec.rows):
            border.append((row, 0, -spec.base_block, 0.0))
            border.append((row, spec.cols - 1, spec.base_block, 0.0))
        for row, col, dx, dy in border:
            node_id = self._iid(row, col)
            x, y = self._positions[(row, col)]
            terminal = f"T_{node_id}_{int(np.sign(dx))}_{int(np.sign(dy))}"
            self.network.add_node(terminal, x + dx, y + dy, signalized=False)
            length = float(np.hypot(dx, dy))
            for src, dst in ((terminal, node_id), (node_id, terminal)):
                self.network.add_link(
                    f"{src}->{dst}", src, dst, length=length, num_lanes=1,
                    speed_limit=13.89, lane_turns=[_ALL_TURNS],
                )
            self._terminal_links.append((f"{terminal}->{node_id}", f"{node_id}->{terminal}"))

    def _build_movements(self) -> None:
        for node_id in self.network.signalized_nodes():
            node = self.network.nodes[node_id]
            for in_link_id in node.incoming:
                in_link = self.network.links[in_link_id]
                for out_link_id in node.outgoing:
                    out_link = self.network.links[out_link_id]
                    if out_link.to_node == in_link.from_node:
                        continue
                    self.network.add_movement(in_link_id, out_link_id)

    # ------------------------------------------------------------------
    # Demand
    # ------------------------------------------------------------------
    def _build_flows(self) -> list[Flow]:
        """Conflicting OD flows with the paper's 975 veh/h peak.

        Picks terminal pairs on roughly opposite sides so routes cross the
        network core, staggered in two waves like the grid patterns.
        """
        from repro.sim.routing import Router

        spec = self.spec
        router = Router(self.network)
        early = RateProfile.triangular(0.0, spec.t_peak, 2 * spec.t_peak, spec.peak_rate)
        late = RateProfile.triangular(
            spec.t_peak / 2, 1.5 * spec.t_peak, 2.5 * spec.t_peak, spec.peak_rate
        )
        flows: list[Flow] = []
        terminals = list(self._terminal_links)
        order = self._rng.permutation(len(terminals))
        wanted = min(10, len(terminals) // 2)
        used: set[int] = set()
        for slot in range(wanted):
            # Greedily pair distant terminals that are actually connected.
            origin_index = next((i for i in order if i not in used), None)
            if origin_index is None:
                break
            used.add(origin_index)
            origin_in, _ = terminals[origin_index]
            best_j, best_dist = None, -1.0
            for j in order:
                if j in used:
                    continue
                _, dest_out = terminals[j]
                try:
                    router.route(origin_in, dest_out)
                except NetworkError:
                    continue
                dist = self._terminal_distance(origin_index, j)
                if dist > best_dist:
                    best_j, best_dist = j, dist
            if best_j is None:
                continue
            used.add(best_j)
            _, dest_out = terminals[best_j]
            profile = early if slot % 2 == 0 else late
            flows.append(Flow(f"monaco-{slot}", origin_in, dest_out, profile))
        if not flows:
            raise NetworkError("monaco scenario produced no feasible flows")
        return flows

    def _terminal_distance(self, i: int, j: int) -> float:
        link_i = self.network.links[self._terminal_links[i][0]]
        link_j = self.network.links[self._terminal_links[j][0]]
        a = self.network.nodes[link_i.from_node]
        b = self.network.nodes[link_j.from_node]
        return float(np.hypot(b.x - a.x, b.y - a.y))


def build_monaco(seed: int = 7, **kwargs) -> MonacoScenario:
    """Convenience constructor for the heterogeneous scenario."""
    return MonacoScenario(MonacoSpec(seed=seed, **kwargs))
