"""Arterial corridor scenario (extension beyond the paper's grids).

A classic signal-coordination setting: N signalized intersections in a
row along a two-lane arterial, each with a one-lane cross street.  The
canonical engineering solution is a *green wave* — fixed-time plans
whose offsets are staggered by the link travel time so a platoon meets
green at every intersection.  This scenario provides:

* the corridor network builder,
* main-road / cross-road demand,
* :func:`green_wave_programs` — offset fixed-time plans (the strong
  classical baseline RL must beat here),
* :func:`uncoordinated_programs` — the same plans with zero offsets.

It slots into the standard environment/agent machinery, so every
controller in :mod:`repro.agents` runs on it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkError
from repro.scenarios.grid import ARTERIAL_LANES, AVENUE_LANES
from repro.sim.demand import Flow, RateProfile
from repro.sim.network import RoadNetwork
from repro.sim.signal import FixedTimeProgram, PhasePlan, default_four_phase_plan


@dataclass(frozen=True)
class ArterialSpec:
    """Parameters of an arterial corridor."""

    intersections: int = 5
    block_length: float = 250.0
    speed_limit: float = 13.89
    main_rate: float = 700.0  # veh/h each way on the arterial
    cross_rate: float = 150.0  # veh/h each way per cross street
    duration: float = 900.0

    def __post_init__(self) -> None:
        if self.intersections < 2:
            raise NetworkError("an arterial needs at least 2 intersections")
        if self.block_length <= 0 or self.speed_limit <= 0:
            raise NetworkError("geometry must be positive")


class ArterialScenario:
    """Built corridor: network + phase plans + demand flows."""

    def __init__(self, spec: ArterialSpec | None = None) -> None:
        self.spec = spec or ArterialSpec()
        self.network = RoadNetwork()
        self._build()
        self.network.validate()
        self.phase_plans: dict[str, PhasePlan] = {
            node_id: default_four_phase_plan(self.network, node_id)
            for node_id in self.network.signalized_nodes()
        }
        self.flows = self._build_flows()

    @staticmethod
    def node_id(index: int) -> str:
        return f"A{index}"

    def _add_two_way(self, a: str, b: str, horizontal: bool) -> None:
        layout = list(ARTERIAL_LANES) if horizontal else list(AVENUE_LANES)
        for src, dst in ((a, b), (b, a)):
            self.network.add_link(
                f"{src}->{dst}", src, dst,
                length=self.spec.block_length,
                num_lanes=len(layout),
                speed_limit=self.spec.speed_limit,
                lane_turns=layout,
            )

    def _build(self) -> None:
        spec = self.spec
        block = spec.block_length
        for index in range(spec.intersections):
            self.network.add_node(self.node_id(index), index * block, 0.0, signalized=True)
            self.network.add_node(f"N{index}", index * block, block)
            self.network.add_node(f"S{index}", index * block, -block)
        self.network.add_node("W", -block, 0.0)
        self.network.add_node("E", spec.intersections * block, 0.0)

        for index in range(spec.intersections - 1):
            self._add_two_way(self.node_id(index), self.node_id(index + 1), True)
        self._add_two_way("W", self.node_id(0), True)
        self._add_two_way(self.node_id(spec.intersections - 1), "E", True)
        for index in range(spec.intersections):
            self._add_two_way(f"N{index}", self.node_id(index), False)
            self._add_two_way(self.node_id(index), f"S{index}", False)

        for node_index in range(spec.intersections):
            node_id = self.node_id(node_index)
            node = self.network.nodes[node_id]
            for in_link_id in node.incoming:
                in_link = self.network.links[in_link_id]
                for out_link_id in node.outgoing:
                    out_link = self.network.links[out_link_id]
                    if out_link.to_node == in_link.from_node:
                        continue
                    self.network.add_movement(in_link_id, out_link_id)

    def _build_flows(self) -> list[Flow]:
        spec = self.spec
        last = self.node_id(spec.intersections - 1)
        main = RateProfile.constant(spec.main_rate, spec.duration)
        cross = RateProfile.constant(spec.cross_rate, spec.duration)
        flows = [
            Flow("main-eb", f"W->{self.node_id(0)}", f"{last}->E", main),
            Flow("main-wb", f"E->{last}", f"{self.node_id(0)}->W", main),
        ]
        for index in range(spec.intersections):
            node_id = self.node_id(index)
            flows.append(
                Flow(f"cross-{index}-sb", f"N{index}->{node_id}",
                     f"{node_id}->S{index}", cross)
            )
            flows.append(
                Flow(f"cross-{index}-nb", f"S{index}->{node_id}",
                     f"{node_id}->N{index}", cross)
            )
        return flows

    # ------------------------------------------------------------------
    # Classical coordination baselines
    # ------------------------------------------------------------------
    def _stage_table(self, main_green: int, cross_green: int) -> list[tuple[int, int]]:
        """(phase_index, seconds) stages serving EW then NS phases."""
        stages: list[tuple[int, int]] = []
        # Phase plans are homogeneous across the corridor: index by node 0.
        plan = self.phase_plans[self.node_id(0)]
        for index, phase in enumerate(plan.phases):
            if phase.name == "EW-through":
                stages.append((index, main_green))
            elif phase.name == "NS-through":
                stages.append((index, cross_green))
            else:  # left phases get short service
                stages.append((index, 5))
        return stages

    def green_wave_programs(
        self, main_green: int = 25, cross_green: int = 10
    ) -> dict[str, "OffsetProgram"]:
        """Offset fixed-time programs forming an eastbound green wave."""
        travel = self.spec.block_length / self.spec.speed_limit
        stages = self._stage_table(main_green, cross_green)
        programs = {}
        for index in range(self.spec.intersections):
            offset = int(round(index * travel))
            programs[self.node_id(index)] = OffsetProgram(
                FixedTimeProgram(list(stages)), offset
            )
        return programs

    def uncoordinated_programs(
        self, main_green: int = 25, cross_green: int = 10
    ) -> dict[str, "OffsetProgram"]:
        """The same plans, all starting in phase 0 simultaneously."""
        stages = self._stage_table(main_green, cross_green)
        return {
            self.node_id(index): OffsetProgram(FixedTimeProgram(list(stages)), 0)
            for index in range(self.spec.intersections)
        }


@dataclass(frozen=True)
class OffsetProgram:
    """A fixed-time program shifted by a start offset (green-wave tool)."""

    program: FixedTimeProgram
    offset: int

    def phase_at(self, t: int) -> int:
        return self.program.phase_at(t + self.program.cycle_length - self.offset)


def build_arterial(intersections: int = 5, **kwargs) -> ArterialScenario:
    """Convenience constructor."""
    return ArterialScenario(ArterialSpec(intersections=intersections, **kwargs))
