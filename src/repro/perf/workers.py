"""Persistent forked workers with request/reply pipes.

:func:`~repro.perf.parallel.parallel_map` forks a fresh process per
call, which is fine for coarse jobs (multi-seed evaluation) but far too
expensive for protocols that exchange small messages every simulation
tick.  :class:`WorkerPool` keeps the fork model — workers are forked, so
factories and requests may close over arbitrary parent state with
nothing pickled on the way in — but makes the workers *long-lived*: each
worker builds one target object from its factory and then serves method
calls over a duplex pipe until the pool is closed.

The request protocol is deliberately tiny:

* parent → worker: ``(method_name, args, kwargs)`` tuples;
* worker → parent: ``("ok", result)`` or ``("error", message)``.

:meth:`WorkerPool.call_all` sends every worker its request *before*
reading any reply, so one round of K calls costs one parallel round trip
rather than K sequential ones — the property the sharded simulation's
lockstep tick loop depends on.

Failure handling mirrors ``parallel_map``: a worker exception is
re-raised in the parent as :class:`RuntimeError` naming the worker, and
an unresponsive worker (when ``timeout_s`` is set) gets terminated and
reported via :class:`~repro.errors.SimulationError`.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
from typing import Any, Callable, Sequence

from repro.errors import SimulationError

#: Sentinel request asking the serve loop to exit cleanly.
_STOP = "__stop__"


def _serve_loop(factory: Callable[[], Any], conn) -> None:
    """Worker body: build the target object, then answer requests forever."""
    try:
        target = factory()
    except BaseException as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ok", os.getpid()))
    try:
        while True:
            request = conn.recv()
            if request == _STOP:
                break
            method, args, kwargs = request
            try:
                result = getattr(target, method)(*args, **kwargs)
            except BaseException as exc:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            else:
                conn.send(("ok", result))
    except EOFError:  # parent went away; nothing left to serve
        pass
    finally:
        conn.close()


class WorkerPool:
    """A fixed set of persistent forked workers, one object per worker.

    Parameters
    ----------
    factories:
        One zero-argument callable per worker; each is invoked *inside*
        the forked child to build that worker's target object.  Closures
        are fine — fork means nothing inbound is pickled.
    timeout_s:
        Optional per-round wall-clock budget for :meth:`call_all` /
        :meth:`call` replies.  ``None`` waits forever.

    Raises :class:`~repro.errors.SimulationError` when the platform has
    no ``fork`` start method — callers that can degrade to an in-process
    driver should catch it (the sharded coordinator does).
    """

    def __init__(
        self,
        factories: Sequence[Callable[[], Any]],
        timeout_s: float | None = None,
    ) -> None:
        if not factories:
            raise SimulationError("WorkerPool needs at least one factory")
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            raise SimulationError(
                "WorkerPool requires the 'fork' start method"
            ) from None
        self.timeout_s = timeout_s
        self._processes = []
        self._pipes = []
        self._closed = False
        for factory in factories:
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_serve_loop, args=(factory, child_conn), daemon=True
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._pipes.append(parent_conn)
        self.pids = [
            self._expect_reply(index, "startup") for index in range(len(factories))
        ]

    def __len__(self) -> int:
        return len(self._pipes)

    # ------------------------------------------------------------------
    def _expect_reply(self, index: int, method: str):
        conn = self._pipes[index]
        if self.timeout_s is not None and not conn.poll(self.timeout_s):
            self._kill(index)
            raise SimulationError(
                f"worker {index} unresponsive after {self.timeout_s:.1f}s "
                f"(request {method!r})"
            )
        try:
            status, payload = conn.recv()
        except EOFError:
            raise RuntimeError(
                f"worker {index} exited without replying to {method!r}"
            ) from None
        if status != "ok":
            raise RuntimeError(f"worker {index} failed in {method!r}: {payload}")
        return payload

    def _kill(self, index: int) -> None:
        process = self._processes[index]
        if process.is_alive():
            process.terminate()
        process.join()

    # ------------------------------------------------------------------
    def call(self, index: int, method: str, *args, **kwargs):
        """Invoke ``method`` on one worker's target object and wait."""
        if self._closed:
            raise SimulationError("WorkerPool is closed")
        self._pipes[index].send((method, args, kwargs))
        return self._expect_reply(index, method)

    def call_all(
        self,
        method: str,
        args_list: Sequence[tuple] | None = None,
    ) -> list:
        """Invoke ``method`` on every worker concurrently.

        ``args_list`` optionally supplies one positional-argument tuple
        per worker.  All requests are written before any reply is read
        (one parallel round trip); replies are returned in worker order.
        """
        if self._closed:
            raise SimulationError("WorkerPool is closed")
        count = len(self._pipes)
        if args_list is None:
            args_list = [()] * count
        if len(args_list) != count:
            raise SimulationError(
                f"call_all needs {count} argument tuples, got {len(args_list)}"
            )
        for conn, args in zip(self._pipes, args_list):
            conn.send((method, tuple(args), {}))
        return [self._expect_reply(index, method) for index in range(count)]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and reap the processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._pipes:
            try:
                conn.send(_STOP)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 5.0
        for process in self._processes:
            process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if process.is_alive():
                process.terminate()
                process.join()
        for conn in self._pipes:
            conn.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
