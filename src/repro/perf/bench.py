"""Benchmark runners emitting ``benchmarks/BENCH_*.json``.

Six benchmarks track the perf trajectory across PRs:

* **engine** — raw simulator tick throughput on the 4x4 grid under a
  fixed-time controller (no learning, no observation building).
* **engine_soa** — aggregate tick throughput of the batched
  structure-of-arrays engine (:mod:`repro.sim.soa`) stepping B
  independent replicas in one process, with the object engine measured
  in the same interleaved rounds so the recorded speedup compares
  like-for-like under identical machine conditions.
* **train** — PairUpLight shared-parameter training throughput on the
  same grid: rollout env-steps/s, agent-steps/s, and PPO update time;
  the emitted JSON also carries a ``batched`` section measuring B
  lockstep seeds over one shared SoA engine.
* **update** — PPO-update minibatch throughput on the same grid,
  measured for the fused kernel path and the composed op chain in
  interleaved rounds (the two are bit-exact, so both systems do
  identical numerical work and the ratio isolates graph overhead).
* **serve** — sustained intersections-served/s and p99 decision latency
  of the real-time control service (:mod:`repro.serve`) under an
  injected fault schedule (controller deaths + message delay) with a
  valid and a corrupt hot-reload mid-run; also asserts the robustness
  contract (zero unserved ticks, corrupt reload rejected).
* **sharded** — wall-clock scaling curve of the spatially sharded
  simulation (:mod:`repro.sim.sharded`) on the city-scale 50x50 grid:
  ticks/s at 1/2/4/8 shards with the serial run interleaved in the same
  rounds, plus the same-run max-shards/serial speedup ratio and the
  host's ``cpu_count`` (the curve is only a *speedup* when the workers
  get real cores).

Each reports the baseline it was optimized against (measured with the
same harness, in the same run where possible) so the recorded speedup is
meaningful on any machine: compare ``*_per_second`` against ``baseline``
*from the same file*, refreshed on the same host.

Refresh with ``python -m repro bench --out benchmarks`` and commit the
JSON; the regression gate (:mod:`repro.perf.regression`) compares live
throughput against the committed file.
"""

from __future__ import annotations

import gc
import json
import os
import time

from repro.eval.harness import ExperimentScale, GridExperiment
from repro.sim.engine import Simulation
from repro.sim.signal import FixedTimeProgram

#: Pre-optimization throughput of the baseline commit, re-measured with
#: this exact harness in interleaved old/new rounds on the reference
#: machine (median of 5 engine / 6 train rounds) so the speedup compares
#: like-for-like under identical machine conditions.  Kept in the
#: emitted JSON so every benchmark file documents what the optimization
#: was measured against.
PRE_OPT_ENGINE_TICKS_PER_S = 4317.5
PRE_OPT_TRAIN_ENV_STEPS_PER_S = 168.6
BASELINE_COMMIT = "4183497"

_BENCH_SCALE = dict(
    rows=4,
    cols=4,
    peak_rate=600.0,
    t_peak=300.0,
    light_duration=600.0,
    horizon_ticks=900,
    max_ticks=3600,
    train_episodes=1,
    eval_episodes=1,
)

_TRAIN_SCALE = dict(
    rows=4,
    cols=4,
    peak_rate=600.0,
    t_peak=150.0,
    light_duration=300.0,
    horizon_ticks=450,
    max_ticks=3600,
    train_episodes=1,
    eval_episodes=1,
)


def _fresh_sim(fast_path: bool = True) -> tuple[Simulation, dict[str, FixedTimeProgram]]:
    scale = ExperimentScale(**_BENCH_SCALE)
    experiment = GridExperiment(scale, seed=7)
    env = experiment.train_env(1)
    env.reset(seed=123)
    sim = Simulation(
        env.network, env.sim.demand, env.phase_plans, fast_path=fast_path
    )
    programs = {
        node_id: FixedTimeProgram([(i, 15) for i in range(plan.num_phases)])
        for node_id, plan in env.phase_plans.items()
    }
    return sim, programs


def bench_engine(
    warmup_ticks: int = 300,
    measure_ticks: int = 600,
    repeats: int = 3,
    fast_path: bool = True,
) -> dict:
    """Fixed-time tick throughput of the simulation engine (4x4 grid)."""
    rates: list[float] = []
    for _ in range(repeats):
        sim, programs = _fresh_sim(fast_path=fast_path)
        sim.run_fixed_time(programs, warmup_ticks)
        started = time.process_time()
        sim.run_fixed_time(programs, measure_ticks)
        elapsed = time.process_time() - started
        rates.append(measure_ticks / elapsed)
    best = max(rates)
    return {
        "benchmark": "engine",
        "scenario": dict(_BENCH_SCALE, warmup_ticks=warmup_ticks,
                         measure_ticks=measure_ticks, controller="fixed-time"),
        "fast_path": fast_path,
        "ticks_per_second": round(best, 1),
        "repeats": [round(rate, 1) for rate in rates],
        "baseline": {
            "ticks_per_second": PRE_OPT_ENGINE_TICKS_PER_S,
            "commit": BASELINE_COMMIT,
        },
        "speedup_vs_baseline": round(best / PRE_OPT_ENGINE_TICKS_PER_S, 2),
    }


def _fresh_soa_engine(batch: int):
    """B-replica SoA engine over the engine-bench grid (seeds 123+b)."""
    from repro.sim.soa import SoAEngine

    scale = ExperimentScale(**_BENCH_SCALE)
    experiment = GridExperiment(scale, seed=7)
    demands = []
    env = None
    for b in range(batch):
        env = experiment.train_env(1)
        env.reset(seed=123 + b)
        demands.append(env.sim.demand)
    programs = {
        node_id: FixedTimeProgram([(i, 15) for i in range(plan.num_phases)])
        for node_id, plan in env.phase_plans.items()
    }
    return SoAEngine(env.network, demands, env.phase_plans), programs


def bench_engine_soa(
    batch: int = 16,
    warmup_ticks: int = 300,
    measure_ticks: int = 600,
    repeats: int = 5,
) -> dict:
    """Batched SoA-engine aggregate tick throughput (B replicas, 4x4 grid).

    One :class:`repro.sim.soa.SoAEngine` steps ``batch`` independent
    replicas (distinct demand seeds) per tick in a single process; the
    headline is **aggregate** replica-ticks/s (``batch * ticks /
    elapsed``).  Every round also measures the object engine with the
    ``bench_engine`` harness, interleaved, so
    ``speedup_vs_object_same_run`` compares the two engines under
    identical machine conditions rather than against a number recorded
    in a different era of the host.
    """
    soa_rates: list[float] = []
    obj_rates: list[float] = []
    for _ in range(repeats):
        sim, programs = _fresh_sim()
        sim.run_fixed_time(programs, warmup_ticks)
        started = time.process_time()
        sim.run_fixed_time(programs, measure_ticks)
        obj_rates.append(measure_ticks / (time.process_time() - started))
        engine, programs = _fresh_soa_engine(batch)
        engine.run_fixed_time(programs, warmup_ticks)
        started = time.process_time()
        engine.run_fixed_time(programs, measure_ticks)
        elapsed = time.process_time() - started
        soa_rates.append(batch * measure_ticks / elapsed)
    best = max(soa_rates)
    best_obj = max(obj_rates)
    return {
        "benchmark": "engine_soa",
        "scenario": dict(_BENCH_SCALE, batch=batch, warmup_ticks=warmup_ticks,
                         measure_ticks=measure_ticks, controller="fixed-time"),
        "batch": batch,
        "aggregate_ticks_per_second": round(best, 1),
        "per_replica_ticks_per_second": round(best / batch, 1),
        "repeats": [round(rate, 1) for rate in soa_rates],
        "object_engine_same_run": {
            "ticks_per_second": round(best_obj, 1),
            "repeats": [round(rate, 1) for rate in obj_rates],
        },
        "speedup_vs_object_same_run": round(best / best_obj, 2),
    }


def bench_train_soa(batch: int = 8, episodes: int = 1) -> dict:
    """Batched lockstep training throughput (B seeds, one SoA engine).

    ``batch`` PairUpLight systems train on ``batch`` demand seeds whose
    envs share one batched SoA engine
    (:class:`repro.eval.batched.LockstepEnvGroup`).  Three policy modes
    are timed, plus a **serial same-run** reference (one seed through
    the plain ``env.step`` loop, measured in this process so the ratio
    is era-robust against host drift):

    * ``per_agent_policy`` — the pre-PR-10 loop: vectorized extraction
      but one ``agent.act`` per replica per tick;
    * ``independent`` — :class:`BatchedPolicyGroup` default mode,
      bit-exact with the serial runner (per-seed parameters/RNG);
    * ``shared_policy`` — ``shared_across_replicas``: one ``(B·M, ·)``
      forward per tick, one combined PPO update.

    The headline ``aggregate_env_steps_per_second`` (and the CI-gated
    ``speedup_vs_serial_same_run``) comes from the fastest batched
    policy path.  Rollout only; updates untimed, as in ``bench_train``.
    """
    from repro.agents.pairuplight import PairUpLightSystem
    from repro.agents.pairuplight.batched import BatchedPolicyGroup
    from repro.eval.batched import LockstepEnvGroup

    scale = ExperimentScale(**_TRAIN_SCALE)

    def measure_serial() -> float:
        experiment = GridExperiment(scale, seed=7)
        env = experiment.train_env(1)
        agent = PairUpLightSystem(env, seed=7)
        steps = 0
        elapsed = 0.0
        for episode in range(episodes):
            observations = env.reset(seed=100 + episode)
            agent.begin_episode(env, True)
            done = False
            started = time.process_time()
            while not done:
                actions = agent.act(observations, env, True)
                result = env.step(actions)
                agent.observe(result, env)
                observations = result.observations
                done = result.done
                steps += 1
            elapsed += time.process_time() - started
            agent.end_episode(env, training=True)
        return steps / elapsed

    def measure_batched(mode: str) -> float:
        envs = [
            GridExperiment(scale, seed=7).train_env(1) for _ in range(batch)
        ]
        agents = [
            PairUpLightSystem(env, seed=7 + b) for b, env in enumerate(envs)
        ]
        group = LockstepEnvGroup(envs)
        policy = None
        if mode != "per_agent":
            policy = BatchedPolicyGroup(
                agents, group, shared_across_replicas=(mode == "shared")
            )
        steps = 0
        elapsed = 0.0
        for episode in range(episodes):
            observations = group.reset_all(
                [100 + episode + b for b in range(batch)]
            )
            if policy is not None:
                policy.begin_episode_all(True)
            else:
                for agent, env in zip(agents, envs):
                    agent.begin_episode(env, True)
            done = False
            started = time.process_time()
            while not done:
                if policy is not None:
                    actions = policy.act_all(observations, True)
                else:
                    actions = [
                        agent.act(obs, env, True)
                        for agent, env, obs in zip(agents, envs, observations)
                    ]
                results = group.step_all(actions)
                if policy is not None:
                    policy.observe_all(results)
                else:
                    for b, (agent, env) in enumerate(zip(agents, envs)):
                        agent.observe(results[b], env)
                for b, result in enumerate(results):
                    observations[b] = result.observations
                done = results[0].done
                steps += batch
            elapsed += time.process_time() - started
            if policy is not None:
                policy.end_episode_all(True)
            else:
                for agent, env in zip(agents, envs):
                    agent.end_episode(env, training=True)
        return steps / elapsed

    serial_rate = measure_serial()
    per_agent_rate = measure_batched("per_agent")
    independent_rate = measure_batched("independent")
    shared_rate = measure_batched("shared")
    best = max(independent_rate, shared_rate)
    return {
        "benchmark": "train_soa",
        "scenario": dict(_TRAIN_SCALE, model="PairUpLight", batch=batch,
                         episodes=episodes, engine="soa"),
        "batch": batch,
        "aggregate_env_steps_per_second": round(best, 2),
        "per_replica_env_steps_per_second": round(best / batch, 2),
        "serial_same_run": {
            "env_steps_per_second": round(serial_rate, 2),
        },
        "per_agent_policy": {
            "aggregate_env_steps_per_second": round(per_agent_rate, 2),
        },
        "independent_policy": {
            "aggregate_env_steps_per_second": round(independent_rate, 2),
            "speedup_vs_serial_same_run": round(
                independent_rate / serial_rate, 2
            ),
        },
        "shared_policy": {
            "aggregate_env_steps_per_second": round(shared_rate, 2),
            "speedup_vs_serial_same_run": round(shared_rate / serial_rate, 2),
        },
        "speedup_vs_serial_same_run": round(best / serial_rate, 2),
    }


def bench_train(episodes: int = 2, warmup_episodes: int = 1) -> dict:
    """PairUpLight shared-mode training throughput (4x4 grid).

    Rollout throughput (act + env.step + observe) and PPO update time
    are reported separately so both optimization layers stay visible.
    """
    from repro.agents.pairuplight import PairUpLightSystem

    scale = ExperimentScale(**_TRAIN_SCALE)
    experiment = GridExperiment(scale, seed=7)
    env = experiment.train_env(1)
    agent = PairUpLightSystem(env, seed=7)
    num_agents = len(env.agent_ids)

    def run_episode(seed: int) -> tuple[int, float, float]:
        observations = env.reset(seed=seed)
        agent.begin_episode(env, True)
        steps = 0
        done = False
        started = time.process_time()
        while not done:
            actions = agent.act(observations, env, True)
            result = env.step(actions)
            agent.observe(result, env)
            observations = result.observations
            done = result.done
            steps += 1
        rollout_seconds = time.process_time() - started
        started = time.process_time()
        agent.end_episode(env, training=True)
        update_seconds = time.process_time() - started
        return steps, rollout_seconds, update_seconds

    for seed in range(warmup_episodes):
        run_episode(seed)
    total_steps = 0
    total_rollout = 0.0
    total_update = 0.0
    for seed in range(warmup_episodes, warmup_episodes + episodes):
        steps, rollout_seconds, update_seconds = run_episode(seed)
        total_steps += steps
        total_rollout += rollout_seconds
        total_update += update_seconds
    env_steps_per_s = total_steps / total_rollout
    return {
        "benchmark": "train",
        "scenario": dict(_TRAIN_SCALE, model="PairUpLight",
                         parameter_sharing=True, episodes=episodes),
        "num_agents": num_agents,
        "env_steps_per_second": round(env_steps_per_s, 2),
        "agent_steps_per_second": round(env_steps_per_s * num_agents, 1),
        "update_seconds_per_episode": round(total_update / episodes, 3),
        "baseline": {
            "env_steps_per_second": PRE_OPT_TRAIN_ENV_STEPS_PER_S,
            "commit": BASELINE_COMMIT,
        },
        "speedup_vs_baseline": round(
            env_steps_per_s / PRE_OPT_TRAIN_ENV_STEPS_PER_S, 2
        ),
    }


def bench_update(rounds: int = 5, warmup_rounds: int = 1) -> dict:
    """PPO-update minibatch throughput on the 4x4 grid, three paths.

    Three PairUpLight systems train on the same grid with the same seed:
    the fused kernel path (the default), the composed op chain with the
    same sequence-level evaluator (the bit-exact kernel ablation), and
    the pre-change update path (composed ops + per-step heads,
    ``stepwise_eval=True``) that this subsystem was built to replace.
    All three are numerically identical, so every round does the same
    update work on each.  Rounds interleave the three measurements
    (rollout untimed, ``end_episode`` — GAE + the full PPO update —
    timed) so machine noise hits them alike; ``target_kl=None`` pins the
    update to exactly ``epochs * ceil(N / minibatch_agents)`` minibatch
    steps.  The headline is the *median* fused steps/s; the same-run
    pre-change median is the committed baseline the >=2x target is
    measured against.
    """
    from repro.agents.pairuplight import PairUpLightConfig, PairUpLightSystem
    from repro.rl.ppo import PPOConfig

    scale = ExperimentScale(**_TRAIN_SCALE)

    def make_system(fused: bool, stepwise_eval: bool = False):
        experiment = GridExperiment(scale, seed=7)
        env = experiment.train_env(1)
        config = PairUpLightConfig(
            fused=fused, stepwise_eval=stepwise_eval, ppo=PPOConfig(target_kl=None)
        )
        return env, PairUpLightSystem(env, config, seed=7)

    env_fused, agent_fused = make_system(True)
    env_composed, agent_composed = make_system(False)
    env_prechange, agent_prechange = make_system(False, stepwise_eval=True)
    ppo = agent_fused.config.ppo
    num_agents = len(env_fused.agent_ids)
    minibatches = -(-num_agents // ppo.minibatch_agents)
    steps_per_update = ppo.epochs * minibatches

    def timed_update(env, agent, seed: int) -> float:
        observations = env.reset(seed=seed)
        agent.begin_episode(env, True)
        done = False
        while not done:
            actions = agent.act(observations, env, True)
            result = env.step(actions)
            agent.observe(result, env)
            observations = result.observations
            done = result.done
        # Keep the cyclic collector out of the timed section: the update
        # builds (and drops) tens of thousands of small graph objects,
        # and a collection pause landing inside one round dominates that
        # round's time.  Both paths are timed identically.
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            started = time.process_time()
            agent.end_episode(env, training=True)
            return time.process_time() - started
        finally:
            if gc_was_enabled:
                gc.enable()

    fused_rates: list[float] = []
    composed_rates: list[float] = []
    prechange_rates: list[float] = []
    for round_index in range(warmup_rounds + rounds):
        seed = 100 + round_index
        fused_seconds = timed_update(env_fused, agent_fused, seed)
        composed_seconds = timed_update(env_composed, agent_composed, seed)
        prechange_seconds = timed_update(env_prechange, agent_prechange, seed)
        if round_index >= warmup_rounds:
            fused_rates.append(steps_per_update / fused_seconds)
            composed_rates.append(steps_per_update / composed_seconds)
            prechange_rates.append(steps_per_update / prechange_seconds)

    def median(rates: list[float]) -> float:
        ordered = sorted(rates)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    fused_median = median(fused_rates)
    composed_median = median(composed_rates)
    prechange_median = median(prechange_rates)
    return {
        "benchmark": "update",
        "scenario": dict(_TRAIN_SCALE, model="PairUpLight",
                         parameter_sharing=True, target_kl=None, rounds=rounds),
        "num_agents": num_agents,
        "minibatch_steps_per_update": steps_per_update,
        "update_steps_per_second": round(fused_median, 2),
        "repeats": [round(rate, 2) for rate in fused_rates],
        "composed_update_steps_per_second": round(composed_median, 2),
        "composed_repeats": [round(rate, 2) for rate in composed_rates],
        "baseline": {
            "update_steps_per_second": round(prechange_median, 2),
            "repeats": [round(rate, 2) for rate in prechange_rates],
            "path": (
                "pre-change update path: composed op chain + per-step "
                "heads (fused=False, stepwise_eval=True), same run"
            ),
        },
        "speedup_fused_vs_composed": round(fused_median / composed_median, 2),
        "speedup_fused_vs_baseline": round(fused_median / prechange_median, 2),
    }


def bench_serve(
    ticks: int = 180,
    deadline_ms: float = 50.0,
    controller_failure: float = 0.25,
    message_delay: float = 0.25,
    seed: int = 7,
) -> dict:
    """Real-time serving throughput under an injected fault schedule.

    Builds a :class:`repro.serve.ControlService` over the 4x4 training
    grid with controller-death and message-delay faults active, serves
    ``ticks`` decision steps, and applies one **valid** and one
    **corrupt** (truncated) checkpoint hot-reload mid-run.  Reports
    sustained intersections-served/s (over decision time only — the
    simulator advance between decisions is not serving work) and
    p50/p99/max decision latency.

    The robustness contract is enforced, not just measured: a single
    unserved intersection-tick, an accepted corrupt reload, or a
    rejected valid reload raises :class:`~repro.errors.SimulationError`.
    """
    import tempfile

    from repro.agents.pairuplight import PairUpLightSystem
    from repro.errors import SimulationError
    from repro.faults.config import FaultConfig
    from repro.serve import ControlService, PolicyRuntime, ServeConfig

    scale = ExperimentScale(**_TRAIN_SCALE)
    experiment = GridExperiment(scale, seed=seed)
    faults = FaultConfig(
        controller_failure=controller_failure, message_delay=message_delay
    )
    env = experiment.train_env(1, faults=faults)
    factory = lambda: PairUpLightSystem(env, seed=seed)  # noqa: E731

    with tempfile.TemporaryDirectory(prefix="bench_serve_") as tmp:
        checkpoint = os.path.join(tmp, "policy.npz")
        factory().save(checkpoint)
        # A truncated copy models a checkpoint corrupted in transit.
        corrupt = os.path.join(tmp, "corrupt.npz")
        with open(checkpoint, "rb") as handle:
            payload = handle.read()
        with open(corrupt, "wb") as handle:
            handle.write(payload[: len(payload) // 2])

        runtime = PolicyRuntime(factory, checkpoint=checkpoint)
        service = ControlService(
            env, runtime, ServeConfig(deadline_ms=deadline_ms)
        )
        observations = service.start_episode(seed=123)
        for tick in range(ticks):
            if tick == ticks // 4:
                service.request_reload(checkpoint)
            elif tick == ticks // 2:
                service.request_reload(corrupt)
            actions = service.decide(observations)
            result = env.step(actions)
            if result.done:
                service.health.episodes += 1
                observations = service.start_episode()
            else:
                observations = result.observations

    health = service.health
    if health.unserved:
        raise SimulationError(
            f"serve contract violated: {health.unserved} unserved decisions"
        )
    if health.reloads_applied != 1 or health.reloads_rejected != 1:
        raise SimulationError(
            "serve contract violated: expected 1 applied + 1 rejected reload, "
            f"got {health.reloads_applied} applied / "
            f"{health.reloads_rejected} rejected"
        )
    return {
        "benchmark": "serve",
        "scenario": dict(
            _TRAIN_SCALE,
            model="PairUpLight",
            ticks=ticks,
            deadline_ms=deadline_ms,
            controller_failure=controller_failure,
            message_delay=message_delay,
            reloads="1 valid + 1 truncated (rejected, rolled back)",
        ),
        "num_agents": len(env.agent_ids),
        "ticks": health.ticks,
        "intersections_served": health.intersections_served,
        "unserved_ticks": health.unserved,
        "intersections_per_second": round(health.intersections_per_second(), 1),
        "p50_latency_ms": round(health.latency_percentile(50.0), 3),
        "p99_latency_ms": round(health.latency_percentile(99.0), 3),
        "deadline_misses": health.deadline_misses,
        "fallback_decisions": health.fallback_ticks,
        "controller_fault_ticks": health.controller_faults,
        "fallback_transitions": service.fallbacks.total_transitions(),
        "reloads": {
            "applied": health.reloads_applied,
            "rejected": health.reloads_rejected,
        },
    }


def bench_sharded(
    rows: int = 50,
    cols: int = 50,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    warmup_ticks: int = 10,
    measure_ticks: int = 60,
    rounds: int = 2,
    seed: int = 7,
) -> dict:
    """Sharded-simulation scaling curve on the city-scale grid.

    One ``rows x cols`` grid (the default 50x50 has 2500 signalized
    intersections) under light uniform demand, run at every shard count
    in ``shard_counts``.  ``num_shards=1`` is the serial reference — it
    is bit-exact with the monolithic engine and runs in-process; every
    other count places each shard in a persistent forked worker.  All
    configurations are measured in the same interleaved rounds, wall
    clock (the whole point of sharding is parallel wall-clock time, so
    ``time.process_time`` would miss the workers), and the headline
    ``speedup_max_shards_vs_serial_same_run`` is the median of the
    per-round max-shards/serial ratios — era noise cancels because both
    ends of each ratio ran back to back.

    The emitted JSON records ``cpu_count``: the curve only shows real
    parallel speedup when the host grants the workers distinct cores.
    On a single-core host the same harness measures pure protocol
    overhead (the 8-shard point lands *below* 1x), which is exactly what
    the regression gate then guards.
    """
    from repro.eval.sharded import sharded_grid_workload
    from repro.sim.sharded import ShardedSimulation

    scenario, flows = sharded_grid_workload(
        rows, cols, light_duration=float(warmup_ticks + measure_ticks)
    )
    rates: dict[int, list[float]] = {count: [] for count in shard_counts}
    edge_cuts: dict[int, int] = {}
    for _ in range(rounds):
        for count in shard_counts:
            with ShardedSimulation(
                scenario.network,
                scenario.phase_plans,
                flows,
                count,
                seed=seed,
                workers=count > 1,
            ) as sim:
                edge_cuts[count] = sim.partition.edge_cut
                sim.run(warmup_ticks)
                started = time.perf_counter()
                sim.run(measure_ticks)
                elapsed = time.perf_counter() - started
                sim.check_conservation()
                rates[count].append(measure_ticks / elapsed)

    def median(values: list[float]) -> float:
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    serial_count = min(shard_counts)
    max_count = max(shard_counts)
    ratio_per_round = [
        rates[max_count][i] / rates[serial_count][i] for i in range(rounds)
    ]
    try:
        cpu_count = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpu_count = os.cpu_count() or 1
    return {
        "benchmark": "sharded",
        "scenario": dict(
            rows=rows,
            cols=cols,
            flow_pattern=5,
            flows=len(flows),
            warmup_ticks=warmup_ticks,
            measure_ticks=measure_ticks,
            rounds=rounds,
            seed=seed,
            controller="fixed-time",
        ),
        "cpu_count": cpu_count,
        "curve": [
            {
                "num_shards": count,
                "workers": count > 1,
                "edge_cut": edge_cuts[count],
                "ticks_per_second": round(median(rates[count]), 1),
                "repeats": [round(rate, 1) for rate in rates[count]],
            }
            for count in shard_counts
        ],
        "speedup_max_shards_vs_serial_same_run": round(
            median(ratio_per_round), 3
        ),
        "speedup_repeats": [round(ratio, 3) for ratio in ratio_per_round],
        "note": (
            "wall-clock ticks/s; speedup is max-shards vs serial measured "
            "in the same interleaved rounds.  Parallel speedup requires "
            "cpu_count >= num_shards; with cpu_count=1 the ratio measures "
            "lockstep-protocol overhead instead (expected < 1x) and the "
            "gate guards that overhead from regressing."
        ),
    }


def write_benchmarks(
    out_dir: str, which: str = "all", **bench_kwargs
) -> dict[str, str]:
    """Run the selected benchmarks and write ``BENCH_*.json`` files."""
    os.makedirs(out_dir, exist_ok=True)
    written: dict[str, str] = {}
    if which in ("all", "engine"):
        path = os.path.join(out_dir, "BENCH_engine.json")
        with open(path, "w") as handle:
            json.dump(bench_engine(**bench_kwargs), handle, indent=2)
            handle.write("\n")
        written["engine"] = path
    if which in ("all", "engine_soa"):
        path = os.path.join(out_dir, "BENCH_engine_soa.json")
        with open(path, "w") as handle:
            json.dump(bench_engine_soa(), handle, indent=2)
            handle.write("\n")
        written["engine_soa"] = path
    if which in ("all", "train"):
        path = os.path.join(out_dir, "BENCH_train.json")
        with open(path, "w") as handle:
            data = bench_train()
            data["batched"] = bench_train_soa()
            json.dump(data, handle, indent=2)
            handle.write("\n")
        written["train"] = path
    if which in ("all", "update"):
        path = os.path.join(out_dir, "BENCH_update.json")
        with open(path, "w") as handle:
            json.dump(bench_update(), handle, indent=2)
            handle.write("\n")
        written["update"] = path
    if which in ("all", "serve"):
        path = os.path.join(out_dir, "BENCH_serve.json")
        with open(path, "w") as handle:
            json.dump(bench_serve(), handle, indent=2)
            handle.write("\n")
        written["serve"] = path
    if which in ("all", "sharded"):
        path = os.path.join(out_dir, "BENCH_sharded.json")
        with open(path, "w") as handle:
            json.dump(bench_sharded(), handle, indent=2)
            handle.write("\n")
        written["sharded"] = path
    return written
