"""Benchmark runners emitting ``benchmarks/BENCH_*.json``.

Two benchmarks track the perf trajectory across PRs:

* **engine** — raw simulator tick throughput on the 4x4 grid under a
  fixed-time controller (no learning, no observation building).
* **train** — PairUpLight shared-parameter training throughput on the
  same grid: rollout env-steps/s, agent-steps/s, and PPO update time.

Both report the pre-optimization baseline (measured at the seed of this
PR, commit 4183497) so the recorded speedup is meaningful on any
machine: compare ``*_per_second`` against ``baseline`` *from the same
file*, refreshed on the same host.

Refresh with ``python -m repro bench --out benchmarks`` and commit the
JSON; the regression gate (:mod:`repro.perf.regression`) compares live
throughput against the committed file.
"""

from __future__ import annotations

import json
import os
import time

from repro.eval.harness import ExperimentScale, GridExperiment
from repro.sim.engine import Simulation
from repro.sim.signal import FixedTimeProgram

#: Pre-optimization throughput of the baseline commit, re-measured with
#: this exact harness in interleaved old/new rounds on the reference
#: machine (median of 5 engine / 6 train rounds) so the speedup compares
#: like-for-like under identical machine conditions.  Kept in the
#: emitted JSON so every benchmark file documents what the optimization
#: was measured against.
PRE_OPT_ENGINE_TICKS_PER_S = 4317.5
PRE_OPT_TRAIN_ENV_STEPS_PER_S = 168.6
BASELINE_COMMIT = "4183497"

_BENCH_SCALE = dict(
    rows=4,
    cols=4,
    peak_rate=600.0,
    t_peak=300.0,
    light_duration=600.0,
    horizon_ticks=900,
    max_ticks=3600,
    train_episodes=1,
    eval_episodes=1,
)

_TRAIN_SCALE = dict(
    rows=4,
    cols=4,
    peak_rate=600.0,
    t_peak=150.0,
    light_duration=300.0,
    horizon_ticks=450,
    max_ticks=3600,
    train_episodes=1,
    eval_episodes=1,
)


def _fresh_sim(fast_path: bool = True) -> tuple[Simulation, dict[str, FixedTimeProgram]]:
    scale = ExperimentScale(**_BENCH_SCALE)
    experiment = GridExperiment(scale, seed=7)
    env = experiment.train_env(1)
    env.reset(seed=123)
    sim = Simulation(
        env.network, env.sim.demand, env.phase_plans, fast_path=fast_path
    )
    programs = {
        node_id: FixedTimeProgram([(i, 15) for i in range(plan.num_phases)])
        for node_id, plan in env.phase_plans.items()
    }
    return sim, programs


def bench_engine(
    warmup_ticks: int = 300,
    measure_ticks: int = 600,
    repeats: int = 3,
    fast_path: bool = True,
) -> dict:
    """Fixed-time tick throughput of the simulation engine (4x4 grid)."""
    rates: list[float] = []
    for _ in range(repeats):
        sim, programs = _fresh_sim(fast_path=fast_path)
        sim.run_fixed_time(programs, warmup_ticks)
        started = time.process_time()
        sim.run_fixed_time(programs, measure_ticks)
        elapsed = time.process_time() - started
        rates.append(measure_ticks / elapsed)
    best = max(rates)
    return {
        "benchmark": "engine",
        "scenario": dict(_BENCH_SCALE, warmup_ticks=warmup_ticks,
                         measure_ticks=measure_ticks, controller="fixed-time"),
        "fast_path": fast_path,
        "ticks_per_second": round(best, 1),
        "repeats": [round(rate, 1) for rate in rates],
        "baseline": {
            "ticks_per_second": PRE_OPT_ENGINE_TICKS_PER_S,
            "commit": BASELINE_COMMIT,
        },
        "speedup_vs_baseline": round(best / PRE_OPT_ENGINE_TICKS_PER_S, 2),
    }


def bench_train(episodes: int = 2, warmup_episodes: int = 1) -> dict:
    """PairUpLight shared-mode training throughput (4x4 grid).

    Rollout throughput (act + env.step + observe) and PPO update time
    are reported separately so both optimization layers stay visible.
    """
    from repro.agents.pairuplight import PairUpLightSystem

    scale = ExperimentScale(**_TRAIN_SCALE)
    experiment = GridExperiment(scale, seed=7)
    env = experiment.train_env(1)
    agent = PairUpLightSystem(env, seed=7)
    num_agents = len(env.agent_ids)

    def run_episode(seed: int) -> tuple[int, float, float]:
        observations = env.reset(seed=seed)
        agent.begin_episode(env, True)
        steps = 0
        done = False
        started = time.process_time()
        while not done:
            actions = agent.act(observations, env, True)
            result = env.step(actions)
            agent.observe(result, env)
            observations = result.observations
            done = result.done
            steps += 1
        rollout_seconds = time.process_time() - started
        started = time.process_time()
        agent.end_episode(env, training=True)
        update_seconds = time.process_time() - started
        return steps, rollout_seconds, update_seconds

    for seed in range(warmup_episodes):
        run_episode(seed)
    total_steps = 0
    total_rollout = 0.0
    total_update = 0.0
    for seed in range(warmup_episodes, warmup_episodes + episodes):
        steps, rollout_seconds, update_seconds = run_episode(seed)
        total_steps += steps
        total_rollout += rollout_seconds
        total_update += update_seconds
    env_steps_per_s = total_steps / total_rollout
    return {
        "benchmark": "train",
        "scenario": dict(_TRAIN_SCALE, model="PairUpLight",
                         parameter_sharing=True, episodes=episodes),
        "num_agents": num_agents,
        "env_steps_per_second": round(env_steps_per_s, 2),
        "agent_steps_per_second": round(env_steps_per_s * num_agents, 1),
        "update_seconds_per_episode": round(total_update / episodes, 3),
        "baseline": {
            "env_steps_per_second": PRE_OPT_TRAIN_ENV_STEPS_PER_S,
            "commit": BASELINE_COMMIT,
        },
        "speedup_vs_baseline": round(
            env_steps_per_s / PRE_OPT_TRAIN_ENV_STEPS_PER_S, 2
        ),
    }


def write_benchmarks(
    out_dir: str, which: str = "all", **bench_kwargs
) -> dict[str, str]:
    """Run the selected benchmarks and write ``BENCH_*.json`` files."""
    os.makedirs(out_dir, exist_ok=True)
    written: dict[str, str] = {}
    if which in ("all", "engine"):
        path = os.path.join(out_dir, "BENCH_engine.json")
        with open(path, "w") as handle:
            json.dump(bench_engine(**bench_kwargs), handle, indent=2)
            handle.write("\n")
        written["engine"] = path
    if which in ("all", "train"):
        path = os.path.join(out_dir, "BENCH_train.json")
        with open(path, "w") as handle:
            json.dump(bench_train(), handle, indent=2)
            handle.write("\n")
        written["train"] = path
    return written
