"""Lightweight phase timers for training/benchmark instrumentation.

A :class:`PhaseTimers` accumulates wall-clock time per named section.
Timing is **off by default** — the hooks sprinkled through the runner
cost one attribute check plus a shared no-op context manager when
disabled, so instrumented code pays (almost) nothing in production.

Usage::

    from repro.perf.timers import TIMERS

    TIMERS.enable()
    ... run training ...
    for name, stats in TIMERS.report().items():
        print(name, stats["seconds"], stats["calls"])
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class _NullContext:
    """Reusable no-op context manager (cheaper than nullcontext())."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL = _NullContext()


class PhaseTimers:
    """Accumulates elapsed seconds and call counts per section name."""

    def __init__(self) -> None:
        self.enabled = False
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        #: Optional span hook ``(name, start_s, duration_s) -> None``
        #: called at every section exit while enabled — how
        #: :class:`repro.obs.spans.SpanRecorder` exports trace spans.
        self.span_sink = None

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._totals.clear()
        self._counts.clear()

    def section(self, name: str):
        """Context manager timing one section (no-op when disabled)."""
        if not self.enabled:
            return _NULL
        return self._timed(name)

    @contextmanager
    def _timed(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1
            if self.span_sink is not None:
                self.span_sink(name, started, elapsed)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Record externally-measured time (e.g. from a benchmark loop)."""
        self._totals[name] = self._totals.get(name, 0.0) + float(seconds)
        self._counts[name] = self._counts.get(name, 0) + int(calls)

    def seconds(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def calls(self, name: str) -> int:
        return self._counts.get(name, 0)

    def report(self) -> dict[str, dict[str, float]]:
        """Per-section totals: ``{name: {"seconds": s, "calls": n}}``."""
        return {
            name: {"seconds": self._totals[name], "calls": self._counts[name]}
            for name in sorted(self._totals)
        }


#: Process-global timer registry used by the runner hooks.
TIMERS = PhaseTimers()
