"""Perf regression gate: fail when engine throughput drops too far.

Compares live engine tick throughput (measured with the exact harness
that produced the committed ``benchmarks/BENCH_engine.json``) against
the committed number and fails when the drop exceeds ``threshold``
(default 20%).  Benchmarks are noisy, so the measurement takes the best
of ``repeats`` runs — a genuine regression shifts every repeat, noise
does not.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.perf.bench import bench_engine

DEFAULT_THRESHOLD = 0.20


@dataclass
class RegressionVerdict:
    """Outcome of one gate evaluation."""

    ok: bool
    current_ticks_per_second: float
    baseline_ticks_per_second: float
    threshold: float

    @property
    def ratio(self) -> float:
        return self.current_ticks_per_second / self.baseline_ticks_per_second

    def summary(self) -> str:
        verdict = "OK" if self.ok else "REGRESSION"
        return (
            f"{verdict}: engine {self.current_ticks_per_second:.1f} ticks/s "
            f"vs committed {self.baseline_ticks_per_second:.1f} "
            f"({self.ratio:.0%}, floor {1.0 - self.threshold:.0%})"
        )


def evaluate_gate(
    current: float, baseline: float, threshold: float = DEFAULT_THRESHOLD
) -> RegressionVerdict:
    """Pure gate logic: pass iff ``current >= baseline * (1 - threshold)``."""
    if baseline <= 0:
        raise ValueError("baseline ticks/s must be positive")
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must lie in (0, 1)")
    ok = current >= baseline * (1.0 - threshold)
    return RegressionVerdict(
        ok=ok,
        current_ticks_per_second=float(current),
        baseline_ticks_per_second=float(baseline),
        threshold=threshold,
    )


def check_engine_regression(
    baseline_path: str,
    threshold: float = DEFAULT_THRESHOLD,
    repeats: int = 5,
    measure_ticks: int = 600,
) -> RegressionVerdict:
    """Measure live engine throughput and gate it against the baseline file."""
    with open(baseline_path) as handle:
        committed = json.load(handle)
    baseline = float(committed["ticks_per_second"])
    live = bench_engine(repeats=repeats, measure_ticks=measure_ticks)
    return evaluate_gate(
        float(live["ticks_per_second"]), baseline, threshold=threshold
    )
