"""Perf regression gates: fail when measured throughput drops too far.

Each gate compares live throughput (measured with the exact harness
that produced the committed ``benchmarks/BENCH_*.json``) against the
committed number and fails when the drop exceeds ``threshold`` (default
20%).  Benchmarks are noisy, so measurements favour best-of/median
aggregation — a genuine regression shifts every repeat, noise does not.

Seven gates cover the six committed benchmark files:

* :func:`check_engine_regression` — simulator ticks/s
  (``BENCH_engine.json``),
* :func:`check_engine_soa_regression` — batched SoA-engine speedup over
  the object engine, same interleaved run (``BENCH_engine_soa.json``),
* :func:`check_train_regression` — rollout env-steps/s
  (``BENCH_train.json``),
* :func:`check_batched_train_regression` — batched-vs-serial training
  speedup at B=8, same interleaved run (``BENCH_train.json``'s
  ``batched`` section),
* :func:`check_update_regression` — fused PPO-update minibatch steps/s
  (``BENCH_update.json``),
* :func:`check_serve_regression` — control-service intersections-served/s
  under faults (``BENCH_serve.json``),
* :func:`check_sharded_regression` — sharded-simulation max-shards/serial
  speedup, same interleaved run (``BENCH_sharded.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.perf.bench import (
    bench_engine,
    bench_engine_soa,
    bench_serve,
    bench_sharded,
    bench_train,
    bench_train_soa,
    bench_update,
)

DEFAULT_THRESHOLD = 0.20


@dataclass
class RegressionVerdict:
    """Outcome of one gate evaluation.

    The ``*_ticks_per_second`` field names predate the train/update
    gates and are kept for compatibility; read them as generic
    "throughput in this gate's metric" (named by :attr:`metric`).
    """

    ok: bool
    current_ticks_per_second: float
    baseline_ticks_per_second: float
    threshold: float
    metric: str = "engine ticks/s"

    @property
    def ratio(self) -> float:
        return self.current_ticks_per_second / self.baseline_ticks_per_second

    def summary(self) -> str:
        verdict = "OK" if self.ok else "REGRESSION"
        return (
            f"{verdict}: {self.metric} {self.current_ticks_per_second:.1f} "
            f"vs committed {self.baseline_ticks_per_second:.1f} "
            f"({self.ratio:.0%}, floor {1.0 - self.threshold:.0%})"
        )


def evaluate_gate(
    current: float,
    baseline: float,
    threshold: float = DEFAULT_THRESHOLD,
    metric: str = "engine ticks/s",
) -> RegressionVerdict:
    """Pure gate logic: pass iff ``current >= baseline * (1 - threshold)``."""
    if baseline <= 0:
        raise ValueError("baseline ticks/s must be positive")
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must lie in (0, 1)")
    ok = current >= baseline * (1.0 - threshold)
    return RegressionVerdict(
        ok=ok,
        current_ticks_per_second=float(current),
        baseline_ticks_per_second=float(baseline),
        threshold=threshold,
        metric=metric,
    )


def check_engine_regression(
    baseline_path: str,
    threshold: float = DEFAULT_THRESHOLD,
    repeats: int = 5,
    measure_ticks: int = 600,
) -> RegressionVerdict:
    """Measure live engine throughput and gate it against the baseline file."""
    with open(baseline_path) as handle:
        committed = json.load(handle)
    baseline = float(committed["ticks_per_second"])
    live = bench_engine(repeats=repeats, measure_ticks=measure_ticks)
    return evaluate_gate(
        float(live["ticks_per_second"]), baseline, threshold=threshold
    )


def check_engine_soa_regression(
    baseline_path: str,
    threshold: float = DEFAULT_THRESHOLD,
    batch: int = 16,
    repeats: int = 5,
    measure_ticks: int = 600,
) -> RegressionVerdict:
    """Measure the live batched-SoA speedup over the object engine and
    gate it against the committed ``speedup_vs_object_same_run``.

    The gate deliberately compares the *same-run speedup ratio* rather
    than absolute aggregate ticks/s: host throughput swings far more
    than the regression threshold between runs, and the benchmark
    measures the object engine in the same interleaved rounds precisely
    so that era noise cancels.  A regression in the SoA kernels or the
    batching machinery lowers the ratio regardless of how fast the host
    happens to be; a uniformly slow machine does not.
    """
    with open(baseline_path) as handle:
        committed = json.load(handle)
    baseline = float(committed["speedup_vs_object_same_run"])
    live = bench_engine_soa(
        batch=batch, repeats=repeats, measure_ticks=measure_ticks
    )
    return evaluate_gate(
        float(live["speedup_vs_object_same_run"]),
        baseline,
        threshold=threshold,
        metric="engine_soa speedup vs object (same run)",
    )


def check_train_regression(
    baseline_path: str,
    threshold: float = DEFAULT_THRESHOLD,
    episodes: int = 2,
) -> RegressionVerdict:
    """Measure live training rollout throughput and gate it."""
    with open(baseline_path) as handle:
        committed = json.load(handle)
    baseline = float(committed["env_steps_per_second"])
    live = bench_train(episodes=episodes)
    return evaluate_gate(
        float(live["env_steps_per_second"]),
        baseline,
        threshold=threshold,
        metric="train env-steps/s",
    )


#: Allowed drop for the batched-train speedup gate.  Same-run ratio, so
#: era-robust; with the committed ~4.2x ratio a 25% floor keeps the gate
#: above the PR-10 acceptance target of 3x batched-vs-serial at B=8.
BATCHED_TRAIN_THRESHOLD = 0.25


def check_batched_train_regression(
    baseline_path: str,
    threshold: float = BATCHED_TRAIN_THRESHOLD,
    episodes: int = 1,
) -> RegressionVerdict:
    """Gate the batched-training speedup over serial, same interleaved run.

    ``BENCH_train.json``'s ``batched`` section records aggregate
    env-steps/s at B=8 through the batched policy path *and* the serial
    single-seed rate measured in the same process run;
    ``speedup_vs_serial_same_run`` is their ratio.  Like the SoA and
    sharded gates, gating the ratio rather than absolute env-steps/s
    makes the check era-robust: host drift moves both numerator and
    denominator, a regression in the vectorized extraction or the
    grouped policy forward moves only the numerator.
    """
    with open(baseline_path) as handle:
        committed = json.load(handle)
    batched = committed.get("batched")
    if not batched or "speedup_vs_serial_same_run" not in batched:
        raise ValueError(
            f"{baseline_path!r} has no batched.speedup_vs_serial_same_run; "
            "regenerate benchmarks (python -m repro.cli bench --write)"
        )
    baseline = float(batched["speedup_vs_serial_same_run"])
    live = bench_train_soa(
        batch=int(batched.get("batch", 8)), episodes=episodes
    )
    return evaluate_gate(
        float(live["speedup_vs_serial_same_run"]),
        baseline,
        threshold=threshold,
        metric="batched train speedup vs serial (same run)",
    )


def check_update_regression(
    baseline_path: str,
    threshold: float = DEFAULT_THRESHOLD,
    rounds: int = 3,
) -> RegressionVerdict:
    """Measure live fused PPO-update throughput and gate it."""
    with open(baseline_path) as handle:
        committed = json.load(handle)
    baseline = float(committed["update_steps_per_second"])
    live = bench_update(rounds=rounds)
    return evaluate_gate(
        float(live["update_steps_per_second"]),
        baseline,
        threshold=threshold,
        metric="update steps/s",
    )


def check_serve_regression(
    baseline_path: str,
    threshold: float = DEFAULT_THRESHOLD,
    ticks: int = 180,
) -> RegressionVerdict:
    """Measure live serving throughput under faults and gate it.

    Running the benchmark also re-asserts the serving contract (zero
    unserved ticks, corrupt reload rejected) — a robustness break fails
    CI with a :class:`~repro.errors.SimulationError` before the
    throughput comparison is reached.
    """
    with open(baseline_path) as handle:
        committed = json.load(handle)
    baseline = float(committed["intersections_per_second"])
    live = bench_serve(ticks=ticks)
    return evaluate_gate(
        float(live["intersections_per_second"]),
        baseline,
        threshold=threshold,
        metric="serve intersections/s",
    )


#: Allowed drop for the sharded-speedup gate.  The same-run ratio is
#: era-robust but still the noisiest gated metric (worker scheduling on
#: shared hosts moves single-round ratios ~20%), so its floor sits
#: below the throughput gates' ``DEFAULT_THRESHOLD``.
SHARDED_THRESHOLD = 0.35


def check_sharded_regression(
    baseline_path: str,
    threshold: float = SHARDED_THRESHOLD,
    rounds: int = 2,
    measure_ticks: int | None = None,
) -> RegressionVerdict:
    """Measure the live sharded max-shards/serial speedup and gate it
    against the committed ``speedup_max_shards_vs_serial_same_run``.

    Like the SoA gate, this rides the *same-run ratio* rather than
    absolute ticks/s: serial and sharded runs are interleaved in the
    same rounds, so host-era noise cancels out of the ratio while a
    regression in the exchange protocol, the worker pipes or the shard
    engines moves it.  The live run re-uses the committed scenario
    (rows/cols/warmup) so the two ratios describe the same workload —
    and it also re-asserts vehicle conservation at every shard count.
    The live ratio is the median over ``rounds`` interleaved rounds and
    is gated with the looser :data:`SHARDED_THRESHOLD` — per-round
    ratios swing far more than the raw-throughput metrics do.
    """
    with open(baseline_path) as handle:
        committed = json.load(handle)
    baseline = float(committed["speedup_max_shards_vs_serial_same_run"])
    scenario = committed.get("scenario", {})
    live = bench_sharded(
        rows=int(scenario.get("rows", 50)),
        cols=int(scenario.get("cols", 50)),
        warmup_ticks=int(scenario.get("warmup_ticks", 10)),
        measure_ticks=int(
            measure_ticks
            if measure_ticks is not None
            else scenario.get("measure_ticks", 60)
        ),
        rounds=rounds,
    )
    return evaluate_gate(
        float(live["speedup_max_shards_vs_serial_same_run"]),
        baseline,
        threshold=threshold,
        metric="sharded speedup vs serial (same run)",
    )
