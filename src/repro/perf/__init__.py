"""Performance subsystem: timers, parallel workers, benchmarks, gates.

Three layers (mirroring how the speedups were built):

* :mod:`repro.perf.timers` — lightweight phase timers around the
  sim-tick / forward / update phases of a training run,
* :mod:`repro.perf.parallel` — fork-based ``parallel_map`` used by
  multi-seed evaluation (``run_multiseed(..., workers=N)``),
* :mod:`repro.perf.bench` + :mod:`repro.perf.regression` — benchmark
  runners emitting ``benchmarks/BENCH_*.json`` and the regression gate
  that fails CI when engine throughput drops.
"""

from repro.perf.parallel import parallel_map
from repro.perf.timers import TIMERS, PhaseTimers

__all__ = [
    "TIMERS",
    "PhaseTimers",
    "bench_engine",
    "bench_train",
    "bench_update",
    "check_engine_regression",
    "check_train_regression",
    "check_update_regression",
    "parallel_map",
    "write_benchmarks",
]


def __getattr__(name: str):
    # bench/regression pull in the full experiment stack; import lazily
    # so `repro.perf.timers` stays importable from low-level modules
    # (e.g. the training runner) without a cycle.
    if name in ("bench_engine", "bench_train", "bench_update", "write_benchmarks"):
        from repro.perf import bench

        return getattr(bench, name)
    if name in (
        "check_engine_regression",
        "check_train_regression",
        "check_update_regression",
    ):
        from repro.perf import regression

        return getattr(regression, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
