"""Fork-based parallel map for rollout / evaluation workers.

``parallel_map(fn, items, workers)`` runs ``fn`` over ``items`` in
``workers`` forked processes and returns the results **in input order**.
Because workers are forked (POSIX), ``fn`` may be a closure — nothing is
pickled on the way in; only the results cross the pipe back.

Determinism: each item is dispatched with its original index and the
results are reassembled by index, so ``parallel_map(fn, items, w)``
returns exactly ``[fn(x) for x in items]`` for any worker count — the
property the multi-seed determinism tests pin down.  Work is sharded
round-robin; each worker processes its shard sequentially.

Hung workers: a worker that never returns (deadlock, livelock, an
``fn`` stuck in C code) used to block the parent forever.  With
``timeout_s`` set, the parent waits at most that long past dispatch for
*all* workers; stragglers are terminated and a
:class:`repro.errors.SimulationError` names each unresponsive worker and
the items (e.g. seeds) it was still processing.

On platforms without the ``fork`` start method (or with ``workers <= 1``)
the map silently degrades to a serial loop.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import SimulationError

T = TypeVar("T")
R = TypeVar("R")


def _worker(
    fn: Callable[[T], R],
    items: Sequence[T],
    indices: list[int],
    conn,
) -> None:
    try:
        results = [(index, fn(items[index])) for index in indices]
        conn.send(("ok", results))
    except BaseException as exc:  # surface the failure to the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def _describe_pending(items: Sequence[T], shard: list[int]) -> str:
    """Human-readable slice of a hung worker's outstanding items."""
    shown = [repr(items[index]) for index in shard[:4]]
    suffix = ", ..." if len(shard) > 4 else ""
    return f"items {shard[:4]}{suffix} = [{', '.join(shown)}{suffix}]"


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int = 0,
    timeout_s: float | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across forked workers.

    Parameters
    ----------
    fn:
        Callable applied to each item; its results must be picklable.
    items:
        The inputs; consumed eagerly.
    workers:
        Number of worker processes.  ``0`` or ``1`` runs serially.
    timeout_s:
        Wall-clock budget for the whole parallel phase.  ``None`` (the
        default) waits forever, matching the historical behaviour.
        On expiry, still-running workers are terminated and a
        :class:`~repro.errors.SimulationError` reports which items
        (seeds, in the multiseed harness) never completed.  Serial runs
        ignore the timeout — a hung ``fn`` hangs the caller either way.
    """
    items = list(items)
    workers = min(int(workers or 0), len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return [fn(item) for item in items]

    shards = [list(range(start, len(items), workers)) for start in range(workers)]
    processes = []
    pipes = []
    for shard in shards:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker, args=(fn, items, shard, child_conn), daemon=True
        )
        process.start()
        child_conn.close()
        processes.append(process)
        pipes.append(parent_conn)

    deadline = None if timeout_s is None else time.monotonic() + timeout_s
    results: list[R | None] = [None] * len(items)
    errors: list[str] = []
    hung: list[str] = []
    pending = {conn: index for index, conn in enumerate(pipes)}
    try:
        while pending:
            wait_for = None
            if deadline is not None:
                wait_for = max(deadline - time.monotonic(), 0.0)
            ready = multiprocessing.connection.wait(
                list(pending), timeout=wait_for
            )
            if not ready:  # timeout expired with workers still running
                for conn, index in sorted(pending.items(), key=lambda kv: kv[1]):
                    hung.append(
                        f"worker {index} unresponsive after {timeout_s:.1f}s "
                        f"({_describe_pending(items, shards[index])})"
                    )
                break
            for conn in ready:
                pending.pop(conn)
                try:
                    status, payload = conn.recv()
                except EOFError:
                    errors.append("worker exited without sending results")
                    continue
                if status == "ok":
                    for index, value in payload:
                        results[index] = value
                else:
                    errors.append(payload)
    finally:
        for conn in pipes:
            conn.close()
        for process in processes:
            if hung and process.is_alive():
                process.terminate()
            process.join()
    if hung:
        raise SimulationError(
            f"parallel_map timed out: {'; '.join(hung)}"
        )
    if errors:
        raise RuntimeError(f"parallel_map worker failed: {errors[0]}")
    return results  # type: ignore[return-value]
