"""Fork-based parallel map for rollout / evaluation workers.

``parallel_map(fn, items, workers)`` runs ``fn`` over ``items`` in
``workers`` forked processes and returns the results **in input order**.
Because workers are forked (POSIX), ``fn`` may be a closure — nothing is
pickled on the way in; only the results cross the pipe back.

Determinism: each item is dispatched with its original index and the
results are reassembled by index, so ``parallel_map(fn, items, w)``
returns exactly ``[fn(x) for x in items]`` for any worker count — the
property the multi-seed determinism tests pin down.  Work is sharded
round-robin; each worker processes its shard sequentially.

On platforms without the ``fork`` start method (or with ``workers <= 1``)
the map silently degrades to a serial loop.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def _worker(
    fn: Callable[[T], R],
    items: Sequence[T],
    indices: list[int],
    conn,
) -> None:
    try:
        results = [(index, fn(items[index])) for index in indices]
        conn.send(("ok", results))
    except BaseException as exc:  # surface the failure to the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int = 0,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across forked workers.

    Parameters
    ----------
    fn:
        Callable applied to each item; its results must be picklable.
    items:
        The inputs; consumed eagerly.
    workers:
        Number of worker processes.  ``0`` or ``1`` runs serially.
    """
    items = list(items)
    workers = min(int(workers or 0), len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return [fn(item) for item in items]

    shards = [list(range(start, len(items), workers)) for start in range(workers)]
    processes = []
    pipes = []
    for shard in shards:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker, args=(fn, items, shard, child_conn), daemon=True
        )
        process.start()
        child_conn.close()
        processes.append(process)
        pipes.append(parent_conn)

    results: list[R | None] = [None] * len(items)
    errors: list[str] = []
    try:
        for conn in pipes:
            try:
                status, payload = conn.recv()
            except EOFError:
                errors.append("worker exited without sending results")
                continue
            if status == "ok":
                for index, value in payload:
                    results[index] = value
            else:
                errors.append(payload)
    finally:
        for conn in pipes:
            conn.close()
        for process in processes:
            process.join()
    if errors:
        raise RuntimeError(f"parallel_map worker failed: {errors[0]}")
    return results  # type: ignore[return-value]
