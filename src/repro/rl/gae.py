"""Generalized Advantage Estimation (Schulman et al., 2016).

The paper's backbone is PPO with GAE (Eq. 7 and Algorithm 1 line 27):
advantages are the exponentially-weighted sum of TD residuals, and the
regression targets ("reward-to-go", line 28) are ``advantage + value``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def compute_gae(
    rewards: np.ndarray,
    values: np.ndarray,
    bootstrap_value: np.ndarray | float,
    gamma: float = 0.99,
    lam: float = 0.95,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute GAE advantages and reward-to-go targets.

    Parameters
    ----------
    rewards:
        ``(T, ...)`` per-step rewards (trailing dims broadcast, e.g. one
        column per agent).
    values:
        ``(T, ...)`` value estimates aligned with ``rewards``.
    bootstrap_value:
        Value estimate of the state *after* the last step (0 for terminal
        episodes — Algorithm 1 lines 23-25).
    gamma, lam:
        Discount and GAE trace-decay factors.

    Returns
    -------
    ``(advantages, returns)`` with the same shape as ``rewards``.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if rewards.shape != values.shape:
        raise ConfigError(
            f"rewards shape {rewards.shape} != values shape {values.shape}"
        )
    if not 0.0 <= gamma <= 1.0 or not 0.0 <= lam <= 1.0:
        raise ConfigError("gamma and lam must lie in [0, 1]")
    horizon = rewards.shape[0]
    if horizon == 0:
        raise ConfigError("cannot compute GAE over an empty trajectory")
    advantages = np.zeros_like(rewards)
    next_value = np.broadcast_to(
        np.asarray(bootstrap_value, dtype=np.float64), rewards.shape[1:]
    ).copy()
    carry = np.zeros(rewards.shape[1:], dtype=np.float64)
    for t in range(horizon - 1, -1, -1):
        delta = rewards[t] + gamma * next_value - values[t]
        carry = delta + gamma * lam * carry
        advantages[t] = carry
        next_value = values[t]
    returns = advantages + values
    return advantages, returns


def normalize_advantages(advantages: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Standard per-batch advantage normalisation."""
    flat = np.asarray(advantages, dtype=np.float64)
    return (flat - flat.mean()) / (flat.std() + eps)


def discounted_returns(
    rewards: np.ndarray, gamma: float, bootstrap_value: np.ndarray | float = 0.0
) -> np.ndarray:
    """Plain discounted reward-to-go (used by the A2C baseline)."""
    rewards = np.asarray(rewards, dtype=np.float64)
    returns = np.zeros_like(rewards)
    carry = np.broadcast_to(
        np.asarray(bootstrap_value, dtype=np.float64), rewards.shape[1:]
    ).copy()
    for t in range(rewards.shape[0] - 1, -1, -1):
        carry = rewards[t] + gamma * carry
        returns[t] = carry
    return returns
