"""Training and evaluation orchestration.

Implements the experiment protocols of Section VI:

* :func:`train` — run N training episodes, recording the per-episode
  average waiting time (the y-axis of Figs. 7, 8 and 10).
* :func:`evaluate` — run drain-mode episodes with greedy policies and
  report average travel time (the Table II / III metric).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.agents.base import AgentSystem
from repro.env.tsc_env import TrafficSignalEnv


@dataclass
class EpisodeLog:
    """Diagnostics of one training episode."""

    episode: int
    avg_wait: float
    total_reward: float
    duration_s: float
    update_stats: dict = field(default_factory=dict)


@dataclass
class TrainingHistory:
    """Complete record of a training run."""

    agent_name: str
    episodes: list[EpisodeLog] = field(default_factory=list)

    @property
    def wait_curve(self) -> np.ndarray:
        """Per-episode average waiting time (Fig. 7/8/10 series)."""
        return np.asarray([log.avg_wait for log in self.episodes])

    @property
    def reward_curve(self) -> np.ndarray:
        return np.asarray([log.total_reward for log in self.episodes])

    def best_episode(self) -> EpisodeLog:
        return min(self.episodes, key=lambda log: log.avg_wait)

    def smoothed_wait_curve(self, window: int = 10) -> np.ndarray:
        """Moving average of the wait curve (how the figures are drawn)."""
        curve = self.wait_curve
        if window <= 1 or len(curve) < 2:
            return curve
        kernel = np.ones(min(window, len(curve))) / min(window, len(curve))
        return np.convolve(curve, kernel, mode="valid")


def run_episode(
    agent: AgentSystem,
    env: TrafficSignalEnv,
    training: bool,
    seed: int | None = None,
) -> tuple[float, float, dict]:
    """Run one full episode; returns (avg_wait, total_reward, final_info)."""
    observations = env.reset(seed=seed)
    agent.begin_episode(env, training)
    wait_samples: list[float] = []
    total_reward = 0.0
    info: dict = {}
    done = False
    while not done:
        actions = agent.act(observations, env, training)
        result = env.step(actions)
        if training:
            agent.observe(result, env)
        observations = result.observations
        wait_samples.append(result.info["average_wait"])
        total_reward += float(sum(result.rewards.values()))
        done = result.done
        info = result.info
    avg_wait = float(np.mean(wait_samples)) if wait_samples else 0.0
    return avg_wait, total_reward, info


def train(
    agent: AgentSystem,
    env: TrafficSignalEnv,
    episodes: int,
    seed: int = 0,
    log_every: int = 0,
) -> TrainingHistory:
    """Train ``agent`` for ``episodes`` episodes on ``env``."""
    history = TrainingHistory(agent_name=agent.name)
    for episode in range(episodes):
        started = time.perf_counter()
        avg_wait, total_reward, _ = run_episode(
            agent, env, training=True, seed=seed + episode
        )
        stats = agent.end_episode(env, training=True)
        log = EpisodeLog(
            episode=episode,
            avg_wait=avg_wait,
            total_reward=total_reward,
            duration_s=time.perf_counter() - started,
            update_stats=stats,
        )
        history.episodes.append(log)
        if log_every and (episode + 1) % log_every == 0:
            print(
                f"[{agent.name}] episode {episode + 1}/{episodes} "
                f"avg_wait={avg_wait:.2f}s reward={total_reward:.1f}"
            )
    return history


def train_with_eval(
    agent: AgentSystem,
    train_env: TrafficSignalEnv,
    eval_env: TrafficSignalEnv,
    episodes: int,
    eval_every: int,
    seed: int = 0,
    eval_episodes: int = 1,
) -> tuple[TrainingHistory, list[tuple[int, "EvaluationResult"]]]:
    """Train with periodic drain-mode evaluations.

    Every ``eval_every`` episodes (and once more at the end) the agent is
    frozen and evaluated greedily on ``eval_env``; the checkpoints let
    you see *generalisation* progress, not just the training curve.
    Returns ``(history, [(episode, evaluation), ...])``.
    """
    if eval_every <= 0:
        raise ValueError("eval_every must be positive")
    history = TrainingHistory(agent_name=agent.name)
    checkpoints: list[tuple[int, EvaluationResult]] = []
    for episode in range(episodes):
        started = time.perf_counter()
        avg_wait, total_reward, _ = run_episode(
            agent, train_env, training=True, seed=seed + episode
        )
        stats = agent.end_episode(train_env, training=True)
        history.episodes.append(
            EpisodeLog(
                episode=episode,
                avg_wait=avg_wait,
                total_reward=total_reward,
                duration_s=time.perf_counter() - started,
                update_stats=stats,
            )
        )
        if (episode + 1) % eval_every == 0 or episode == episodes - 1:
            result = evaluate(
                agent, eval_env, episodes=eval_episodes, seed=seed + 10_000
            )
            checkpoints.append((episode, result))
    return history, checkpoints


@dataclass
class EvaluationResult:
    """Outcome of a drain-mode evaluation run."""

    agent_name: str
    average_travel_time: float
    average_wait: float
    finished_vehicles: int
    total_created: int
    episodes: int

    @property
    def completion_rate(self) -> float:
        if self.total_created == 0:
            return 1.0
        return self.finished_vehicles / self.total_created


def evaluate(
    agent: AgentSystem,
    env: TrafficSignalEnv,
    episodes: int = 1,
    seed: int = 10_000,
) -> EvaluationResult:
    """Evaluate with greedy policies; env should be in drain mode."""
    travel_times: list[float] = []
    waits: list[float] = []
    finished = 0
    created = 0
    for episode in range(episodes):
        avg_wait, _, info = run_episode(
            agent, env, training=False, seed=seed + episode
        )
        agent.end_episode(env, training=False)
        travel_times.append(info.get("average_travel_time", float("nan")))
        waits.append(avg_wait)
        finished += info.get("finished_vehicles", 0)
        created += info.get("total_created", 0)
    return EvaluationResult(
        agent_name=agent.name,
        average_travel_time=float(np.mean(travel_times)),
        average_wait=float(np.mean(waits)),
        finished_vehicles=finished,
        total_created=created,
        episodes=episodes,
    )
