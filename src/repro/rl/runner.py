"""Training and evaluation orchestration.

Implements the experiment protocols of Section VI:

* :func:`train` — run N training episodes, recording the per-episode
  average waiting time (the y-axis of Figs. 7, 8 and 10).
* :func:`evaluate` — run drain-mode episodes with greedy policies and
  report average travel time (the Table II / III metric).

:func:`train` is **crash-safe**: it can write periodic atomic
checkpoints (weights + optimizer + RNG streams + episode index) and
resume from them via ``resume_from=``; a NaN/divergence guard detects
poisoned updates and rolls the agent back to its last good state; and a
``SimulationError`` aborts only the offending episode, not the run.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.agents.base import AgentSystem
from repro.env.tsc_env import TrafficSignalEnv
from repro.errors import SimulationError
from repro.perf.timers import TIMERS
from repro.rl.checkpoint import (
    load_training_checkpoint,
    save_training_checkpoint,
)

if TYPE_CHECKING:  # runtime import is lazy; telemetry is opt-in
    from repro.obs.telemetry import Telemetry


@dataclass
class EpisodeLog:
    """Diagnostics of one training episode."""

    episode: int
    avg_wait: float
    total_reward: float
    duration_s: float
    update_stats: dict = field(default_factory=dict)
    #: Wall-clock of the whole lockstep *group* episode (B seeds sharing
    #: one engine).  Serial runs leave it at 0.0; batched runs stamp the
    #: group time here and the amortized per-seed share in
    #: ``duration_s``, keeping per-seed throughput comparisons honest.
    group_duration_s: float = 0.0


@dataclass
class TrainingHistory:
    """Complete record of a training run."""

    agent_name: str
    episodes: list[EpisodeLog] = field(default_factory=list)
    #: Episodes whose simulation raised ``SimulationError`` and was contained.
    aborted_episodes: list[int] = field(default_factory=list)
    #: Episodes whose update was non-finite and rolled back by the guard.
    rolled_back_episodes: list[int] = field(default_factory=list)

    @property
    def wait_curve(self) -> np.ndarray:
        """Per-episode average waiting time (Fig. 7/8/10 series)."""
        return np.asarray([log.avg_wait for log in self.episodes])

    @property
    def reward_curve(self) -> np.ndarray:
        return np.asarray([log.total_reward for log in self.episodes])

    def best_episode(self) -> EpisodeLog:
        return min(self.episodes, key=lambda log: log.avg_wait)

    def smoothed_wait_curve(self, window: int = 10) -> np.ndarray:
        """Moving average of the wait curve (how the figures are drawn)."""
        curve = self.wait_curve
        if window <= 1 or len(curve) < 2:
            return curve
        kernel = np.ones(min(window, len(curve))) / min(window, len(curve))
        return np.convolve(curve, kernel, mode="valid")


def run_episode(
    agent: AgentSystem,
    env: TrafficSignalEnv,
    training: bool,
    seed: int | None = None,
) -> tuple[float, float, dict]:
    """Run one full episode; returns (avg_wait, total_reward, final_info)."""
    observations = env.reset(seed=seed)
    agent.begin_episode(env, training)
    wait_samples: list[float] = []
    total_reward = 0.0
    info: dict = {}
    done = False
    while not done:
        with TIMERS.section("forward"):
            actions = agent.act(observations, env, training)
        with TIMERS.section("env_step"):
            result = env.step(actions)
        if training:
            agent.observe(result, env)
        observations = result.observations
        wait_samples.append(result.info["average_wait"])
        total_reward += float(sum(result.rewards.values()))
        done = result.done
        info = result.info
    avg_wait = float(np.mean(wait_samples)) if wait_samples else 0.0
    return avg_wait, total_reward, info


def _capture_agent_state(agent: AgentSystem) -> tuple[dict, dict]:
    """Snapshot weights + training state for guard rollback."""
    return agent.state_dict(), agent.training_state()


def _restore_agent_state(agent: AgentSystem, snapshot: tuple[dict, dict]) -> None:
    weights, training = snapshot
    if weights:
        agent.load_state_dict(weights)
    if training:
        agent.load_training_state(training)


def _episode_is_finite(
    agent: AgentSystem, avg_wait: float, total_reward: float, stats: dict
) -> bool:
    """NaN/divergence guard: episode metrics, update diagnostics and the
    resulting weights must all be finite."""
    if not (np.isfinite(avg_wait) and np.isfinite(total_reward)):
        return False
    for value in stats.values():
        if isinstance(value, (int, float)) and not np.isfinite(value):
            return False
    for array in agent.state_dict().values():
        if not np.all(np.isfinite(array)):
            return False
    return True


def _checkpoint_meta(history: TrainingHistory, next_episode: int, seed: int) -> dict:
    return {
        "next_episode": next_episode,
        "seed": seed,
        "history": [asdict(log) for log in history.episodes],
        "aborted_episodes": list(history.aborted_episodes),
        "rolled_back_episodes": list(history.rolled_back_episodes),
    }


def train(
    agent: AgentSystem,
    env: TrafficSignalEnv,
    episodes: int,
    seed: int = 0,
    log_every: int = 0,
    *,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 1,
    resume_from: str | None = None,
    nan_guard: bool = True,
    max_episode_failures: int | None = None,
    telemetry: "Telemetry | None" = None,
) -> TrainingHistory:
    """Train ``agent`` for ``episodes`` episodes on ``env``.

    Resilience features (all optional, defaults preserve behaviour on
    healthy runs):

    * ``checkpoint_dir`` — write an atomic checkpoint (weights +
      optimizer + RNG streams + history) every ``checkpoint_every``
      completed episodes.
    * ``resume_from`` — a checkpoint file or directory to restore before
      training; the run continues from the recorded episode index with
      identical RNG streams, so an interrupted run reproduces the
      uninterrupted one.
    * ``nan_guard`` — after each update, verify episode metrics, update
      diagnostics and weights are finite; a poisoned update is rolled
      back to the last good state and the episode recorded in
      ``history.rolled_back_episodes``.
    * ``SimulationError`` containment — an episode whose simulation
      blows up is recorded in ``history.aborted_episodes`` and skipped;
      after ``max_episode_failures`` such failures (``None`` = no limit)
      the error propagates.
    * ``telemetry`` — a :class:`repro.obs.telemetry.Telemetry` sink
      recording episode/update/checkpoint/fault events into a run
      directory.  Telemetry only *reads* run state and never draws from
      any RNG stream, so an instrumented run is **bit-exact** with an
      uninstrumented one (enforced by the test suite).
    """
    if telemetry is not None:
        env.attach_telemetry(telemetry)
        agent.attach_telemetry(telemetry)
    history = TrainingHistory(agent_name=agent.name)
    start_episode = 0
    if resume_from is not None:
        meta = load_training_checkpoint(resume_from, agent)
        history.episodes = [EpisodeLog(**log) for log in meta.get("history", [])]
        history.aborted_episodes = [int(e) for e in meta.get("aborted_episodes", [])]
        history.rolled_back_episodes = [
            int(e) for e in meta.get("rolled_back_episodes", [])
        ]
        start_episode = int(meta.get("next_episode", len(history.episodes)))
    snapshot = _capture_agent_state(agent) if nan_guard else None
    failures = 0
    for episode in range(start_episode, episodes):
        started = time.perf_counter()
        if telemetry is not None:
            telemetry.episode_begin(episode, seed + episode)
        try:
            avg_wait, total_reward, _ = run_episode(
                agent, env, training=True, seed=seed + episode
            )
            with TIMERS.section("update"):
                stats = agent.end_episode(env, training=True)
        except SimulationError as error:
            failures += 1
            history.aborted_episodes.append(episode)
            if telemetry is not None:
                telemetry.episode_aborted(episode, str(error))
            if max_episode_failures is not None and failures > max_episode_failures:
                raise
            if log_every:
                print(f"[{agent.name}] episode {episode + 1} aborted: {error}")
            continue
        if nan_guard and not _episode_is_finite(agent, avg_wait, total_reward, stats):
            if snapshot is not None:
                _restore_agent_state(agent, snapshot)
            history.rolled_back_episodes.append(episode)
            if telemetry is not None:
                telemetry.nan_rollback(episode)
            if log_every:
                print(
                    f"[{agent.name}] episode {episode + 1} diverged; "
                    "rolled back to last good state"
                )
            continue
        log = EpisodeLog(
            episode=episode,
            avg_wait=avg_wait,
            total_reward=total_reward,
            duration_s=time.perf_counter() - started,
            update_stats=stats,
        )
        history.episodes.append(log)
        if telemetry is not None:
            telemetry.episode_end(episode, avg_wait, total_reward, log.duration_s)
            telemetry.update_stats(episode, stats)
        if nan_guard:
            snapshot = _capture_agent_state(agent)
        if checkpoint_dir is not None and (
            (episode + 1) % max(1, checkpoint_every) == 0 or episode == episodes - 1
        ):
            save_training_checkpoint(
                checkpoint_dir, agent, _checkpoint_meta(history, episode + 1, seed)
            )
            if telemetry is not None:
                telemetry.checkpoint_written(episode + 1, checkpoint_dir)
        if log_every and (episode + 1) % log_every == 0:
            print(
                f"[{agent.name}] episode {episode + 1}/{episodes} "
                f"avg_wait={avg_wait:.2f}s reward={total_reward:.1f}"
            )
    return history


def train_with_eval(
    agent: AgentSystem,
    train_env: TrafficSignalEnv,
    eval_env: TrafficSignalEnv,
    episodes: int,
    eval_every: int,
    seed: int = 0,
    eval_episodes: int = 1,
) -> tuple[TrainingHistory, list[tuple[int, "EvaluationResult"]]]:
    """Train with periodic drain-mode evaluations.

    Every ``eval_every`` episodes (and once more at the end) the agent is
    frozen and evaluated greedily on ``eval_env``; the checkpoints let
    you see *generalisation* progress, not just the training curve.
    Returns ``(history, [(episode, evaluation), ...])``.
    """
    if eval_every <= 0:
        raise ValueError("eval_every must be positive")
    history = TrainingHistory(agent_name=agent.name)
    checkpoints: list[tuple[int, EvaluationResult]] = []
    for episode in range(episodes):
        started = time.perf_counter()
        avg_wait, total_reward, _ = run_episode(
            agent, train_env, training=True, seed=seed + episode
        )
        stats = agent.end_episode(train_env, training=True)
        history.episodes.append(
            EpisodeLog(
                episode=episode,
                avg_wait=avg_wait,
                total_reward=total_reward,
                duration_s=time.perf_counter() - started,
                update_stats=stats,
            )
        )
        if (episode + 1) % eval_every == 0 or episode == episodes - 1:
            result = evaluate(
                agent, eval_env, episodes=eval_episodes, seed=seed + 10_000
            )
            checkpoints.append((episode, result))
    return history, checkpoints


@dataclass
class EvaluationResult:
    """Outcome of a drain-mode evaluation run."""

    agent_name: str
    average_travel_time: float
    average_wait: float
    finished_vehicles: int
    total_created: int
    episodes: int
    #: Episodes that produced no travel-time sample (e.g. a drain-mode
    #: episode where no vehicle finished); excluded from the mean.
    invalid_episodes: int = 0

    @property
    def completion_rate(self) -> float:
        if self.total_created == 0:
            return 1.0
        return self.finished_vehicles / self.total_created


def evaluate(
    agent: AgentSystem,
    env: TrafficSignalEnv,
    episodes: int = 1,
    seed: int = 10_000,
) -> EvaluationResult:
    """Evaluate with greedy policies; env should be in drain mode.

    An episode with no finished vehicles has no travel-time sample; such
    episodes are counted in ``invalid_episodes`` and excluded from the
    mean instead of poisoning it with NaN.
    """
    travel_times: list[float] = []
    waits: list[float] = []
    finished = 0
    created = 0
    for episode in range(episodes):
        avg_wait, _, info = run_episode(
            agent, env, training=False, seed=seed + episode
        )
        agent.end_episode(env, training=False)
        travel_times.append(info.get("average_travel_time", float("nan")))
        waits.append(avg_wait)
        finished += info.get("finished_vehicles", 0)
        created += info.get("total_created", 0)
    samples = np.asarray(travel_times, dtype=np.float64)
    invalid = int(np.count_nonzero(np.isnan(samples)))
    average_tt = (
        float(np.nanmean(samples)) if invalid < len(samples) else float("nan")
    )
    return EvaluationResult(
        agent_name=agent.name,
        average_travel_time=average_tt,
        average_wait=float(np.mean(waits)),
        finished_vehicles=finished,
        total_created=created,
        episodes=episodes,
        invalid_episodes=invalid,
    )
