"""Proximal Policy Optimization with a clipped surrogate objective.

This implements the paper's backbone update (Section III-B2, Eq. 4, and
Algorithm 1 lines 26-29): K epochs of minibatched clipped-surrogate
policy updates plus value regression against GAE reward-to-go targets,
with an entropy bonus for exploration.

Because the actor and critic are recurrent (LSTM) and hidden states start
at zero each episode, the minibatch unit is an *agent sequence*: a
minibatch selects a subset of agents and re-runs their full episode
forward pass.  The concrete forward pass lives in the agent (PairUpLight,
SingleAgentRL, ...) and is supplied as an ``evaluate`` callable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.nn.optim import Optimizer, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.perf.timers import TIMERS


def _mean(values: list[float]) -> float:
    """Mean of minibatch diagnostics; 0.0 when no minibatch ran.

    ``cfg.epochs`` mutated to 0 after construction, or a ``target_kl``
    stop before the first minibatch, leaves the lists empty — ``np.mean``
    would emit a RuntimeWarning and return NaN.
    """
    if not values:
        return 0.0
    return float(np.mean(values))


@dataclass
class PPOConfig:
    """Hyperparameters of the PPO update."""

    clip_eps: float = 0.2
    epochs: int = 4
    minibatch_agents: int = 8
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    max_grad_norm: float = 0.5
    gamma: float = 0.95
    lam: float = 0.95
    target_kl: float | None = 0.05
    normalize_advantages: bool = True
    #: Optional PPO2-style value clipping: the value loss is the max of
    #: the unclipped error and the error of a prediction clipped to within
    #: ``value_clip_eps`` of the rollout-time value estimate.  ``None``
    #: disables clipping (plain MSE, the default).
    value_clip_eps: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.clip_eps < 1.0:
            raise ConfigError("clip_eps must lie in (0, 1)")
        if self.epochs <= 0 or self.minibatch_agents <= 0:
            raise ConfigError("epochs and minibatch_agents must be positive")
        if self.value_clip_eps is not None and self.value_clip_eps <= 0:
            raise ConfigError("value_clip_eps must be positive when set")


EvaluateFn = Callable[[np.ndarray], tuple[Tensor, Tensor, Tensor]]
"""Re-evaluates a minibatch of agent sequences.

Given an array of agent indices, returns ``(new_logprobs, entropies,
values)``, each a Tensor of shape ``(T, M)`` where ``M`` is the number of
selected agents.
"""


@dataclass
class PPOStats:
    """Diagnostics of one :meth:`PPOUpdater.update` call."""

    policy_loss: float
    value_loss: float
    entropy: float
    approx_kl: float
    clip_fraction: float
    epochs_run: int


class PPOUpdater:
    """Runs the clipped-surrogate update over stored rollouts."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        optimizers: Sequence[Optimizer],
        config: PPOConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.parameters = list(parameters)
        self.optimizers = list(optimizers)
        if not self.optimizers:
            raise ConfigError("PPO needs at least one optimizer")
        self.config = config or PPOConfig()
        self._rng = rng or np.random.default_rng(0)

    def update(
        self,
        evaluate: EvaluateFn,
        old_logprobs: np.ndarray,
        advantages: np.ndarray,
        returns: np.ndarray,
        old_values: np.ndarray | None = None,
    ) -> PPOStats:
        """Run K epochs of minibatched PPO.

        ``old_logprobs`` / ``advantages`` / ``returns`` are ``(T, N)``
        arrays over the episode steps and the N agents.  ``old_values``
        (same shape) is required when ``value_clip_eps`` is configured.
        """
        cfg = self.config
        old_logprobs = np.asarray(old_logprobs, dtype=np.float64)
        advantages = np.asarray(advantages, dtype=np.float64)
        returns = np.asarray(returns, dtype=np.float64)
        if old_logprobs.shape != advantages.shape or advantages.shape != returns.shape:
            raise ConfigError("old_logprobs / advantages / returns shapes differ")
        if cfg.value_clip_eps is not None:
            if old_values is None:
                raise ConfigError("value_clip_eps requires old_values")
            old_values = np.asarray(old_values, dtype=np.float64)
            if old_values.shape != returns.shape:
                raise ConfigError("old_values shape mismatch")
        num_agents = old_logprobs.shape[1]
        if cfg.normalize_advantages:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)

        policy_losses: list[float] = []
        value_losses: list[float] = []
        entropies: list[float] = []
        kls: list[float] = []
        clip_fracs: list[float] = []
        epochs_run = 0
        stop = False
        for _ in range(cfg.epochs):
            if stop:
                break
            epochs_run += 1
            order = self._rng.permutation(num_agents)
            with TIMERS.section("update/epoch"):
                for start in range(0, num_agents, cfg.minibatch_agents):
                    batch = order[start : start + cfg.minibatch_agents]
                    stop = self._minibatch_step(
                        evaluate,
                        batch,
                        old_logprobs,
                        advantages,
                        returns,
                        old_values,
                        policy_losses,
                        value_losses,
                        entropies,
                        kls,
                        clip_fracs,
                    )
                    if stop:
                        break
        return PPOStats(
            policy_loss=_mean(policy_losses),
            value_loss=_mean(value_losses),
            entropy=_mean(entropies),
            approx_kl=_mean(kls),
            clip_fraction=_mean(clip_fracs),
            epochs_run=epochs_run,
        )

    def _minibatch_step(
        self,
        evaluate: EvaluateFn,
        batch: np.ndarray,
        old_logprobs: np.ndarray,
        advantages: np.ndarray,
        returns: np.ndarray,
        old_values: np.ndarray | None,
        policy_losses: list[float],
        value_losses: list[float],
        entropies: list[float],
        kls: list[float],
        clip_fracs: list[float],
    ) -> bool:
        """One minibatch forward/backward/step; returns the KL-stop flag."""
        cfg = self.config
        with TIMERS.section("update/minibatch"):
            new_logprobs, entropy, values = evaluate(batch)
            adv = Tensor(advantages[:, batch])
            ratio = (new_logprobs - Tensor(old_logprobs[:, batch])).exp()
            surrogate1 = ratio * adv
            surrogate2 = ratio.clip(1.0 - cfg.clip_eps, 1.0 + cfg.clip_eps) * adv
            policy_loss = -surrogate1.minimum(surrogate2).mean()
            entropy_bonus = entropy.mean()
            target = Tensor(returns[:, batch])
            value_error = values - target
            value_loss = value_error * value_error
            if cfg.value_clip_eps is not None:
                anchor = Tensor(old_values[:, batch])
                clipped = anchor + (values - anchor).clip(
                    -cfg.value_clip_eps, cfg.value_clip_eps
                )
                clipped_error = clipped - target
                value_loss = value_loss.maximum(clipped_error * clipped_error)
            value_loss = value_loss.mean()
            total = (
                policy_loss
                + cfg.value_coef * value_loss
                - cfg.entropy_coef * entropy_bonus
            )
            for optimizer in self.optimizers:
                optimizer.zero_grad()
            total.backward()
            clip_grad_norm(self.parameters, cfg.max_grad_norm)
            for optimizer in self.optimizers:
                optimizer.step()

            log_ratio = new_logprobs.data - old_logprobs[:, batch]
            approx_kl = float(np.mean(np.exp(log_ratio) - 1.0 - log_ratio))
            policy_losses.append(float(policy_loss.data))
            value_losses.append(float(value_loss.data))
            entropies.append(float(entropy_bonus.data))
            kls.append(approx_kl)
            clip_fracs.append(
                float(np.mean(np.abs(ratio.data - 1.0) > cfg.clip_eps))
            )
            return cfg.target_kl is not None and approx_kl > 1.5 * cfg.target_kl
