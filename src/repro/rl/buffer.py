"""Experience storage for on-policy (rollout) and off-policy (replay) RL."""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ConfigError


class RolloutBuffer:
    """Episode storage for on-policy algorithms (PPO / A2C).

    Usage: call :meth:`add` once per environment step with arbitrary
    keyword fields (obs, actions, rewards, values, ...); every call must
    use the same field names.  :meth:`stacked` returns each field as a
    numpy array with the step dimension first, e.g. ``(T, n_agents, ...)``
    when per-step values are ``(n_agents, ...)`` arrays.
    """

    def __init__(self) -> None:
        self._fields: dict[str, list[np.ndarray]] = {}
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def add(self, **fields) -> None:
        if self._length == 0 and not self._fields:
            for name in fields:
                self._fields[name] = []
        if set(fields) != set(self._fields):
            raise ConfigError(
                f"rollout fields changed: expected {sorted(self._fields)}, "
                f"got {sorted(fields)}"
            )
        for name, value in fields.items():
            self._fields[name].append(np.asarray(value))
        self._length += 1

    def stacked(self) -> dict[str, np.ndarray]:
        """All fields stacked along a leading time axis."""
        if self._length == 0:
            raise ConfigError("rollout buffer is empty")
        return {name: np.stack(values) for name, values in self._fields.items()}

    def clear(self) -> None:
        self._fields = {}
        self._length = 0


class ReplayBuffer:
    """Uniform-sampling FIFO replay buffer for DQN-style algorithms."""

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity <= 0:
            raise ConfigError("replay capacity must be positive")
        self.capacity = capacity
        self._storage: deque[dict] = deque(maxlen=capacity)
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self._storage)

    def add(self, transition: dict) -> None:
        self._storage.append(transition)

    def sample(self, batch_size: int) -> list[dict]:
        if batch_size <= 0:
            raise ConfigError("batch size must be positive")
        if len(self._storage) == 0:
            raise ConfigError("cannot sample from an empty replay buffer")
        indices = self._rng.integers(0, len(self._storage), size=batch_size)
        return [self._storage[int(i)] for i in indices]
