"""Crash-safe training checkpoints.

A training checkpoint is one atomic ``.npz`` archive holding everything
needed to resume a run exactly where it stopped:

* ``weights.*`` — the agent's network parameters,
* ``training.*`` — optimizer moments and RNG streams
  (:meth:`repro.agents.base.AgentSystem.training_state`),
* ``meta`` — a JSON blob with the episode index and the per-episode
  history so the resumed :class:`~repro.rl.runner.TrainingHistory` is
  complete.

RNG streams are serialized through ``Generator.bit_generator.state``
(a JSON-safe dict), so a resumed run continues the *same* random
sequence — a killed-and-resumed training run reproduces the
uninterrupted one bit for bit.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.errors import CheckpointError
from repro.nn.serialization import atomic_savez, read_archive

#: Bumped when the archive layout changes incompatibly.
CHECKPOINT_VERSION = 1

#: Default checkpoint filename inside a checkpoint directory.
CHECKPOINT_FILENAME = "checkpoint.npz"


def pack_rng(rng: np.random.Generator) -> np.ndarray:
    """Serialize a Generator's state into a 0-d unicode array."""
    return np.asarray(json.dumps(rng.bit_generator.state))


def unpack_rng(rng: np.random.Generator, packed: np.ndarray) -> None:
    """Restore a Generator from :func:`pack_rng` output (in place)."""
    try:
        rng.bit_generator.state = json.loads(str(packed))
    except (json.JSONDecodeError, TypeError, ValueError) as error:
        raise CheckpointError(f"corrupt RNG state in checkpoint: {error}") from error


def resolve_checkpoint_path(path: str | os.PathLike) -> str:
    """Accept either a checkpoint file (``*.npz``) or a directory."""
    path = os.fspath(path)
    if path.endswith(".npz"):
        return path
    return os.path.join(path, CHECKPOINT_FILENAME)


def save_training_checkpoint(path: str | os.PathLike, agent, meta: dict) -> None:
    """Atomically persist agent weights + training state + ``meta``."""
    resolved = resolve_checkpoint_path(path)
    directory = os.path.dirname(resolved)
    if directory:
        os.makedirs(directory, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    for name, value in agent.state_dict().items():
        arrays[f"weights.{name}"] = value
    for name, value in agent.training_state().items():
        arrays[f"training.{name}"] = value
    payload = dict(meta)
    payload["version"] = CHECKPOINT_VERSION
    payload["agent_name"] = agent.name
    arrays["meta"] = np.asarray(json.dumps(payload))
    atomic_savez(resolved, arrays)


def load_training_checkpoint(path: str | os.PathLike, agent) -> dict:
    """Restore a checkpoint into ``agent``; returns the ``meta`` dict.

    Raises :class:`CheckpointError` for unreadable archives, missing
    metadata, or weight/state mismatches against the agent.
    """
    resolved = resolve_checkpoint_path(path)
    arrays = read_archive(resolved)
    if "meta" not in arrays:
        raise CheckpointError(f"{resolved} is not a training checkpoint (no meta)")
    try:
        meta = json.loads(str(arrays.pop("meta")))
    except json.JSONDecodeError as error:
        raise CheckpointError(f"corrupt checkpoint metadata: {error}") from error
    if meta.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {meta.get('version')!r} != {CHECKPOINT_VERSION}"
        )
    weights = {
        name[len("weights.") :]: value
        for name, value in arrays.items()
        if name.startswith("weights.")
    }
    training = {
        name[len("training.") :]: value
        for name, value in arrays.items()
        if name.startswith("training.")
    }
    try:
        agent.load_state_dict(weights)
        agent.load_training_state(training)
    except (KeyError, ValueError) as error:
        raise CheckpointError(
            f"checkpoint {resolved} does not match agent {agent.name}: {error}"
        ) from error
    return meta
