"""Advantage Actor-Critic update (backbone of the MA2C baseline).

MA2C (Chu et al., 2019) trains independent actor-critic agents with a
single gradient step per batch (no surrogate clipping, no epochs): the
policy loss is ``-log pi(a|s) * A`` with an entropy bonus, the value loss
is mean squared error against n-step returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.nn.optim import Optimizer, clip_grad_norm
from repro.nn.tensor import Tensor


@dataclass
class A2CConfig:
    """Hyperparameters of the A2C update."""

    value_coef: float = 0.5
    entropy_coef: float = 0.01
    max_grad_norm: float = 40.0
    gamma: float = 0.95

    def __post_init__(self) -> None:
        if self.value_coef < 0 or self.entropy_coef < 0:
            raise ConfigError("loss coefficients must be non-negative")


@dataclass
class A2CStats:
    policy_loss: float
    value_loss: float
    entropy: float


class A2CUpdater:
    """One-shot actor-critic gradient step over an episode batch."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        optimizers: Sequence[Optimizer],
        config: A2CConfig | None = None,
    ) -> None:
        self.parameters = list(parameters)
        self.optimizers = list(optimizers)
        if not self.optimizers:
            raise ConfigError("A2C needs at least one optimizer")
        self.config = config or A2CConfig()

    def update(
        self,
        evaluate: Callable[[], tuple[Tensor, Tensor, Tensor]],
        advantages: np.ndarray,
        returns: np.ndarray,
    ) -> A2CStats:
        """Single gradient step.

        ``evaluate`` re-runs the episode and returns ``(logprobs,
        entropies, values)`` Tensors shaped like ``advantages``.
        """
        cfg = self.config
        logprobs, entropy, values = evaluate()
        adv = Tensor(np.asarray(advantages, dtype=np.float64))
        policy_loss = -(logprobs * adv).mean()
        entropy_bonus = entropy.mean()
        value_error = values - Tensor(np.asarray(returns, dtype=np.float64))
        value_loss = (value_error * value_error).mean()
        total = policy_loss + cfg.value_coef * value_loss - cfg.entropy_coef * entropy_bonus
        for optimizer in self.optimizers:
            optimizer.zero_grad()
        total.backward()
        clip_grad_norm(self.parameters, cfg.max_grad_norm)
        for optimizer in self.optimizers:
            optimizer.step()
        return A2CStats(
            policy_loss=float(policy_loss.data),
            value_loss=float(value_loss.data),
            entropy=float(entropy_bonus.data),
        )
