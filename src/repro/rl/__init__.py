"""Reinforcement-learning algorithms: PPO+GAE, A2C, DQN, and the runner."""

from repro.rl.a2c import A2CConfig, A2CStats, A2CUpdater
from repro.rl.buffer import ReplayBuffer, RolloutBuffer
from repro.rl.checkpoint import (
    CHECKPOINT_FILENAME,
    load_training_checkpoint,
    resolve_checkpoint_path,
    save_training_checkpoint,
)
from repro.rl.dqn import DQNConfig, DQNStats, DQNUpdater
from repro.rl.gae import compute_gae, discounted_returns, normalize_advantages
from repro.rl.normalize import (
    ObservationNormalizer,
    ReturnNormalizer,
    RunningMeanStd,
)
from repro.rl.ppo import PPOConfig, PPOStats, PPOUpdater
from repro.rl.runner import (
    EpisodeLog,
    EvaluationResult,
    TrainingHistory,
    evaluate,
    run_episode,
    train,
    train_with_eval,
)
from repro.rl.schedules import ExponentialSchedule, LinearSchedule

__all__ = [
    "A2CConfig",
    "A2CStats",
    "A2CUpdater",
    "CHECKPOINT_FILENAME",
    "DQNConfig",
    "DQNStats",
    "DQNUpdater",
    "EpisodeLog",
    "EvaluationResult",
    "ExponentialSchedule",
    "LinearSchedule",
    "ObservationNormalizer",
    "PPOConfig",
    "PPOStats",
    "PPOUpdater",
    "ReplayBuffer",
    "ReturnNormalizer",
    "RolloutBuffer",
    "RunningMeanStd",
    "TrainingHistory",
    "compute_gae",
    "discounted_returns",
    "evaluate",
    "load_training_checkpoint",
    "normalize_advantages",
    "resolve_checkpoint_path",
    "run_episode",
    "save_training_checkpoint",
    "train",
    "train_with_eval",
]
