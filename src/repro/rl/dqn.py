"""Deep Q-learning machinery (backbone of the CoLight baseline).

CoLight (Wei et al., 2019) trains a parameter-shared Q-network with a
graph-attention state encoder using standard DQN: epsilon-greedy
exploration, uniform replay, a periodically-synchronised target network,
and Huber TD-error regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.nn import functional as F
from repro.nn.module import Module, Parameter
from repro.nn.optim import Optimizer, clip_grad_norm
from repro.nn.tensor import Tensor
from repro.rl.buffer import ReplayBuffer
from repro.rl.schedules import LinearSchedule


@dataclass
class DQNConfig:
    """Hyperparameters of the DQN update."""

    gamma: float = 0.95
    batch_size: int = 64
    replay_capacity: int = 50_000
    learning_starts: int = 200
    target_sync_interval: int = 20
    max_grad_norm: float = 10.0
    epsilon_start: float = 1.0
    epsilon_end: float = 0.05
    epsilon_decay_steps: int = 5_000

    def __post_init__(self) -> None:
        if self.batch_size <= 0 or self.replay_capacity <= 0:
            raise ConfigError("batch_size and replay_capacity must be positive")

    def epsilon_schedule(self) -> LinearSchedule:
        return LinearSchedule(
            self.epsilon_start, self.epsilon_end, self.epsilon_decay_steps
        )


@dataclass
class DQNStats:
    loss: float
    mean_q: float


class DQNUpdater:
    """TD-regression update shared by all DQN-family agents.

    The agent supplies two callables: ``q_fn(batch) -> Tensor (B, A)``
    evaluating the online network on a list of stored transitions, and
    ``target_q_fn(batch) -> np.ndarray (B, A)`` evaluating the frozen
    target network on the successor states.
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        optimizer: Optimizer,
        online: Module,
        target: Module,
        config: DQNConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.parameters = list(parameters)
        self.optimizer = optimizer
        self.online = online
        self.target = target
        self.config = config or DQNConfig()
        self.replay = ReplayBuffer(self.config.replay_capacity, seed=seed)
        self.epsilon = self.config.epsilon_schedule()
        self._updates = 0
        self._env_steps = 0
        self.target.copy_from(self.online)

    # ------------------------------------------------------------------
    def record_step(self) -> None:
        """Note one environment step (drives the epsilon schedule)."""
        self._env_steps += 1

    def current_epsilon(self) -> float:
        return self.epsilon.value(self._env_steps)

    def ready(self) -> bool:
        return len(self.replay) >= max(self.config.learning_starts, self.config.batch_size)

    def update(
        self,
        q_fn: Callable[[list[dict]], Tensor],
        target_q_fn: Callable[[list[dict]], np.ndarray],
    ) -> DQNStats | None:
        """One minibatch TD update; returns None until the replay warms up."""
        if not self.ready():
            return None
        cfg = self.config
        batch = self.replay.sample(cfg.batch_size)
        actions = np.asarray([t["action"] for t in batch], dtype=np.int64)
        rewards = np.asarray([t["reward"] for t in batch], dtype=np.float64)
        dones = np.asarray([t.get("done", False) for t in batch], dtype=bool)

        next_q = target_q_fn(batch)  # (B, A)
        targets = rewards + cfg.gamma * np.where(dones, 0.0, next_q.max(axis=1))

        q_values = q_fn(batch)  # Tensor (B, A)
        chosen = F.gather(q_values, actions)
        loss = F.huber_loss(chosen, Tensor(targets))
        self.optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(self.parameters, cfg.max_grad_norm)
        self.optimizer.step()

        self._updates += 1
        if self._updates % cfg.target_sync_interval == 0:
            self.target.copy_from(self.online)
        return DQNStats(loss=float(loss.data), mean_q=float(q_values.data.mean()))
