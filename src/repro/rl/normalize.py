"""Running normalisation utilities.

Standard PPO plumbing: a numerically-stable running mean/variance
(Welford / parallel-variance updates) and observation / return
normalisers built on it.  The PairUpLight observations are already
hand-scaled (see :mod:`repro.env.observation`), so these are optional —
useful when experimenting with richer raw states.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class RunningMeanStd:
    """Tracks mean and variance of a stream of vectors."""

    def __init__(self, shape: tuple[int, ...] = ()) -> None:
        self.mean = np.zeros(shape, dtype=np.float64)
        self.var = np.ones(shape, dtype=np.float64)
        self.count = 0.0

    def update(self, batch: np.ndarray) -> None:
        """Fold a batch (leading axis = samples) into the statistics."""
        batch = np.asarray(batch, dtype=np.float64)
        if batch.ndim == len(self.mean.shape):
            batch = batch[None, ...]
        batch_count = batch.shape[0]
        if batch_count == 0:
            return
        batch_mean = batch.mean(axis=0)
        batch_var = batch.var(axis=0)
        delta = batch_mean - self.mean
        total = self.count + batch_count
        self.mean = self.mean + delta * batch_count / total
        m_a = self.var * self.count
        m_b = batch_var * batch_count
        m2 = m_a + m_b + delta**2 * self.count * batch_count / total
        self.var = m2 / total
        self.count = total

    @property
    def std(self) -> np.ndarray:
        return np.sqrt(self.var)


class ObservationNormalizer:
    """Normalises observation vectors to approximately zero-mean/unit-std.

    During training, statistics update continuously; freeze with
    ``frozen=True`` (e.g. for evaluation) to stop adaptation.
    """

    def __init__(self, dim: int, clip: float = 10.0, eps: float = 1e-8) -> None:
        if dim <= 0:
            raise ConfigError("normalizer dimension must be positive")
        if clip <= 0:
            raise ConfigError("clip must be positive")
        self._stats = RunningMeanStd((dim,))
        self.clip = clip
        self.eps = eps
        self.frozen = False

    def __call__(self, observation: np.ndarray, update: bool = True) -> np.ndarray:
        observation = np.asarray(observation, dtype=np.float64)
        if update and not self.frozen:
            self._stats.update(observation)
        normalised = (observation - self._stats.mean) / (self._stats.std + self.eps)
        return np.clip(normalised, -self.clip, self.clip)

    def state(self) -> dict[str, np.ndarray]:
        return {
            "mean": self._stats.mean.copy(),
            "var": self._stats.var.copy(),
            "count": np.asarray(self._stats.count),
        }

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        self._stats.mean = np.asarray(state["mean"], dtype=np.float64).copy()
        self._stats.var = np.asarray(state["var"], dtype=np.float64).copy()
        self._stats.count = float(state["count"])


class ReturnNormalizer:
    """Scales rewards by the running std of the discounted return.

    Keeps value-loss magnitudes stable across demand levels without
    shifting the reward's sign (mean is *not* subtracted).
    """

    def __init__(self, gamma: float = 0.99, eps: float = 1e-8) -> None:
        if not 0.0 <= gamma <= 1.0:
            raise ConfigError("gamma must lie in [0, 1]")
        self.gamma = gamma
        self.eps = eps
        self._stats = RunningMeanStd(())
        self._carry: np.ndarray | None = None

    def __call__(self, rewards: np.ndarray) -> np.ndarray:
        """Normalise a vector of per-agent rewards for one step."""
        rewards = np.asarray(rewards, dtype=np.float64)
        if self._carry is None or self._carry.shape != rewards.shape:
            self._carry = np.zeros_like(rewards)
        self._carry = self.gamma * self._carry + rewards
        self._stats.update(self._carry.reshape(-1, *self._stats.mean.shape))
        return rewards / (self._stats.std + self.eps)

    def reset(self) -> None:
        """Clear the per-episode discounted-return carry."""
        self._carry = None
