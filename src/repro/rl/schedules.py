"""Exploration / learning-rate schedules."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class LinearSchedule:
    """Linear interpolation from ``start`` to ``end`` over ``steps``."""

    start: float
    end: float
    steps: int

    def __post_init__(self) -> None:
        if self.steps <= 0:
            raise ConfigError("schedule needs a positive step count")

    def value(self, step: int) -> float:
        if step >= self.steps:
            return self.end
        if step <= 0:
            return self.start
        frac = step / self.steps
        return self.start + frac * (self.end - self.start)


@dataclass(frozen=True)
class ExponentialSchedule:
    """Exponential decay ``start * decay**step`` floored at ``end``."""

    start: float
    end: float
    decay: float

    def __post_init__(self) -> None:
        if not 0.0 < self.decay <= 1.0:
            raise ConfigError("decay must lie in (0, 1]")

    def value(self, step: int) -> float:
        return max(self.end, self.start * self.decay**step)
