"""repro — reproduction of PairUpLight (Du, Li & Wang, ICDCS 2025).

A complete, self-contained stack for coordinated multi-intersection
traffic signal control with multi-agent reinforcement learning:

* :mod:`repro.sim` — mesoscopic traffic simulator (SUMO substitute),
* :mod:`repro.nn` — numpy autograd + layers (PyTorch substitute),
* :mod:`repro.env` — multi-agent Gym-style TSC environment,
* :mod:`repro.rl` — PPO+GAE, A2C, DQN, training runner,
* :mod:`repro.agents` — PairUpLight and the paper's baselines
  (Fixedtime, SingleAgentRL, MA2C, CoLight),
* :mod:`repro.scenarios` — 6x6 grid, flow patterns 1-5, Monaco-style
  heterogeneous network,
* :mod:`repro.eval` — experiment pipelines reproducing the paper's
  tables and figures.

Quickstart::

    from repro.scenarios import build_grid, flow_pattern
    from repro.env import TrafficSignalEnv, EnvConfig
    from repro.agents import PairUpLightSystem
    from repro.rl import train

    grid = build_grid(4, 4)
    flows = flow_pattern(grid, pattern=1, peak_rate=500, t_peak=300)
    env = TrafficSignalEnv(grid.network, grid.phase_plans, flows,
                           EnvConfig(horizon_ticks=900))
    agent = PairUpLightSystem(env)
    history = train(agent, env, episodes=50)
    print(history.best_episode())
"""

from repro.errors import (
    CheckpointError,
    ConfigError,
    DemandError,
    FaultInjectionError,
    NetworkError,
    ReproError,
    SimulationError,
)
from repro.version import __version__

__all__ = [
    "CheckpointError",
    "ConfigError",
    "DemandError",
    "FaultInjectionError",
    "NetworkError",
    "ReproError",
    "SimulationError",
    "__version__",
]
