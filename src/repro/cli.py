"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``train``
    Train one model on a grid scenario, report the training curve, and
    optionally save the learned actor weights and a JSON history.
``evaluate``
    Train briefly (or not at all, for static controllers) and report
    drain-mode average travel time across chosen flow patterns.
``compare``
    Run the Table II / Table III pipelines at a configurable scale.
``overhead``
    Print the Table IV communication-overhead analysis.
``robustness``
    Sweep fault rates (sensing / communication / controller faults) and
    report degradation curves for PairUpLight, its no-fallback ablation
    and the classical baselines.
``multiseed``
    Repeat a train/evaluate pipeline over several seeds (optionally in
    parallel worker processes) and report mean +- std.
``serve``
    Run the fault-tolerant real-time control service: load a policy
    checkpoint, serve every intersection inside a per-tick deadline with
    per-intersection fallback and optional fault injection, hot-reload a
    checkpoint mid-run, and print the health report.
``sharded``
    Run one spatially sharded city-scale episode: partition the grid
    into K contiguous shards, one persistent worker process per shard,
    lockstep ticks with boundary vehicle handoffs, and report partition
    stats, throughput and the vehicle-conservation check.
``bench``
    Run the engine / training / serving / sharded throughput benchmarks
    and write ``BENCH_*.json`` files for the perf regression gate.
``zoo``
    Scenario-zoo tooling: list the seeded demand-scenario catalogue and
    print or export the spec JSON the ``--scenario`` flags consume
    (``compare``/``multiseed``/``robustness`` also accept ``zoo:<name>``
    references directly).
``obs``
    Telemetry tooling: ``obs report <run_dir>`` re-renders the training
    curve and event summary of a persisted run (written by ``train
    --telemetry-dir``) without re-simulating; ``obs tail <run_dir>``
    pretty-prints the latest events of a (possibly live) run.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.agents.base import AgentSystem
from repro.env.tsc_env import TrafficSignalEnv
from repro.errors import ConfigError
from repro.errors import (
    CheckpointError,
    DemandError,
    FaultInjectionError,
    NetworkError,
    ScenarioSpecError,
    SimulationError,
)
from repro.eval.comm_overhead import formatted_overhead_table, overhead_table
from repro.eval.comparison import default_model_factories, run_table2, run_table3
from repro.eval.harness import ExperimentScale, GridExperiment
from repro.eval.robustness import (
    formatted_degradation_table,
    run_degradation_comparison,
)
from repro.faults.config import FAULT_KINDS
from repro.faults.controller import FALLBACK_POLICIES
from repro.rl.runner import evaluate, train

MODEL_CHOICES = (
    "PairUpLight",
    "SingleAgent",
    "MA2C",
    "CoLight",
    "IQL",
    "Fixedtime",
    "MaxPressure",
    "LongestQueue",
)


def _build_agent(name: str, env: TrafficSignalEnv, seed: int) -> AgentSystem:
    from repro.agents import (
        CoLightSystem,
        FixedTimeSystem,
        IQLSystem,
        LongestQueueSystem,
        MA2CSystem,
        MaxPressureSystem,
        PairUpLightSystem,
        SingleAgentSystem,
    )

    factories = {
        "PairUpLight": lambda: PairUpLightSystem(env, seed=seed),
        "SingleAgent": lambda: SingleAgentSystem(env, seed=seed),
        "MA2C": lambda: MA2CSystem(env, seed=seed),
        "CoLight": lambda: CoLightSystem(env, seed=seed),
        "IQL": lambda: IQLSystem(env, seed=seed),
        "Fixedtime": lambda: FixedTimeSystem(env),
        "MaxPressure": lambda: MaxPressureSystem(env),
        "LongestQueue": lambda: LongestQueueSystem(),
    }
    try:
        return factories[name]()
    except KeyError:
        raise ConfigError(f"unknown model {name!r}; choose from {MODEL_CHOICES}")


def _grid_shape(args: argparse.Namespace) -> tuple[int, int]:
    """(rows, cols) from ``--grid-size WxH`` if given, else --rows/--cols."""
    if getattr(args, "grid_size", ""):
        from repro.scenarios.grid import parse_grid_size

        return parse_grid_size(args.grid_size)
    return args.rows, args.cols


def _scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    rows, cols = _grid_shape(args)
    return ExperimentScale(
        rows=rows,
        cols=cols,
        peak_rate=args.peak_rate,
        t_peak=args.t_peak,
        light_duration=2 * args.t_peak,
        horizon_ticks=args.horizon,
        max_ticks=args.horizon * 8,
        train_episodes=args.episodes,
    )


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rows", type=int, default=3)
    parser.add_argument("--cols", type=int, default=3)
    parser.add_argument(
        "--grid-size", type=str, default="",
        help="grid shape as 'WxH' (or 'N' for NxN); overrides --rows/--cols",
    )
    parser.add_argument("--peak-rate", type=float, default=600.0)
    parser.add_argument("--t-peak", type=float, default=150.0)
    parser.add_argument("--horizon", type=int, default=450)
    parser.add_argument("--episodes", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)


def cmd_train(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    experiment = GridExperiment(scale, seed=args.seed)
    env = experiment.train_env(args.pattern)
    agent = _build_agent(args.model, env, args.seed)
    telemetry = None
    if args.telemetry_dir:
        from repro.obs import Telemetry

        telemetry = Telemetry(
            args.telemetry_dir,
            config={
                "model": args.model,
                "pattern": args.pattern,
                "episodes": args.episodes,
                "rows": args.rows,
                "cols": args.cols,
                "horizon": args.horizon,
            },
            seed=args.seed,
            agent_name=args.model,
            trace_spans=args.trace_spans,
        )
    try:
        history = train(agent, env, episodes=args.episodes, seed=args.seed,
                        log_every=args.log_every,
                        checkpoint_dir=args.checkpoint_dir or None,
                        checkpoint_every=args.checkpoint_every,
                        resume_from=args.resume_from or None,
                        telemetry=telemetry)
    finally:
        if telemetry is not None:
            telemetry.close()
            print(f"telemetry written to {telemetry.run_dir}")
    curve = history.wait_curve
    print(f"\n{args.model} trained {args.episodes} episodes on pattern {args.pattern}")
    if history.aborted_episodes or history.rolled_back_episodes:
        print(f"resilience: {len(history.aborted_episodes)} aborted, "
              f"{len(history.rolled_back_episodes)} rolled-back episodes")
    print(f"wait: first-5 {curve[:5].mean():.2f} s, best {curve.min():.2f} s, "
          f"final-5 {curve[-5:].mean():.2f} s")
    if args.history_out:
        payload = {
            "model": args.model,
            "pattern": args.pattern,
            "episodes": args.episodes,
            "wait_curve": curve.tolist(),
            "reward_curve": history.reward_curve.tolist(),
        }
        with open(args.history_out, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"history written to {args.history_out}")
    if args.weights_out:
        try:
            agent.save(args.weights_out)
            print(f"weights written to {args.weights_out}")
        except ValueError:
            print("model has no saveable networks; skipping --weights-out")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    experiment = GridExperiment(scale, seed=args.seed)
    env = experiment.train_env(args.pattern)
    agent = _build_agent(args.model, env, args.seed)
    if args.episodes > 0:
        train(agent, env, episodes=args.episodes, seed=args.seed)
    print(f"{'Pattern':>8} {'Avg travel time':>16} {'Completion':>11}")
    for pattern in args.eval_patterns:
        result = experiment.evaluate_agent(agent, pattern)
        print(f"{pattern:>8} {result.average_travel_time:>14.1f} s "
              f"{result.completion_rate:>10.0%}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    factories = default_model_factories(seed=args.seed)
    if args.models:
        factories = {k: v for k, v in factories.items() if k in args.models}
        if not factories:
            raise ConfigError(f"no known models among {args.models}")
    scenario = getattr(args, "scenario", "") or None
    if args.table == 2:
        table = run_table2(scale, factories, seed=args.seed, scenario=scenario)
        if scenario is not None:
            title = f"Table II — avg travel time (s), scenario {scenario}"
        else:
            title = "Table II — avg travel time (s), trained on pattern 1"
        print(table.formatted(title))
    else:
        if scenario is not None:
            raise ConfigError("--scenario applies to --table 2 only")
        table = run_table3(scale, factories, seed=args.seed)
        print(table.formatted("Table III — light traffic avg travel time (s)"))
    return 0


def cmd_robustness(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    curves = run_degradation_comparison(
        scale,
        fault_rates=tuple(args.rates),
        kinds=tuple(args.kinds),
        pattern=args.pattern,
        seed=args.seed,
        train_episodes=args.episodes,
        include_ablation=not args.no_ablation,
        include_baselines=not args.no_baselines,
        fallback=args.fallback,
        scenario=getattr(args, "scenario", "") or None,
    )
    kinds = "+".join(args.kinds)
    print(f"Degradation sweep — {kinds} faults, avg travel time (s) vs fault rate")
    print(formatted_degradation_table(curves))
    return 0


def cmd_multiseed(args: argparse.Namespace) -> int:
    from repro.eval.multiseed import run_multiseed

    scale = _scale_from_args(args)
    result = run_multiseed(
        scale,
        lambda env, seed: _build_agent(args.model, env, seed),
        model_name=args.model,
        seeds=list(args.seeds),
        train_pattern=args.pattern,
        workers=args.workers,
        engine=args.engine,
        scenario=getattr(args, "scenario", "") or None,
        batched_policy=args.batched_policy,
        shared_across_replicas=args.shared_policy,
    )
    print(result.summary())
    for run in result.runs:
        print(
            f"  seed {run.seed}: travel time {run.eval_travel_time:.1f} s, "
            f"completion {run.completion_rate:.0%}"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.faults.config import FaultConfig
    from repro.serve import ControlService, PolicyRuntime, ServeConfig

    scale = _scale_from_args(args)
    experiment = GridExperiment(scale, seed=args.seed)
    faults = None
    if args.fault_rate > 0:
        faults = FaultConfig.uniform(args.fault_rate, tuple(args.fault_kinds))
    env = experiment.train_env(args.pattern, faults=faults)
    runtime = PolicyRuntime(
        lambda: _build_agent(args.model, env, args.seed),
        checkpoint=args.checkpoint or None,
    )
    telemetry = None
    if args.telemetry_dir:
        from repro.obs import Telemetry

        telemetry = Telemetry(
            args.telemetry_dir,
            config={
                "model": args.model,
                "pattern": args.pattern,
                "ticks": args.ticks,
                "deadline_ms": args.deadline_ms,
                "fault_rate": args.fault_rate,
                "fault_kinds": list(args.fault_kinds),
            },
            seed=args.seed,
            agent_name=args.model,
        )
    config = ServeConfig(deadline_ms=args.deadline_ms, fallback=args.fallback)
    service = ControlService(env, runtime, config, telemetry=telemetry)
    reload_at = args.reload_at if args.reload_at >= 0 else args.ticks // 2
    try:
        observations = service.start_episode(args.seed)
        for tick in range(args.ticks):
            if args.reload_from and tick == reload_at:
                service.request_reload(args.reload_from)
            actions = service.decide(observations)
            result = env.step(actions)
            if result.done:
                service.health.episodes += 1
                observations = service.start_episode()
            else:
                observations = result.observations
        report = service.health.report(service.fallbacks.snapshot())
        if telemetry is not None:
            telemetry.serve_session(report)
    finally:
        if telemetry is not None:
            telemetry.close()
            print(f"telemetry written to {telemetry.run_dir}")
    print(service.health.summary())
    degraded = service.fallbacks.degraded_nodes()
    if degraded:
        print(f"degraded intersections: {', '.join(sorted(degraded))}")
    for result in service.reload_log:
        verdict = "applied" if result.applied else f"rejected ({result.reason})"
        print(f"reload {result.path}: {verdict}")
    return 0 if service.health.healthy else 1


def cmd_sharded(args: argparse.Namespace) -> int:
    from repro.eval.sharded import run_sharded_episode
    from repro.faults.config import FaultConfig

    rows, cols = _grid_shape(args)
    faults = None
    if args.shard_link_loss > 0 or args.message_delay > 0:
        faults = FaultConfig(
            shard_link_loss=args.shard_link_loss,
            message_delay=args.message_delay,
        )
    telemetry = None
    if args.telemetry_dir:
        from repro.obs import Telemetry

        telemetry = Telemetry(
            args.telemetry_dir,
            config={
                "rows": rows,
                "cols": cols,
                "shards": args.shards,
                "ticks": args.ticks,
                "controller": args.controller,
                "workers": not args.serial,
                "shard_link_loss": args.shard_link_loss,
                "message_delay": args.message_delay,
            },
            seed=args.seed,
            agent_name=f"sharded-{args.controller}",
        )
    try:
        result = run_sharded_episode(
            rows,
            cols,
            args.shards,
            args.ticks,
            pattern=args.pattern,
            seed=args.seed,
            controller=args.controller,
            workers=not args.serial,
            faults=faults,
            telemetry=telemetry,
        )
    finally:
        if telemetry is not None:
            telemetry.close()
            print(f"telemetry written to {telemetry.run_dir}")
    mode = "serial" if args.serial or args.shards == 1 else "workers"
    print(
        f"sharded run: {rows}x{cols} grid, {args.shards} shards ({mode}), "
        f"{result.ticks} ticks"
    )
    print(
        f"partition: sizes {result.shard_sizes}, edge cut {result.edge_cut} links"
    )
    print(
        f"throughput: {result.ticks_per_second:.1f} ticks/s "
        f"({result.elapsed_s:.2f} s wall)"
    )
    print(
        f"vehicles: {result.created} created, {result.finished} finished, "
        f"{result.in_network} in network, {result.pending} pending, "
        f"{result.in_flight} in flight (conservation OK)"
    )
    print(
        f"boundary: {result.handoffs} handoffs, {result.link_losses} handoff "
        f"losses, {result.message_losses} message losses"
    )
    print(
        f"avg travel time {result.avg_travel_time:.1f} s, "
        f"avg wait {result.avg_wait:.1f} s"
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import write_benchmarks

    written = write_benchmarks(args.out, which=args.which)
    for name, path in written.items():
        with open(path) as handle:
            payload = json.load(handle)
        if name == "engine":
            print(
                f"engine: {payload['ticks_per_second']} ticks/s "
                f"({payload['speedup_vs_baseline']}x baseline) -> {path}"
            )
        elif name == "engine_soa":
            print(
                f"engine_soa: {payload['aggregate_ticks_per_second']} "
                f"aggregate ticks/s over {payload['batch']} replicas "
                f"({payload['speedup_vs_object_same_run']}x object engine "
                f"in the same run) -> {path}"
            )
        elif name == "update":
            print(
                f"update: {payload['update_steps_per_second']} minibatch-steps/s fused "
                f"vs {payload['composed_update_steps_per_second']} composed "
                f"({payload['speedup_fused_vs_composed']}x) "
                f"vs {payload['baseline']['update_steps_per_second']} pre-change "
                f"({payload['speedup_fused_vs_baseline']}x) -> {path}"
            )
        elif name == "serve":
            print(
                f"serve: {payload['intersections_per_second']} intersections/s, "
                f"p99 {payload['p99_latency_ms']} ms, "
                f"{payload['unserved_ticks']} unserved, "
                f"reloads {payload['reloads']['applied']} applied / "
                f"{payload['reloads']['rejected']} rejected -> {path}"
            )
        elif name == "sharded":
            curve = ", ".join(
                f"{point['num_shards']}: {point['ticks_per_second']}"
                for point in payload["curve"]
            )
            print(
                f"sharded: ticks/s by shard count {{{curve}}}, "
                f"{payload['speedup_max_shards_vs_serial_same_run']}x "
                f"max-shards vs serial (same run, "
                f"{payload['cpu_count']} cpu) -> {path}"
            )
        else:
            print(
                f"train: {payload['env_steps_per_second']} env-steps/s, "
                f"{payload['agent_steps_per_second']} agent-steps/s, "
                f"update {payload['update_seconds_per_episode']} s/episode "
                f"({payload['speedup_vs_baseline']}x baseline) -> {path}"
            )
            batched = payload.get("batched")
            if batched:
                speedup = batched.get("speedup_vs_serial_same_run")
                suffix = (
                    f" ({speedup}x serial, same run)" if speedup else ""
                )
                print(
                    f"  batched: {batched['aggregate_env_steps_per_second']} "
                    f"aggregate env-steps/s over {batched['batch']} "
                    f"lockstep replicas{suffix}"
                )
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.report import export_run_csv, render_report, tail_events

    if args.obs_command == "report":
        print(render_report(args.run_dir, width=args.width))
        if args.csv_out:
            export_run_csv(args.run_dir, args.csv_out)
            print(f"episode CSV written to {args.csv_out}")
    else:
        for line in tail_events(args.run_dir, n=args.n):
            print(line)
    return 0


def cmd_zoo(args: argparse.Namespace) -> int:
    from repro.scenarios.spec import save_spec, spec_digest
    from repro.scenarios.zoo import build_zoo_spec, zoo_catalogue

    if args.zoo_command == "list":
        for name, description in zoo_catalogue().items():
            print(f"{name:20s} {description}")
        return 0
    spec = build_zoo_spec(args.name, seed=args.seed, rows=args.rows, cols=args.cols)
    if args.zoo_command == "show":
        print(json.dumps(spec, indent=2, sort_keys=True))
        return 0
    save_spec(args.out, spec)
    print(
        f"wrote {spec['name']} to {args.out} "
        f"(digest {spec_digest(spec)[:12]})"
    )
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    experiment = GridExperiment(scale, seed=args.seed)
    env = experiment.train_env(1)
    agents = [
        _build_agent(name, env, args.seed)
        for name in ("MA2C", "CoLight", "PairUpLight", "SingleAgent", "Fixedtime")
    ]
    print(formatted_overhead_table(overhead_table(agents, env)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PairUpLight reproduction toolkit"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_train = subparsers.add_parser("train", help="train one model")
    _add_scale_args(p_train)
    p_train.add_argument("--model", choices=MODEL_CHOICES, default="PairUpLight")
    p_train.add_argument("--pattern", type=int, default=1, choices=range(1, 6))
    p_train.add_argument("--log-every", type=int, default=10)
    p_train.add_argument("--history-out", type=str, default="")
    p_train.add_argument("--weights-out", type=str, default="")
    p_train.add_argument("--checkpoint-dir", type=str, default="",
                         help="write atomic training checkpoints here")
    p_train.add_argument("--checkpoint-every", type=int, default=1)
    p_train.add_argument("--resume-from", type=str, default="",
                         help="checkpoint file or directory to resume from")
    p_train.add_argument("--telemetry-dir", type=str, default="",
                         help="write a structured telemetry run directory "
                              "(events.jsonl + manifest.json + metrics.json)")
    p_train.add_argument("--trace-spans", action="store_true",
                         help="also export phase-timer trace spans "
                              "(trace.json, Chrome trace format)")
    p_train.set_defaults(func=cmd_train)

    p_eval = subparsers.add_parser("evaluate", help="train then evaluate")
    _add_scale_args(p_eval)
    p_eval.add_argument("--model", choices=MODEL_CHOICES, default="PairUpLight")
    p_eval.add_argument("--pattern", type=int, default=1, choices=range(1, 6))
    p_eval.add_argument(
        "--eval-patterns", type=int, nargs="+", default=[1, 2, 3, 4, 5]
    )
    p_eval.set_defaults(func=cmd_evaluate)

    p_compare = subparsers.add_parser("compare", help="Table II / III pipelines")
    _add_scale_args(p_compare)
    p_compare.add_argument("--table", type=int, choices=(2, 3), default=2)
    p_compare.add_argument("--models", nargs="*", default=[])
    p_compare.add_argument(
        "--scenario", type=str, default="",
        help="train/evaluate on a scenario spec instead of the paper "
             "patterns: a spec JSON path or 'zoo:<name>[:<seed>]'",
    )
    p_compare.set_defaults(func=cmd_compare)

    p_overhead = subparsers.add_parser("overhead", help="Table IV analysis")
    _add_scale_args(p_overhead)
    p_overhead.set_defaults(func=cmd_overhead)

    p_robust = subparsers.add_parser(
        "robustness", help="fault-rate degradation sweep"
    )
    _add_scale_args(p_robust)
    p_robust.add_argument("--pattern", type=int, default=1, choices=range(1, 6))
    p_robust.add_argument(
        "--rates", type=float, nargs="+", default=[0.0, 0.1, 0.2, 0.4]
    )
    p_robust.add_argument(
        "--kinds", nargs="+", choices=FAULT_KINDS, default=["message", "detector"]
    )
    p_robust.add_argument(
        "--fallback", choices=FALLBACK_POLICIES, default="max_pressure"
    )
    p_robust.add_argument("--no-ablation", action="store_true")
    p_robust.add_argument("--no-baselines", action="store_true")
    p_robust.add_argument(
        "--scenario", type=str, default="",
        help="sweep fault rates on a scenario spec (path or 'zoo:<name>')",
    )
    p_robust.set_defaults(func=cmd_robustness)

    p_multi = subparsers.add_parser(
        "multiseed", help="repeat train/evaluate over several seeds"
    )
    _add_scale_args(p_multi)
    p_multi.add_argument("--model", choices=MODEL_CHOICES, default="PairUpLight")
    p_multi.add_argument("--pattern", type=int, default=1, choices=range(1, 6))
    p_multi.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    p_multi.add_argument(
        "--scenario", type=str, default="",
        help="run all seeds on a scenario spec (path or 'zoo:<name>[:<seed>]')",
    )
    p_multi.add_argument(
        "--workers", type=int, default=0,
        help="forked worker processes (0 = serial; results are identical)",
    )
    p_multi.add_argument(
        "--engine", choices=("object", "soa"), default="object",
        help="'soa' batches all seeds into one structure-of-arrays "
        "engine in this process (bit-identical results; ignores --workers)",
    )
    p_multi.add_argument(
        "--batched-policy", action="store_true", dest="batched_policy",
        help="with --engine soa: one policy forward per tick for all "
        "seeds' agents (PairUpLight only; bit-identical results)",
    )
    p_multi.add_argument(
        "--shared-policy", action="store_true", dest="shared_policy",
        help="with --batched-policy: train one shared policy on all "
        "seeds ((T, B*M) PPO batches; a new training regime, not "
        "bit-identical to per-seed runs)",
    )
    p_multi.set_defaults(func=cmd_multiseed)

    p_serve = subparsers.add_parser(
        "serve", help="run the fault-tolerant real-time control service"
    )
    _add_scale_args(p_serve)
    p_serve.add_argument("--model", choices=MODEL_CHOICES, default="PairUpLight")
    p_serve.add_argument("--pattern", type=int, default=1, choices=range(1, 6))
    p_serve.add_argument("--ticks", type=int, default=200,
                         help="decision ticks to serve (spans episodes)")
    p_serve.add_argument("--checkpoint", type=str, default="",
                         help="policy checkpoint to load before serving")
    p_serve.add_argument("--deadline-ms", type=float, default=50.0,
                         help="per-tick decision deadline in milliseconds")
    p_serve.add_argument(
        "--fallback", choices=FALLBACK_POLICIES, default="max_pressure"
    )
    p_serve.add_argument("--fault-rate", type=float, default=0.0,
                         help="inject faults at this rate while serving")
    p_serve.add_argument(
        "--fault-kinds", nargs="+", choices=FAULT_KINDS,
        default=["controller", "message"],
    )
    p_serve.add_argument("--reload-from", type=str, default="",
                         help="hot-reload this checkpoint mid-run")
    p_serve.add_argument("--reload-at", type=int, default=-1,
                         help="tick at which to hot-reload (-1 = midpoint)")
    p_serve.add_argument("--telemetry-dir", type=str, default="",
                         help="write serve telemetry (events.jsonl) here")
    p_serve.set_defaults(func=cmd_serve)

    p_sharded = subparsers.add_parser(
        "sharded", help="run one spatially sharded city-scale episode"
    )
    p_sharded.add_argument(
        "--grid-size", type=str, default="10x10",
        help="grid shape as 'WxH' (or 'N' for NxN)",
    )
    p_sharded.add_argument("--rows", type=int, default=10)
    p_sharded.add_argument("--cols", type=int, default=10)
    p_sharded.add_argument("--shards", type=int, default=4,
                           help="number of spatial shards (1 = monolithic)")
    p_sharded.add_argument("--ticks", type=int, default=300)
    p_sharded.add_argument("--pattern", type=int, default=5, choices=range(1, 6))
    p_sharded.add_argument(
        "--controller", choices=("fixed_time", "max_pressure"),
        default="fixed_time",
    )
    p_sharded.add_argument(
        "--serial", action="store_true",
        help="run all shards in-process (bit-exact with worker mode)",
    )
    p_sharded.add_argument("--seed", type=int, default=0)
    p_sharded.add_argument(
        "--shard-link-loss", type=float, default=0.0,
        help="per-(edge, tick) probability of losing a boundary exchange "
             "(handoff batches are held upstream and retried)",
    )
    p_sharded.add_argument(
        "--message-delay", type=float, default=0.0,
        help="per-(edge, tick) probability of dropping occupancy/messages "
             "(receivers reuse stale values)",
    )
    p_sharded.add_argument("--telemetry-dir", type=str, default="",
                           help="write shard telemetry (events.jsonl) here")
    p_sharded.set_defaults(func=cmd_sharded)

    p_bench = subparsers.add_parser(
        "bench", help="run throughput benchmarks, write BENCH_*.json"
    )
    p_bench.add_argument(
        "--which",
        choices=(
            "all", "engine", "engine_soa", "train", "update", "serve", "sharded"
        ),
        default="all",
    )
    p_bench.add_argument("--out", type=str, default="benchmarks")
    p_bench.set_defaults(func=cmd_bench)

    p_obs = subparsers.add_parser(
        "obs", help="telemetry run-directory tooling (report / tail)"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_report = obs_sub.add_parser(
        "report", help="render a run directory without re-simulating"
    )
    p_report.add_argument("run_dir", help="telemetry run directory (or events.jsonl)")
    p_report.add_argument("--width", type=int, default=60)
    p_report.add_argument("--csv-out", type=str, default="",
                          help="also export the per-episode series as CSV")
    p_report.set_defaults(func=cmd_obs)
    p_tail = obs_sub.add_parser("tail", help="print the latest events of a run")
    p_tail.add_argument("run_dir", help="telemetry run directory (or events.jsonl)")
    p_tail.add_argument("-n", type=int, default=10)
    p_tail.set_defaults(func=cmd_obs)

    p_zoo = subparsers.add_parser(
        "zoo", help="scenario zoo: list entries, show/export spec JSON"
    )
    zoo_sub = p_zoo.add_subparsers(dest="zoo_command", required=True)
    p_zoo_list = zoo_sub.add_parser("list", help="list the zoo catalogue")
    p_zoo_list.set_defaults(func=cmd_zoo)
    for sub_name, sub_help in (
        ("show", "print a zoo spec as JSON"),
        ("export", "write a zoo spec to a JSON file"),
    ):
        p_zoo_entry = zoo_sub.add_parser(sub_name, help=sub_help)
        p_zoo_entry.add_argument("name", help="zoo scenario name (see 'zoo list')")
        p_zoo_entry.add_argument("--seed", type=int, default=0)
        p_zoo_entry.add_argument("--rows", type=int, default=4)
        p_zoo_entry.add_argument("--cols", type=int, default=4)
        if sub_name == "export":
            p_zoo_entry.add_argument("--out", type=str, required=True)
        p_zoo_entry.set_defaults(func=cmd_zoo)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (
        CheckpointError,
        ConfigError,
        DemandError,
        FaultInjectionError,
        NetworkError,
        ScenarioSpecError,
        SimulationError,
    ) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a consumer that stopped reading (e.g.
        # ``repro zoo show ... | head``): exit quietly, not a traceback.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
