"""Robustness evaluation: fault-rate sweeps and degradation curves.

The experiment the paper does not run but a deployment review demands:
how does control quality degrade as sensing, communication and
controllers fail?  The harness sweeps a fault rate across the chosen
fault families (:data:`repro.faults.config.FAULT_KINDS`), evaluates a
frozen agent in drain mode at each rate, and reports the degradation
curve — average travel time (and completion rate) vs. fault probability.

:func:`run_degradation_comparison` additionally contrasts PairUpLight's
graceful-degradation path against its own **no-fallback ablation** (lost
messages read as zeros, dropped detector readings read as blind zeros)
and the classical baselines, quantifying how much the degradation
machinery is worth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.agents.base import AgentSystem
from repro.errors import ConfigError, FaultInjectionError
from repro.eval.harness import ExperimentScale, GridExperiment, make_experiment
from repro.faults.config import FAULT_KINDS, FaultConfig
from repro.faults.controller import ControllerFaultWrapper
from repro.rl.runner import EvaluationResult, evaluate, train

#: Default sweep axis: fault probabilities from healthy to heavily degraded.
DEFAULT_FAULT_RATES = (0.0, 0.1, 0.2, 0.4)


@dataclass
class RobustnessPoint:
    """One evaluation at one fault rate."""

    fault_rate: float
    result: EvaluationResult


@dataclass
class DegradationCurve:
    """Travel-time degradation of one agent across fault rates."""

    agent_name: str
    kinds: tuple[str, ...]
    points: list[RobustnessPoint] = field(default_factory=list)

    @property
    def rates(self) -> list[float]:
        return [point.fault_rate for point in self.points]

    @property
    def travel_times(self) -> list[float]:
        return [point.result.average_travel_time for point in self.points]

    @property
    def completion_rates(self) -> list[float]:
        return [point.result.completion_rate for point in self.points]

    def degradation_ratio(self) -> float:
        """Travel time at the worst fault rate relative to healthy.

        Follows the ``?``-gap reporting rules: a curve whose endpoints
        are not both finite (e.g. an all-invalid-episodes evaluation)
        reports NaN rather than inventing a ratio.
        """
        if len(self.points) < 2 or self.travel_times[0] == 0:
            return 1.0
        first, last = self.travel_times[0], self.travel_times[-1]
        if not (math.isfinite(first) and math.isfinite(last)):
            return float("nan")
        return last / first


def evaluate_under_faults(
    agent: AgentSystem,
    experiment: GridExperiment,
    fault_rate: float,
    kinds: tuple[str, ...] = ("detector", "message"),
    pattern: int = 1,
    episodes: int = 1,
    seed: int = 0,
    degrade: bool = True,
    fallback: str = "max_pressure",
) -> EvaluationResult:
    """Drain-mode evaluation of ``agent`` at one fault rate.

    ``degrade=False`` evaluates the no-fallback ablation at the sensing
    layer (dropped detector readings become blind zeros); the agent's own
    message-loss policy comes from its configuration.  Controller faults
    (when swept) wrap the agent so dead intersections run ``fallback``.
    """
    faults = FaultConfig.uniform(fault_rate, kinds) if fault_rate > 0 else None
    env = experiment.eval_env(pattern, faults=faults, fault_degrade=degrade)
    subject: AgentSystem = agent
    if faults is not None and faults.any_controller_faults:
        subject = ControllerFaultWrapper(
            agent, faults, fallback=fallback, seed=seed + 131
        )
    return evaluate(subject, env, episodes=episodes, seed=seed + 900)


def run_robustness_sweep(
    agent: AgentSystem,
    experiment: GridExperiment,
    fault_rates: tuple[float, ...] = DEFAULT_FAULT_RATES,
    kinds: tuple[str, ...] = ("detector", "message"),
    pattern: int = 1,
    episodes: int = 1,
    seed: int = 0,
    degrade: bool = True,
    fallback: str = "max_pressure",
) -> DegradationCurve:
    """Sweep fault rates for one frozen agent; returns its curve."""
    unknown = set(kinds) - set(FAULT_KINDS)
    if unknown:
        raise ConfigError(f"unknown fault kinds {sorted(unknown)}")
    for rate in fault_rates:
        # Validate up front: a negative rate would otherwise silently
        # short-circuit to "no faults" in evaluate_under_faults.
        if not 0.0 <= rate <= 1.0:
            raise FaultInjectionError(
                f"fault rates must lie in [0, 1], got {rate}"
            )
    curve = DegradationCurve(agent_name=agent.name, kinds=tuple(kinds))
    for rate in fault_rates:
        result = evaluate_under_faults(
            agent,
            experiment,
            rate,
            kinds=tuple(kinds),
            pattern=pattern,
            episodes=episodes,
            seed=seed,
            degrade=degrade,
            fallback=fallback,
        )
        curve.points.append(RobustnessPoint(fault_rate=rate, result=result))
    return curve


def run_degradation_comparison(
    scale: ExperimentScale,
    fault_rates: tuple[float, ...] = DEFAULT_FAULT_RATES,
    kinds: tuple[str, ...] = ("detector", "message"),
    pattern: int = 1,
    seed: int = 0,
    train_episodes: int | None = None,
    include_ablation: bool = True,
    include_baselines: bool = True,
    fallback: str = "max_pressure",
    scenario=None,
) -> list[DegradationCurve]:
    """Degradation curves for PairUpLight vs. its ablation and baselines.

    One PairUpLight system is trained fault-free on ``pattern`` (the
    paper's protocol), then the *same frozen weights* are evaluated with
    graceful degradation on and — as the ablation — off, alongside the
    static baselines, under the identical fault schedules.

    ``scenario`` (a spec path, ``"zoo:<name>"``, spec dict or compiled
    scenario) swaps the pattern-based grid for a scenario-spec
    experiment — measuring degradation under, e.g., incident workloads.
    """
    from repro.agents import FixedTimeSystem, MaxPressureSystem, PairUpLightSystem
    from repro.agents.pairuplight.agent import PairUpLightConfig

    experiment = make_experiment(scale, seed=seed, scenario=scenario)
    train_env = experiment.train_env(pattern)
    episodes = scale.train_episodes if train_episodes is None else train_episodes
    paired = PairUpLightSystem(train_env, seed=seed)
    if episodes > 0:
        train(paired, train_env, episodes=episodes, seed=seed)

    # No-fallback ablation: identical weights, zeros on message loss and
    # blind sensors on detector dropout.
    ablation_env = experiment.train_env(pattern)
    ablation = PairUpLightSystem(
        ablation_env, PairUpLightConfig(degrade_on_loss=False), seed=seed
    )
    ablation.load_state_dict(paired.state_dict())
    ablation.name = "PairUpLight-NoFallback"

    curves = [
        run_robustness_sweep(
            paired, experiment, fault_rates, kinds, pattern,
            seed=seed, degrade=True, fallback=fallback,
        )
    ]
    if include_ablation:
        curves.append(
            run_robustness_sweep(
                ablation, experiment, fault_rates, kinds, pattern,
                seed=seed, degrade=False, fallback=fallback,
            )
        )
    if include_baselines:
        for baseline in (MaxPressureSystem(train_env), FixedTimeSystem(train_env)):
            curves.append(
                run_robustness_sweep(
                    baseline, experiment, fault_rates, kinds, pattern,
                    seed=seed, degrade=True, fallback=fallback,
                )
            )
    return curves


def formatted_degradation_table(curves: list[DegradationCurve]) -> str:
    """ASCII degradation table: one row per agent, one column per rate.

    Cells are average travel time in seconds with the completion rate in
    parentheses; the final column is travel time at the worst fault rate
    relative to the healthy run.  Non-finite samples (an evaluation with
    no finished vehicles reports NaN) render as ``?`` gaps, following
    the same convention as :mod:`repro.eval.reporting` charts.
    """
    if not curves:
        return "(no degradation curves)"
    rates = curves[0].rates
    header = f"{'Model':<24}" + "".join(f"{f'p={rate:.2f}':>16}" for rate in rates)
    header += f"{'worst/healthy':>15}"
    lines = [header, "-" * len(header)]
    for curve in curves:
        cells = "".join(_format_point(point) for point in curve.points)
        ratio = curve.degradation_ratio()
        ratio_cell = f"{ratio:>14.2f}x" if math.isfinite(ratio) else f"{'?':>15}"
        lines.append(f"{curve.agent_name:<24}{cells}{ratio_cell}")
    return "\n".join(lines)


def _format_point(point: RobustnessPoint) -> str:
    """One table cell; ``?`` gaps for non-finite travel times."""
    travel_time = point.result.average_travel_time
    if not math.isfinite(travel_time):
        return f"{'?':>10} ({point.result.completion_rate:>3.0%})"
    return f"{travel_time:>9.1f}s ({point.result.completion_rate:>3.0%})"
