"""Communication-overhead analysis (paper Table IV).

For each model, the bits of information an intersection receives from
*other* intersections per decision step during execution.  The numbers
are computed from the live agent configurations (observation widths,
neighbour counts, message dimensions) rather than hard-coded, so they
stay honest if the state design changes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.base import AgentSystem
from repro.env.tsc_env import TrafficSignalEnv


@dataclass(frozen=True)
class OverheadRow:
    """One row of Table IV."""

    model: str
    description: str
    bits_per_step: int


#: Human-readable wire-format descriptions, mirroring Table IV's wording.
_DESCRIPTIONS = {
    "MA2C": "observations and policy fingerprints from four neighbours",
    "CoLight": "link-level observations from four neighbours",
    "PairUpLight": "message from one of its four neighbours",
    "PairUpLight-NoComm": "no inter-intersection communication",
    "SingleAgent": "no inter-intersection communication",
    "Fixedtime": "no inter-intersection communication",
    "IQL": "no inter-intersection communication",
    "MaxPressure": "no inter-intersection communication",
    "LongestQueue": "no inter-intersection communication",
}


def overhead_row(agent: AgentSystem, env: TrafficSignalEnv) -> OverheadRow:
    """Communication accounting for one agent system."""
    description = _DESCRIPTIONS.get(agent.name, "model-specific")
    return OverheadRow(
        model=agent.name,
        description=description,
        bits_per_step=agent.communication_bits_per_step(env),
    )


def overhead_table(
    agents: list[AgentSystem], env: TrafficSignalEnv
) -> list[OverheadRow]:
    """Table IV for a list of agent systems."""
    return [overhead_row(agent, env) for agent in agents]


def formatted_overhead_table(rows: list[OverheadRow]) -> str:
    """Render overhead rows in the paper's Table IV layout."""
    lines = [
        "Communication overhead analysis",
        f"{'Model':<20} | {'Information from other intersections':<55} | Bits/step",
        "-" * 100,
    ]
    for row in rows:
        lines.append(
            f"{row.model:<20} | {row.description:<55} | {row.bits_per_step:>8d}"
        )
    return "\n".join(lines)
