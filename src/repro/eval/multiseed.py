"""Multi-seed experiment aggregation.

RL training curves are noisy; the paper's Fig. 7 shades variance across
runs.  This module repeats train/evaluate pipelines over several seeds
and reports mean +- std for both the training curves and the final
evaluation metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.agents.base import AgentSystem
from repro.env.tsc_env import TrafficSignalEnv
from repro.errors import ConfigError
from repro.eval.harness import ExperimentScale, make_experiment

SeededAgentFactory = Callable[[TrafficSignalEnv, int], AgentSystem]
"""Builds an agent bound to the environment, seeded per run."""


@dataclass
class SeedRun:
    """One seed's outcome."""

    seed: int
    wait_curve: np.ndarray
    eval_travel_time: float
    completion_rate: float


@dataclass
class MultiSeedResult:
    """Aggregate over seeds for one model / pattern combination."""

    model: str
    pattern: int
    runs: list[SeedRun] = field(default_factory=list)

    @property
    def curve_mean(self) -> np.ndarray:
        return np.mean([run.wait_curve for run in self.runs], axis=0)

    @property
    def curve_std(self) -> np.ndarray:
        return np.std([run.wait_curve for run in self.runs], axis=0)

    @property
    def travel_time_mean(self) -> float:
        return float(np.mean([run.eval_travel_time for run in self.runs]))

    @property
    def travel_time_std(self) -> float:
        return float(np.std([run.eval_travel_time for run in self.runs]))

    @property
    def completion_mean(self) -> float:
        return float(np.mean([run.completion_rate for run in self.runs]))

    def summary(self) -> str:
        return (
            f"{self.model} on pattern {self.pattern} over {len(self.runs)} seeds: "
            f"travel time {self.travel_time_mean:.1f} +- {self.travel_time_std:.1f} s, "
            f"completion {self.completion_mean:.0%}"
        )


def run_multiseed(
    scale: ExperimentScale,
    factory: SeededAgentFactory,
    model_name: str,
    seeds: list[int],
    train_pattern: int = 1,
    eval_pattern: int | None = None,
    workers: int = 0,
    timeout_s: float | None = None,
    telemetry=None,
    engine: str = "object",
    scenario=None,
    batched_policy: bool = False,
    shared_across_replicas: bool = False,
) -> MultiSeedResult:
    """Train/evaluate the same configuration under several seeds.

    ``factory(env, seed)`` builds a fresh agent per run; per-seed
    variation covers network init, exploration noise, and demand
    randomisation (via the experiment seed).

    ``workers > 1`` distributes seeds over forked worker processes.
    Each seed's run is fully self-contained (its own experiment, env,
    agent and RNG streams), so the result is identical to the serial
    run for any worker count — only wall-clock changes.  ``timeout_s``
    bounds the parallel phase: a hung worker is terminated and surfaced
    as a :class:`repro.errors.SimulationError` naming its seeds instead
    of blocking the sweep forever.

    ``engine="soa"`` routes all seeds through one batched
    structure-of-arrays engine in this process (one replica per seed,
    see :mod:`repro.eval.batched`) instead of serial or fork-parallel
    object-engine runs; results are bit-identical to the serial path.
    ``workers`` is ignored in that mode.

    ``telemetry`` (a :class:`repro.obs.telemetry.Telemetry`) records one
    ``multiseed_seed`` event per run plus aggregate gauges.  Events are
    emitted *after* the runs complete, in the parent process, so the
    sink composes with forked workers and cannot perturb any run.

    ``scenario`` (anything :func:`repro.scenarios.resolve_scenario`
    accepts) replaces the pattern-based grid experiment with a
    scenario-spec experiment; ``train_pattern``/``eval_pattern`` are
    then ignored for demand (the spec defines it) but still label the
    result.

    ``batched_policy`` (``engine="soa"`` only) additionally batches the
    *policy* side: all seeds' PairUpLight systems act through one
    :class:`repro.agents.pairuplight.batched.BatchedPolicyGroup` per
    tick.  Default (independent) mode stays bit-exact with the serial
    path; ``shared_across_replicas`` trains one shared policy on all
    seeds.  Incompatible agent types raise :class:`ConfigError`.
    """
    from repro.perf.parallel import parallel_map

    if not seeds:
        raise ConfigError("need at least one seed")
    if engine not in ("object", "soa"):
        raise ConfigError(f"engine must be 'object' or 'soa', got {engine!r}")
    if batched_policy and engine != "soa":
        raise ConfigError("batched_policy requires engine='soa'")
    if scenario is not None:
        # Resolve once so every seed shares one compiled network and a
        # file/zoo reference is not re-read per seed.
        from repro.scenarios.spec import resolve_scenario

        scenario = resolve_scenario(scenario)
    eval_pattern = train_pattern if eval_pattern is None else eval_pattern
    result = MultiSeedResult(model=model_name, pattern=eval_pattern)

    if engine == "soa":
        result.runs.extend(
            _run_seeds_batched(
                scale,
                factory,
                seeds,
                train_pattern,
                eval_pattern,
                scenario,
                batched_policy=batched_policy,
                shared_across_replicas=shared_across_replicas,
            )
        )
        _emit_telemetry(result, telemetry, model_name, eval_pattern)
        return result

    def run_one_seed(seed: int) -> SeedRun:
        experiment = make_experiment(scale, seed=seed, scenario=scenario)

        def seeded_factory(environment, s=seed):
            return factory(environment, s)

        agent, history = experiment.train_agent(seeded_factory, pattern=train_pattern)
        evaluation = experiment.evaluate_agent(agent, eval_pattern)
        return SeedRun(
            seed=seed,
            wait_curve=history.wait_curve,
            eval_travel_time=evaluation.average_travel_time,
            completion_rate=evaluation.completion_rate,
        )

    result.runs.extend(
        parallel_map(run_one_seed, seeds, workers=workers, timeout_s=timeout_s)
    )
    _emit_telemetry(result, telemetry, model_name, eval_pattern)
    return result


def _run_seeds_batched(
    scale: ExperimentScale,
    factory: SeededAgentFactory,
    seeds: list[int],
    train_pattern: int,
    eval_pattern: int,
    scenario=None,
    batched_policy: bool = False,
    shared_across_replicas: bool = False,
) -> list[SeedRun]:
    """All seeds in one process over one batched SoA engine.

    Builds the same per-seed experiments/envs/agents the serial path
    does, then trains and evaluates them in lockstep (one engine replica
    per seed); per-seed episode seeds match the serial runner exactly.
    """
    from repro.eval.batched import evaluate_lockstep, train_lockstep

    experiments = [
        make_experiment(scale, seed=seed, scenario=scenario) for seed in seeds
    ]
    train_envs = [exp.train_env(train_pattern) for exp in experiments]
    agents = [
        factory(env, seed) for env, seed in zip(train_envs, seeds)
    ]
    histories = train_lockstep(
        agents,
        train_envs,
        scale.train_episodes,
        seeds,
        batched_policy=batched_policy,
        shared_across_replicas=shared_across_replicas,
    )
    eval_envs = [exp.eval_env(eval_pattern) for exp in experiments]
    evaluations = evaluate_lockstep(
        agents,
        eval_envs,
        scale.eval_episodes,
        [seed + 900 for seed in seeds],
        batched_policy=batched_policy,
        shared_across_replicas=shared_across_replicas,
    )
    return [
        SeedRun(
            seed=seed,
            wait_curve=history.wait_curve,
            eval_travel_time=evaluation.average_travel_time,
            completion_rate=evaluation.completion_rate,
        )
        for seed, history, evaluation in zip(seeds, histories, evaluations)
    ]


def _emit_telemetry(
    result: MultiSeedResult, telemetry, model_name: str, eval_pattern: int
) -> None:
    if telemetry is None:
        return
    for run in result.runs:
        telemetry.events.emit(
            "multiseed_seed",
            model=model_name,
            pattern=eval_pattern,
            seed=run.seed,
            eval_travel_time=float(run.eval_travel_time),
            completion_rate=float(run.completion_rate),
            episodes=int(run.wait_curve.size),
        )
        telemetry.metrics.observe(
            "multiseed.eval_travel_time", run.eval_travel_time
        )
    telemetry.metrics.gauge("multiseed.travel_time_mean", result.travel_time_mean)
    telemetry.metrics.gauge("multiseed.travel_time_std", result.travel_time_std)
    telemetry.metrics.count("multiseed.runs", len(result.runs))
