"""What does the learned message encode?

The paper shows that a single 32-bit message suffices, but not *what*
the channel learns to say.  This module probes a trained PairUpLight
system: it runs greedy episodes, records every agent's outgoing message
alongside observable traffic quantities at the sender, and reports the
correlations — a direct check that a congestion-describing protocol
emerged rather than a constant or noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.agents.pairuplight.agent import PairUpLightSystem
from repro.env.tsc_env import TrafficSignalEnv
from repro.errors import ConfigError


@dataclass
class MessageLog:
    """Per-step probe records across one or more greedy episodes."""

    messages: list[float] = field(default_factory=list)  # first message element
    congestion: list[float] = field(default_factory=list)  # sender congestion
    pressure: list[float] = field(default_factory=list)  # sender |pressure| sum
    actions: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.messages)


def probe_messages(
    agent: PairUpLightSystem,
    env: TrafficSignalEnv,
    episodes: int = 1,
    seed: int = 0,
) -> MessageLog:
    """Run greedy episodes and record (message, sender state) pairs."""
    if episodes <= 0:
        raise ConfigError("episodes must be positive")
    log = MessageLog()
    for episode in range(episodes):
        observations = env.reset(seed=seed + episode)
        agent.begin_episode(env, training=False)
        done = False
        while not done:
            actions = agent.act(observations, env, training=False)
            # After act(), the board holds this step's outgoing messages.
            for agent_id in agent.agent_ids:
                message = agent.board.read(agent_id)
                log.messages.append(float(message[0]))
                log.congestion.append(env.congestion_score(agent_id))
                log.pressure.append(
                    float(np.abs(env.link_pressures(agent_id)).sum())
                )
                log.actions.append(int(actions[agent_id]))
            result = env.step(actions)
            observations = result.observations
            done = result.done
    return log


@dataclass(frozen=True)
class MessageReport:
    """Summary statistics of a message probe."""

    samples: int
    message_mean: float
    message_std: float
    congestion_correlation: float
    pressure_correlation: float

    @property
    def is_informative(self) -> bool:
        """A protocol emerged: messages vary and track sender state."""
        return self.message_std > 1e-4 and (
            abs(self.congestion_correlation) > 0.1
            or abs(self.pressure_correlation) > 0.1
        )

    def formatted(self) -> str:
        return (
            f"message probe over {self.samples} samples:\n"
            f"  message mean {self.message_mean:.4f}, std {self.message_std:.4f}\n"
            f"  corr(message, sender congestion) = {self.congestion_correlation:+.3f}\n"
            f"  corr(message, sender |pressure|) = {self.pressure_correlation:+.3f}\n"
            f"  informative protocol: {self.is_informative}"
        )


def _safe_corr(a: np.ndarray, b: np.ndarray) -> float:
    if a.std() < 1e-12 or b.std() < 1e-12:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def analyse(log: MessageLog) -> MessageReport:
    """Correlation summary of a probe log."""
    if len(log) == 0:
        raise ConfigError("message log is empty")
    messages = np.asarray(log.messages)
    congestion = np.asarray(log.congestion)
    pressure = np.asarray(log.pressure)
    return MessageReport(
        samples=len(log),
        message_mean=float(messages.mean()),
        message_std=float(messages.std()),
        congestion_correlation=_safe_corr(messages, congestion),
        pressure_correlation=_safe_corr(messages, pressure),
    )
